"""Tests for the synthetic dataset generators."""

from repro.datasets import (
    AzureConfig,
    BorgConfig,
    KIND_DROPOFF,
    KIND_FARE,
    KIND_FINISH,
    KIND_PICKUP,
    KIND_SUBMIT,
    KIND_TASK,
    TaxiConfig,
    bounded_zipf,
    generate_azure,
    generate_borg,
    generate_taxi,
)


class TestBorg:
    def test_event_counts(self):
        tasks, jobs = generate_borg(BorgConfig(target_events=2000))
        assert len(tasks) == 2000
        assert len(jobs) > 0

    def test_time_ordered(self):
        tasks, jobs = generate_borg(BorgConfig(target_events=2000))
        for stream in (tasks, jobs):
            times = [e.timestamp for e in stream]
            assert times == sorted(times)

    def test_deterministic_per_seed(self):
        a, _ = generate_borg(BorgConfig(target_events=1000, seed=5))
        b, _ = generate_borg(BorgConfig(target_events=1000, seed=5))
        assert a == b

    def test_seeds_differ(self):
        a, _ = generate_borg(BorgConfig(target_events=1000, seed=5))
        b, _ = generate_borg(BorgConfig(target_events=1000, seed=6))
        assert a != b

    def test_kinds(self):
        tasks, jobs = generate_borg(BorgConfig(target_events=1000))
        assert {e.kind for e in tasks} == {KIND_TASK}
        assert {e.kind for e in jobs} <= {KIND_SUBMIT, KIND_FINISH}

    def test_job_keys_recur_within_windows(self):
        """Borg jobs are chatty: many task events per key per 5s window."""
        tasks, _ = generate_borg(BorgConfig(target_events=5000))
        buckets = {(e.key, e.timestamp // 5000) for e in tasks}
        density = len(tasks) / len(buckets)
        assert density > 4

    def test_every_job_eventually_finishes(self):
        tasks, jobs = generate_borg(BorgConfig(target_events=500))
        submits = {e.key for e in jobs if e.kind == KIND_SUBMIT}
        finishes = {e.key for e in jobs if e.kind == KIND_FINISH}
        assert finishes <= submits
        assert len(finishes) > 0


class TestTaxi:
    def test_event_counts(self):
        trips, fares = generate_taxi(TaxiConfig(target_events=2000))
        assert len(trips) == 2000
        assert len(fares) > 0

    def test_time_ordered(self):
        trips, fares = generate_taxi(TaxiConfig(target_events=2000))
        for stream in (trips, fares):
            times = [e.timestamp for e in stream]
            assert times == sorted(times)

    def test_pickup_dropoff_pairing(self):
        trips, _ = generate_taxi(TaxiConfig(target_events=2000))
        kinds = {e.kind for e in trips}
        assert kinds <= {KIND_PICKUP, KIND_DROPOFF}

    def test_low_density_relative_to_5s_windows(self):
        """Taxi events are sparse: ~1 event per key per window."""
        trips, _ = generate_taxi(TaxiConfig(target_events=5000))
        buckets = {(e.key, e.timestamp // 5000) for e in trips}
        density = len(trips) / len(buckets)
        assert density < 2

    def test_rides_exceed_default_session_gap(self):
        """Median ride must be far longer than the 2min session gap."""
        config = TaxiConfig(target_events=2000)
        assert config.ride_duration_median_ms > 120_000

    def test_fare_kinds(self):
        _, fares = generate_taxi(TaxiConfig(target_events=1000))
        assert {e.kind for e in fares} == {KIND_FARE}

    def test_deterministic(self):
        a, _ = generate_taxi(TaxiConfig(target_events=500, seed=3))
        b, _ = generate_taxi(TaxiConfig(target_events=500, seed=3))
        assert a == b


class TestAzure:
    def test_event_count(self):
        assert len(generate_azure(AzureConfig(target_events=2000))) == 2000

    def test_time_ordered(self):
        events = generate_azure(AzureConfig(target_events=2000))
        times = [e.timestamp for e in events]
        assert times == sorted(times)

    def test_subscription_popularity_skewed(self):
        events = generate_azure(AzureConfig(target_events=5000))
        counts = {}
        for event in events:
            counts[event.key] = counts.get(event.key, 0) + 1
        ordered = sorted(counts.values(), reverse=True)
        top_share = sum(ordered[: max(1, len(ordered) // 10)]) / len(events)
        assert top_share > 0.3  # top 10% of subscriptions dominate

    def test_medium_density(self):
        events = generate_azure(AzureConfig(target_events=5000))
        buckets = {(e.key, e.timestamp // 5000) for e in events}
        density = len(events) / len(buckets)
        assert 1.5 < density < 8

    def test_deterministic(self):
        a = generate_azure(AzureConfig(target_events=500, seed=3))
        b = generate_azure(AzureConfig(target_events=500, seed=3))
        assert a == b


class TestBoundedZipf:
    def test_range(self):
        import random

        rng = random.Random(1)
        samples = [bounded_zipf(rng, 100) for _ in range(1000)]
        assert all(0 <= s < 100 for s in samples)

    def test_skew(self):
        import random

        rng = random.Random(1)
        samples = [bounded_zipf(rng, 100, skew=1.2) for _ in range(5000)]
        assert samples.count(0) > samples.count(50)
