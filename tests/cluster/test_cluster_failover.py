"""Replication chains, failover, and online rebalancing."""

import pytest

from repro.cluster import ClusterConfig, ClusterConnector, StoreCluster
from repro.faults import RetryPolicy
from repro.kvstores.remote import RemoteStoreClient, RemoteStoreError

FAST_RETRY = RetryPolicy(max_attempts=4, base_delay_s=0.0, jitter=0.0)


@pytest.fixture(autouse=True)
def _guard(hang_guard):
    hang_guard(60)


def make_cluster(ack="all", partitions=2, replicas=1):
    return StoreCluster(
        ClusterConfig(partitions=partitions, replicas=replicas, ack=ack)
    )


def read_node_directly(cluster, name, key):
    """Bypass the connector: what does this node itself hold?"""
    host, port = cluster.address(name)
    with RemoteStoreClient(host, port, store_name=name) as client:
        return client.get(key)


class TestReplication:
    @pytest.mark.parametrize("ack", ["all", "one"])
    def test_sync_ack_replicates_before_returning(self, ack):
        """With a synchronous first hop, an acked write is already on
        the replica by the time ``put`` returns -- no drain needed."""
        with make_cluster(ack=ack) as cluster:
            with ClusterConnector(cluster) as connector:
                for i in range(50):
                    connector.put(b"k%02d" % i, b"v%02d" % i)
                for i in range(50):
                    key = b"k%02d" % i
                    partition = connector._partition(key)
                    replica = connector.chain(partition)[1]
                    assert read_node_directly(cluster, replica, key) == b"v%02d" % i

    def test_ack_none_pipelines_asynchronously(self):
        with make_cluster(ack="none") as cluster:
            with ClusterConnector(cluster) as connector:
                for i in range(100):
                    connector.put(b"k%02d" % (i % 20), b"v%03d" % i)
                stats = cluster.replication_stats(connector.chain(0)[0])
                assert stats["sync"] is False
                assert stats["ops_sent"] > 0

    def test_replication_stats_counts_forwards(self):
        with make_cluster(ack="all") as cluster:
            with ClusterConnector(cluster) as connector:
                keys = [b"a", b"b", b"c", b"d", b"e", b"f"]
                for key in keys:
                    connector.put(key, b"v")
                sent = 0
                for partition in range(connector.partitions):
                    stats = cluster.replication_stats(connector.chain(partition)[0])
                    assert stats["sync"] is True
                    assert stats["pending"] == 0  # sync: acked == sent
                    sent += stats["ops_sent"]
                assert sent == len(keys)


class TestFailover:
    def test_replica_kill_shrinks_chain(self):
        with make_cluster() as cluster:
            with ClusterConnector(cluster, retry_policy=FAST_RETRY) as connector:
                connector.put(b"k", b"v")
                replica = connector.chain(connector._partition(b"k"))[1]
                cluster.kill(replica)
                connector.repair_partition(connector._partition(b"k"))
                assert connector.chain_repairs == 1
                assert connector.failovers == 0  # primary unchanged
                assert replica not in connector.chain(connector._partition(b"k"))
                connector.put(b"k2", b"v2")  # writes keep flowing
                assert connector.get(b"k") == b"v"

    def test_primary_kill_promotes_replica(self):
        with make_cluster() as cluster:
            with ClusterConnector(cluster, retry_policy=FAST_RETRY) as connector:
                for i in range(30):
                    connector.put(b"k%02d" % i, b"v%02d" % i)
                partition = connector._partition(b"k00")
                old_primary = connector.chain(partition)[0]
                old_replica = connector.chain(partition)[1]
                cluster.kill(old_primary)
                # next op on the partition discovers the death and fails over
                assert connector.get(b"k00") == b"v00"
                assert connector.failovers == 1
                assert connector.chain(partition)[0] == old_replica
                # acked writes survived the primary's death (ack=all)
                for i in range(30):
                    key = b"k%02d" % i
                    if connector._partition(key) == partition:
                        assert connector.get(key) == b"v%02d" % i

    def test_failover_budget_is_bounded(self):
        """When every chain member is dead the client gives up after the
        retry policy's attempt budget instead of spinning."""
        with make_cluster() as cluster:
            with ClusterConnector(cluster, retry_policy=FAST_RETRY) as connector:
                connector.put(b"k", b"v")
                partition = connector._partition(b"k")
                for name in list(connector.chain(partition)):
                    cluster.kill(name)
                with pytest.raises(
                    RemoteStoreError, match="no live replicas|unavailable after"
                ):
                    connector.get(b"k")

    def test_restart_and_resync_rejoins_chain(self):
        with make_cluster() as cluster:
            with ClusterConnector(cluster, retry_policy=FAST_RETRY) as connector:
                for i in range(40):
                    connector.put(b"k%02d" % i, b"v%02d" % i)
                partition = 0
                replica = connector.chain(partition)[1]
                cluster.kill(replica)
                connector.repair_partition(partition)
                assert len(connector.chain(partition)) == 1
                # replacement node: new port, empty store, resynced on attach
                cluster.restart(replica)
                connector.attach_replica(partition, replica)
                assert connector.chain(partition) == [f"p{partition}r0", replica]
                for i in range(40):
                    key = b"k%02d" % i
                    if connector._partition(key) == partition:
                        assert read_node_directly(cluster, replica, key) == b"v%02d" % i

    def test_isolate_blocks_then_heal_restores(self):
        with make_cluster(partitions=1) as cluster:
            with ClusterConnector(cluster, retry_policy=FAST_RETRY) as connector:
                connector.put(b"k", b"v")
                primary = connector.chain(0)[0]
                replica = connector.chain(0)[1]
                connector.isolate(primary)
                # isolated primary looks dead to the client: failover
                assert connector.get(b"k") == b"v"
                assert connector.chain(0)[0] == replica
                connector.heal(primary)
                connector.attach_replica(0, primary)
                assert primary in connector.chain(0)


class TestRebalance:
    def test_migrate_moves_partition_with_content(self):
        with make_cluster() as cluster:
            with ClusterConnector(cluster, retry_policy=FAST_RETRY) as connector:
                for i in range(60):
                    connector.put(b"k%02d" % i, b"v%02d" % i)
                target = cluster.add_node(partition=0)
                old_replicas = connector.chain(0)[1:]
                connector.migrate(0, target)
                assert connector.migrations_completed == 1
                assert connector.chain(0) == [target] + old_replicas
                for i in range(60):
                    assert connector.get(b"k%02d" % i) == b"v%02d" % i

    def test_dual_write_covers_migration_window(self):
        with make_cluster() as cluster:
            with ClusterConnector(cluster, retry_policy=FAST_RETRY) as connector:
                connector.put(b"old", b"before")
                target = cluster.add_node(partition=0)
                connector.begin_migration(0, target)
                # writes during the window land on old primary AND target
                dirty = []
                for i in range(30):
                    key = b"w%02d" % i
                    if connector._partition(key) == 0:
                        connector.put(key, b"dual")
                        dirty.append(key)
                assert dirty, "need at least one partition-0 key"
                for key in dirty:
                    assert read_node_directly(cluster, target, key) == b"dual"
                connector.complete_migration(0)
                assert connector.chain(0)[0] == target
                for key in dirty:
                    assert connector.get(key) == b"dual"
                if connector._partition(b"old") == 0:
                    assert connector.get(b"old") == b"before"

    def test_merge_during_migration_read_repairs(self):
        with make_cluster() as cluster:
            with ClusterConnector(cluster, retry_policy=FAST_RETRY) as connector:
                key = next(
                    b"m%03d" % i
                    for i in range(1000)
                    if connector._partition(b"m%03d" % i) == 0
                )
                connector.merge(key, b"a")
                target = cluster.add_node(partition=0)
                connector.begin_migration(0, target)
                connector.merge(key, b"b")  # materialized value dual-written
                connector.complete_migration(0)
                assert connector.get(key) == b"ab"
