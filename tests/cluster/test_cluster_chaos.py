"""Chaos harness: seeded schedules, recovery evaluation, determinism."""

import pytest

from repro.cluster import (
    ChaosConnector,
    ClusterConfig,
    ClusterConnector,
    StoreCluster,
    evaluate_cluster_recovery,
)
from repro.core import (
    EvaluationRow,
    PerformanceEvaluator,
    SourceConfig,
    generate_workload_trace,
)
from repro.faults import ClusterAction, ClusterFaultPlan, FaultPlan, RetryPolicy

FAST_RETRY = RetryPolicy(max_attempts=5, base_delay_s=0.0, jitter=0.0)


@pytest.fixture(autouse=True)
def _guard(hang_guard):
    hang_guard(120)


@pytest.fixture(scope="module")
def trace():
    return generate_workload_trace(
        "tumbling-incremental", [SourceConfig(num_events=2_000, seed=9)]
    )


class TestSchedule:
    def test_scripted_actions_pass_through_sorted(self):
        plan = ClusterFaultPlan(
            actions=(
                ClusterAction(at=900, action="restart", target="p0r1"),
                ClusterAction(at=300, action="kill", target="p0r1"),
            )
        )
        schedule = plan.schedule(partitions=3, num_ops=2_000)
        assert [a.at for a in schedule] == [300, 900]

    def test_random_kills_land_in_window(self):
        plan = ClusterFaultPlan(seed=7, random_kills=4, kill_window=(100, 500))
        schedule = plan.schedule(partitions=3, num_ops=2_000)
        kills = [a for a in schedule if a.action == "kill"]
        assert len(kills) == 4
        for action in kills:
            assert 100 <= action.at < 500
            role, _, partition = action.target.partition(":")
            assert role in ("primary", "replica")
            assert 0 <= int(partition) < 3

    def test_restart_after_schedules_paired_restarts(self):
        plan = ClusterFaultPlan(seed=7, random_kills=2, restart_after=300)
        schedule = plan.schedule(partitions=2, num_ops=4_000)
        kills = [a for a in schedule if a.action == "kill"]
        restarts = [a for a in schedule if a.action == "restart"]
        assert len(kills) == 2 and len(restarts) == 2
        by_target = {a.target: a.at for a in kills}
        for restart in restarts:
            assert restart.at == by_target[restart.target] + 300

    def test_same_seed_same_schedule(self):
        """The determinism contract: schedules are a pure function of
        the plan, so two runs under one seed kill identically."""
        for seed in (0, 1, "trial-a"):
            plan_a = ClusterFaultPlan(seed=seed, random_kills=3, restart_after=100)
            plan_b = ClusterFaultPlan(seed=seed, random_kills=3, restart_after=100)
            assert plan_a.schedule(3, 5_000) == plan_b.schedule(3, 5_000)
        assert ClusterFaultPlan(seed=1, random_kills=3).schedule(
            3, 5_000
        ) != ClusterFaultPlan(seed=2, random_kills=3).schedule(3, 5_000)


class TestChaosConnector:
    def test_actions_fire_at_logical_offsets(self):
        config = ClusterConfig(partitions=2, replicas=1, ack="all")
        plan = ClusterFaultPlan(
            actions=(ClusterAction(at=10, action="kill", target="replica:0"),)
        )
        with StoreCluster(config) as cluster:
            with ClusterConnector(cluster, retry_policy=FAST_RETRY) as inner:
                chaos = ChaosConnector(inner, cluster, plan.schedule(2, 100))
                for i in range(10):  # ops 0..9: before the offset
                    chaos.put(b"k%02d" % i, b"v")
                assert chaos.kills == 0
                chaos.put(b"k10", b"v")  # op index 10: fires first
                assert chaos.kills == 1
                assert chaos.executed[0][1] == "kill"
                chaos.close()

    def test_finish_skips_unreached_actions(self):
        config = ClusterConfig(partitions=2, replicas=1, ack="all")
        plan = ClusterFaultPlan(
            actions=(ClusterAction(at=10_000, action="kill", target="replica:0"),)
        )
        with StoreCluster(config) as cluster:
            with ClusterConnector(cluster, retry_policy=FAST_RETRY) as inner:
                chaos = ChaosConnector(inner, cluster, plan.schedule(2, 20_000))
                chaos.put(b"k", b"v")
                chaos.finish()
                assert chaos.kills == 0
                assert len(chaos.skipped) == 1
                chaos.close()


class TestEvaluateClusterRecovery:
    def test_acceptance_kill_replica_then_primary_zero_loss(self, trace):
        """The PR's acceptance scenario: 3 partitions, RF=2, a seeded
        plan kills one replica then one primary mid-replay.  At
        ``ack=all`` the replay completes with zero acked-write loss
        against a single-node oracle."""
        chaos = ClusterFaultPlan(
            seed=11,
            actions=(
                ClusterAction(at=len(trace) // 4, action="kill", target="replica:0"),
                ClusterAction(at=len(trace) // 2, action="kill", target="primary:1"),
            ),
        )
        result = evaluate_cluster_recovery(
            trace,
            partitions=3,
            replicas=1,
            ack="all",
            chaos=chaos,
            retry_policy=FAST_RETRY,
        )
        assert result.recovered_ok
        assert result.mismatches == 0
        assert result.keys_checked == len(trace.unique_keys())
        assert result.kills == 2
        assert result.failovers >= 1
        assert result.chain_repairs >= 2
        assert result.lost_ack_window == 0  # ack=all: nothing in flight
        assert result.cluster == "3x2@all"
        assert result.replay.operations == len(trace)
        assert len(result.actions_executed) == 2 and not result.actions_skipped

    def test_restart_rejoins_and_recovers(self, trace):
        chaos = ClusterFaultPlan(
            actions=(
                ClusterAction(at=500, action="kill", target="replica:2"),
                ClusterAction(at=1_500, action="restart", target="replica:2"),
            )
        )
        result = evaluate_cluster_recovery(
            trace, partitions=3, replicas=1, ack="all",
            chaos=chaos, retry_policy=FAST_RETRY,
        )
        assert result.recovered_ok
        assert result.restarts == 1

    def test_determinism_same_seed_identical_histogram_populations(self, trace):
        """Property: same seed => identical kill/restart schedule =>
        both runs execute the same actions and record the same number
        of latency samples (merged histogram population)."""
        plan = ClusterFaultPlan(seed=23, random_kills=2, restart_after=400)

        def run():
            return evaluate_cluster_recovery(
                trace, partitions=3, replicas=1, ack="all",
                chaos=plan, retry_policy=FAST_RETRY,
            )

        first, second = run(), run()
        assert first.actions_executed == second.actions_executed
        assert first.actions_skipped == second.actions_skipped
        assert first.replay.operations == second.replay.operations
        merged_a = first.replay._merged_histogram()
        merged_b = second.replay._merged_histogram()
        merged_a.record_many(first.replay.all_latencies())
        merged_b.record_many(second.replay.all_latencies())
        assert merged_a.total == merged_b.total
        assert merged_a.total == len(trace)
        assert first.recovered_ok and second.recovered_ok

    def test_weaker_ack_is_measured_not_hidden(self, trace):
        """``ack=none`` may lose in-flight writes; the harness reports
        the mismatch count honestly instead of asserting zero."""
        chaos = ClusterFaultPlan(
            actions=(
                ClusterAction(at=len(trace) // 2, action="kill", target="primary:0"),
            )
        )
        result = evaluate_cluster_recovery(
            trace, partitions=3, replicas=1, ack="none",
            chaos=chaos, retry_policy=FAST_RETRY,
        )
        assert result.replay.operations == len(trace)
        assert result.mismatches >= 0  # honest accounting, no assertion of 0
        assert result.recovered_ok == (result.mismatches == 0)


class TestEvaluatorIntegration:
    def test_evaluate_cluster_populates_row(self, trace):
        chaos = ClusterFaultPlan(
            actions=(
                ClusterAction(at=1_000, action="kill", target="primary:0"),
            )
        )
        evaluator = PerformanceEvaluator(stores=["memory"])
        rows = evaluator.evaluate_cluster(
            "tumbling", trace, partitions=3, replicas=1, ack="all",
            chaos=chaos, retry_policy=FAST_RETRY,
        )
        assert len(rows) == 1
        row = rows[0]
        assert isinstance(row, EvaluationRow)
        assert row.store == "memory"
        assert row.cluster == "3x2@all"
        assert row.failovers == 1
        assert row.replication_lag_ms is not None
        assert row.recovered_ok is True
        assert row.throughput_kops > 0

    def test_fault_plan_cluster_field_feeds_evaluator(self, trace):
        plan = FaultPlan(
            cluster={"actions": [{"at": 800, "action": "kill", "target": "replica:1"}]}
        )
        assert isinstance(plan.cluster, ClusterFaultPlan)
        evaluator = PerformanceEvaluator(stores=["memory"], fault_plan=plan)
        rows = evaluator.evaluate_cluster(
            "tumbling", trace, partitions=3, replicas=1, ack="all",
            retry_policy=FAST_RETRY,
        )
        assert rows[0].recovered_ok is True
