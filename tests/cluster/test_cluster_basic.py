"""Cluster connector basics: routing, batching, single-node equivalence."""

from zlib import crc32

import pytest

from repro.cluster import ClusterConfig, ClusterConnector, StoreCluster
from repro.core import SourceConfig, generate_workload_trace
from repro.core.replayer import TraceReplayer, shard_indices
from repro.kvstores import InMemoryStore, connect
from repro.kvstores.api import OP_DELETE, OP_MERGE, OP_PUT


@pytest.fixture(autouse=True)
def _guard(hang_guard):
    """Socket-backed tests must fail fast, not wedge the suite."""
    hang_guard(60)


@pytest.fixture(scope="module")
def trace():
    return generate_workload_trace(
        "tumbling-incremental", [SourceConfig(num_events=2_000, seed=9)]
    )


@pytest.fixture
def cluster():
    config = ClusterConfig(partitions=3, replicas=1, ack="all")
    with StoreCluster(config) as cluster:
        yield cluster


class TestPartitioning:
    def test_matches_shard_trace_partitioner(self, trace, cluster):
        """Key routing is byte-identical to ``shard_trace``: a cluster of
        N partitions sees exactly the key sets an N-way sharded replay
        would, so sharded and clustered results are comparable."""
        with ClusterConnector(cluster) as connector:
            shards = shard_indices(trace, connector.partitions)
            unique = trace.unique_keys()
            for shard, indices in enumerate(shards):
                for index in indices[:50]:
                    key = unique[trace.key_ids[index]]
                    assert connector._partition(key) == shard
                    assert crc32(key) % connector.partitions == shard

    def test_keys_land_on_their_partition_primary(self, cluster):
        with ClusterConnector(cluster) as connector:
            keys = [b"alpha", b"bravo", b"charlie", b"delta", b"echo"]
            for key in keys:
                connector.put(key, b"v:" + key)
            for key in keys:
                partition = connector._partition(key)
                primary = connector.chain(partition)[0]
                # read the primary directly: the key must live there
                assert connector._client(primary).get(key) == b"v:" + key

    def test_roundtrip_all_ops(self, cluster):
        with ClusterConnector(cluster) as connector:
            connector.put(b"k1", b"v1")
            assert connector.get(b"k1") == b"v1"
            connector.merge(b"m", b"a")
            connector.merge(b"m", b"b")
            assert connector.get(b"m") == b"ab"
            connector.delete(b"k1")
            assert connector.get(b"k1") is None
            assert connector.get(b"never-written") is None


class TestBatchSplitting:
    def test_multi_get_reassembles_in_request_order(self, cluster):
        with ClusterConnector(cluster) as connector:
            keys = [b"k%03d" % i for i in range(40)]
            for i, key in enumerate(keys):
                connector.put(key, b"v%03d" % i)
            # interleave hits and misses so order bugs can't hide
            probe = []
            for i, key in enumerate(keys):
                probe.append(key)
                probe.append(b"miss%03d" % i)
            values = connector.multi_get(probe)
            for i in range(40):
                assert values[2 * i] == b"v%03d" % i
                assert values[2 * i + 1] is None

    def test_multi_get_touches_every_partition(self, cluster):
        with ClusterConnector(cluster) as connector:
            keys = [b"k%03d" % i for i in range(64)]
            touched = {connector._partition(k) for k in keys}
            assert touched == set(range(connector.partitions))
            assert connector.multi_get(keys) == [None] * len(keys)

    def test_apply_batch_splits_across_partitions(self, cluster):
        with ClusterConnector(cluster) as connector:
            ops = []
            for i in range(30):
                ops.append((OP_PUT, b"b%03d" % i, b"x%03d" % i))
            ops.append((OP_MERGE, b"b000", b"+tail"))
            ops.append((OP_DELETE, b"b001", b""))
            connector.apply_batch(ops)
            assert connector.get(b"b000") == b"x000+tail"
            assert connector.get(b"b001") is None
            for i in range(2, 30):
                assert connector.get(b"b%03d" % i) == b"x%03d" % i


class TestSingleNodeEquivalence:
    def test_replay_digest_matches_single_node(self, trace, cluster):
        """The acceptance bar for routing: a full trace replayed through
        the cluster yields byte-identical content to one local store."""
        reference = connect(InMemoryStore())
        try:
            TraceReplayer(reference, measure_latency=False).replay(trace)
            with ClusterConnector(cluster) as connector:
                TraceReplayer(connector, measure_latency=False).replay(trace)
                mismatches = sum(
                    1
                    for key in trace.unique_keys()
                    if connector.get(key) != reference.get(key)
                )
                assert mismatches == 0
        finally:
            reference.close()


class TestConnectorSurface:
    def test_endpoints_and_chains(self, cluster):
        with ClusterConnector(cluster) as connector:
            assert connector.endpoints() == sorted(cluster.names())
            for partition in range(connector.partitions):
                chain = connector.chain(partition)
                assert chain[0] == f"p{partition}r0"
                assert len(chain) == 2
            assert connector.failovers == 0
            assert connector.take_background_ns() == 0

    def test_name_carries_topology_label(self, cluster):
        with ClusterConnector(cluster) as connector:
            assert connector.name == "cluster:memory:3x2@all"
