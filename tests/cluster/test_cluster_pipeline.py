"""Pipelined scatter-gather fan-out over the cluster connector:
all-sends-before-first-read ordering, sync equivalence, and failover
mid-gather under chaos."""

import pytest

from repro.cluster import (
    ClusterConfig,
    ClusterConnector,
    StoreCluster,
    evaluate_cluster_recovery,
)
from repro.core import SourceConfig, TraceReplayer, generate_workload_trace
from repro.faults import ClusterAction, ClusterFaultPlan, RetryPolicy
from repro.kvstores import InMemoryStore, connect
from repro.kvstores.api import OP_GET, OP_PUT
from repro.obs import tracing

FAST_RETRY = RetryPolicy(max_attempts=5, base_delay_s=0.0, jitter=0.0)


@pytest.fixture(autouse=True)
def _guard(hang_guard):
    hang_guard(120)


def make_cluster(partitions=3, replicas=0, ack="all"):
    return StoreCluster(
        ClusterConfig(partitions=partitions, replicas=replicas, ack=ack)
    )


def keys_spanning(connector, partitions, per_partition=4):
    """Keys covering every partition, so a window genuinely fans out."""
    chosen = {p: [] for p in range(partitions)}
    i = 0
    while any(len(ks) < per_partition for ks in chosen.values()):
        key = b"key%05d" % i
        bucket = chosen[connector._partition(key)]
        if len(bucket) < per_partition:
            bucket.append(key)
        i += 1
    return [key for ks in chosen.values() for key in ks]


def scatter_gather_instants(tracer):
    scatters, gathers = [], []
    for name, _tid, start_ns, _dur, _args in tracer.spans():
        if name == "cluster.scatter":
            scatters.append(start_ns)
        elif name == "cluster.gather":
            gathers.append(start_ns)
    return scatters, gathers


class TestScatterBeforeGather:
    def test_multi_get_sends_every_partition_before_first_read(self):
        """The acceptance ordering: for a multi_get spanning k>1
        partitions, every partition's frame goes out before the first
        reply is read -- k partitions cost ~1 RTT, not k."""
        with make_cluster(partitions=3) as cluster:
            with ClusterConnector(cluster, retry_policy=FAST_RETRY) as conn:
                keys = keys_spanning(conn, 3)
                for key in keys:
                    conn.put(key, b"v-" + key)
                with tracing.tracing() as tracer:
                    values = conn.multi_get(keys)
                assert values == [b"v-" + key for key in keys]
                scatters, gathers = scatter_gather_instants(tracer)
                assert len(scatters) == 3 and len(gathers) == 3
                assert max(scatters) < min(gathers)

    def test_pipelined_flush_scatters_before_gathering(self):
        with make_cluster(partitions=3) as cluster:
            with ClusterConnector(cluster, retry_policy=FAST_RETRY) as conn:
                keys = keys_spanning(conn, 3)
                with tracing.tracing() as tracer:
                    session = conn.pipeline(len(keys), lambda *a: None)
                    for key in keys:
                        session.submit(OP_PUT, key, b"v", 0)
                    session.drain()
                scatters, gathers = scatter_gather_instants(tracer)
                assert len(scatters) == 3 and len(gathers) == 3
                assert max(scatters) < min(gathers)
                assert conn.pipeline_flushes == 1
                assert conn.flush_coalesced_ops == len(keys)


class TestEquivalence:
    def test_pipelined_cluster_replay_matches_sync(self):
        trace = generate_workload_trace(
            "tumbling-incremental", [SourceConfig(num_events=600, seed=3)]
        )
        results = {}
        for depth in (None, 16):
            with make_cluster(partitions=3) as cluster:
                with ClusterConnector(
                    cluster, retry_policy=FAST_RETRY
                ) as conn:
                    result = TraceReplayer(
                        conn, pipeline_depth=depth
                    ).replay(trace)
                    contents = {}
                    keys = sorted(trace.unique_keys())
                    for key, value in zip(keys, conn.multi_get(keys)):
                        contents[key] = value
                    results[depth] = (result, contents)
        sync_result, sync_contents = results[None]
        pipe_result, pipe_contents = results[16]
        assert pipe_contents == sync_contents
        assert pipe_result.operations == sync_result.operations
        # identical latency populations per op type
        assert sync_result.latencies_ns
        for op, latencies in sync_result.latencies_ns.items():
            assert len(pipe_result.latencies_ns[op]) == len(latencies)

    def test_completions_cover_every_op_with_values(self):
        """Pipelined gets complete with the same values sync gets
        return, even when the window spans partitions."""
        with make_cluster(partitions=3) as cluster:
            with ClusterConnector(cluster, retry_policy=FAST_RETRY) as conn:
                keys = keys_spanning(conn, 3, per_partition=6)
                for i, key in enumerate(keys):
                    conn.put(key, b"v%02d" % i)
                got = {}

                def on_complete(opcode, arrival, complete, value, got=got):
                    got[arrival] = value

                session = conn.pipeline(7, on_complete)  # != len(keys)
                for i, key in enumerate(keys):
                    session.submit(OP_GET, key, b"", i)
                session.drain()
                assert got == {
                    i: b"v%02d" % i for i in range(len(keys))
                }


class TestFailoverMidGather:
    def test_primary_kill_mid_window_repairs_one_partition(self):
        """Killing a primary while windows are in flight must repair
        and replay only that partition's sub-batches: every op still
        lands, verified against a local oracle."""
        oracle = connect(InMemoryStore())
        with make_cluster(partitions=3, replicas=1) as cluster:
            with ClusterConnector(cluster, retry_policy=FAST_RETRY) as conn:
                session = conn.pipeline(16, lambda *a: None)
                for i in range(400):
                    key = b"key%04d" % (i % 80)
                    value = b"v%03d" % i
                    session.submit(OP_PUT, key, value, 0)
                    oracle.put(key, value)
                    if i == 150:
                        cluster.kill(conn.chain(0)[0])
                session.drain()
                assert conn.failovers >= 1
                keys = [b"key%04d" % i for i in range(80)]
                assert conn.multi_get(keys) == [
                    oracle.get(key) for key in keys
                ]
        oracle.close()

    def test_chaos_recovery_with_pipelined_replay(self):
        trace = generate_workload_trace(
            "tumbling-incremental", [SourceConfig(num_events=1_500, seed=11)]
        )
        plan = ClusterFaultPlan(
            actions=(
                ClusterAction(at=400, action="kill", target="primary:0"),
                ClusterAction(at=900, action="kill", target="primary:1"),
            )
        )
        result = evaluate_cluster_recovery(
            trace,
            partitions=3,
            replicas=1,
            chaos=plan,
            retry_policy=FAST_RETRY,
            pipeline_depth=16,
        )
        assert result.kills == 2
        assert result.failovers >= 2
        assert result.mismatches == 0
        assert result.recovered_ok
