"""Cluster/chaos configs, CLI wiring, and the remote-protocol satellites."""

import json

import pytest

from repro.cli import build_parser, main
from repro.cluster import ACK_LEVELS, ClusterConfig, load_cluster_config
from repro.core import ConfigError, SourceConfig, generate_workload_trace
from repro.faults import (
    CLUSTER_ACTIONS,
    ClusterAction,
    ClusterFaultPlan,
    load_cluster_fault_plan,
)
from repro.kvstores import InMemoryStore
from repro.kvstores.remote import (
    RemoteStoreClient,
    RemoteStoreError,
    StoreServer,
)


@pytest.fixture(autouse=True)
def _guard(hang_guard):
    hang_guard(60)


class TestClusterConfig:
    def test_defaults_and_label(self):
        config = ClusterConfig()
        assert config.partitions == 3 and config.replicas == 1
        assert config.ack in ACK_LEVELS
        assert config.label == "3x2@all"
        assert ClusterConfig(partitions=4, replicas=0, ack="none").label == "4x1@none"

    def test_unknown_keys_rejected(self):
        with pytest.raises(ConfigError, match="unknown"):
            ClusterConfig.from_dict({"partitions": 2, "replicaz": 1})

    def test_invalid_values_rejected(self):
        with pytest.raises(ValueError):
            ClusterConfig(partitions=0)
        with pytest.raises(ValueError):
            ClusterConfig(replicas=-1)
        with pytest.raises(ValueError):
            ClusterConfig(ack="quorum")

    def test_roundtrips_through_dict(self):
        config = ClusterConfig(partitions=2, replicas=2, ack="one")
        assert ClusterConfig.from_dict(config.to_dict()) == config

    def test_shipped_config_loads(self):
        config = load_cluster_config("configs/cluster.json")
        assert config.partitions == 3 and config.ack == "all"


class TestChaosPlanConfig:
    def test_unknown_keys_rejected(self):
        with pytest.raises(ValueError, match="unknown"):
            ClusterFaultPlan.from_dict({"seed": 1, "kils": 2})
        with pytest.raises(ValueError, match="unknown"):
            ClusterAction.from_dict({"at": 1, "action": "kill", "victim": "p0r0"})

    def test_action_validation(self):
        with pytest.raises(ValueError):
            ClusterAction(at=-1, action="kill", target="p0r0")
        with pytest.raises(ValueError, match="unknown cluster action"):
            ClusterAction(at=0, action="explode", target="p0r0")
        assert set(CLUSTER_ACTIONS) == {"kill", "restart", "isolate", "heal"}

    def test_kill_window_validation(self):
        with pytest.raises(ValueError, match="kill_window"):
            ClusterFaultPlan(kill_window=(50, 10))

    def test_plan_roundtrips_through_dict(self):
        plan = ClusterFaultPlan(
            seed=3,
            actions=({"at": 5, "action": "kill", "target": "primary:0"},),
            random_kills=1,
            restart_after=10,
        )
        assert ClusterFaultPlan.from_dict(plan.to_dict()) == plan

    def test_shipped_chaos_plan_loads(self):
        plan = load_cluster_fault_plan("configs/chaos.json")
        assert plan.seed == 42
        assert [a.action for a in plan.actions] == ["kill", "kill", "restart"]


class TestCliWiring:
    def test_cluster_flags_parse(self):
        parser = build_parser()
        args = parser.parse_args(
            [
                "replay", "t.gdgt", "--store", "memory",
                "--cluster", "3", "--replicas", "2", "--ack", "one",
                "--chaos", "configs/chaos.json",
            ]
        )
        assert args.cluster == 3 and args.replicas == 2 and args.ack == "one"
        assert args.chaos == "configs/chaos.json"
        args = parser.parse_args(
            ["compare", "t.gdgt", "--cluster-config", "configs/cluster.json"]
        )
        assert args.cluster_config == "configs/cluster.json"

    @pytest.fixture(scope="class")
    def trace_file(self, tmp_path_factory):
        path = tmp_path_factory.mktemp("cli") / "t.gdgt"
        trace = generate_workload_trace(
            "tumbling-incremental", [SourceConfig(num_events=200, seed=3)]
        )
        trace.save(str(path))
        return str(path)

    def test_chaos_without_cluster_is_an_error(self, trace_file):
        with pytest.raises(SystemExit, match="cluster"):
            main(
                ["replay", trace_file, "--store", "memory",
                 "--chaos", "configs/chaos.json"]
            )

    def test_cluster_rejects_sharded_replay(self, trace_file):
        with pytest.raises(SystemExit):
            main(
                ["replay", trace_file, "--store", "memory",
                 "--cluster", "2", "--shards", "2"]
            )


class TestRemoteSatellites:
    def test_errors_carry_peer_address(self):
        """Satellite: every client-side failure names host:port, so a
        multi-endpoint cluster log reads unambiguously."""
        with StoreServer(InMemoryStore(), port=0) as server:
            host, port = server.address
            client = RemoteStoreClient(host, port, store_name="victim")
        # server is now stopped; the next request must fail with the peer
        with pytest.raises(RemoteStoreError) as excinfo:
            client.put(b"k", b"v")
        assert f"{host}:{port}" in str(excinfo.value)
        client.close()

    def test_port_zero_is_readable_before_serve(self):
        """Satellite: ``port=0`` binds at construction, so the chosen
        port is known before ``start()`` -- no sleep-and-probe races."""
        server = StoreServer(InMemoryStore(), port=0)
        try:
            assert server.port > 0
            chosen = server.port
            server.start()
            with RemoteStoreClient("127.0.0.1", chosen) as client:
                client.put(b"k", b"v")
                assert client.get(b"k") == b"v"
        finally:
            server.stop()

    def test_two_port_zero_servers_get_distinct_ports(self):
        a = StoreServer(InMemoryStore(), port=0)
        b = StoreServer(InMemoryStore(), port=0)
        try:
            assert a.port != b.port
        finally:
            a.stop()
            b.stop()


def test_cluster_config_json_schema_matches_loader(tmp_path):
    """A config written by hand with one typo fails loudly at load."""
    bad = tmp_path / "cluster.json"
    bad.write_text(json.dumps({"partitions": 2, "replicas": 1, "akk": "all"}))
    with pytest.raises(ConfigError, match="akk"):
        load_cluster_config(str(bad))
