"""Columnar trace engine: format v2 round-trips, v1 read-compat, and
equivalence between the columnar representation and the object API."""

import random
import struct

import hypothesis.strategies as st
import pytest
from hypothesis import given, settings

from repro.trace import (
    OPS_BY_CODE,
    AccessTrace,
    OpType,
    StateAccess,
    concat_traces,
    interleave_traces,
    shuffled_trace,
)

ACCESSES = st.lists(
    st.builds(
        StateAccess,
        op=st.sampled_from(list(OpType)),
        key=st.binary(min_size=0, max_size=33),  # includes empty + odd sizes
        value_size=st.integers(min_value=0, max_value=1 << 20),
        timestamp=st.integers(min_value=-(2 ** 40), max_value=2 ** 40),
    ),
    max_size=120,
)

SETTINGS = settings(max_examples=60, deadline=None)


def make_trace(n=64, distinct=7):
    trace = AccessTrace()
    ops = list(OpType)
    for i in range(n):
        trace.record(ops[i % 4], f"key-{i % distinct}".encode(), i % 50, i * 3)
    return trace


class TestV2RoundTrip:
    @given(accesses=ACCESSES)
    @SETTINGS
    def test_v2_roundtrip_preserves_accesses(self, accesses, tmp_path_factory):
        trace = AccessTrace(list(accesses))
        path = str(tmp_path_factory.mktemp("traces") / "t.trace")
        trace.save(path)
        loaded = AccessTrace.load(path)
        assert loaded.accesses == trace.accesses
        assert loaded.op_counts() == trace.op_counts()
        assert loaded.distinct_keys() == trace.distinct_keys()

    @given(accesses=ACCESSES)
    @SETTINGS
    def test_v1_write_then_read_compat(self, accesses, tmp_path_factory):
        trace = AccessTrace(list(accesses))
        path = str(tmp_path_factory.mktemp("traces") / "t.trace")
        trace.save(path, version=1)
        assert AccessTrace.load(path).accesses == trace.accesses

    def test_default_format_is_v2(self, tmp_path):
        path = str(tmp_path / "t.trace")
        make_trace().save(path)
        with open(path, "rb") as handle:
            header = handle.read(6)
        assert header[:4] == b"GDGT"
        assert struct.unpack_from("<H", header, 4)[0] == 2

    def test_empty_trace_both_versions(self, tmp_path):
        for version in (1, 2):
            path = str(tmp_path / f"empty{version}.trace")
            AccessTrace().save(path, version=version)
            assert len(AccessTrace.load(path)) == 0

    def test_empty_and_odd_size_keys(self, tmp_path):
        trace = AccessTrace()
        for key in (b"", b"x", b"abc", b"\x00" * 13, b"k" * 31):
            trace.record(OpType.PUT, key, 5, 1)
            trace.record(OpType.GET, key, 0, 2)
        path = str(tmp_path / "odd.trace")
        trace.save(path)
        loaded = AccessTrace.load(path)
        assert loaded.key_sequence() == trace.key_sequence()
        assert loaded.accesses == trace.accesses

    def test_unknown_version_rejected(self, tmp_path):
        path = tmp_path / "future.trace"
        path.write_bytes(b"GDGT" + struct.pack("<HQ", 99, 0))
        with pytest.raises(ValueError, match="unsupported trace version"):
            AccessTrace.load(str(path))

    def test_write_unknown_version_rejected(self, tmp_path):
        with pytest.raises(ValueError, match="cannot write"):
            make_trace().save(str(tmp_path / "t.trace"), version=3)

    def test_truncated_v2_file_rejected(self, tmp_path):
        path = str(tmp_path / "t.trace")
        make_trace(100).save(path)
        with open(path, "rb") as handle:
            data = handle.read()
        clipped = tmp_path / "clipped.trace"
        clipped.write_bytes(data[: len(data) - 16])
        with pytest.raises(ValueError, match="truncated"):
            AccessTrace.load(str(clipped))


class TestColumnarEquivalence:
    def test_iter_raw_matches_object_api(self):
        trace = make_trace(100)
        raw = list(trace.iter_raw())
        objs = trace.accesses
        assert len(raw) == len(objs)
        for (code, key, size), access in zip(raw, objs):
            assert OPS_BY_CODE[code] is access.op
            assert key == access.key
            assert size == access.value_size

    def test_columns_align_with_accesses(self):
        trace = make_trace(60)
        keys = trace.unique_keys()
        for i, access in enumerate(trace):
            assert trace.op_codes[i] == {"get": 0, "put": 1, "merge": 2, "delete": 3}[
                access.op.value
            ]
            assert keys[trace.key_ids[i]] == access.key
            assert trace.value_sizes[i] == access.value_size
            assert trace.timestamps[i] == access.timestamp

    def test_interned_keys_are_shared_objects(self):
        trace = make_trace(40, distinct=3)
        seq = trace.key_sequence()
        firsts = {}
        for key in seq:
            if key not in firsts:
                firsts[key] = key
            else:
                assert firsts[key] is key  # same interned bytes object

    def test_select_gathers_rows_in_order(self):
        trace = make_trace(30)
        picked = trace.select([5, 1, 20])
        assert picked.accesses == [trace[5], trace[1], trace[20]]

    def test_slice_matches_materialized_slice(self):
        trace = make_trace(30)
        assert trace[4:17].accesses == trace.accesses[4:17]
        assert trace[::3].accesses == trace.accesses[::3]

    def test_extend_remaps_key_ids_across_pools(self):
        a = make_trace(20, distinct=4)
        b = AccessTrace()
        b.record(OpType.PUT, b"key-1", 9, 9)  # shared with a's pool
        b.record(OpType.PUT, b"only-in-b", 9, 9)
        expected = a.accesses + b.accesses
        a.extend(b)
        assert a.accesses == expected
        assert a.distinct_keys() == 5

    def test_interleave_remaps_key_ids(self):
        a = AccessTrace([StateAccess(OpType.GET, b"shared"),
                         StateAccess(OpType.GET, b"a-only")])
        b = AccessTrace([StateAccess(OpType.PUT, b"shared", 3),
                         StateAccess(OpType.PUT, b"b-only", 3)])
        merged = interleave_traces([a, b])
        assert [x.key for x in merged] == [b"shared", b"shared", b"a-only", b"b-only"]
        assert merged.distinct_keys() == 3

    def test_shuffle_is_gather_of_same_permutation(self):
        trace = make_trace(200)
        shuffled = shuffled_trace(trace, random.Random(7))
        indices = list(range(200))
        random.Random(7).shuffle(indices)
        assert shuffled.accesses == [trace[i] for i in indices]

    def test_concat_equivalence(self):
        parts = [make_trace(11), make_trace(5), AccessTrace()]
        merged = concat_traces(parts)
        assert merged.accesses == sum((p.accesses for p in parts), [])


class TestMemoryFootprint:
    def test_columnar_bytes_per_op_is_small(self):
        trace = make_trace(10_000, distinct=100)
        # 17 bytes of columns per op + the (tiny, amortized) key pool;
        # the seed list-of-dataclass layout cost ~200 bytes per op.
        assert trace.nbytes / len(trace) < 25

    def test_nbytes_grows_with_ops_not_objects(self):
        small, large = make_trace(1000), make_trace(4000)
        assert large.nbytes < 4.5 * small.nbytes


class TestSharedMemoryImage:
    """write_image / attach: the v2 file format doubling as the
    zero-copy shared-memory wire format for multi-process replay."""

    def test_round_trip_preserves_accesses(self):
        trace = make_trace(500)
        buffer = bytearray(trace.image_nbytes())
        written = trace.write_image(buffer)
        assert written == trace.image_nbytes()
        attached = AccessTrace.attach(buffer)
        assert list(attached) == list(trace)

    @SETTINGS
    @given(ACCESSES)
    def test_round_trip_any_trace(self, accesses):
        trace = AccessTrace()
        for access in accesses:
            trace.record(access.op, access.key, access.value_size,
                         access.timestamp)
        buffer = bytearray(trace.image_nbytes())
        trace.write_image(buffer)
        attached = AccessTrace.attach(buffer)
        assert list(attached) == list(trace)
        assert attached.op_counts() == trace.op_counts()

    def test_image_matches_file_format(self, tmp_path):
        """A saved v2 file IS a valid image and vice versa."""
        trace = make_trace(200)
        path = tmp_path / "trace.bin"
        trace.save(str(path))
        attached = AccessTrace.attach(path.read_bytes())
        assert list(attached) == list(trace)

    def test_attach_rejects_bad_magic(self):
        with pytest.raises(ValueError, match="trace image"):
            AccessTrace.attach(b"\x00" * 64)

    def test_attach_rejects_v1(self):
        trace = make_trace(10)
        buffer = bytearray(trace.image_nbytes())
        trace.write_image(buffer)
        struct.pack_into("<H", buffer, 4, 1)  # forge the version field
        with pytest.raises(ValueError, match="version"):
            AccessTrace.attach(bytes(buffer))

    def test_select_detaches_from_buffer(self):
        """select() on an attached trace must copy: workers gather
        their shard then drop every view before closing the segment."""
        trace = make_trace(300)
        buffer = bytearray(trace.image_nbytes())
        trace.write_image(buffer)
        attached = AccessTrace.attach(buffer)
        shard = attached.select(range(0, len(trace), 2))
        del attached
        buffer[:] = b"\x00" * len(buffer)  # clobber the "segment"
        assert list(shard) == list(trace)[::2]
