"""Tests for the performance evaluator."""

from repro.core import (
    DEFAULT_STORES,
    GadgetConfig,
    PerformanceEvaluator,
    SourceConfig,
    generate_workload_trace,
)
from repro.trace import AccessTrace, OpType


def small_trace(events=300):
    return generate_workload_trace(
        "tumbling-incremental", [SourceConfig(num_events=events)]
    )


class TestEvaluate:
    def test_rows_for_all_stores(self):
        rows = PerformanceEvaluator(stores=("memory", "faster")).evaluate(
            "w", small_trace()
        )
        assert [r.store for r in rows] == ["memory", "faster"]
        assert all(r.throughput_kops > 0 for r in rows)

    def test_default_store_lineup(self):
        assert DEFAULT_STORES == ("rocksdb", "lethe", "faster", "berkeleydb")

    def test_store_configs_forwarded(self):
        evaluator = PerformanceEvaluator(
            stores=("rocksdb",),
            store_configs={"rocksdb": {"write_buffer_size": 2048}},
        )
        connector = evaluator._connector("rocksdb")
        assert connector.store.config.write_buffer_size == 2048

    def test_evaluate_matrix(self):
        traces = {"a": small_trace(100), "b": small_trace(100)}
        rows = PerformanceEvaluator(stores=("memory",)).evaluate_matrix(traces)
        assert {(r.workload, r.store) for r in rows} == {
            ("a", "memory"), ("b", "memory"),
        }

    def test_row_fields(self):
        row = PerformanceEvaluator(stores=("memory",)).evaluate("w", small_trace())[0]
        assert row.workload == "w"
        assert row.p50_us <= row.p999_us


class TestConcurrent:
    def test_interleaved_concurrent(self):
        traces = [small_trace(200), small_trace(200)]
        result = PerformanceEvaluator().evaluate_concurrent("rocksdb", traces)
        assert result.operations == sum(len(t) for t in traces)

    def test_interleaving_preserves_per_trace_order(self):
        from repro.trace import interleave_traces

        a = AccessTrace()
        for i in range(5):
            a.record(OpType.PUT, f"a{i}".encode())
        b = AccessTrace()
        for i in range(3):
            b.record(OpType.PUT, f"b{i}".encode())
        merged = interleave_traces([a, b])
        a_keys = [x.key for x in merged if x.key.startswith(b"a")]
        assert a_keys == [x.key for x in a]

    def test_threaded_concurrent(self):
        traces = [small_trace(150), small_trace(150)]
        results = PerformanceEvaluator().evaluate_concurrent_threads(
            "rocksdb", traces
        )
        assert len(results) == 2
        assert all(r.operations == len(t) for r, t in zip(results, traces))
