"""CLI integrity surface: scrub command, --disk-faults, --crash-at guards."""

import json

import pytest

from repro.cli import main

PLAN = {
    "seed": 7,
    "bit_flip_rate": 1.0,
    "bits_per_flip": 3,
    "targets": ["sst-*"],
}


@pytest.fixture(scope="module")
def trace_path(tmp_path_factory):
    path = str(tmp_path_factory.mktemp("traces") / "t.gdgt")
    main([
        "generate", "-w", "tumbling-incremental", "-o", path,
        "--events", "600",
    ])
    return path


@pytest.fixture
def plan_path(tmp_path):
    path = tmp_path / "faults.json"
    path.write_text(json.dumps(PLAN))
    return str(path)


class TestScrubCommand:
    def test_clean_scrub_exits_zero(self, trace_path, capsys):
        capsys.readouterr()
        assert main(["scrub", trace_path, "--stores", "rocksdb"]) == 0
        out = capsys.readouterr().out
        assert "detected" in out
        assert "rocksdb" in out

    def test_faulted_scrub_exits_nonzero(self, trace_path, plan_path, capsys):
        capsys.readouterr()
        code = main([
            "scrub", trace_path, "--stores", "rocksdb",
            "--disk-faults", plan_path,
        ])
        assert code == 2
        out = capsys.readouterr().out
        assert "injected" in out

    def test_default_store_set(self, trace_path, capsys):
        capsys.readouterr()
        assert main(["scrub", trace_path]) == 0
        out = capsys.readouterr().out
        for name in ("rocksdb", "lethe", "faster", "berkeleydb"):
            assert name in out

    def test_checksum_none_still_scrubs(self, trace_path, capsys):
        capsys.readouterr()
        assert main([
            "scrub", trace_path, "--stores", "rocksdb", "--checksum", "none",
        ]) == 0


class TestCompareDiskFaults:
    def test_integrity_table(self, trace_path, plan_path, capsys):
        capsys.readouterr()
        code = main([
            "compare", trace_path, "--stores", "rocksdb", "lethe",
            "--disk-faults", plan_path,
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "corrupt found" in out
        assert "repaired" in out
        assert "scrub ms" in out

    @pytest.mark.filterwarnings("ignore:WAL corruption")
    def test_crash_at_with_disk_faults(self, trace_path, tmp_path, capsys):
        plan = tmp_path / "wal.json"
        plan.write_text(json.dumps({
            "seed": 3, "torn_write_rate": 1.0, "targets": ["wal-current"],
        }))
        capsys.readouterr()
        code = main([
            "compare", trace_path, "--stores", "rocksdb",
            "--crash-at", "900", "--disk-faults", str(plan),
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "corrupt found" in out


class TestCrashRecoveryGuards:
    def test_compare_all_non_recoverable_fails(self, trace_path, capsys):
        capsys.readouterr()
        code = main([
            "compare", trace_path, "--stores", "berkeleydb", "memory",
            "--crash-at", "500",
        ])
        assert code == 2
        err = capsys.readouterr().err
        assert "crash recovery" in err

    def test_compare_skips_non_recoverable(self, trace_path, capsys):
        capsys.readouterr()
        code = main([
            "compare", trace_path, "--stores", "rocksdb", "berkeleydb",
            "--crash-at", "500",
        ])
        assert code == 0
        captured = capsys.readouterr()
        assert "skipping" in captured.err
        assert "berkeleydb" in captured.err
        assert "rocksdb" in captured.out

    def test_replay_non_recoverable_fails(self, trace_path, capsys):
        capsys.readouterr()
        code = main([
            "replay", trace_path, "--store", "berkeleydb",
            "--crash-at", "500",
        ])
        assert code == 2
        assert "crash recovery" in capsys.readouterr().err
