"""Micro-batched replay: state identity with per-op replay, honest
latency accounting, and batch plumbing through faults, sharding, the
evaluator, and the CLI."""

import pytest

from repro.core import (
    PerformanceEvaluator,
    SourceConfig,
    TraceReplayer,
    generate_workload_trace,
)
from repro.core.replayer import ShardedReplayer
from repro.cli import main
from repro.faults import FaultPlan, RetryPolicy
from repro.faults.recovery import evaluate_crash_recovery
from repro.kvstores import create_connector


def small_trace(n=400, workload="tumbling-incremental"):
    return generate_workload_trace(workload, [SourceConfig(num_events=n)])


def final_state(connector, trace):
    return {key: connector.get(key) for key in trace.unique_keys()}


class TestStateIdentity:
    @pytest.mark.parametrize("store", ["memory", "rocksdb", "faster"])
    @pytest.mark.parametrize("batch_size", [2, 7, 64])
    def test_batched_replay_matches_per_op(self, store, batch_size):
        trace = small_trace()
        per_op = create_connector(store)
        batched = create_connector(store)
        TraceReplayer(per_op).replay(trace)
        TraceReplayer(batched, batch_size=batch_size).replay(trace)
        assert final_state(batched, trace) == final_state(per_op, trace)
        per_op.close()
        batched.close()

    def test_batch_size_one_equals_none(self):
        trace = small_trace(200)
        a, b = create_connector("memory"), create_connector("memory")
        result_a = TraceReplayer(a, batch_size=None).replay(trace)
        result_b = TraceReplayer(b, batch_size=1).replay(trace)
        assert result_a.operations == result_b.operations == len(trace)
        assert final_state(a, trace) == final_state(b, trace)

    def test_batch_size_zero_rejected(self):
        with pytest.raises(ValueError):
            TraceReplayer(create_connector("memory"), batch_size=0)


class TestBatchedLatency:
    def test_percentiles_nonzero_and_monotone(self):
        connector = create_connector("memory")
        trace = small_trace(1000)
        result = TraceReplayer(connector, batch_size=16).replay(trace)
        summary = result.summary()
        assert 0 < summary["p50_us"] <= summary["p99_us"] <= summary["p99.9_us"]
        assert result.operations == len(trace)
        assert len(result.all_latencies()) == result.operations

    def test_latencies_never_negative(self):
        connector = create_connector("rocksdb", write_buffer_size=2048)
        result = TraceReplayer(connector, batch_size=32).replay(small_trace(1500))
        assert connector.store.stats.flushes > 0
        assert all(v >= 0 for v in result.all_latencies())

    def test_batched_with_service_rate(self):
        connector = create_connector("memory")
        result = TraceReplayer(
            connector, service_rate=50_000, batch_size=8
        ).replay(small_trace(100))
        assert result.operations == 200
        assert all(v >= 0 for v in result.all_latencies())


class TestBatchedFaults:
    PLAN = FaultPlan(seed=7, transient_error_rate=0.02, error_burst=2)

    def test_faults_state_parity_with_retry(self):
        trace = small_trace(300)
        policy = RetryPolicy(max_attempts=5, base_delay_s=0.0, jitter=0.0)
        per_op = create_connector("memory")
        batched = create_connector("memory")
        r1 = TraceReplayer(
            per_op, fault_plan=self.PLAN, retry_policy=policy
        ).replay(trace)
        r2 = TraceReplayer(
            batched, fault_plan=self.PLAN, retry_policy=policy, batch_size=16
        ).replay(trace)
        # The schedule draws one verdict per logical op regardless of
        # batching, and the retry policy outlasts every burst: both
        # replays see the same faults and absorb all of them.
        assert r1.failed_ops == r2.failed_ops == 0
        assert r1.injected_faults == r2.injected_faults > 0
        assert final_state(batched, trace) == final_state(per_op, trace)

    def test_faults_without_retry_counts_failed_ops(self):
        trace = small_trace(300)
        per_op = create_connector("memory")
        batched = create_connector("memory")
        r1 = TraceReplayer(per_op, fault_plan=self.PLAN).replay(trace)
        r2 = TraceReplayer(batched, fault_plan=self.PLAN, batch_size=16).replay(trace)
        assert r1.failed_ops == r2.failed_ops > 0
        assert final_state(batched, trace) == final_state(per_op, trace)

    def test_crash_recovery_with_batching(self):
        trace = small_trace(400)
        result = evaluate_crash_recovery(
            "rocksdb", trace, crash_at=300, batch_size=16
        )
        assert result.recovered_ok
        assert result.mismatches == 0
        assert result.operations == len(trace)


class TestBatchedSharding:
    def test_sharded_batched_matches_per_op(self):
        trace = small_trace(500)
        per_op = create_connector("memory")
        TraceReplayer(per_op).replay(trace)
        sharded = ShardedReplayer(
            lambda: create_connector("memory"), num_workers=3, batch_size=8
        )
        result = sharded.replay(trace)
        assert result.operations == len(trace)
        merged = {}
        for connector in sharded.connectors:
            for key in trace.unique_keys():
                value = connector.get(key)
                if value is not None:
                    merged[key] = value
        expected = {
            k: v for k, v in final_state(per_op, trace).items() if v is not None
        }
        assert merged == expected


class TestEvaluatorBatching:
    def test_rows_carry_batch_size(self):
        trace = small_trace(200)
        evaluator = PerformanceEvaluator(stores=("memory",))
        row = evaluator.evaluate("w", trace, batch_size=32)[0]
        assert row.batch_size == 32
        assert row.throughput_kops > 0
        default_row = evaluator.evaluate("w", trace)[0]
        assert default_row.batch_size == 1


class TestCLIBatching:
    @pytest.fixture
    def trace_path(self, tmp_path):
        path = str(tmp_path / "t.gdgt")
        assert main([
            "generate", "-w", "tumbling-incremental", "-o", path,
            "--events", "300",
        ]) == 0
        return path

    def test_replay_with_batch(self, trace_path, capsys):
        assert main(["replay", trace_path, "--store", "memory",
                     "--batch", "16"]) == 0
        out = capsys.readouterr().out
        assert "batch size" in out
        assert "16" in out

    def test_replay_batch_with_crash_at(self, trace_path, capsys):
        assert main(["replay", trace_path, "--store", "rocksdb",
                     "--batch", "8", "--crash-at", "200"]) == 0
        assert "recover" in capsys.readouterr().out.lower()

    def test_compare_with_batch_column(self, trace_path, capsys):
        assert main(["compare", trace_path, "--stores", "memory", "faster",
                     "--batch", "8"]) == 0
        out = capsys.readouterr().out
        assert "batch" in out

    def test_replay_sharded_with_batch(self, trace_path, capsys):
        assert main(["replay", trace_path, "--store", "memory",
                     "--shards", "2", "--batch", "8"]) == 0
        assert "batch size" in capsys.readouterr().out

    def test_batch_rejects_nonpositive(self, trace_path):
        with pytest.raises(SystemExit):
            main(["replay", trace_path, "--batch", "0"])
