"""Tests for the command-line interface."""

import pytest

from repro.cli import main
from repro.trace import AccessTrace


class TestWorkloadsCommand:
    def test_lists_all_eleven(self, capsys):
        assert main(["workloads"]) == 0
        out = capsys.readouterr().out
        assert "tumbling-incremental" in out
        assert "continuous-join" in out
        assert out.count("\n") >= 12


class TestGenerateCommand:
    def test_synthetic_source(self, tmp_path, capsys):
        path = str(tmp_path / "t.gdgt")
        code = main([
            "generate", "-w", "tumbling-incremental", "-o", path,
            "--events", "500",
        ])
        assert code == 0
        trace = AccessTrace.load(path)
        assert len(trace) >= 1000
        assert "composition" in capsys.readouterr().out

    def test_borg_dataset(self, tmp_path, capsys):
        path = str(tmp_path / "t.gdgt")
        main([
            "generate", "-w", "continuous-aggregation", "-o", path,
            "--dataset", "borg", "--events", "500",
        ])
        assert len(AccessTrace.load(path)) == 1000

    def test_join_workload_gets_two_sources(self, tmp_path):
        path = str(tmp_path / "t.gdgt")
        main([
            "generate", "-w", "interval-join", "-o", path,
            "--dataset", "taxi", "--events", "500",
        ])
        assert len(AccessTrace.load(path)) > 0

    def test_azure_rejects_joins(self, tmp_path):
        with pytest.raises(SystemExit):
            main([
                "generate", "-w", "interval-join",
                "-o", str(tmp_path / "t.gdgt"),
                "--dataset", "azure", "--events", "500",
            ])

    def test_unknown_workload_rejected(self, tmp_path):
        with pytest.raises(SystemExit):
            main(["generate", "-w", "nope", "-o", str(tmp_path / "t")])


class TestAnalyzeCommand:
    @pytest.fixture
    def trace_path(self, tmp_path):
        path = str(tmp_path / "t.gdgt")
        main([
            "generate", "-w", "tumbling-incremental", "-o", path,
            "--events", "800",
        ])
        return path

    def test_analysis_report(self, trace_path, capsys):
        capsys.readouterr()
        assert main(["analyze", trace_path]) == 0
        out = capsys.readouterr().out
        assert "avg stack distance" in out
        assert "working set" in out
        assert "TTL" in out

    def test_cache_recommendation_shown(self, trace_path, capsys):
        capsys.readouterr()
        main(["analyze", trace_path, "--target-hit-ratio", "0.5"])
        assert "cache for 50% hits" in capsys.readouterr().out


class TestReplayAndCompare:
    @pytest.fixture
    def trace_path(self, tmp_path):
        path = str(tmp_path / "t.gdgt")
        main([
            "generate", "-w", "continuous-aggregation", "-o", path,
            "--events", "500",
        ])
        return path

    def test_replay(self, trace_path, capsys):
        capsys.readouterr()
        assert main(["replay", trace_path, "--store", "faster"]) == 0
        out = capsys.readouterr().out
        assert "throughput" in out

    def test_replay_unknown_store(self, trace_path):
        with pytest.raises(SystemExit):
            main(["replay", trace_path, "--store", "leveldb"])

    def test_compare(self, trace_path, capsys):
        capsys.readouterr()
        assert main([
            "compare", trace_path, "--stores", "memory", "faster",
        ]) == 0
        out = capsys.readouterr().out
        assert "best throughput" in out
        assert "faster" in out


class TestCompactionAxis:
    @pytest.fixture
    def trace_path(self, tmp_path):
        path = str(tmp_path / "t.gdgt")
        main([
            "generate", "-w", "continuous-aggregation", "-o", path,
            "--events", "500",
        ])
        return path

    @pytest.fixture
    def config_path(self, tmp_path):
        import json

        path = tmp_path / "compaction.json"
        path.write_text(json.dumps({
            "policies": ["leveled", "tiered"],
            "background": True,
            "stores": ["rocksdb"],
            "store_overrides": {"write_buffer_size": 4096},
        }))
        return str(path)

    def test_replay_with_background_compaction(self, trace_path, capsys):
        capsys.readouterr()
        assert main([
            "replay", trace_path, "--store", "rocksdb",
            "--compaction", "tiered", "--background",
        ]) == 0
        out = capsys.readouterr().out
        assert "tiered (background)" in out
        assert "write stalls" in out
        assert "stall time (ms)" in out

    def test_replay_compaction_rejects_non_lsm_store(self, trace_path):
        with pytest.raises(SystemExit):
            main([
                "replay", trace_path, "--store", "memory",
                "--compaction", "tiered",
            ])

    def test_compare_compaction_axis(self, trace_path, capsys):
        capsys.readouterr()
        assert main([
            "compare", trace_path, "--stores", "rocksdb",
            "--compaction", "leveled", "tiered",
        ]) == 0
        out = capsys.readouterr().out
        assert "compaction-policy comparison" in out
        assert "leveled" in out and "tiered" in out

    def test_compare_compaction_config_file(self, trace_path, config_path, capsys):
        capsys.readouterr()
        assert main([
            "compare", trace_path, "--compaction-config", config_path,
        ]) == 0
        out = capsys.readouterr().out
        assert "background maintenance" in out
        assert "stalls" in out

    def test_checked_in_config_is_valid(self, trace_path, capsys):
        import os

        repo_root = os.path.join(os.path.dirname(__file__), "..", "..")
        config = os.path.join(repo_root, "configs", "compaction.json")
        capsys.readouterr()
        assert main([
            "compare", trace_path, "--compaction-config", config,
        ]) == 0
        assert "compaction-policy comparison" in capsys.readouterr().out

    def test_compare_config_rejects_unknown_keys(self, trace_path, tmp_path):
        bad = tmp_path / "bad.json"
        bad.write_text('{"polices": ["leveled"]}')  # typo'd key
        with pytest.raises(SystemExit):
            main(["compare", trace_path, "--compaction-config", str(bad)])
