"""Direct unit tests for the Gadget operator models (beyond fidelity)."""

import pytest

from repro.core import (
    ContinuousAggregationModel,
    ContinuousJoinModel,
    Driver,
    GadgetConfig,
    IntervalJoinModel,
    SessionWindowModel,
    SourceConfig,
    WindowJoinModel,
    sliding_window_model,
    tumbling_window_model,
)
from repro.events import Event
from repro.streaming.windows import SlidingWindows, TumblingWindows
from repro.trace import OpType


def drive(model, *streams, watermark_frequency=100, interleave="time"):
    config = GadgetConfig(
        sources=[SourceConfig(watermark_frequency=watermark_frequency)],
        interleave=interleave,
    )
    driver = Driver(model, list(streams), config)
    return driver.run(), driver


def ev(key, t, size=8, kind=""):
    return Event(key, t, size, kind)


class TestWindowModels:
    def test_tumbling_ops(self):
        trace, _ = drive(
            tumbling_window_model(5000), [ev(b"k", 100), ev(b"k", 6000)]
        )
        ops = [a.op for a in trace]
        # event1 get/put, event2 get/put, window-1 fire get/delete
        assert ops.count(OpType.GET) == 3
        assert ops.count(OpType.DELETE) == 1

    def test_sliding_assigns_multiple(self):
        trace, _ = drive(sliding_window_model(5000, 1000), [ev(b"k", 4500)])
        assert trace.op_counts()[OpType.PUT] == 5

    def test_holistic_uses_merge(self):
        trace, _ = drive(
            tumbling_window_model(5000, holistic=True), [ev(b"k", 1)]
        )
        assert trace.op_counts()[OpType.MERGE] == 1
        assert trace.op_counts()[OpType.GET] == 0

    def test_value_size_from_event(self):
        trace, _ = drive(tumbling_window_model(5000), [ev(b"k", 1, size=77)])
        puts = [a for a in trace if a.op is OpType.PUT]
        assert puts[0].value_size == 77


class TestSessionModel:
    def test_index_read_per_event(self):
        trace, _ = drive(SessionWindowModel(1000), [ev(b"k", 1), ev(b"k", 500)])
        index_reads = [a for a in trace if a.key.endswith(b"|ws")]
        assert len(index_reads) == 2

    def test_session_extension_reschedules(self):
        events = [ev(b"k", 0), ev(b"k", 900), ev(b"k", 5000)]
        trace, driver = drive(SessionWindowModel(1000), events)
        model = driver.model
        # Two sessions total: [0, 1900) fired, [5000, 6000) open at end.
        deletes = [a for a in trace if a.op is OpType.DELETE]
        assert len(deletes) >= 1

    def test_merge_counter(self):
        model = SessionWindowModel(1000)
        # The bridging event must be *delivered* last (out of order), so
        # preserve stream order with round-robin interleaving.
        events = [ev(b"k", 0), ev(b"k", 1800), ev(b"k", 900)]
        drive(model, events, watermark_frequency=1000,
              interleave="round_robin")
        assert model.session_merges == 1


class TestJoinModels:
    def test_interval_probe_hits_only_live_buckets(self):
        model = IntervalJoinModel(1000, 3000, bucket_ms=1000)
        left = [ev(b"k", 1000)]
        right = [ev(b"k", 3000)]
        trace, _ = drive(model, left, right)
        gets = [a for a in trace if a.op is OpType.GET]
        # own-buffer get x2 plus one successful probe
        assert len(gets) == 3

    def test_interval_no_probe_without_other_side(self):
        model = IntervalJoinModel(1000, 3000)
        trace, _ = drive(model, [ev(b"k", 1000)], [])
        assert trace.op_counts()[OpType.GET] == 1  # own buffer only

    def test_window_join_paired_termination(self):
        model = WindowJoinModel(TumblingWindows(5000))
        left = [ev(b"k", 100)]
        right = []
        trace, _ = drive(model, left, right)
        # Closing watermark can't pass the window end (max ts 100), so
        # nothing fires -- only the merge is present.
        assert trace.op_counts()[OpType.MERGE] == 1

    def test_window_join_fire_covers_both_sides(self):
        model = WindowJoinModel(TumblingWindows(5000))
        left = [ev(b"k", 100), ev(b"k", 6000)]
        trace, _ = drive(model, left, [])
        counts = trace.op_counts()
        assert counts[OpType.GET] == 2
        assert counts[OpType.DELETE] == 2

    def test_continuous_join_invalidation(self):
        model = ContinuousJoinModel({"end"})
        left = [ev(b"k", 1), ev(b"k", 3, kind="end")]
        right = [ev(b"k", 2)]
        trace, _ = drive(model, left, right)
        counts = trace.op_counts()
        assert counts[OpType.DELETE] == 2  # both sides cleaned

    def test_continuous_join_put_then_merge(self):
        model = ContinuousJoinModel({"end"})
        left = [ev(b"k", 1), ev(b"k", 2)]
        trace, _ = drive(model, left, [])
        counts = trace.op_counts()
        assert counts[OpType.PUT] == 1
        assert counts[OpType.MERGE] == 1


class TestAggregationModel:
    def test_never_expires(self):
        events = [ev(b"k", t) for t in range(1, 500)]
        trace, driver = drive(ContinuousAggregationModel(), events)
        assert trace.op_counts()[OpType.DELETE] == 0
        assert b"k" in driver.machines

    def test_ignores_watermark_lateness(self):
        # Ties with the watermark are still processed (no window
        # semantics), matching the engine's aggregation operator.
        events = [ev(b"k", 1) for _ in range(150)]
        trace, driver = drive(ContinuousAggregationModel(), events,
                              watermark_frequency=50)
        assert driver.dropped_late_events == 0
        assert len(trace) == 300
