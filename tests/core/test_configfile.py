"""Tests for JSON configuration-file loading."""

import json

import pytest

from repro.core.configfile import (
    ConfigError,
    example_config,
    gadget_from_config,
    load_config,
    parse_config,
    parse_source,
)


def write_config(tmp_path, data):
    path = tmp_path / "config.json"
    path.write_text(json.dumps(data))
    return str(path)


class TestParseSource:
    def test_defaults(self):
        source = parse_source({})
        assert source.num_events == 100_000

    def test_nested_sections(self):
        source = parse_source(
            {
                "num_events": 50,
                "arrivals": {"process": "constant", "mean_interarrival_ms": 5},
                "keys": {"num_keys": 7, "distribution": "uniform"},
                "values": {"size": 99},
            }
        )
        assert source.arrivals.process == "constant"
        assert source.keys.num_keys == 7
        assert source.values.size == 99

    def test_unknown_source_option(self):
        with pytest.raises(ConfigError, match="unknown source option"):
            parse_source({"num_event": 5})  # typo

    def test_unknown_nested_option(self):
        with pytest.raises(ConfigError, match="unknown keys option"):
            parse_source({"keys": {"cardinality": 5}})

    def test_ecdf_points_coerced_to_tuples(self):
        source = parse_source(
            {"keys": {"distribution": "ecdf", "ecdf_points": [[0.5, 0], [1.0, 1]]}}
        )
        assert source.keys.ecdf_points == [(0.5, 0), (1.0, 1)]


class TestParseConfig:
    def test_minimal(self):
        workload, config = parse_config({"workload": "continuous-aggregation"})
        assert workload == "continuous-aggregation"
        assert len(config.sources) == 1

    def test_missing_workload(self):
        with pytest.raises(ConfigError, match="requires a 'workload'"):
            parse_config({})

    def test_unknown_workload(self):
        with pytest.raises(ConfigError, match="unknown workload"):
            parse_config({"workload": "quantum-join"})

    def test_source_count_enforced(self):
        with pytest.raises(ConfigError, match="needs 2 source"):
            parse_config({"workload": "interval-join", "sources": [{}]})

    def test_join_with_two_sources(self):
        workload, config = parse_config(
            {"workload": "interval-join", "sources": [{}, {}]}
        )
        assert len(config.sources) == 2

    def test_unknown_top_level(self):
        with pytest.raises(ConfigError, match="top-level"):
            parse_config({"workload": "continuous-aggregation", "speed": 11})

    def test_example_config_is_valid(self):
        workload, config = parse_config(example_config())
        assert workload == "tumbling-incremental"


class TestLoadAndRun:
    def test_load_from_file(self, tmp_path):
        path = write_config(tmp_path, example_config())
        workload, config = load_config(path)
        assert config.sources[0].num_events == 10_000

    def test_invalid_json(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("{nope")
        with pytest.raises(ConfigError, match="not valid JSON"):
            load_config(str(path))

    def test_gadget_from_config_generates(self, tmp_path):
        data = example_config()
        data["sources"][0]["num_events"] = 500
        path = write_config(tmp_path, data)
        trace = gadget_from_config(path).generate()
        assert len(trace) > 900

    def test_cli_generate_with_config(self, tmp_path, capsys):
        from repro.cli import main
        from repro.trace import AccessTrace

        data = example_config()
        data["sources"][0]["num_events"] = 300
        config_path = write_config(tmp_path, data)
        out_path = str(tmp_path / "trace.gdgt")
        assert main(["generate", "--config", config_path, "-o", out_path]) == 0
        assert len(AccessTrace.load(out_path)) > 0
