"""Tests for the workload registry, harness facade, and replay path."""

import pytest

from repro.core import (
    Gadget,
    GadgetConfig,
    SourceConfig,
    TraceReplayer,
    WORKLOAD_NAMES,
    WORKLOADS,
    generate_workload_trace,
    make_workload,
    synthesize_value,
)
from repro.events import Event
from repro.kvstores import create_connector
from repro.trace import OpType


class TestWorkloadRegistry:
    def test_eleven_workloads(self):
        assert len(WORKLOAD_NAMES) == 11

    def test_all_instantiable(self):
        for name in WORKLOAD_NAMES:
            model = make_workload(name)
            assert model.num_inputs in (1, 2)

    def test_unknown_workload(self):
        with pytest.raises(ValueError, match="unknown workload"):
            make_workload("bogus")

    def test_specs_have_descriptions(self):
        for spec in WORKLOADS.values():
            assert spec.description

    def test_fresh_instance_per_call(self):
        assert make_workload("session-incremental") is not make_workload(
            "session-incremental"
        )


class TestGadgetFacade:
    def test_generate_with_synthetic_source(self):
        gadget = Gadget(
            "continuous-aggregation",
            [SourceConfig(num_events=100)],
        )
        trace = gadget.generate()
        assert len(trace) == 200

    def test_generate_with_event_list_source(self):
        events = [Event(b"k", t) for t in range(1, 50)]
        trace = Gadget("continuous-aggregation", [events]).generate()
        assert len(trace) == 98

    def test_two_input_workload(self):
        left = [Event(b"k", t, kind="x") for t in range(1, 50)]
        right = [Event(b"k", t, kind="y") for t in range(5, 55)]
        trace = Gadget(
            "tumbling-join", [left, right], GadgetConfig(interleave="time")
        ).generate()
        assert len(trace) > 0

    def test_custom_model_instance(self):
        from repro.core.operators.windows import tumbling_window_model

        model = tumbling_window_model(1000)
        gadget = Gadget(model, [SourceConfig(num_events=10)])
        assert gadget.model is model
        gadget.generate()

    def test_driver_property_requires_run(self):
        gadget = Gadget("continuous-aggregation", [SourceConfig(num_events=1)])
        with pytest.raises(RuntimeError):
            _ = gadget.driver

    def test_save_trace(self, tmp_path):
        from repro.trace import AccessTrace

        path = str(tmp_path / "w.trace")
        gadget = Gadget("continuous-aggregation", [SourceConfig(num_events=20)])
        trace = gadget.save_trace(path)
        assert AccessTrace.load(path).accesses == trace.accesses

    def test_run_online(self):
        connector = create_connector("memory")
        gadget = Gadget("continuous-aggregation", [SourceConfig(num_events=50)])
        result = gadget.run_online(connector)
        assert result.operations == 100
        assert result.throughput_ops > 0

    @pytest.mark.parametrize("name", [n for n in WORKLOAD_NAMES])
    def test_every_workload_generates_nonempty_trace(self, name, borg_streams):
        tasks, jobs = borg_streams
        spec = WORKLOADS[name]
        sources = [tasks[:1500]] if spec.num_inputs == 1 else [tasks[:1500], jobs[:500]]
        trace = generate_workload_trace(name, sources, GadgetConfig(interleave="time"))
        assert len(trace) > 0


class TestReplayer:
    def make_trace(self):
        return generate_workload_trace(
            "tumbling-incremental", [SourceConfig(num_events=200)]
        )

    def test_replay_counts_all_ops(self):
        trace = self.make_trace()
        result = TraceReplayer(create_connector("memory")).replay(trace)
        assert result.operations == len(trace)

    def test_latencies_collected_per_op(self):
        trace = self.make_trace()
        result = TraceReplayer(create_connector("memory")).replay(trace)
        assert len(result.all_latencies()) == len(trace)
        assert result.latencies_ns[OpType.GET]

    def test_percentiles_monotone(self):
        trace = self.make_trace()
        result = TraceReplayer(create_connector("memory")).replay(trace)
        assert result.latency_percentile(50) <= result.latency_percentile(99.9)

    def test_latency_disabled(self):
        trace = self.make_trace()
        replayer = TraceReplayer(create_connector("memory"), measure_latency=False)
        result = replayer.replay(trace)
        assert result.all_latencies() == []
        assert result.throughput_ops > 0

    def test_service_rate_throttles(self):
        trace = self.make_trace()[:200]
        fast = TraceReplayer(create_connector("memory")).replay(trace)
        slow = TraceReplayer(
            create_connector("memory"), service_rate=10_000
        ).replay(trace)
        assert slow.throughput_ops < fast.throughput_ops
        assert slow.throughput_ops <= 12_000

    def test_replay_state_consistency(self):
        """After replaying a window trace, only windows that never
        expired (at the tail of the stream) remain in the store."""
        trace = generate_workload_trace(
            "tumbling-incremental", [SourceConfig(num_events=500)]
        )
        connector = create_connector("memory")
        TraceReplayer(connector).replay(trace)
        deletes = {a.key for a in trace if a.op is OpType.DELETE}
        puts = {a.key for a in trace if a.op is OpType.PUT}
        assert deletes <= puts
        assert len(connector.store) == len(puts - deletes)

    def test_summary_keys(self):
        result = TraceReplayer(create_connector("memory")).replay(self.make_trace())
        assert set(result.summary()) == {
            "throughput_kops", "p50_us", "p99_us", "p99.9_us",
        }


class TestSynthesizeValue:
    def test_size(self):
        assert len(synthesize_value(17)) == 17

    def test_cached_identity(self):
        assert synthesize_value(8) is synthesize_value(8)

    def test_zero(self):
        assert synthesize_value(0) == b""
