"""Gadget accuracy tests: generated traces must match engine traces.

This is the test-suite version of the paper's Figure 10 experiment --
Gadget's simulated state access streams are compared against the
instrumented mini stream processor on identical inputs.
"""

import pytest

from repro.analysis import average_stack_distance, total_unique_sequences
from repro.core import GadgetConfig, generate_workload_trace
from repro.streaming import (
    ContinuousAggregation,
    ContinuousJoinOperator,
    IntervalJoinOperator,
    RuntimeConfig,
    SessionWindowOperator,
    SlidingWindows,
    TumblingWindows,
    WindowJoinOperator,
    WindowOperator,
    run_operator,
)

GCFG = GadgetConfig(interleave="time")
RCFG = RuntimeConfig(interleave="time")


def engine_trace(operator, streams):
    return run_operator(operator, streams, RCFG)


def assert_traces_equivalent(real, gadget, tolerance=0.0):
    """Key sequences must match exactly (tolerance=0) or near-exactly."""
    if tolerance == 0.0:
        assert real.key_sequence() == gadget.key_sequence()
        assert [a.op for a in real] == [a.op for a in gadget]
    else:
        assert abs(len(real) - len(gadget)) <= tolerance * len(real)


class TestExactFidelity:
    """Single-input operators: Gadget reproduces the engine exactly."""

    def test_tumbling_incremental(self, borg_tasks):
        real = engine_trace(WindowOperator(TumblingWindows(5000)), [borg_tasks])
        gadget = generate_workload_trace("tumbling-incremental", [borg_tasks], GCFG)
        assert_traces_equivalent(real, gadget)

    def test_tumbling_holistic(self, borg_tasks):
        real = engine_trace(
            WindowOperator(TumblingWindows(5000), holistic=True), [borg_tasks]
        )
        gadget = generate_workload_trace("tumbling-holistic", [borg_tasks], GCFG)
        assert_traces_equivalent(real, gadget)

    def test_sliding_incremental(self, borg_tasks):
        real = engine_trace(
            WindowOperator(SlidingWindows(5000, 1000)), [borg_tasks]
        )
        gadget = generate_workload_trace("sliding-incremental", [borg_tasks], GCFG)
        assert_traces_equivalent(real, gadget)

    def test_sliding_holistic(self, borg_tasks):
        real = engine_trace(
            WindowOperator(SlidingWindows(5000, 1000), holistic=True), [borg_tasks]
        )
        gadget = generate_workload_trace("sliding-holistic", [borg_tasks], GCFG)
        assert_traces_equivalent(real, gadget)

    def test_continuous_aggregation_ops_match(self, borg_tasks):
        real = engine_trace(ContinuousAggregation(), [borg_tasks])
        gadget = generate_workload_trace("continuous-aggregation", [borg_tasks], GCFG)
        # The engine's closing watermark adds nothing for aggregation.
        assert real.key_sequence() == gadget.key_sequence()


class TestStatisticalFidelity:
    """Operators with minor ordering differences: locality must match."""

    def close(self, a, b, rel=0.02):
        return abs(a - b) <= rel * max(abs(a), abs(b), 1.0)

    def check(self, real, gadget, rel=0.02):
        assert self.close(len(real), len(gadget), rel)
        assert self.close(
            average_stack_distance(real.key_sequence()),
            average_stack_distance(gadget.key_sequence()),
            0.05,
        )
        assert self.close(
            total_unique_sequences(real.key_sequence(), 5),
            total_unique_sequences(gadget.key_sequence(), 5),
            0.05,
        )

    def test_session_incremental(self, borg_tasks):
        real = engine_trace(SessionWindowOperator(120_000), [borg_tasks])
        gadget = generate_workload_trace("session-incremental", [borg_tasks], GCFG)
        self.check(real, gadget)

    def test_session_holistic(self, borg_tasks):
        real = engine_trace(
            SessionWindowOperator(120_000, holistic=True), [borg_tasks]
        )
        gadget = generate_workload_trace("session-holistic", [borg_tasks], GCFG)
        self.check(real, gadget)

    def test_interval_join(self, borg_streams):
        tasks, jobs = borg_streams
        real = engine_trace(IntervalJoinOperator(120_000, 180_000), [tasks, jobs])
        gadget = generate_workload_trace("interval-join", [tasks, jobs], GCFG)
        self.check(real, gadget)

    def test_sliding_join(self, borg_streams):
        tasks, jobs = borg_streams
        real = engine_trace(
            WindowJoinOperator(SlidingWindows(5000, 1000)), [tasks, jobs]
        )
        gadget = generate_workload_trace("sliding-join", [tasks, jobs], GCFG)
        self.check(real, gadget)

    def test_continuous_join(self, borg_streams):
        tasks, jobs = borg_streams
        real = engine_trace(ContinuousJoinOperator({"finish"}), [tasks, jobs])
        gadget = generate_workload_trace("continuous-join", [tasks, jobs], GCFG)
        self.check(real, gadget)


class TestCompositionFidelity:
    """Op-type fractions must agree operator by operator."""

    @pytest.mark.parametrize(
        "workload,operator_factory",
        [
            ("tumbling-incremental", lambda: WindowOperator(TumblingWindows(5000))),
            (
                "tumbling-holistic",
                lambda: WindowOperator(TumblingWindows(5000), holistic=True),
            ),
            ("session-incremental", lambda: SessionWindowOperator(120_000)),
        ],
    )
    def test_fractions_close(self, workload, operator_factory, borg_tasks):
        real = engine_trace(operator_factory(), [borg_tasks])
        gadget = generate_workload_trace(workload, [borg_tasks], GCFG)
        real_fracs = real.op_fractions()
        gadget_fracs = gadget.op_fractions()
        for op in real_fracs:
            assert abs(real_fracs[op] - gadget_fracs[op]) < 0.01
