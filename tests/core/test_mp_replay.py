"""Multi-process sharded replay: single ≡ thread-sharded ≡
process-sharded equivalence, shared-memory lifecycle (no leaked
segments, crash paths included), worker failure transport, and the
per-shard fault determinism that makes thread mode and process mode
interchangeable experiments."""

import glob
import os

import pytest

from repro.core import (
    ConnectorSpec,
    PerformanceEvaluator,
    ProcessShardedReplayer,
    ShardedReplayer,
    TraceReplayer,
    WorkerCrashError,
    WorkerProcessError,
    store_content_digest,
)
from repro.faults import FaultPlan, RetryPolicy
from repro.kvstores import create_connector
from repro.trace import AccessTrace, OpType


@pytest.fixture(autouse=True)
def _guard(hang_guard):
    hang_guard(120)


def make_trace(n=1200, distinct=31):
    trace = AccessTrace()
    ops = list(OpType)
    for i in range(n):
        trace.record(ops[i % 4], f"key-{i % distinct}".encode(), 16, i)
    return trace


def trace_keys(trace):
    klist = trace.unique_keys()
    return sorted({klist[kid] for kid in set(trace.key_ids)})


def digest_of(connector, trace):
    return store_content_digest(connector, trace_keys(trace))


def hist_totals(result):
    return {op.value: hist.total for op, hist in result.histograms.items()}


def shm_segments():
    return set(glob.glob("/dev/shm/psm_*")) | set(glob.glob("/dev/shm/*"))


class TestEquivalence:
    """The tentpole property: one trace, three execution modes, the
    same per-op histogram populations and the same store contents."""

    @pytest.mark.parametrize("store", ["memory", "rocksdb", "berkeleydb"])
    def test_single_thread_process_agree(self, store):
        trace = make_trace()

        single = TraceReplayer(create_connector(store), use_histograms=True)
        base = single.replay(trace)
        base_digest = digest_of(single.connector, trace)
        single.connector.close()

        threaded = ShardedReplayer(
            lambda: create_connector(store), num_workers=3, use_histograms=True
        )
        thread_result = threaded.replay(trace)
        thread_digest = 0
        for connector in threaded.connectors:
            thread_digest ^= digest_of(connector, trace)
        threaded.close()

        proc = ProcessShardedReplayer(
            ConnectorSpec.for_store(store), num_workers=3, collect_digests=True
        )
        proc_result = proc.replay(trace)

        assert hist_totals(thread_result.merged_result()) == hist_totals(base)
        assert hist_totals(proc_result.merged_result()) == hist_totals(base)
        assert proc_result.merged_result().operations == len(trace)
        assert thread_digest == base_digest
        assert proc.last_content_digest == base_digest

    def test_batched_mode_agrees(self):
        trace = make_trace()
        single = TraceReplayer(
            create_connector("memory"), use_histograms=True, batch_size=16
        )
        base = single.replay(trace)
        base_digest = digest_of(single.connector, trace)
        single.connector.close()

        proc = ProcessShardedReplayer(
            ConnectorSpec.for_store("memory"),
            num_workers=3,
            batch_size=16,
            collect_digests=True,
        )
        result = proc.replay(trace)
        assert hist_totals(result.merged_result()) == hist_totals(base)
        assert proc.last_content_digest == base_digest

    def test_faulted_replay_matches_thread_mode_exactly(self):
        """Per-shard plans derive from (seed, shard) alone, so thread
        mode and process mode inject the *same* fault schedules."""
        trace = make_trace()
        plan = FaultPlan(seed=17, transient_error_rate=0.02, error_burst=2)
        # the policy must outlast the burst, else ops legitimately fail
        policy = RetryPolicy(max_attempts=6, base_delay_s=0.0, seed=9)

        threaded = ShardedReplayer(
            lambda: create_connector("memory"),
            num_workers=3,
            use_histograms=True,
            fault_plan=plan,
            retry_policy=policy,
        )
        thread_result = threaded.replay(trace)
        thread_digest = 0
        for connector in threaded.connectors:
            thread_digest ^= digest_of(connector, trace)
        threaded.close()

        proc = ProcessShardedReplayer(
            ConnectorSpec.for_store("memory"),
            num_workers=3,
            fault_plan=plan,
            retry_policy=policy,
            collect_digests=True,
        )
        proc_result = proc.replay(trace)

        by_shard_thread = [r.injected_faults for r in thread_result.shard_results]
        by_shard_proc = [r.injected_faults for r in proc_result.shard_results]
        assert by_shard_thread == by_shard_proc
        assert (
            thread_result.merged_result().retries
            == proc_result.merged_result().retries
        )
        assert thread_result.merged_result().failed_ops == 0
        assert proc_result.merged_result().failed_ops == 0
        assert proc.last_content_digest == thread_digest

    def test_storage_root_partitions_disk_stores(self, tmp_path):
        trace = make_trace(400)
        proc = ProcessShardedReplayer(
            ConnectorSpec.for_store("rocksdb", storage_root=str(tmp_path)),
            num_workers=2,
        )
        result = proc.replay(trace)
        assert result.merged_result().operations == len(trace)
        assert sorted(p.name for p in tmp_path.iterdir()) == [
            "shard-0",
            "shard-1",
        ]


class TestSharedMemoryLifecycle:
    def test_no_segments_leaked_on_success(self):
        before = shm_segments()
        proc = ProcessShardedReplayer(
            ConnectorSpec.for_store("memory"), num_workers=2
        )
        proc.replay(make_trace(300))
        assert shm_segments() - before == set()

    def test_no_segments_leaked_when_worker_dies(self):
        before = shm_segments()
        proc = ProcessShardedReplayer(
            ConnectorSpec.from_factory(_exit_bomb), num_workers=3
        )
        with pytest.raises(WorkerCrashError) as excinfo:
            proc.replay(make_trace())
        assert excinfo.value.shard == 1
        assert excinfo.value.exitcode == 42
        assert shm_segments() - before == set()

    def test_no_segments_leaked_when_worker_raises(self):
        before = shm_segments()
        proc = ProcessShardedReplayer(
            ConnectorSpec.from_factory(_raising_connector), num_workers=3
        )
        with pytest.raises(WorkerProcessError):
            proc.replay(make_trace())
        assert shm_segments() - before == set()


class TestFailureTransport:
    def test_worker_exception_carries_type_and_traceback(self):
        proc = ProcessShardedReplayer(
            ConnectorSpec.from_factory(_raising_connector), num_workers=2
        )
        with pytest.raises(WorkerProcessError) as excinfo:
            proc.replay(make_trace())
        message = str(excinfo.value)
        assert "RuntimeError" in message
        assert "store exploded" in message
        assert "worker traceback" in message

    def test_sibling_failures_attach_to_primary(self):
        proc = ProcessShardedReplayer(
            ConnectorSpec.from_factory(_raising_everywhere), num_workers=3
        )
        with pytest.raises(WorkerProcessError) as excinfo:
            proc.replay(make_trace())
        siblings = getattr(excinfo.value, "shard_errors", [])
        # every worker fails on its first op; all surface, one primary
        assert len(siblings) == 2

    def test_crash_trips_stop_event_for_siblings(self):
        """After shard 1 dies, the live sibling unwinds cooperatively
        instead of replaying its slow shard to completion."""
        import time

        proc = ProcessShardedReplayer(
            ConnectorSpec.from_factory(_slow_exit_bomb), num_workers=2
        )
        started = time.perf_counter()
        with pytest.raises(WorkerCrashError):
            # sibling's shard alone would take ~>6s at 5ms/op; crash
            # detection (~1s) plus decimated stop checks end it early
            proc.replay(make_trace(2600, distinct=301))
        assert time.perf_counter() - started < 5.0


class TestValidation:
    def test_rejects_live_connector(self):
        with pytest.raises(TypeError):
            ProcessShardedReplayer(create_connector("memory"))

    def test_rejects_crash_plans(self):
        with pytest.raises(ValueError, match="crash"):
            ProcessShardedReplayer(
                ConnectorSpec.for_store("memory"),
                fault_plan=FaultPlan(seed=1, crash_at=5),
            )

    def test_rejects_nonpositive_workers(self):
        with pytest.raises(ValueError):
            ProcessShardedReplayer(ConnectorSpec.for_store("memory"), num_workers=0)

    def test_unknown_spec_kind(self):
        with pytest.raises(ValueError, match="unknown connector spec"):
            ConnectorSpec(kind="carrier-pigeon").build(0)


class TestMetricsMerge:
    def test_per_worker_series_merge(self, tmp_path):
        metrics_dir = str(tmp_path / "metrics")
        proc = ProcessShardedReplayer(
            ConnectorSpec.for_store("memory"),
            num_workers=2,
            metrics_dir=metrics_dir,
        )
        proc.replay(make_trace())
        assert proc.last_metrics_path is not None
        from repro.obs import read_series

        header, samples = read_series(proc.last_metrics_path)
        assert header["shards"] == 2
        assert header["total_ops"] == 1200
        assert {s["shard"] for s in samples} <= {0, 1}
        # samples interleave in time order
        times = [s["t_s"] for s in samples]
        assert times == sorted(times)


class TestEvaluatorAndRemote:
    def test_evaluate_sharded_processes(self):
        evaluator = PerformanceEvaluator()
        result = evaluator.evaluate_sharded(
            "memory", make_trace(600), num_workers=2, processes=True
        )
        assert result.merged_result().operations == 600

    def test_evaluate_sharded_processes_rejects_share_store(self):
        with pytest.raises(ValueError, match="share_store"):
            PerformanceEvaluator().evaluate_sharded(
                "memory", make_trace(50), processes=True, share_store=True
            )

    def test_remote_spec_drives_one_server(self):
        from repro.kvstores.memory import InMemoryStore
        from repro.kvstores.remote import StoreServer

        trace = make_trace(800)
        with StoreServer(InMemoryStore()) as server:
            host, port = server.address
            proc = ProcessShardedReplayer(
                ConnectorSpec.for_remote(host, port), num_workers=3
            )
            result = proc.replay(trace)
            assert result.merged_result().operations == len(trace)
            # all shards wrote into ONE server-side store
            written = sum(
                1
                for key in trace_keys(trace)
                if server._connector.get(key) is not None
            )
            assert written > 0


# -- module-level worker factories (must survive fork into children) --------


def _exit_bomb(index):
    connector = create_connector("memory")
    if index != 1:
        return connector
    original = connector.put
    state = {"count": 0}

    def put(key, value):
        state["count"] += 1
        if state["count"] > 20:
            os._exit(42)
        original(key, value)

    connector.put = put
    return connector


def _slow_exit_bomb(index):
    import time

    connector = create_connector("memory")
    if index == 1:
        def put(key, value):
            os._exit(42)

        connector.put = put
        return connector
    # the surviving sibling is slow on every op, so completing its
    # shard without the stop event would blow the test's time bound
    for name in ("get", "put", "merge", "delete"):
        original = getattr(connector, name)

        def slowed(*args, _original=original):
            time.sleep(0.005)
            return _original(*args)

        setattr(connector, name, slowed)
    return connector


def _raising_connector(index):
    connector = create_connector("memory")
    if index != 1:
        return connector
    original = connector.put
    state = {"count": 0}

    def put(key, value):
        state["count"] += 1
        if state["count"] > 20:
            raise RuntimeError("store exploded")
        original(key, value)

    connector.put = put
    return connector


def _raising_everywhere(index):
    connector = create_connector("memory")

    def put(key, value):
        raise RuntimeError(f"shard {index} store exploded")

    connector.put = put
    return connector
