"""Pipelined replay: state identity with per-op replay across
backends, honest latency populations, fault/crash composition, and
pipeline plumbing through sharding, the evaluator, and the CLI."""

import pytest

from repro.cli import main
from repro.core import (
    PerformanceEvaluator,
    SourceConfig,
    TraceReplayer,
    generate_workload_trace,
)
from repro.core.replayer import ShardedReplayer
from repro.faults import FaultPlan, RetryPolicy
from repro.kvstores import InMemoryStore, create_connector
from repro.kvstores.remote import RemoteStoreClient, StoreServer

FAST_RETRY = RetryPolicy(max_attempts=5, base_delay_s=0.0, jitter=0.0)


def small_trace(n=400, workload="tumbling-incremental"):
    return generate_workload_trace(workload, [SourceConfig(num_events=n)])


def final_state(connector, trace):
    return {key: connector.get(key) for key in trace.unique_keys()}


class TestStateIdentity:
    @pytest.mark.parametrize("store", ["memory", "rocksdb", "faster"])
    @pytest.mark.parametrize("depth", [2, 16, 64])
    def test_pipelined_replay_matches_per_op(self, store, depth):
        trace = small_trace()
        per_op = create_connector(store)
        pipelined = create_connector(store)
        sync_result = TraceReplayer(per_op).replay(trace)
        pipe_result = TraceReplayer(pipelined, pipeline_depth=depth).replay(trace)
        assert final_state(pipelined, trace) == final_state(per_op, trace)
        # identical latency populations: every op measured exactly once
        assert pipe_result.operations == sync_result.operations == len(trace)
        for op, latencies in sync_result.latencies_ns.items():
            assert len(pipe_result.latencies_ns[op]) == len(latencies)
        per_op.close()
        pipelined.close()

    def test_remote_pipelined_matches_sync(self):
        trace = small_trace(300)
        contents = {}
        for depth in (None, 16):
            with StoreServer(InMemoryStore()) as server:
                host, port = server.address
                with RemoteStoreClient(
                    host, port, retry_policy=FAST_RETRY
                ) as client:
                    result = TraceReplayer(
                        client, pipeline_depth=depth
                    ).replay(trace)
                    assert result.operations == len(trace)
                    contents[depth] = final_state(client, trace)
        assert contents[16] == contents[None]

    def test_depth_one_equals_none(self):
        trace = small_trace(200)
        a, b = create_connector("memory"), create_connector("memory")
        result_a = TraceReplayer(a, pipeline_depth=None).replay(trace)
        result_b = TraceReplayer(b, pipeline_depth=1).replay(trace)
        assert result_a.operations == result_b.operations == len(trace)
        assert final_state(a, trace) == final_state(b, trace)

    def test_depth_zero_rejected(self):
        with pytest.raises(ValueError):
            TraceReplayer(create_connector("memory"), pipeline_depth=0)

    def test_batch_and_pipeline_are_mutually_exclusive(self):
        with pytest.raises(ValueError, match="alternative round-trip"):
            TraceReplayer(
                create_connector("memory"), batch_size=8, pipeline_depth=8
            )

    def test_histogram_mode_populations_match(self):
        trace = small_trace(500)
        sync = create_connector("memory")
        piped = create_connector("memory")
        r1 = TraceReplayer(sync, use_histograms=True).replay(trace)
        r2 = TraceReplayer(
            piped, use_histograms=True, pipeline_depth=16
        ).replay(trace)
        assert r1.histograms and set(r2.histograms) == set(r1.histograms)
        for op, hist in r1.histograms.items():
            assert (
                r2.histograms[op].to_dict()["total"]
                == hist.to_dict()["total"]
            )
        sync.close()
        piped.close()


class TestPipelinedFaults:
    PLAN = FaultPlan(seed=7, transient_error_rate=0.02, error_burst=2)

    def test_faults_state_parity_with_retry(self):
        trace = small_trace(300)
        per_op = create_connector("memory")
        piped = create_connector("memory")
        r1 = TraceReplayer(
            per_op, fault_plan=self.PLAN, retry_policy=FAST_RETRY
        ).replay(trace)
        r2 = TraceReplayer(
            piped,
            fault_plan=self.PLAN,
            retry_policy=FAST_RETRY,
            pipeline_depth=16,
        ).replay(trace)
        # The schedule draws one verdict per logical op regardless of
        # windowing, and the retry policy outlasts every burst.
        assert r1.failed_ops == r2.failed_ops == 0
        assert r1.injected_faults == r2.injected_faults > 0
        assert final_state(piped, trace) == final_state(per_op, trace)

    def test_faults_without_retry_counts_failed_ops(self):
        trace = small_trace(300)
        per_op = create_connector("memory")
        piped = create_connector("memory")
        r1 = TraceReplayer(per_op, fault_plan=self.PLAN).replay(trace)
        r2 = TraceReplayer(
            piped, fault_plan=self.PLAN, pipeline_depth=16
        ).replay(trace)
        assert r1.failed_ops == r2.failed_ops > 0
        assert final_state(piped, trace) == final_state(per_op, trace)

    def test_crash_stops_submissions_and_drains_prefix(self):
        trace = small_trace(400)
        connector = create_connector("memory")
        result = TraceReplayer(
            connector,
            fault_plan=FaultPlan(seed=3, crash_at=250),
            pipeline_depth=16,
        ).replay(trace)
        # prefix semantics: nothing past the crash point is submitted,
        # but everything already in the window drains to the store
        assert result.crashed_at == 250
        assert result.operations == 250
        connector.close()


class TestShardedPipelined:
    def test_sharded_threads_apply_window_per_shard(self):
        trace = small_trace(600)
        baseline = create_connector("memory")
        TraceReplayer(baseline).replay(trace)
        sharded = ShardedReplayer(
            lambda: create_connector("memory"),
            num_workers=3,
            pipeline_depth=8,
        )
        result = sharded.replay(trace)
        assert result.operations == len(trace)
        merged = {}
        for worker in sharded.connectors:
            for key in trace.unique_keys():
                value = worker.get(key)
                if value is not None:
                    merged[key] = value
        expected = {
            key: value
            for key, value in final_state(baseline, trace).items()
            if value is not None
        }
        assert merged == expected
        sharded.close()
        baseline.close()


class TestEvaluatorPipelined:
    def test_rows_record_pipeline_depth(self):
        trace = small_trace(200)
        evaluator = PerformanceEvaluator(stores=["memory"])
        rows = evaluator.evaluate("wl", trace, pipeline_depth=4)
        assert [row.pipeline_depth for row in rows] == [4]
        assert rows[0].throughput_kops > 0

    def test_default_depth_is_one(self):
        rows = PerformanceEvaluator(stores=["memory"]).evaluate(
            "wl", small_trace(100)
        )
        assert rows[0].pipeline_depth == 1

    def test_sharded_processes_reject_pipeline(self):
        with pytest.raises(ValueError, match="threads"):
            PerformanceEvaluator().evaluate_sharded(
                "memory",
                small_trace(100),
                num_workers=2,
                processes=True,
                pipeline_depth=8,
            )


@pytest.fixture
def trace_path(tmp_path):
    path = str(tmp_path / "t.gdgt")
    small_trace(200).save(path)
    return path


class TestCLIPipelined:
    def test_replay_with_pipeline_flag(self, trace_path, capsys):
        assert main([
            "replay", trace_path, "--store", "memory", "--pipeline", "16",
        ]) == 0
        out = capsys.readouterr().out
        assert "pipeline depth" in out
        assert "16" in out

    def test_pipeline_conflicts_with_batch(self, trace_path):
        with pytest.raises(SystemExit):
            main([
                "replay", trace_path, "--store", "memory",
                "--pipeline", "16", "--batch", "8",
            ])

    def test_pipeline_conflicts_with_processes(self, trace_path):
        with pytest.raises(SystemExit):
            main([
                "replay", trace_path, "--store", "memory",
                "--pipeline", "16", "--shards", "2", "--processes",
            ])

    def test_pipeline_conflicts_with_crash_at(self, trace_path):
        with pytest.raises(SystemExit):
            main([
                "replay", trace_path, "--store", "memory",
                "--pipeline", "16", "--crash-at", "100",
            ])

    def test_compare_shows_pipe_column(self, trace_path, capsys):
        assert main([
            "compare", trace_path, "--stores", "memory", "rocksdb",
            "--pipeline", "4",
        ]) == 0
        out = capsys.readouterr().out
        assert "pipe" in out
