"""Multi-source watermark frequency / allowed lateness resolution.

The driver must honour *all* configured sources: watermarks advance at
the most frequently punctuating source's pace (minimum positive
frequency) and an event is dropped only when it is late by every
source's standard (maximum allowed lateness)."""

from repro.core import Driver, GadgetConfig, SourceConfig
from repro.core.operators.windows import tumbling_window_model
from repro.events import Event


def make_driver(sources):
    model = tumbling_window_model(1000)
    events = [Event(b"k", 100)]
    return Driver(model, [events] * model.num_inputs, GadgetConfig(sources=sources))


class TestWatermarkFrequency:
    def test_single_source_frequency(self):
        driver = make_driver([SourceConfig(watermark_frequency=40)])
        assert driver._watermark_frequency() == 40

    def test_uses_min_frequency_across_sources(self):
        driver = make_driver(
            [SourceConfig(watermark_frequency=200), SourceConfig(watermark_frequency=25)]
        )
        assert driver._watermark_frequency() == 25

    def test_not_just_the_first_source(self):
        # The seed bug: only sources[0] was consulted.
        driver = make_driver(
            [SourceConfig(watermark_frequency=500), SourceConfig(watermark_frequency=10)]
        )
        assert driver._watermark_frequency() == 10

    def test_zero_frequency_source_does_not_win(self):
        driver = make_driver(
            [SourceConfig(watermark_frequency=0), SourceConfig(watermark_frequency=30)]
        )
        assert driver._watermark_frequency() == 30

    def test_all_zero_disables_punctuation(self):
        driver = make_driver(
            [SourceConfig(watermark_frequency=0), SourceConfig(watermark_frequency=0)]
        )
        assert driver._watermark_frequency() == 0

    def test_no_sources_falls_back_to_default(self):
        driver = make_driver([])
        assert driver._watermark_frequency() == 100


class TestAllowedLateness:
    def test_single_source_lateness(self):
        driver = make_driver([SourceConfig(max_lateness_ms=500)])
        assert driver._allowed_lateness() == 500

    def test_uses_max_lateness_across_sources(self):
        driver = make_driver(
            [SourceConfig(max_lateness_ms=100), SourceConfig(max_lateness_ms=900)]
        )
        assert driver._allowed_lateness() == 900

    def test_not_just_the_first_source(self):
        driver = make_driver(
            [SourceConfig(max_lateness_ms=0), SourceConfig(max_lateness_ms=250)]
        )
        assert driver._allowed_lateness() == 250

    def test_no_sources_means_zero(self):
        driver = make_driver([])
        assert driver._allowed_lateness() == 0


class TestLatenessAffectsDropping:
    def test_second_source_lateness_rescues_late_event(self):
        """An event late for source 0's budget but within source 1's
        must be processed, not dropped."""
        model = tumbling_window_model(1000)
        late = Event(b"k", 400)
        events = [Event(b"k", 100), Event(b"k", 2500), late]
        strict = GadgetConfig(
            sources=[SourceConfig(max_lateness_ms=0, watermark_frequency=2)]
        )
        lenient = GadgetConfig(
            sources=[
                SourceConfig(max_lateness_ms=0, watermark_frequency=2),
                SourceConfig(max_lateness_ms=5000, watermark_frequency=2),
            ]
        )
        dropped = Driver(model, [events], strict)
        dropped.run()
        assert dropped.dropped_late_events == 1

        kept = Driver(model, [events], lenient)
        kept.run()
        assert kept.dropped_late_events == 0
