"""Sharded parallel replay: partitioning, aggregation, and the
replayer fast path / throttle behaviour."""

import time

import pytest

from repro.core import (
    PerformanceEvaluator,
    ShardedReplayer,
    TraceReplayer,
    shard_trace,
)
from repro.kvstores import create_connector
from repro.trace import AccessTrace, OpType


def make_trace(n=400, distinct=23):
    trace = AccessTrace()
    ops = list(OpType)
    for i in range(n):
        trace.record(ops[i % 4], f"key-{i % distinct}".encode(), 16, i)
    return trace


class TestShardTrace:
    def test_partitions_cover_trace_exactly(self):
        trace = make_trace(500)
        shards = shard_trace(trace, 4)
        assert len(shards) == 4
        assert sum(len(s) for s in shards) == len(trace)
        merged = sorted(
            (a.key, a.timestamp) for shard in shards for a in shard
        )
        assert merged == sorted((a.key, a.timestamp) for a in trace)

    def test_same_key_always_same_shard(self):
        shards = shard_trace(make_trace(600), 4)
        seen = {}
        for index, shard in enumerate(shards):
            for access in shard:
                assert seen.setdefault(access.key, index) == index

    def test_per_key_order_preserved_within_shard(self):
        trace = make_trace(600)
        for shard in shard_trace(trace, 4):
            timestamps = {}
            for access in shard:
                previous = timestamps.get(access.key, -1)
                assert access.timestamp > previous
                timestamps[access.key] = access.timestamp

    def test_deterministic_across_calls(self):
        trace = make_trace(300)
        first = [s.accesses for s in shard_trace(trace, 3)]
        second = [s.accesses for s in shard_trace(trace, 3)]
        assert first == second

    def test_single_shard_is_whole_trace(self):
        trace = make_trace(50)
        (only,) = shard_trace(trace, 1)
        assert only.accesses == trace.accesses

    def test_invalid_shard_count(self):
        with pytest.raises(ValueError):
            shard_trace(make_trace(10), 0)


class TestShardedReplayer:
    def test_replays_every_operation(self):
        trace = make_trace(800)
        replayer = ShardedReplayer(lambda: create_connector("memory"), num_workers=4)
        result = replayer.replay(trace)
        replayer.close()
        assert result.operations == len(trace)
        assert len(result.shard_results) == 4
        assert result.throughput_ops > 0

    def test_merged_histogram_counts_match(self):
        trace = make_trace(500)
        replayer = ShardedReplayer(lambda: create_connector("memory"), num_workers=3)
        result = replayer.replay(trace)
        replayer.close()
        merged = result.merged_result()
        total = sum(h.total for h in merged.histograms.values())
        assert total == len(trace)
        assert merged.latency_percentile(99.0) >= 0

    def test_store_state_matches_single_thread_union(self):
        """Key-disjoint shards on fresh stores must end with exactly the
        state a single-threaded replay leaves in one store."""
        trace = make_trace(600, distinct=31)
        single = create_connector("memory")
        TraceReplayer(single).replay(trace)

        replayer = ShardedReplayer(lambda: create_connector("memory"), num_workers=4)
        replayer.replay(trace)

        distinct = {a.key for a in trace}
        for key in distinct:
            expected = single.get(key)
            values = [c.get(key) for c in replayer.connectors]
            present = [v for v in values if v is not None]
            if expected is None:
                assert present == []
            else:
                assert present == [expected]
        replayer.close()
        single.close()

    def test_shared_connector_mode(self):
        trace = make_trace(400)
        connector = create_connector("memory")
        replayer = ShardedReplayer(connector, num_workers=4)
        result = replayer.replay(trace)
        assert result.operations == len(trace)
        assert result.store == connector.name
        connector.close()

    def test_connector_list_mode_requires_matching_count(self):
        with pytest.raises(ValueError):
            ShardedReplayer([create_connector("memory")], num_workers=2)

    def test_aggregate_service_rate_split_across_workers(self):
        trace = make_trace(200)
        replayer = ShardedReplayer(
            lambda: create_connector("memory"),
            num_workers=2,
            service_rate=4000.0,
        )
        result = replayer.replay(trace)
        replayer.close()
        # Largest shard paced at 2000 ops/s bounds the wall-clock.
        largest = max(r.operations for r in result.shard_results)
        assert result.elapsed_s >= 0.9 * largest / 2000.0

    def test_evaluator_sharded_modes(self):
        trace = make_trace(300)
        evaluator = PerformanceEvaluator(stores=("memory",))
        scale_out = evaluator.evaluate_sharded("memory", trace, num_workers=2)
        shared = evaluator.evaluate_sharded(
            "memory", trace, num_workers=2, share_store=True
        )
        assert scale_out.operations == len(trace)
        assert shared.operations == len(trace)
        assert "p99_us" in scale_out.summary()


class TestThrottleHybridSleep:
    def test_throttled_replay_hits_target_rate(self):
        trace = make_trace(100)
        replayer = TraceReplayer(create_connector("memory"), service_rate=1000.0)
        result = replayer.replay(trace)
        # 100 ops at 1000 ops/s should take ~0.1 s, not finish instantly
        # and not overshoot wildly.
        assert result.elapsed_s >= 0.09
        assert result.elapsed_s < 0.5

    def test_throttle_sleeps_instead_of_spinning(self):
        """At low service rates most of the wait must be blocking sleep,
        not a busy loop: process CPU time stays far below wall time."""
        trace = make_trace(30)
        replayer = TraceReplayer(create_connector("memory"), service_rate=150.0)
        cpu_before = time.process_time()
        result = replayer.replay(trace)
        cpu_used = time.process_time() - cpu_before
        assert result.elapsed_s >= 0.15
        # The seed busy-wait burned ~100% of a core; the hybrid throttle
        # should spin only the last ~1 ms of each 6.7 ms interval.
        assert cpu_used < 0.6 * result.elapsed_s


class TestWorkerFailureHandling:
    """The sharded-replay bugfix batch: a failing worker stops its
    siblings promptly, and their errors ride along on the primary."""

    def test_failure_stops_siblings_early(self):
        trace = make_trace(2600, distinct=301)

        def failing_factory_holder():
            built = [0]

            def factory_with_bomb():
                index = built[0]
                built[0] += 1
                connector = create_connector("memory")
                if index == 0:
                    state = {"count": 0}

                    def put(key, value):
                        state["count"] += 1
                        if state["count"] > 5:
                            raise RuntimeError("worker zero exploded")
                        connector.store.put(key, value)

                    connector.put = put
                else:
                    original = connector.put

                    def put(key, value):
                        time.sleep(0.005)
                        original(key, value)

                    connector.put = put
                return connector

            return factory_with_bomb

        replayer = ShardedReplayer(failing_factory_holder(), num_workers=2)
        started = time.perf_counter()
        with pytest.raises(RuntimeError, match="worker zero exploded"):
            replayer.replay(trace)
        # the surviving shard alone would need seconds of sleeps; the
        # cooperative stop flag must end it well before that
        assert time.perf_counter() - started < 3.0
        replayer.close()

    def test_sibling_errors_attach_to_primary(self):
        def factory():
            connector = create_connector("memory")

            def put(key, value):
                raise RuntimeError("every shard explodes")

            connector.put = put
            return connector

        replayer = ShardedReplayer(factory, num_workers=3)
        with pytest.raises(RuntimeError) as excinfo:
            replayer.replay(make_trace(300))
        siblings = getattr(excinfo.value, "shard_errors", None)
        assert siblings is not None
        replayer.close()


class TestShardIndices:
    def test_indices_agree_with_shard_trace(self):
        from repro.core import shard_indices

        trace = make_trace(500)
        buckets = shard_indices(trace, 4)
        shards = shard_trace(trace, 4)
        for bucket, shard in zip(buckets, shards):
            assert trace.select(bucket).accesses == shard.accesses

    def test_rejects_nonpositive(self):
        from repro.core import shard_indices

        with pytest.raises(ValueError):
            shard_indices(make_trace(10), 0)
