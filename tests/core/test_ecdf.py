"""Tests for building source ECDFs from measured streams."""

import pytest

from repro.core import EventGenerator, KeyConfig, SourceConfig, ecdf_from_events
from repro.events import Event


def stream_with_popularity(counts):
    """Events where key i appears counts[i] times."""
    events = []
    t = 0
    for i, count in enumerate(counts):
        for _ in range(count):
            t += 1
            events.append(Event(f"k{i}".encode(), t))
    return events


class TestECDFFromEvents:
    def test_points_cover_unit_interval(self):
        points = ecdf_from_events(stream_with_popularity([5, 3, 2]))
        assert points[0][0] == pytest.approx(0.5)
        assert points[-1][0] == 1.0

    def test_ranks_by_popularity(self):
        points = ecdf_from_events(stream_with_popularity([2, 8]))
        # rank 0 is the hottest key (8 of 10 accesses)
        assert points[0] == (pytest.approx(0.8), 0)

    def test_empty_stream_rejected(self):
        with pytest.raises(ValueError):
            ecdf_from_events([])

    def test_generator_reproduces_popularity_profile(self):
        source_events = stream_with_popularity([700, 200, 100])
        points = ecdf_from_events(source_events)
        config = SourceConfig(
            num_events=5000,
            keys=KeyConfig(num_keys=3, distribution="ecdf", ecdf_points=points),
            seed=11,
        )
        generated = EventGenerator(config).generate()
        counts = {}
        for event in generated:
            counts[event.key] = counts.get(event.key, 0) + 1
        shares = sorted((c / len(generated) for c in counts.values()), reverse=True)
        assert shares[0] == pytest.approx(0.7, abs=0.03)
        assert shares[1] == pytest.approx(0.2, abs=0.03)

    def test_single_key_stream(self):
        points = ecdf_from_events(stream_with_popularity([4]))
        assert points == [(1.0, 0)]
