"""Tests for the Gadget driver (Algorithm 1) and state machines."""

import pytest

from repro.core import (
    Driver,
    GadgetConfig,
    IncrementalWindowMachine,
    HolisticWindowMachine,
    AggregationMachine,
    BufferMachine,
    MachineContext,
    OperatorModel,
    SourceConfig,
)
from repro.core.operators.windows import tumbling_window_model
from repro.events import Event
from repro.trace import AccessTrace, OpType


class TestStateMachines:
    def run_machine(self, machine_cls):
        trace = AccessTrace()
        ctx = MachineContext(trace, value_size=10)
        machine = machine_cls(b"sk")
        machine.run(ctx, Event(b"k", 1, value_size=20))
        machine.terminate(ctx)
        return [a.op for a in trace], trace, machine

    def test_incremental_window_machine(self):
        ops, trace, machine = self.run_machine(IncrementalWindowMachine)
        assert ops == [OpType.GET, OpType.PUT, OpType.GET, OpType.DELETE]
        assert machine.done
        assert machine.elements == 1

    def test_holistic_window_machine(self):
        ops, trace, _ = self.run_machine(HolisticWindowMachine)
        assert ops == [OpType.MERGE, OpType.GET, OpType.DELETE]

    def test_aggregation_machine_never_done(self):
        ops, _, machine = self.run_machine(AggregationMachine)
        # base terminate() flips done but emits nothing
        assert ops == [OpType.GET, OpType.PUT]

    def test_buffer_machine_silent_delete(self):
        ops, _, _ = self.run_machine(BufferMachine)
        assert ops == [OpType.GET, OpType.PUT, OpType.DELETE]

    def test_value_sizes_from_event(self):
        trace = AccessTrace()
        ctx = MachineContext(trace, value_size=10)
        machine = IncrementalWindowMachine(b"sk")
        machine.run(ctx, Event(b"k", 1, value_size=99))
        puts = [a for a in trace if a.op is OpType.PUT]
        assert puts[0].value_size == 99

    def test_default_value_size_for_gets(self):
        trace = AccessTrace()
        ctx = MachineContext(trace, value_size=10)
        ctx.emit(OpType.GET, b"k")
        assert trace[0].value_size == 0


class TestDriver:
    def make_driver(self, events=None, model=None, interleave="time", **config_kwargs):
        # Two events in the first window plus one event past its end so
        # the closing watermark fires the first window.
        events = events if events is not None else [
            Event(b"k", t) for t in (100, 200, 6000)
        ]
        model = model or tumbling_window_model(5000)
        config = GadgetConfig(
            sources=[SourceConfig(**config_kwargs)], interleave=interleave
        )
        return Driver(model, [events], config)

    def test_run_produces_trace(self):
        trace = self.make_driver().run()
        # 3 events x (get+put) + first window fire (get+delete)
        assert [a.op for a in trace] == [
            OpType.GET, OpType.PUT, OpType.GET, OpType.PUT,
            OpType.GET, OpType.PUT, OpType.GET, OpType.DELETE,
        ]

    def test_hindex_tracks_state_keys(self):
        driver = self.make_driver()
        driver.run()
        # after termination the hIndex entry is gone only if terminate
        # passed the event key; vIndex expiry uses state-key only.
        assert isinstance(driver.hindex, dict)

    def test_vindex_cleared_after_expiry(self):
        driver = self.make_driver()
        driver.run()
        # Only the unexpired second window may remain scheduled.
        assert len(driver.vindex) <= 1

    def test_machines_cleaned_up(self):
        driver = self.make_driver()
        driver.run()
        # The first window's machine fired and was removed.
        assert len(driver.machines) <= 1

    def test_late_events_dropped(self):
        events = [Event(b"k", t) for t in range(1, 402)]
        events.append(Event(b"k", 1))  # very late, delivered last
        driver = self.make_driver(events=events, interleave="round_robin")
        driver.run()
        assert driver.dropped_late_events == 1

    def test_source_count_mismatch(self):
        with pytest.raises(ValueError, match="source"):
            Driver(tumbling_window_model(5000), [[], []])

    def test_watermark_frequency_from_config(self):
        driver = self.make_driver(watermark_frequency=10)
        assert driver._watermark_frequency() == 10

    def test_machine_for_reuses_instances(self):
        driver = self.make_driver()
        m1 = driver.machine_for(b"sk", IncrementalWindowMachine, b"k", 100)
        m2 = driver.machine_for(b"sk", IncrementalWindowMachine, b"k", 100)
        assert m1 is m2

    def test_terminate_machine_idempotent(self):
        driver = self.make_driver()
        driver.machine_for(b"sk", IncrementalWindowMachine, b"k", 100)
        driver.terminate_machine(b"sk", b"k")
        before = len(driver.workload)
        driver.terminate_machine(b"sk", b"k")
        assert len(driver.workload) == before

    def test_reschedule_moves_expiry(self):
        driver = self.make_driver()
        driver.machine_for(b"sk", IncrementalWindowMachine, b"k", 100)
        driver.reschedule(b"sk", 100, 200)
        assert 100 not in driver.vindex
        assert b"sk" in driver.vindex[200]

    def test_drop_machine_emits_nothing(self):
        driver = self.make_driver()
        driver.machine_for(b"sk", IncrementalWindowMachine, b"k", 100)
        before = len(driver.workload)
        driver.drop_machine(b"sk", b"k")
        assert len(driver.workload) == before
        assert b"sk" not in driver.machines


class TestCustomOperatorExtension:
    def test_user_defined_model(self):
        """The three-method extension API of section 5.4."""

        class EveryEventDeleter(OperatorModel):
            def assign_state_machines(self, event, input_index, driver):
                driver.ctx.emit(OpType.DELETE, event.key)
                return []

        events = [Event(b"a", 1), Event(b"b", 2)]
        driver = Driver(EveryEventDeleter(), [events], GadgetConfig())
        trace = driver.run()
        assert [a.op for a in trace] == [OpType.DELETE, OpType.DELETE]

    def test_model_on_watermark_hook(self):
        calls = []

        class WatermarkSpy(OperatorModel):
            def assign_state_machines(self, event, input_index, driver):
                return []

            def on_watermark(self, timestamp, driver):
                calls.append(timestamp)

        events = [Event(b"a", t) for t in range(1, 250)]
        config = GadgetConfig(sources=[SourceConfig(watermark_frequency=100)])
        Driver(WatermarkSpy(), [events], config).run()
        assert len(calls) >= 2
