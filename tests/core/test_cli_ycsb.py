"""Tests for the `ycsb` CLI subcommand."""

import pytest

from repro.cli import main
from repro.trace import AccessTrace, OpType
from repro.ycsb.properties import CORE_WORKLOAD_FILES


class TestYCSBCommand:
    def test_preset_generation(self, tmp_path, capsys):
        out = str(tmp_path / "a.gdgt")
        code = main([
            "ycsb", "-o", out, "--preset", "A",
            "--records", "50", "--operations", "500",
        ])
        assert code == 0
        trace = AccessTrace.load(out)
        assert len(trace) >= 500
        assert "YCSB requests" in capsys.readouterr().out

    def test_properties_file(self, tmp_path):
        props = tmp_path / "workloadf"
        props.write_text(
            CORE_WORKLOAD_FILES["workloadf"]
            + "recordcount=30\noperationcount=400\n"
        )
        out = str(tmp_path / "f.gdgt")
        assert main(["ycsb", "-o", out, "--properties", str(props)]) == 0
        trace = AccessTrace.load(out)
        # rmw emits two requests per operation: more than 400 entries.
        assert len(trace) > 400
        assert trace.op_counts()[OpType.DELETE] == 0

    def test_generated_trace_is_replayable(self, tmp_path, capsys):
        out = str(tmp_path / "d.gdgt")
        main(["ycsb", "-o", out, "--preset", "D",
              "--records", "40", "--operations", "300"])
        capsys.readouterr()
        assert main(["replay", out, "--store", "memory"]) == 0
        assert "throughput" in capsys.readouterr().out

    def test_unknown_preset(self, tmp_path):
        with pytest.raises(SystemExit):
            main(["ycsb", "-o", str(tmp_path / "x"), "--preset", "Z"])
