"""Additional replayer behaviours: GC control, background exclusion,
value synthesis determinism."""

import gc

from repro.core import (
    GadgetConfig,
    SourceConfig,
    TraceReplayer,
    generate_workload_trace,
    synthesize_value,
)
from repro.kvstores import create_connector
from repro.trace import AccessTrace, OpType


def small_trace(n=300):
    return generate_workload_trace(
        "continuous-aggregation", [SourceConfig(num_events=n)]
    )


class TestGCControl:
    def test_gc_restored_after_replay(self):
        assert gc.isenabled()
        TraceReplayer(create_connector("memory")).replay(small_trace())
        assert gc.isenabled()

    def test_gc_left_disabled_if_it_was(self):
        gc.disable()
        try:
            TraceReplayer(create_connector("memory")).replay(small_trace())
            assert not gc.isenabled()
        finally:
            gc.enable()

    def test_gc_control_can_be_turned_off(self):
        replayer = TraceReplayer(create_connector("memory"), disable_gc=False)
        replayer.replay(small_trace())
        assert gc.isenabled()


class TestBackgroundExclusion:
    def test_latencies_never_negative(self):
        # Force plenty of flush/compaction background work.
        connector = create_connector("rocksdb", write_buffer_size=2048)
        result = TraceReplayer(connector).replay(small_trace(2000))
        assert all(v >= 0 for v in result.all_latencies())

    def test_background_excluded_from_tail(self):
        """With background exclusion, the write tail should not contain
        whole flush+compaction cycles (which cost milliseconds at this
        buffer size)."""
        connector = create_connector("rocksdb", write_buffer_size=4096)
        result = TraceReplayer(connector).replay(small_trace(3000))
        assert connector.store.stats.flushes > 0
        assert result.latency_percentile(99.9) < 3_000  # us


class TestSynthesizeValue:
    def test_deterministic_content(self):
        assert synthesize_value(16) == synthesize_value(16)

    def test_distinct_sizes_distinct_objects(self):
        assert synthesize_value(8) != synthesize_value(9)


class TestReplayEdgeCases:
    def test_empty_trace(self):
        result = TraceReplayer(create_connector("memory")).replay(AccessTrace())
        assert result.operations == 0
        assert result.latency_percentile(99) == 0.0

    def test_trace_with_only_deletes(self):
        trace = AccessTrace()
        for i in range(50):
            trace.record(OpType.DELETE, f"k{i}".encode())
        result = TraceReplayer(create_connector("rocksdb")).replay(trace)
        assert result.operations == 50

    def test_throughput_positive(self):
        result = TraceReplayer(create_connector("memory")).replay(small_trace())
        assert result.throughput_ops > 0
        assert result.elapsed_s > 0
