"""Gadget-vs-engine fidelity on the Taxi and Azure streams.

`test_fidelity.py` pins Borg; these tests confirm the harness is not
tuned to one input's characteristics (Taxi is sparse and delete-heavy,
Azure is bursty).
"""

import pytest

from repro.core import GadgetConfig, generate_workload_trace
from repro.streaming import (
    ContinuousAggregation,
    ContinuousJoinOperator,
    RuntimeConfig,
    SessionWindowOperator,
    SlidingWindows,
    TumblingWindows,
    WindowOperator,
    run_operator,
)

GCFG = GadgetConfig(interleave="time")
RCFG = RuntimeConfig(interleave="time")


def check_exact(real, gadget):
    assert real.key_sequence() == gadget.key_sequence()
    assert [a.op for a in real] == [a.op for a in gadget]


class TestTaxiFidelity:
    def test_tumbling_incremental(self, taxi_streams):
        trips, _ = taxi_streams
        real = run_operator(WindowOperator(TumblingWindows(5000)), [trips], RCFG)
        gadget = generate_workload_trace("tumbling-incremental", [trips], GCFG)
        check_exact(real, gadget)

    def test_sliding_holistic(self, taxi_streams):
        trips, _ = taxi_streams
        real = run_operator(
            WindowOperator(SlidingWindows(5000, 1000), holistic=True),
            [trips], RCFG,
        )
        gadget = generate_workload_trace("sliding-holistic", [trips], GCFG)
        check_exact(real, gadget)

    def test_continuous_join_close(self, taxi_streams):
        trips, fares = taxi_streams
        real = run_operator(
            ContinuousJoinOperator({"dropoff"}), [trips, fares], RCFG
        )
        gadget = generate_workload_trace("continuous-join", [trips, fares], GCFG)
        assert abs(len(real) - len(gadget)) <= 0.02 * len(real)
        real_fracs = real.op_fractions()
        gadget_fracs = gadget.op_fractions()
        for op, fraction in real_fracs.items():
            assert abs(fraction - gadget_fracs[op]) < 0.02

    def test_session_delete_heavy_composition(self, taxi_streams):
        trips, _ = taxi_streams
        gadget = generate_workload_trace("session-incremental", [trips], GCFG)
        from repro.trace import OpType

        fractions = gadget.op_fractions()
        # Taxi rides exceed the 2min gap: sessions fire constantly.
        assert fractions[OpType.DELETE] > 0.2


class TestAzureFidelity:
    def test_tumbling_incremental(self, azure_stream):
        real = run_operator(
            WindowOperator(TumblingWindows(5000)), [azure_stream], RCFG
        )
        gadget = generate_workload_trace(
            "tumbling-incremental", [azure_stream], GCFG
        )
        check_exact(real, gadget)

    def test_session_incremental_close(self, azure_stream):
        real = run_operator(SessionWindowOperator(120_000), [azure_stream], RCFG)
        gadget = generate_workload_trace(
            "session-incremental", [azure_stream], GCFG
        )
        assert abs(len(real) - len(gadget)) <= 0.02 * len(real)

    def test_aggregation_exact(self, azure_stream):
        real = run_operator(ContinuousAggregation(), [azure_stream], RCFG)
        gadget = generate_workload_trace(
            "continuous-aggregation", [azure_stream], GCFG
        )
        assert real.key_sequence() == gadget.key_sequence()
