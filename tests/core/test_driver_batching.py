"""Driver batching (Algorithm 1's getNext) must not affect the trace."""

import pytest

from repro.core import Driver, GadgetConfig, SourceConfig, make_workload
from repro.datasets import BorgConfig, generate_borg


@pytest.fixture(scope="module")
def tasks():
    stream, _ = generate_borg(BorgConfig(target_events=2000, seed=2))
    return stream


@pytest.mark.parametrize("batch_size", [1, 7, 64, 100_000])
def test_trace_independent_of_batch_size(tasks, batch_size):
    reference = Driver(
        make_workload("tumbling-incremental"),
        [tasks],
        GadgetConfig(interleave="time"),
        batch_size=64,
    ).run()
    trace = Driver(
        make_workload("tumbling-incremental"),
        [tasks],
        GadgetConfig(interleave="time"),
        batch_size=batch_size,
    ).run()
    assert trace.accesses == reference.accesses


def test_watermarks_fire_within_batches(tasks):
    """Watermark frequency is honoured even when it divides a batch."""
    driver = Driver(
        make_workload("tumbling-incremental"),
        [tasks],
        GadgetConfig(
            sources=[SourceConfig(watermark_frequency=50)], interleave="time"
        ),
        batch_size=1000,
    )
    trace = driver.run()
    from repro.trace import OpType

    assert trace.op_counts()[OpType.DELETE] > 0  # windows fired mid-batch
