"""Tests for the Gadget event generator and config surface."""

import pytest

from repro.core import (
    ArrivalConfig,
    EventGenerator,
    InputReplayer,
    KeyConfig,
    SourceConfig,
    ValueConfig,
)
from repro.core.generator import as_source
from repro.events import Event


class TestEventGenerator:
    def test_event_count(self):
        events = EventGenerator(SourceConfig(num_events=500)).generate()
        assert len(events) == 500

    def test_poisson_timestamps_increase(self):
        events = EventGenerator(SourceConfig(num_events=200)).generate()
        times = [e.timestamp for e in events]
        assert times == sorted(times)
        assert times[0] >= 1

    def test_constant_arrivals_evenly_spaced(self):
        config = SourceConfig(
            num_events=10,
            arrivals=ArrivalConfig(process="constant", mean_interarrival_ms=7),
        )
        events = EventGenerator(config).generate()
        gaps = {b.timestamp - a.timestamp for a, b in zip(events, events[1:])}
        assert gaps == {7}

    def test_unknown_arrival_process(self):
        config = SourceConfig(arrivals=ArrivalConfig(process="weibull"))
        with pytest.raises(ValueError):
            EventGenerator(config).generate()

    def test_deterministic_per_seed(self):
        a = EventGenerator(SourceConfig(num_events=100, seed=4)).generate()
        b = EventGenerator(SourceConfig(num_events=100, seed=4)).generate()
        assert a == b

    def test_key_space_bounded(self):
        config = SourceConfig(num_events=2000, keys=KeyConfig(num_keys=10))
        events = EventGenerator(config).generate()
        assert len({e.key for e in events}) <= 10

    def test_key_size(self):
        config = SourceConfig(num_events=10, keys=KeyConfig(key_size=24))
        events = EventGenerator(config).generate()
        assert all(len(e.key) == 24 for e in events)

    def test_zipfian_keys_skewed(self):
        config = SourceConfig(
            num_events=5000, keys=KeyConfig(num_keys=100, distribution="zipfian")
        )
        events = EventGenerator(config).generate()
        counts = {}
        for event in events:
            counts[event.key] = counts.get(event.key, 0) + 1
        ordered = sorted(counts.values(), reverse=True)
        assert ordered[0] > 3 * ordered[-1]

    def test_constant_value_size(self):
        config = SourceConfig(num_events=10, values=ValueConfig(size=33))
        events = EventGenerator(config).generate()
        assert all(e.value_size == 33 for e in events)

    def test_uniform_value_sizes(self):
        config = SourceConfig(
            num_events=200,
            values=ValueConfig(distribution="uniform", min_size=5, max_size=9),
        )
        events = EventGenerator(config).generate()
        sizes = {e.value_size for e in events}
        assert sizes <= set(range(5, 10))
        assert len(sizes) > 1

    def test_invalid_value_distribution(self):
        with pytest.raises(ValueError):
            EventGenerator(
                SourceConfig(values=ValueConfig(distribution="normal"))
            )

    def test_out_of_order_fraction(self):
        config = SourceConfig(
            num_events=2000, out_of_order_fraction=0.3, max_lateness_ms=500
        )
        events = EventGenerator(config).generate()
        times = [e.timestamp for e in events]
        assert any(a > b for a, b in zip(times, times[1:]))

    def test_ecdf_keys(self):
        config = SourceConfig(
            num_events=1000,
            keys=KeyConfig(
                num_keys=3,
                distribution="ecdf",
                ecdf_points=[(0.8, 0), (0.9, 1), (1.0, 2)],
            ),
        )
        events = EventGenerator(config).generate()
        counts = {}
        for event in events:
            counts[event.key] = counts.get(event.key, 0) + 1
        ordered = sorted(counts.items())
        assert ordered[0][1] > 600  # ~80% on key 0

    def test_ecdf_validation(self):
        with pytest.raises(ValueError):
            EventGenerator(
                SourceConfig(
                    keys=KeyConfig(distribution="ecdf", ecdf_points=[(0.5, 0)])
                )
            )


class TestAsSource:
    def test_source_config(self):
        assert isinstance(as_source(SourceConfig()), EventGenerator)

    def test_event_list(self):
        replayer = as_source([Event(b"k", 1)])
        assert isinstance(replayer, InputReplayer)
        assert replayer.generate() == [Event(b"k", 1)]

    def test_passthrough(self):
        replayer = InputReplayer([])
        assert as_source(replayer) is replayer

    def test_rejects_other_types(self):
        with pytest.raises(TypeError):
            as_source(42)
