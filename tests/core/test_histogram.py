"""Tests for the log-bucketed latency histogram."""

import random

import pytest

from repro.core.histogram import LatencyHistogram


class TestRecording:
    def test_empty(self):
        histogram = LatencyHistogram()
        assert histogram.total == 0
        assert histogram.percentile(50) == 0
        assert histogram.mean == 0.0

    def test_single_value(self):
        histogram = LatencyHistogram()
        histogram.record(17)
        assert histogram.percentile(50) == 17
        assert histogram.min_value == 17
        assert histogram.max_value == 17

    def test_small_values_exact(self):
        histogram = LatencyHistogram(subbuckets=32)
        for value in range(32):
            histogram.record(value)
        for p, expected in ((50, 16), (100, 31)):
            assert abs(histogram.percentile(p) - expected) <= 1

    def test_negative_clamped(self):
        histogram = LatencyHistogram()
        histogram.record(-5)
        assert histogram.min_value == 0

    def test_mean(self):
        histogram = LatencyHistogram()
        histogram.record_many([10, 20, 30])
        assert histogram.mean == pytest.approx(20.0)

    def test_invalid_subbuckets(self):
        with pytest.raises(ValueError):
            LatencyHistogram(subbuckets=3)


class TestAccuracy:
    def test_bounded_relative_error(self):
        """Percentiles must be within 1/subbuckets of exact values."""
        rng = random.Random(3)
        values = [int(rng.lognormvariate(8, 2)) for _ in range(20_000)]
        histogram = LatencyHistogram(subbuckets=64)
        histogram.record_many(values)
        exact = sorted(values)
        for percent in (50.0, 90.0, 99.0, 99.9):
            rank = min(len(exact) - 1, int(round(percent / 100 * len(exact))))
            expected = exact[rank]
            approx = histogram.percentile(percent)
            assert abs(approx - expected) <= max(2, expected / 16), percent

    def test_max_is_exact(self):
        rng = random.Random(5)
        values = [rng.randrange(10**9) for _ in range(1000)]
        histogram = LatencyHistogram()
        histogram.record_many(values)
        assert histogram.percentile(100) == max(values)

    def test_huge_values_saturate_safely(self):
        histogram = LatencyHistogram(max_exponent=10)
        histogram.record(2**50)
        assert histogram.total == 1
        assert histogram.percentile(50) <= 2**50


class TestMerge:
    def test_merge_totals(self):
        a, b = LatencyHistogram(), LatencyHistogram()
        a.record_many([1, 2, 3])
        b.record_many([1000, 2000])
        a.merge(b)
        assert a.total == 5
        assert a.max_value == 2000
        assert a.min_value == 1

    def test_merge_geometry_mismatch(self):
        with pytest.raises(ValueError):
            LatencyHistogram(subbuckets=32).merge(LatencyHistogram(subbuckets=64))


class TestDictExport:
    def test_round_trip_preserves_everything(self):
        histogram = LatencyHistogram()
        histogram.record_many([1, 7, 1500, 1500, 250_000, 9_000_000])
        rebuilt = LatencyHistogram.from_dict(histogram.to_dict())
        assert rebuilt.total == histogram.total
        assert rebuilt.sum_values == histogram.sum_values
        assert rebuilt.min_value == histogram.min_value
        assert rebuilt.max_value == histogram.max_value
        assert rebuilt.nonzero_buckets() == histogram.nonzero_buckets()
        for percent in (50.0, 90.0, 99.0, 99.9):
            assert rebuilt.percentile(percent) == histogram.percentile(percent)

    def test_round_trip_keeps_geometry(self):
        histogram = LatencyHistogram(subbuckets=64, max_exponent=30)
        histogram.record(12345)
        rebuilt = LatencyHistogram.from_dict(histogram.to_dict())
        assert rebuilt.subbuckets == 64
        assert rebuilt.max_exponent == 30

    def test_rebuilt_histograms_merge(self):
        """The reason to_dict exists: sampler intervals re-aggregate."""
        a, b = LatencyHistogram(), LatencyHistogram()
        a.record_many([100, 200, 300])
        b.record_many([5000, 6000])
        merged = LatencyHistogram.from_dict(a.to_dict())
        merged.merge(LatencyHistogram.from_dict(b.to_dict()))
        direct = LatencyHistogram()
        direct.record_many([100, 200, 300, 5000, 6000])
        assert merged.total == direct.total
        assert merged.percentile(50.0) == direct.percentile(50.0)
        assert merged.percentile(99.0) == direct.percentile(99.0)

    def test_empty_histogram_round_trips(self):
        rebuilt = LatencyHistogram.from_dict(LatencyHistogram().to_dict())
        assert rebuilt.total == 0
        assert rebuilt.percentile(99.0) == 0

    def test_dict_counts_are_sparse(self):
        histogram = LatencyHistogram()
        histogram.record(1000)
        data = histogram.to_dict()
        assert len(data["counts"]) == 1


class TestReplayerIntegration:
    def test_histogram_mode(self):
        from repro.core import SourceConfig, TraceReplayer, generate_workload_trace
        from repro.kvstores import create_connector

        trace = generate_workload_trace(
            "continuous-aggregation", [SourceConfig(num_events=400)]
        )
        replayer = TraceReplayer(
            create_connector("memory"), use_histograms=True
        )
        result = replayer.replay(trace)
        assert result.all_latencies() == []  # no per-sample lists
        assert sum(h.total for h in result.histograms.values()) == len(trace)
        assert result.latency_percentile(50) > 0
        assert result.latency_percentile(99.9) >= result.latency_percentile(50)
        assert result.summary()["p50_us"] > 0

    def test_histogram_summary_buckets(self):
        histogram = LatencyHistogram()
        histogram.record_many([500, 1500, 1_000_000])
        buckets = histogram.nonzero_buckets()
        assert sum(count for _, count in buckets) == 3
        summary = histogram.summary()
        assert summary["max"] == pytest.approx(1000.0)


class TestFromDictValidation:
    """Malformed payloads (hand-edited JSONL, version skew, worker bugs)
    must fail loudly with context, never corrupt silently."""

    def base(self, **overrides):
        histogram = LatencyHistogram()
        histogram.record_many([100, 200, 3000])
        data = histogram.to_dict()
        data.update(overrides)
        return data

    def test_out_of_range_bucket_index(self):
        data = self.base()
        data["counts"] = {"999999": 3}
        with pytest.raises(ValueError, match="bucket index"):
            LatencyHistogram.from_dict(data)

    def test_negative_bucket_index(self):
        data = self.base()
        data["counts"] = {"-1": 3}
        with pytest.raises(ValueError, match="bucket index"):
            LatencyHistogram.from_dict(data)

    def test_non_integer_index(self):
        data = self.base()
        data["counts"] = {"not-a-number": 3}
        with pytest.raises(ValueError, match="integer"):
            LatencyHistogram.from_dict(data)

    def test_negative_count(self):
        data = self.base()
        data["counts"] = {"10": -5}
        with pytest.raises(ValueError, match="count"):
            LatencyHistogram.from_dict(data)

    def test_total_must_match_counts(self):
        data = self.base(total=999)
        with pytest.raises(ValueError, match="total"):
            LatencyHistogram.from_dict(data)

    def test_negative_sum(self):
        data = self.base(sum=-1)
        with pytest.raises(ValueError):
            LatencyHistogram.from_dict(data)

    def test_empty_histogram_invariants(self):
        data = LatencyHistogram().to_dict()
        data["min"] = 7  # empty histograms must keep min=-1
        with pytest.raises(ValueError):
            LatencyHistogram.from_dict(data)

    def test_max_below_min(self):
        data = self.base()
        data["min"], data["max"] = 500, 100
        with pytest.raises(ValueError):
            LatencyHistogram.from_dict(data)
