"""Gadget-vs-engine fidelity under out-of-order delivery.

Out-of-order events trigger the paths in-order streams never reach:
late-event drops, session back-extension (rekeys), and session merges.
Both systems consume the *same* pre-disordered delivery sequence, so
their access streams should still agree.
"""

import pytest

from repro.core import GadgetConfig, SourceConfig, generate_workload_trace
from repro.streaming import (
    RuntimeConfig,
    SessionWindowOperator,
    TumblingWindows,
    WindowOperator,
    apply_disorder,
    run_operator,
)

GCFG = GadgetConfig(
    sources=[SourceConfig()], interleave="round_robin"
)
RCFG = RuntimeConfig(interleave="round_robin")


@pytest.fixture(scope="module")
def disordered_tasks(borg_streams):
    tasks, _ = borg_streams
    pairs = [(event, 0) for event in tasks]
    shuffled = apply_disorder(pairs, fraction=0.1, max_delay_ms=3_000, seed=7)
    return [event for event, _ in shuffled]


class TestDisorderFidelity:
    def test_tumbling_incremental_exact(self, disordered_tasks):
        operator = WindowOperator(TumblingWindows(5000))
        real = run_operator(operator, [disordered_tasks], RCFG)
        gadget = generate_workload_trace(
            "tumbling-incremental", [disordered_tasks], GCFG
        )
        assert real.key_sequence() == gadget.key_sequence()
        assert [a.op for a in real] == [a.op for a in gadget]
        assert operator.dropped_late_events > 0  # disorder had an effect

    def test_session_incremental_close(self, disordered_tasks):
        operator = SessionWindowOperator(120_000)
        real = run_operator(operator, [disordered_tasks], RCFG)
        gadget = generate_workload_trace(
            "session-incremental", [disordered_tasks], GCFG
        )
        assert abs(len(real) - len(gadget)) <= 0.02 * len(real)
        real_fracs = real.op_fractions()
        gadget_fracs = gadget.op_fractions()
        for op, fraction in real_fracs.items():
            assert abs(fraction - gadget_fracs[op]) < 0.02, op

    def test_session_holistic_close(self, disordered_tasks):
        operator = SessionWindowOperator(120_000, holistic=True)
        real = run_operator(operator, [disordered_tasks], RCFG)
        gadget = generate_workload_trace(
            "session-holistic", [disordered_tasks], GCFG
        )
        assert abs(len(real) - len(gadget)) <= 0.02 * len(real)

    def test_generator_disorder_feeds_harness(self):
        """Gadget's own generator produces out-of-order streams that
        flow through the driver and produce late drops."""
        from repro.core import Driver, make_workload

        source = SourceConfig(
            num_events=5_000,
            out_of_order_fraction=0.2,
            max_lateness_ms=0,  # no allowed lateness: drops expected
            seed=3,
        )
        # Give the events real disorder relative to watermarks.
        generator_source = SourceConfig(
            num_events=5_000,
            out_of_order_fraction=0.2,
            max_lateness_ms=2_000,
            seed=3,
        )
        driver = Driver(
            make_workload("tumbling-incremental"),
            [generator_source],
            GadgetConfig(sources=[source], interleave="round_robin"),
        )
        driver.run()
        assert driver.dropped_late_events > 0
