"""Crash recovery with background maintenance in flight.

Background workers abort at *checkpoints* -- the instant before an
sstable install or a manifest commit -- so a kill can land while a
flush or compaction is half-built.  Recovery must then reconstruct
every acknowledged write from the last committed manifest plus the
per-memtable WAL segments (which are only deleted after the manifest
that covers them commits).

Two layers of coverage:

* the full :func:`evaluate_crash_recovery` harness with
  ``store_config={"background": True, ...}``, for both leveled and
  tiered policies, with the crash landing mid-background-work via
  ``background_delay_s``
* direct ``abandon()`` tests that pin the kill to a specific worker
  state (flush busy / compaction busy) and verify contents after
  recovery
"""

import time

import pytest

from repro.core import SourceConfig, generate_workload_trace
from repro.faults import evaluate_crash_recovery
from repro.kvstores.lsm import LSMConfig, RocksLSMStore
from repro.kvstores.storage import MemoryStorage

TINY_BG = dict(
    write_buffer_size=2048,
    block_cache_size=8192,
    level_base_bytes=8192,
    target_file_size=4096,
    max_levels=4,
    l0_compaction_trigger=2,
    background=True,
    #: keeps a flush/compaction in flight for ~10ms, so a mid-trace
    #: crash reliably lands during background work
    background_delay_s=0.01,
)


@pytest.fixture(scope="module")
def trace():
    return generate_workload_trace(
        "tumbling-incremental", [SourceConfig(num_events=2_000, seed=9)]
    )


class TestHarnessCrashMidMaintenance:
    @pytest.mark.parametrize("policy", ["leveled", "tiered"])
    def test_crash_during_background_maintenance(self, trace, policy):
        config = dict(TINY_BG, compaction_policy=policy)
        result = evaluate_crash_recovery(
            "rocksdb", trace, crash_at=len(trace) // 2, store_config=config
        )
        assert result.recovered_ok
        assert result.mismatches == 0
        assert result.keys_checked > 0

    def test_crash_at_various_points(self, trace):
        """Sweep crash points so kills land before, during, and after
        the first waves of flushes/compactions."""
        for crash_at in (64, len(trace) // 4, len(trace) - 64):
            result = evaluate_crash_recovery(
                "rocksdb", trace, crash_at=crash_at, store_config=dict(TINY_BG)
            )
            assert result.recovered_ok, f"crash_at={crash_at}"
            assert result.mismatches == 0, f"crash_at={crash_at}"

    @pytest.mark.parametrize("policy", ["leveled", "tiered"])
    def test_lethe_and_policies_via_store_config(self, trace, policy):
        # lethe only accepts leveled; rocksdb takes the whole zoo
        result = evaluate_crash_recovery(
            "lethe" if policy == "leveled" else "rocksdb",
            trace,
            crash_at=len(trace) // 3,
            store_config=dict(TINY_BG, compaction_policy=policy),
        )
        assert result.recovered_ok
        assert result.mismatches == 0


def wait_for(predicate, timeout_s=2.0):
    deadline = time.perf_counter() + timeout_s
    while time.perf_counter() < deadline:
        if predicate():
            return True
        time.sleep(0.001)
    return False


class TestAbandonMidWorker:
    def fill(self, store, n=400):
        written = {}
        for i in range(n):
            key, value = b"k%03d" % (i % 80), b"v%04d" % i
            store.put(key, value)
            written[key] = value
        return written

    def test_kill_during_inflight_flush(self):
        storage = MemoryStorage()
        store = RocksLSMStore(
            LSMConfig(**dict(TINY_BG, background_delay_s=0.05)), storage=storage
        )
        written = self.fill(store)
        assert wait_for(lambda: store._bg.flush_busy), "no flush in flight"
        store.abandon()  # kill while the flush worker holds a memtable

        revived = RocksLSMStore(
            LSMConfig(**dict(TINY_BG, background=False)), storage=storage
        )
        revived.recover()
        for key, value in written.items():
            assert revived.get(key) == value
        assert revived.scrub().clean

    def test_kill_during_inflight_compaction(self):
        storage = MemoryStorage()
        store = RocksLSMStore(
            LSMConfig(**dict(TINY_BG, background_delay_s=0.05)), storage=storage
        )
        written = self.fill(store, n=800)
        assert wait_for(lambda: store._bg.compact_busy), "no compaction in flight"
        store.abandon()  # kill while the compaction worker merges runs

        revived = RocksLSMStore(
            LSMConfig(**dict(TINY_BG, background=False)), storage=storage
        )
        revived.recover()
        for key, value in written.items():
            assert revived.get(key) == value
        assert revived.scrub().clean

    def test_abandoned_work_is_dropped_not_half_installed(self):
        """After a kill, storage holds only committed state: recovery
        finds a consistent manifest and replayable WAL segments, never
        a partially installed sstable."""
        storage = MemoryStorage()
        store = RocksLSMStore(
            LSMConfig(**dict(TINY_BG, background_delay_s=0.02)), storage=storage
        )
        self.fill(store)
        store.abandon()

        revived = RocksLSMStore(
            LSMConfig(**dict(TINY_BG, background=False)), storage=storage
        )
        revived.recover()
        report = revived.scrub()
        assert report.clean
        # WAL replay restored whatever the killed flush never installed
        assert revived.get(b"k000") is not None

    def test_workers_do_not_outlive_abandon(self):
        store = RocksLSMStore(LSMConfig(**TINY_BG), storage=MemoryStorage())
        self.fill(store)
        bg = store._bg
        store.abandon()
        assert not bg.flush_thread.is_alive()
        assert not bg.compact_thread.is_alive()
