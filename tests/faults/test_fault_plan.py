"""Fault plan: determinism, config round-trips, schedule semantics."""

import json

import pytest

from repro.faults import FaultPlan, InjectedCrash, OpFaults, load_fault_plan


class TestDeterminism:
    def test_same_seed_same_schedule(self):
        plan = FaultPlan(
            seed=42,
            transient_error_rate=0.05,
            error_burst=3,
            latency_spike_rate=0.02,
            latency_spike_ms=2.0,
            stall_every=100,
            stall_ms=10.0,
        )
        assert plan.preview(2_000) == plan.preview(2_000)

    def test_two_schedules_from_one_plan_agree(self):
        plan = FaultPlan(seed=9, transient_error_rate=0.1, latency_spike_rate=0.1)
        first = [plan.schedule().next_op() for _ in range(1)]  # fresh each time
        a, b = plan.schedule(), plan.schedule()
        assert [a.next_op() for _ in range(500)] == [b.next_op() for _ in range(500)]
        assert first[0] == plan.preview(1)[0]

    def test_different_seeds_differ(self):
        kwargs = dict(transient_error_rate=0.05, latency_spike_rate=0.05)
        a = FaultPlan(seed=1, **kwargs).preview(2_000)
        b = FaultPlan(seed=2, **kwargs).preview(2_000)
        assert a != b

    def test_schedule_is_plan_independent_of_consumption_chunks(self):
        plan = FaultPlan(seed=3, transient_error_rate=0.2)
        schedule = plan.schedule()
        chunked = [schedule.next_op() for _ in range(100)]
        assert chunked == plan.preview(100)


class TestScheduleSemantics:
    def test_crash_at_fires_exactly_once_at_index(self):
        plan = FaultPlan(seed=0, crash_at=7)
        decisions = plan.preview(10)
        assert [d.crash for d in decisions] == [i == 7 for i in range(10)]

    def test_burst_size_respected(self):
        plan = FaultPlan(seed=5, transient_error_rate=1.0, error_burst=4)
        decision = plan.preview(1)[0]
        assert decision.transient_errors == 4

    def test_stall_every_n_ops(self):
        plan = FaultPlan(seed=0, stall_every=10, stall_ms=5.0)
        decisions = plan.preview(31)
        stalled = [i for i, d in enumerate(decisions) if d.delay_s > 0]
        assert stalled == [10, 20, 30]
        assert decisions[10].delay_s == pytest.approx(0.005)

    def test_zero_rates_mean_no_faults(self):
        assert all(not d.any for d in FaultPlan(seed=1).preview(1_000))


class TestConfig:
    def test_dict_round_trip(self):
        plan = FaultPlan(seed=11, transient_error_rate=0.01, stall_every=50)
        assert FaultPlan.from_dict(plan.to_dict()) == plan

    def test_load_json_file(self, tmp_path):
        path = tmp_path / "faults.json"
        path.write_text(json.dumps({"seed": 4, "latency_spike_rate": 0.5}))
        plan = load_fault_plan(str(path))
        assert plan.seed == 4
        assert plan.latency_spike_rate == 0.5

    def test_unknown_key_rejected(self):
        with pytest.raises(ValueError, match="unknown fault-plan keys"):
            FaultPlan.from_dict({"seed": 1, "latencey_spike_rate": 0.1})

    def test_non_object_json_rejected(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("[1, 2, 3]")
        with pytest.raises(ValueError, match="JSON object"):
            FaultPlan.load(str(path))

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"transient_error_rate": 1.5},
            {"latency_spike_rate": -0.1},
            {"error_burst": 0},
            {"stall_every": -1},
            {"crash_at": -5},
        ],
    )
    def test_invalid_values_rejected(self, kwargs):
        with pytest.raises(ValueError):
            FaultPlan(**kwargs)


class TestOpFaults:
    def test_any_flag(self):
        assert not OpFaults().any
        assert OpFaults(transient_errors=1).any
        assert OpFaults(delay_s=0.001).any
        assert OpFaults(crash=True).any


class TestPerShardDerivation:
    def test_for_shard_is_deterministic(self):
        plan = FaultPlan(seed=42, transient_error_rate=0.05)
        assert plan.for_shard(2).preview(500) == plan.for_shard(2).preview(500)

    def test_shards_draw_different_schedules(self):
        plan = FaultPlan(seed=42, transient_error_rate=0.2)
        assert plan.for_shard(0).preview(500) != plan.for_shard(1).preview(500)

    def test_derivation_is_stable_across_calls(self):
        """The exact derived seed is a contract: thread mode and
        process mode derive independently and must agree."""
        plan = FaultPlan(seed=7, transient_error_rate=0.1)
        assert plan.for_shard(3).seed == "7:shard3"

    def test_string_seeds_chain(self):
        plan = FaultPlan(seed="base", latency_spike_rate=0.1)
        assert plan.for_shard(1).seed == "base:shard1"

    def test_other_fields_survive_derivation(self):
        plan = FaultPlan(seed=1, transient_error_rate=0.5, error_burst=4,
                         stall_every=10, stall_ms=2.0)
        derived = plan.for_shard(0)
        assert derived.transient_error_rate == 0.5
        assert derived.error_burst == 4
        assert derived.stall_every == 10

    def test_negative_shard_rejected(self):
        with pytest.raises(ValueError):
            FaultPlan(seed=1).for_shard(-1)
