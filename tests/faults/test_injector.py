"""Fault-injecting connector: schedule application and replay wiring."""

import pytest

from repro.core import SourceConfig, TraceReplayer, generate_workload_trace
from repro.faults import (
    FaultInjectingConnector,
    FaultPlan,
    InjectedCrash,
    RetryPolicy,
    TransientStoreError,
)
from repro.kvstores import InMemoryStore, connect


def no_sleep(_):
    pass


@pytest.fixture(scope="module")
def trace():
    return generate_workload_trace(
        "tumbling-incremental", [SourceConfig(num_events=1_500, seed=3)]
    )


class TestInjection:
    def test_transient_error_raised_then_op_succeeds(self):
        plan = FaultPlan(seed=1, transient_error_rate=1.0, error_burst=2)
        connector = FaultInjectingConnector(
            connect(InMemoryStore()), plan, sleep=no_sleep
        )
        with pytest.raises(TransientStoreError):
            connector.put(b"k", b"v")
        with pytest.raises(TransientStoreError):
            connector.put(b"k", b"v")
        connector.put(b"k", b"v")  # burst spent: the retry goes through
        assert connector.inner.get(b"k") == b"v"
        assert connector.injected.transient_errors == 2

    def test_retry_does_not_advance_schedule(self):
        """The crash must fire at its planned index even when earlier
        ops needed retries (regression: retries used to consume the
        next op's draw)."""
        plan = FaultPlan(
            seed=2, transient_error_rate=0.5, error_burst=2, crash_at=40
        )
        connector = FaultInjectingConnector(
            connect(InMemoryStore()), plan, sleep=no_sleep
        )
        executed = 0
        with pytest.raises(InjectedCrash) as excinfo:
            for i in range(100):
                while True:
                    try:
                        connector.put(f"k{i}".encode(), b"v")
                        break
                    except TransientStoreError:
                        continue
                executed += 1
        assert excinfo.value.op_index == 40
        assert executed == 40

    def test_crash_is_sticky(self):
        plan = FaultPlan(seed=0, crash_at=0)
        connector = FaultInjectingConnector(
            connect(InMemoryStore()), plan, sleep=no_sleep
        )
        for _ in range(3):
            with pytest.raises(InjectedCrash):
                connector.put(b"k", b"v")

    def test_latency_spikes_sleep_and_are_counted(self):
        plan = FaultPlan(seed=3, latency_spike_rate=1.0, latency_spike_ms=2.0)
        slept = []
        connector = FaultInjectingConnector(
            connect(InMemoryStore()), plan, sleep=slept.append
        )
        for i in range(10):
            connector.put(f"k{i}".encode(), b"v")
        assert connector.injected.latency_spikes == 10
        assert slept == pytest.approx([0.002] * 10)
        assert connector.injected.injected_delay_s == pytest.approx(0.02)

    def test_identical_schedules_across_two_stores(self, trace):
        """The evaluator's comparability invariant: two stores replayed
        under the same plan see the same fault timeline."""
        plan = FaultPlan(seed=7, transient_error_rate=0.02, error_burst=2,
                         latency_spike_rate=0.01)
        policy = RetryPolicy(max_attempts=4, base_delay_s=0.0, jitter=0.0)
        results = []
        for _ in range(2):
            replayer = TraceReplayer(
                connect(InMemoryStore()), fault_plan=plan, retry_policy=policy
            )
            results.append(replayer.replay(trace))
        a, b = results
        assert a.injected_faults == b.injected_faults > 0
        assert a.retries == b.retries > 0
        assert a.failed_ops == b.failed_ops == 0


class TestReplayerIntegration:
    def test_faulted_replay_contents_match_unfaulted(self, trace):
        plan = FaultPlan(seed=11, transient_error_rate=0.05, error_burst=3)
        policy = RetryPolicy(max_attempts=5, base_delay_s=0.0, jitter=0.0)
        plain_store, faulted_store = InMemoryStore(), InMemoryStore()
        TraceReplayer(connect(plain_store)).replay(trace)
        result = TraceReplayer(
            connect(faulted_store), fault_plan=plan, retry_policy=policy
        ).replay(trace)
        assert result.failed_ops == 0
        assert result.retries > 0
        for key in trace.unique_keys():
            assert faulted_store.get(key) == plain_store.get(key)

    def test_crash_stops_replay_at_index(self, trace):
        plan = FaultPlan(seed=0, crash_at=200)
        result = TraceReplayer(
            connect(InMemoryStore()), fault_plan=plan
        ).replay(trace)
        assert result.crashed_at == 200
        assert result.operations == 200

    def test_no_retry_policy_counts_failed_ops(self, trace):
        plan = FaultPlan(seed=13, transient_error_rate=0.05)
        result = TraceReplayer(
            connect(InMemoryStore()), fault_plan=plan
        ).replay(trace)
        assert result.failed_ops > 0
        assert result.failed_ops == result.injected_faults
        assert result.retries == 0

    def test_sharded_replay_under_faults(self, trace):
        from repro.core import ShardedReplayer

        plan = FaultPlan(seed=5, transient_error_rate=0.02, error_burst=2)
        policy = RetryPolicy(max_attempts=4, base_delay_s=0.0)
        replayer = ShardedReplayer(
            lambda: connect(InMemoryStore()),
            num_workers=2,
            fault_plan=plan,
            retry_policy=policy,
        )
        result = replayer.replay(trace)
        replayer.close()
        merged = result.merged_result()
        assert result.operations == len(trace)
        assert merged.injected_faults > 0
        assert merged.failed_ops == 0

    def test_sharded_replay_rejects_crash_plans(self):
        from repro.core import ShardedReplayer

        with pytest.raises(ValueError, match="crash"):
            ShardedReplayer(
                lambda: connect(InMemoryStore()),
                num_workers=2,
                fault_plan=FaultPlan(crash_at=10),
            )
