"""Disk-fault injection: plans, corrupting storage, recovery integration."""

import json
import random
import warnings

import pytest

from repro.faults import (
    CorruptingStorage,
    DiskFaultPlan,
    DiskFullError,
    FaultPlan,
    check_recoverable,
    evaluate_crash_recovery,
    flip_bits,
    load_disk_fault_plan,
    tear_blob,
)
from repro.kvstores import CorruptionError
from repro.kvstores.lsm.store import LSMConfig, RocksLSMStore
from repro.kvstores.storage import MemoryStorage
from repro.core import SourceConfig, generate_workload_trace

TINY_LSM = dict(
    write_buffer_size=4096,
    block_cache_size=8192,
    level_base_bytes=16384,
    target_file_size=8192,
    max_levels=4,
)


@pytest.fixture(scope="module")
def trace():
    return generate_workload_trace(
        "tumbling-incremental", [SourceConfig(num_events=2_000, seed=9)]
    )


class TestPrimitives:
    def test_flip_bits_changes_exactly_n_bits(self):
        data = bytes(range(256))
        flipped = flip_bits(data, random.Random(3), 4)
        assert len(flipped) == len(data)
        diff = sum(bin(a ^ b).count("1") for a, b in zip(data, flipped))
        assert diff == 4

    def test_flip_bits_empty_is_noop(self):
        assert flip_bits(b"", random.Random(0), 3) == b""

    def test_tear_blob_keeps_proper_prefix(self):
        data = bytes(range(100))
        torn = tear_blob(data, random.Random(5))
        assert 1 <= len(torn) < len(data)
        assert data.startswith(torn)


class TestDiskFaultPlan:
    def test_from_dict_rejects_unknown_keys(self):
        with pytest.raises(ValueError, match="unknown disk-fault-plan keys"):
            DiskFaultPlan.from_dict({"seed": 1, "bitflip_rate": 0.5})

    def test_rates_validated(self):
        with pytest.raises(ValueError, match="rate"):
            DiskFaultPlan(bit_flip_rate=1.5)

    def test_load_round_trip(self, tmp_path):
        plan = DiskFaultPlan(seed=3, bit_flip_rate=0.5, targets=("sst-*",))
        path = tmp_path / "plan.json"
        path.write_text(json.dumps(plan.to_dict()))
        loaded = load_disk_fault_plan(str(path))
        assert loaded == plan

    def test_shipped_config_loads(self):
        plan = load_disk_fault_plan("configs/disk_faults.json")
        assert plan.seed == 7
        assert plan.matches("sst-00000001")
        assert not plan.matches("unrelated-blob")

    def test_fate_is_pure_and_seeded(self):
        plan = DiskFaultPlan(seed=11, bit_flip_rate=0.5, torn_write_rate=0.2)
        fates = [plan.fate(f"blob-{i}") for i in range(50)]
        assert fates == [plan.fate(f"blob-{i}") for i in range(50)]
        assert any(f is not None for f in fates)
        other = DiskFaultPlan(seed=12, bit_flip_rate=0.5, torn_write_rate=0.2)
        assert fates != [other.fate(f"blob-{i}") for i in range(50)]

    def test_targets_filter(self):
        plan = DiskFaultPlan(seed=1, bit_flip_rate=1.0, targets=("wal-*",))
        assert plan.fate("wal-current") == "bit_flip"
        assert plan.fate("sst-00000001") is None

    def test_apply_is_order_independent(self):
        plan = DiskFaultPlan(
            seed=4, bit_flip_rate=0.4, torn_write_rate=0.3, lost_write_rate=0.1
        )
        blobs = {f"blob-{i:02d}": bytes([i]) * 200 for i in range(30)}
        a, b = MemoryStorage(), MemoryStorage()
        for name, data in blobs.items():
            a.write(name, data)
        for name in reversed(sorted(blobs)):
            b.write(name, blobs[name])
        stats_a = plan.apply(a)
        stats_b = plan.apply(b)
        assert stats_a.findings == stats_b.findings
        assert sorted(a.list()) == sorted(b.list())
        for name in a.list():
            assert a.read(name) == b.read(name)

    def test_apply_stats_consistency(self):
        plan = DiskFaultPlan(
            seed=4, bit_flip_rate=0.4, torn_write_rate=0.3, lost_write_rate=0.1
        )
        storage = MemoryStorage()
        for i in range(40):
            storage.write(f"blob-{i:02d}", bytes([i]) * 100)
        stats = plan.apply(storage)
        assert stats.blobs_seen == 40
        assert stats.blobs_matched == 40
        assert stats.faults_injected == (
            stats.bit_flips + stats.torn_writes + stats.lost_writes
        )
        assert stats.faults_injected == len(stats.findings)
        assert stats.lost_writes == 40 - len(storage.list())

    def test_damage_certain_bit_flip(self):
        plan = DiskFaultPlan(seed=1, bit_flip_rate=1.0, bits_per_flip=2)
        kind, damaged = plan.damage("x", b"\x00" * 64)
        assert kind == "bit_flip"
        assert damaged != b"\x00" * 64 and len(damaged) == 64


class TestCorruptingStorage:
    def test_lost_write_never_persisted(self):
        plan = DiskFaultPlan(seed=1, lost_write_rate=1.0)
        inner = MemoryStorage()
        storage = CorruptingStorage(inner, plan)
        storage.write("doomed", b"payload")
        assert "doomed" not in inner.list()
        assert storage.stats.lost_writes == 1

    def test_bit_flip_on_write_path(self):
        plan = DiskFaultPlan(seed=2, bit_flip_rate=1.0)
        inner = MemoryStorage()
        storage = CorruptingStorage(inner, plan)
        storage.write("blob", b"\x00" * 128)
        assert inner.read("blob") != b"\x00" * 128

    def test_untargeted_blob_untouched(self):
        plan = DiskFaultPlan(seed=2, bit_flip_rate=1.0, targets=("sst-*",))
        inner = MemoryStorage()
        storage = CorruptingStorage(inner, plan)
        storage.write("wal-current", b"\x00" * 64)
        assert inner.read("wal-current") == b"\x00" * 64

    def test_disk_full_budget(self):
        plan = DiskFaultPlan(seed=1, disk_full_after_bytes=100)
        storage = CorruptingStorage(MemoryStorage(), plan)
        storage.write("a", b"x" * 60)
        with pytest.raises(DiskFullError):
            storage.write("b", b"x" * 60)


class TestFaultPlanIntegration:
    def test_nested_disk_dict_coerced(self):
        plan = FaultPlan(disk={"seed": 5, "bit_flip_rate": 0.5})
        assert isinstance(plan.disk, DiskFaultPlan)
        assert plan.disk.seed == 5

    def test_check_recoverable(self):
        check_recoverable("rocksdb")
        check_recoverable("lethe")
        for name in ("memory", "berkeleydb", "faster"):
            with pytest.raises(ValueError, match="crash recovery"):
                check_recoverable(name)


class TestCrashRecoveryWithDiskFaults:
    def test_torn_wal_detected_and_repaired(self, trace):
        disk = DiskFaultPlan(seed=3, torn_write_rate=1.0, targets=("wal-current",))
        with warnings.catch_warnings():
            warnings.simplefilter("ignore")
            result = evaluate_crash_recovery(
                "rocksdb",
                trace,
                crash_at=1_500,
                store_config=TINY_LSM,
                disk_plan=disk,
            )
        assert result.disk_faults is not None
        assert result.disk_faults.torn_writes == 1
        assert result.corruptions_detected >= 1
        assert result.corruptions_repaired >= 1
        assert result.scrub_ms is not None

    def test_clean_disk_plan_reports_zero(self, trace):
        disk = DiskFaultPlan(seed=3, targets=("nothing-matches-*",))
        result = evaluate_crash_recovery(
            "rocksdb", trace, crash_at=1_500, store_config=TINY_LSM, disk_plan=disk
        )
        assert result.recovered_ok
        assert result.corruptions_detected == 0
        assert result.corruptions_repaired == 0

    def test_non_recoverable_store_fails_fast(self, trace):
        with pytest.raises(ValueError, match="does not support crash recovery"):
            evaluate_crash_recovery("berkeleydb", trace, crash_at=100)


class TestAcceptance:
    """ISSUE acceptance: seeded faults -> 100% detection, exact-prefix WAL replay."""

    @staticmethod
    def _tiny_config(config_cls):
        return config_cls(
            write_buffer_size=2048,
            block_size=512,
            block_cache_size=8192,
            level_base_bytes=16384,
            target_file_size=8192,
            max_levels=4,
            checksum="crc32",
        )

    def _grown_store(self, store_cls, config_cls, storage):
        store = store_cls(self._tiny_config(config_cls), storage=storage)
        for i in range(500):
            store.put(b"key-%04d" % (i % 150), b"value-" + b"%d" % i * 4)
        store.flush()
        for i in range(20):
            store.put(b"tail-%02d" % i, b"tail-value-%02d" % i)
        return store

    @pytest.mark.parametrize("store_name", ["rocksdb", "lethe"])
    def test_lsm_full_detection_and_prefix_recovery(self, store_name):
        from repro.kvstores.lsm.lethe import LetheConfig, LetheStore
        from repro.kvstores.lsm.record import decode_wal

        store_cls, config_cls = {
            "rocksdb": (RocksLSMStore, LSMConfig),
            "lethe": (LetheStore, LetheConfig),
        }[store_name]
        storage = MemoryStorage()
        store = self._grown_store(store_cls, config_cls, storage)
        sstables = sorted(n for n in storage.list() if n.startswith("sst-"))
        assert sstables, "store must have flushed sstables"
        victim_sst = sstables[0]
        del store

        flip = DiskFaultPlan(seed=21, bit_flip_rate=1.0, bits_per_flip=3,
                             targets=(victim_sst,))
        tear = DiskFaultPlan(seed=22, torn_write_rate=1.0,
                             targets=("wal-current",))
        injected = flip.apply(storage).faults_injected + tear.apply(
            storage
        ).faults_injected
        assert injected == 2
        expected_replay = len(decode_wal(storage.read("wal-current")).records)

        revived = store_cls(self._tiny_config(config_cls), storage=storage)
        with warnings.catch_warnings():
            warnings.simplefilter("ignore")
            replayed = revived.recover()
        # WAL replay recovers exactly the intact prefix of the torn log.
        assert replayed == expected_replay
        report = revived.scrub()
        # Every injected fault is detected: the torn WAL during recover(),
        # the flipped sstable either at open (footer/index damage -> skipped
        # with a warning) or during scrub (data-block damage -> quarantined).
        assert revived.integrity.detected == injected
        if report.findings:
            assert report.findings[0].blob == victim_sst
        else:
            assert victim_sst not in {
                t.blob_name for level in revived._levels for t in level
            }
        # Reads never return wrong bytes: the damaged table is gone.
        for i in range(150):
            revived.get(b"key-%04d" % i)

    def test_btree_full_detection(self):
        from repro.kvstores.btree.store import BTreeConfig, BTreeStore

        storage = MemoryStorage()
        store = BTreeStore(
            BTreeConfig(cache_bytes=4096, checksum="crc32"), storage=storage
        )
        for i in range(800):
            store.put(b"%05d" % i, b"v" * 40)
        store.flush()
        pages = sorted(storage.list())
        assert len(pages) >= 3
        plan = DiskFaultPlan(seed=9, bit_flip_rate=0.5, targets=("btree-page-*",))
        stats = plan.apply(storage)
        damaged = {name for name, kind in stats.findings if kind == "bit_flip"}
        lost = {name for name, kind in stats.findings if kind != "bit_flip"}
        assert damaged
        report = store.scrub()
        found = {f.blob for f in report.findings}
        # 100% of surviving damaged blobs detected (lost blobs vanish entirely).
        assert damaged - lost <= found

    def test_faster_full_detection(self):
        from repro.kvstores.faster.store import FasterConfig, FasterStore

        storage = MemoryStorage()
        store = FasterStore(
            FasterConfig(memory_budget=16 * 1024, segment_size=4 * 1024,
                         checksum="crc32"),
            storage=storage,
        )
        for i in range(800):
            store.put(b"k%04d" % i, b"v" * 48)
        store.flush()
        segments = store.log.sealed_segments()
        assert len(segments) >= 2
        plan = DiskFaultPlan(seed=13, bit_flip_rate=1.0,
                             targets=(segments[0], segments[-1]))
        stats = plan.apply(storage)
        assert stats.bit_flips == 2
        report = store.scrub()
        assert {f.blob for f in report.findings} == {segments[0], segments[-1]}
        assert report.corruptions_detected == 2
        # A read landing in a damaged segment raises, never returns garbage.
        raised = 0
        for i in range(800):
            try:
                value = store.get(b"k%04d" % i)
            except CorruptionError:
                raised += 1
            else:
                assert value in (None, b"v" * 48)
        assert raised >= 1
