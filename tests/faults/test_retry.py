"""Retry policy: backoff shape, deadlines, connector-level retries."""

import pytest

from repro.faults import (
    FaultInjectingConnector,
    FaultPlan,
    RetryPolicy,
    RetryingConnector,
    TransientStoreError,
)
from repro.kvstores import InMemoryStore, connect


class Flaky:
    """Callable failing ``failures`` times before succeeding."""

    def __init__(self, failures, error=TransientStoreError):
        self.failures = failures
        self.error = error
        self.calls = 0

    def __call__(self):
        self.calls += 1
        if self.calls <= self.failures:
            raise self.error(f"failure {self.calls}")
        return "ok"


def no_sleep(_):
    pass


class TestRetryPolicyCall:
    def test_succeeds_after_transient_failures(self):
        flaky = Flaky(failures=2)
        policy = RetryPolicy(max_attempts=4, base_delay_s=0.0)
        assert policy.call(flaky, sleep=no_sleep) == "ok"
        assert flaky.calls == 3

    def test_exhausted_attempts_reraise_last_error(self):
        flaky = Flaky(failures=10)
        policy = RetryPolicy(max_attempts=3, base_delay_s=0.0)
        with pytest.raises(TransientStoreError, match="failure 3"):
            policy.call(flaky, sleep=no_sleep)
        assert flaky.calls == 3

    def test_non_retryable_error_propagates_immediately(self):
        flaky = Flaky(failures=1, error=KeyError)
        policy = RetryPolicy(max_attempts=5, base_delay_s=0.0)
        with pytest.raises(KeyError):
            policy.call(flaky, sleep=no_sleep)
        assert flaky.calls == 1

    def test_backoff_grows_exponentially_and_caps(self):
        policy = RetryPolicy(
            max_attempts=6, base_delay_s=0.01, multiplier=2.0, max_delay_s=0.05
        )
        assert list(policy.base_delays()) == pytest.approx(
            [0.01, 0.02, 0.04, 0.05, 0.05]
        )

    def test_jitter_stays_within_fraction_and_is_seeded(self):
        policy = RetryPolicy(
            max_attempts=4, base_delay_s=0.01, jitter=0.5, seed=123
        )
        slept = []
        policy.call(Flaky(failures=3), sleep=slept.append)
        assert len(slept) == 3
        for delay, base in zip(slept, policy.base_delays()):
            assert base * 0.5 <= delay <= base * 1.5
        # Seeded jitter is reproducible.
        repeat = []
        RetryPolicy(max_attempts=4, base_delay_s=0.01, jitter=0.5, seed=123).call(
            Flaky(failures=3), sleep=repeat.append
        )
        assert repeat == slept

    def test_on_retry_callback_counts_attempts(self):
        seen = []
        policy = RetryPolicy(max_attempts=4, base_delay_s=0.0)
        policy.call(
            Flaky(failures=2),
            sleep=no_sleep,
            on_retry=lambda attempt, err: seen.append(attempt),
        )
        assert seen == [1, 2]

    def test_op_deadline_stops_retrying(self):
        # A fake clock: each call advances 1s, so the 2.5s deadline is
        # crossed after a couple of retries even though attempts remain.
        ticks = iter(range(100))
        policy = RetryPolicy(
            max_attempts=50, base_delay_s=0.5, jitter=0.0, op_timeout_s=2.5
        )
        flaky = Flaky(failures=100)
        with pytest.raises(TransientStoreError):
            policy.call(flaky, sleep=no_sleep, clock=lambda: float(next(ticks)))
        assert flaky.calls < 50

    def test_validation(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ValueError):
            RetryPolicy(jitter=2.0)
        with pytest.raises(ValueError):
            RetryPolicy(base_delay_s=-1.0)


class TestRetryingConnector:
    def _faulted_connector(self, plan):
        store = InMemoryStore()
        inner = connect(store)
        injector = FaultInjectingConnector(inner, plan, sleep=no_sleep)
        return store, injector

    def test_retries_absorb_bursts_and_contents_match_unfaulted_run(self):
        plan = FaultPlan(seed=21, transient_error_rate=0.3, error_burst=2)
        store, injector = self._faulted_connector(plan)
        policy = RetryPolicy(max_attempts=4, base_delay_s=0.0)
        connector = RetryingConnector(injector, policy, sleep=no_sleep)
        for i in range(500):
            connector.put(f"k{i % 50}".encode(), f"v{i}".encode())
        # Every write eventually landed, despite the injected bursts.
        assert injector.injected.transient_errors > 0
        assert connector.retries == injector.injected.transient_errors
        assert connector.giveups == 0
        for i in range(450, 500):
            assert store.get(f"k{i % 50}".encode()) == f"v{i}".encode()

    def test_giveups_counted_when_policy_too_weak(self):
        plan = FaultPlan(seed=21, transient_error_rate=0.5, error_burst=5)
        _, injector = self._faulted_connector(plan)
        policy = RetryPolicy(max_attempts=2, base_delay_s=0.0)
        connector = RetryingConnector(injector, policy, sleep=no_sleep)
        failures = 0
        for i in range(100):
            try:
                connector.put(b"k", b"v")
            except TransientStoreError:
                failures += 1
        assert failures > 0
        assert connector.giveups == failures

    def test_passthrough_of_reads_and_background_accounting(self):
        store, injector = self._faulted_connector(FaultPlan(seed=1))
        policy = RetryPolicy(max_attempts=2, base_delay_s=0.0)
        connector = RetryingConnector(injector, policy, sleep=no_sleep)
        connector.put(b"a", b"1")
        connector.merge(b"a", b"2")
        assert connector.get(b"a") == b"12"
        connector.delete(b"a")
        assert connector.get(b"a") is None
        assert connector.take_background_ns() == 0
        connector.flush()
        connector.close()
        assert store.closed
