"""Mid-replay crash + recover(): metrics and content verification."""

import pytest

from repro.core import (
    EvaluationRow,
    PerformanceEvaluator,
    SourceConfig,
    generate_workload_trace,
)
from repro.faults import (
    RECOVERABLE_STORES,
    FaultPlan,
    RetryPolicy,
    evaluate_crash_recovery,
)

TINY_LSM = dict(
    write_buffer_size=4096,
    block_cache_size=8192,
    level_base_bytes=16384,
    target_file_size=8192,
    max_levels=4,
)


@pytest.fixture(scope="module")
def trace():
    return generate_workload_trace(
        "tumbling-incremental", [SourceConfig(num_events=2_000, seed=9)]
    )


class TestEvaluateCrashRecovery:
    @pytest.mark.parametrize("store_name", RECOVERABLE_STORES)
    def test_recovered_contents_match_uninterrupted_run(self, trace, store_name):
        result = evaluate_crash_recovery(
            store_name, trace, crash_at=len(trace) // 2, store_config=TINY_LSM
        )
        assert result.recovered_ok
        assert result.mismatches == 0
        assert result.keys_checked > 0
        assert result.operations == len(trace)
        assert result.crash_at == len(trace) // 2

    def test_recovery_metrics_reported(self, trace):
        result = evaluate_crash_recovery(
            "rocksdb", trace, crash_at=len(trace) // 2, store_config=TINY_LSM
        )
        assert result.recovery_s > 0
        assert result.recovery_ms == pytest.approx(result.recovery_s * 1000.0)
        # A crash between flushes must leave unflushed WAL records.
        assert result.wal_records_replayed > 0
        assert result.pre_crash.crashed_at == result.crash_at
        assert result.resumed.operations == len(trace) - result.crash_at
        summary = result.summary()
        assert summary["recovered_ok"] == 1.0
        assert summary["mismatches"] == 0.0

    def test_crash_composes_with_transient_faults(self, trace):
        plan = FaultPlan(seed=17, transient_error_rate=0.02, error_burst=2)
        policy = RetryPolicy(max_attempts=4, base_delay_s=0.0, jitter=0.0)
        result = evaluate_crash_recovery(
            "rocksdb",
            trace,
            crash_at=600,
            plan=plan,
            retry_policy=policy,
            store_config=TINY_LSM,
        )
        assert result.recovered_ok
        assert result.pre_crash.retries > 0
        assert result.pre_crash.failed_ops == 0

    def test_crash_at_out_of_range_rejected(self, trace):
        with pytest.raises(ValueError, match="crash_at"):
            evaluate_crash_recovery("rocksdb", trace, crash_at=0)
        with pytest.raises(ValueError, match="crash_at"):
            evaluate_crash_recovery("rocksdb", trace, crash_at=len(trace) + 5)

    def test_unrecoverable_store_rejected(self, trace):
        with pytest.raises(ValueError, match="crash recovery"):
            evaluate_crash_recovery("memory", trace, crash_at=10)


class TestEvaluatorIntegration:
    def test_rows_carry_recovery_columns(self, trace):
        evaluator = PerformanceEvaluator(
            stores=("rocksdb", "lethe", "memory"),
            store_configs={"rocksdb": TINY_LSM, "lethe": TINY_LSM},
        )
        rows = evaluator.evaluate_crash_recovery("crash-test", trace, 700)
        assert [row.store for row in rows] == ["rocksdb", "lethe"]
        for row in rows:
            assert isinstance(row, EvaluationRow)
            assert row.recovered_ok is True
            assert row.recovery_ms > 0
            assert row.wal_replayed is not None and row.wal_replayed > 0
            assert row.throughput_kops > 0

    def test_no_recoverable_store_errors(self, trace):
        evaluator = PerformanceEvaluator(stores=("memory", "faster"))
        with pytest.raises(ValueError, match="recoverable"):
            evaluator.evaluate_crash_recovery("crash-test", trace, 700)

    def test_faulted_evaluate_reports_identical_schedules(self, trace):
        plan = FaultPlan(seed=23, transient_error_rate=0.02, error_burst=2)
        policy = RetryPolicy(max_attempts=4, base_delay_s=0.0, jitter=0.0)
        evaluator = PerformanceEvaluator(
            stores=("memory", "faster"), fault_plan=plan, retry_policy=policy
        )
        rows = evaluator.evaluate("faulted", trace)
        assert len(rows) == 2
        first, second = rows
        # Comparable rows: both stores saw the same fault timeline.
        assert first.injected_faults == second.injected_faults > 0
        assert first.retries == second.retries > 0
        assert first.failed_ops == second.failed_ops == 0

    def test_unfaulted_rows_keep_zero_fault_columns(self, trace):
        evaluator = PerformanceEvaluator(stores=("memory",))
        row = evaluator.evaluate("plain", trace)[0]
        assert row.injected_faults == 0
        assert row.retries == 0
        assert row.failed_ops == 0
        assert row.recovery_ms is None
        assert row.recovered_ok is None
