"""CLI flows: lake import/query/verify/regress, --lake wiring, N-way diff."""

import json

import pytest

from repro.cli import REGRESS_WAIVER_ENV, main
from repro.lake import ResultsLake, lake_path, run_meta


@pytest.fixture
def trace_path(tmp_path):
    path = str(tmp_path / "t.gdgt")
    main(["generate", "-w", "tumbling-incremental", "-o", path,
          "--events", "300"])
    return path


def fill_runs(path, runs=8, drop_last=False):
    lake = ResultsLake(lake_path(path))
    for index in range(runs):
        bad = drop_last and index == runs - 1
        lake.append("runs", [{
            "store": "memory", "workload": "uniform", "batch_size": 1,
            "pipeline_depth": 1, "fault_plan": "none",
            "throughput_kops": 50.0 if bad else 200.0 + index % 3,
            "p99_us": 40.0 + index % 3,
            **run_meta("evaluate"),
        }])
    return lake


class TestReplayLakeFlag:
    def test_replay_appends_one_row(self, tmp_path, trace_path, capsys):
        lake_dir = str(tmp_path / "lake")
        assert main(["replay", trace_path, "--store", "memory",
                     "--lake", lake_dir]) == 0
        assert "appended 1 rows to lake" in capsys.readouterr().out
        lake = ResultsLake(lake_path(lake_dir), create=False)
        data = lake.scan("runs")
        assert data["store"] == ["memory"]
        assert data["fault_plan"] == ["none"]
        assert data["source"] == ["evaluate"]

    def test_compare_rows_share_run_id(self, tmp_path, trace_path):
        lake_dir = str(tmp_path / "lake")
        assert main(["compare", trace_path, "--stores", "memory", "faster",
                     "--lake", lake_dir]) == 0
        data = ResultsLake(lake_path(lake_dir), create=False).scan("runs")
        assert sorted(data["store"]) == ["faster", "memory"]
        assert len(set(data["run_id"])) == 1


class TestLakeCommands:
    def test_import_query_verify(self, tmp_path, capsys):
        bench = str(tmp_path / "BENCH_x.json")
        with open(bench, "w") as handle:
            json.dump({"grid": {"memory": {"throughput_kops": 10.0}}}, handle)
        lake_dir = str(tmp_path / "lake")
        assert main(["lake", "import", bench, "--lake", lake_dir]) == 0
        out = capsys.readouterr().out
        assert "bench, 1 rows" in out and "bench=1" in out
        assert main(["lake", "query", "throughput_kops by label",
                     "--table", "bench", "--lake", lake_dir]) == 0
        assert "grid/memory" in capsys.readouterr().out
        assert main(["lake", "verify", "--lake", lake_dir]) == 0
        assert "column chunks" in capsys.readouterr().out

    def test_lake_env_var_default(self, tmp_path, capsys, monkeypatch):
        lake_dir = str(tmp_path / "lake")
        fill_runs(lake_dir, runs=2)
        monkeypatch.setenv("REPRO_LAKE", lake_dir)
        assert main(["lake", "query", "p99 by backend"]) == 0
        assert "memory" in capsys.readouterr().out

    def test_query_missing_lake_errors(self, tmp_path):
        with pytest.raises(SystemExit):
            main(["lake", "query", "p99", "--lake", str(tmp_path / "nope")])

    def test_bad_query_errors(self, tmp_path):
        fill_runs(str(tmp_path / "lake"), runs=1)
        with pytest.raises(SystemExit):
            main(["lake", "query", "p99 by nonexistent_axis",
                  "--lake", str(tmp_path / "lake")])


class TestLakeRegress:
    def test_clean_trajectory_exits_zero(self, tmp_path, capsys):
        fill_runs(str(tmp_path / "lake"), runs=8)
        assert main(["lake", "regress", "--lake",
                     str(tmp_path / "lake")]) == 0
        assert "trajectory clean" in capsys.readouterr().out

    def test_regression_exits_nonzero(self, tmp_path, capsys, monkeypatch):
        monkeypatch.delenv(REGRESS_WAIVER_ENV, raising=False)
        fill_runs(str(tmp_path / "lake"), runs=8, drop_last=True)
        assert main(["lake", "regress", "--lake",
                     str(tmp_path / "lake")]) == 1
        assert "regression" in capsys.readouterr().out

    def test_waiver_env_downgrades_to_warning(self, tmp_path, capsys,
                                              monkeypatch):
        monkeypatch.setenv(REGRESS_WAIVER_ENV, "1")
        fill_runs(str(tmp_path / "lake"), runs=8, drop_last=True)
        assert main(["lake", "regress", "--lake",
                     str(tmp_path / "lake")]) == 0
        assert "waived" in capsys.readouterr().out

    def test_config_file_and_flag_overrides(self, tmp_path, capsys,
                                            monkeypatch):
        monkeypatch.delenv(REGRESS_WAIVER_ENV, raising=False)
        fill_runs(str(tmp_path / "lake"), runs=8, drop_last=True)
        config = tmp_path / "lake.json"
        config.write_text(json.dumps({"metrics": ["p99"], "min_runs": 3}))
        # p99 trajectory is clean; only throughput was damaged.
        assert main(["lake", "regress", "--lake", str(tmp_path / "lake"),
                     "--config", str(config)]) == 0
        # Flag overrides the config back to the damaged metric.
        assert main(["lake", "regress", "--lake", str(tmp_path / "lake"),
                     "--config", str(config),
                     "--metrics", "throughput"]) == 1

    def test_bad_config_key_errors(self, tmp_path):
        fill_runs(str(tmp_path / "lake"), runs=1)
        config = tmp_path / "bad.json"
        config.write_text(json.dumps({"bogus": 1}))
        with pytest.raises(SystemExit):
            main(["lake", "regress", "--lake", str(tmp_path / "lake"),
                  "--config", str(config)])

    def test_shipped_config_parses(self, tmp_path):
        import os

        root = os.path.dirname(os.path.dirname(os.path.dirname(
            os.path.abspath(__file__))))
        fill_runs(str(tmp_path / "lake"), runs=2)
        assert main(["lake", "regress", "--lake", str(tmp_path / "lake"),
                     "--config", os.path.join(root, "configs",
                                              "lake.json")]) == 0


def write_series(path, store, throughputs):
    header = {"sample": "header", "store": store, "total_ops": 1000,
              "interval_ms": 100.0, "metrics": []}
    with open(path, "w") as handle:
        handle.write(json.dumps(header) + "\n")
        ops = 0
        for index, throughput in enumerate(throughputs):
            ops += 100
            handle.write(json.dumps({
                "t_s": 0.1 * (index + 1), "ops": ops,
                "progress": (index + 1) / len(throughputs),
                "interval_ops": 100, "throughput_ops": throughput,
                "p50_us": 5.0, "p95_us": 9.0, "p99_us": 10.0,
                "gauges": {},
            }) + "\n")


class TestMetricsDiffNary:
    def test_two_way_still_works(self, tmp_path, capsys):
        path = str(tmp_path / "a.jsonl")
        write_series(path, "memory", [1000.0] * 4)
        assert main(["metrics", "diff", path, path, "--bins", "2"]) == 0

    def test_three_way_matrix(self, tmp_path, capsys):
        paths = []
        for name, level in (("a", 1000.0), ("b", 900.0), ("c", 500.0)):
            path = str(tmp_path / f"{name}.jsonl")
            write_series(path, name, [level] * 4)
            paths.append(path)
        assert main(["metrics", "diff", *paths, "--bins", "2"]) == 0
        out = capsys.readouterr().out
        assert "baseline" in out and "vs base" in out
        assert "0.50x" in out  # run c at half the baseline throughput

    def test_fewer_than_two_errors(self, tmp_path):
        path = str(tmp_path / "a.jsonl")
        write_series(path, "memory", [1000.0] * 2)
        with pytest.raises(SystemExit):
            main(["metrics", "diff", path])

    def test_query_without_lake_errors(self, tmp_path):
        with pytest.raises(SystemExit):
            main(["metrics", "diff", "--query", "where store=memory"])

    def test_lake_query_resolves_recorded_series(self, tmp_path, capsys):
        lake = ResultsLake(lake_path(str(tmp_path / "lake")))
        paths = []
        for name in ("a", "b"):
            path = str(tmp_path / f"{name}.jsonl")
            write_series(path, name, [1000.0] * 3)
            paths.append(path)
            lake.append("runs", [{
                "store": name, "timeseries_path": path,
                **run_meta("evaluate"),
            }])
        assert main(["metrics", "diff", "--lake", str(tmp_path / "lake"),
                     "--query", ""]) == 0
        assert "worst phase" in capsys.readouterr().out
