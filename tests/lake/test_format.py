"""Columnar lake file format: round-trips, integrity, pushdown accounting."""

import os

import pytest

from repro.lake.format import (
    LAKE_FILENAME,
    LakeCorruptionError,
    LakeError,
    ResultsLake,
    batch_stats,
    lake_path,
)


def make_lake(tmp_path):
    return ResultsLake(str(tmp_path / "lake.rlk"))


def test_lake_path_resolves_directories(tmp_path):
    assert lake_path(str(tmp_path)) == str(tmp_path / LAKE_FILENAME)
    assert lake_path("some/dir") == os.path.join("some/dir", LAKE_FILENAME)
    explicit = str(tmp_path / "history.rlk")
    assert lake_path(explicit) == explicit


def test_open_missing_without_create_raises(tmp_path):
    with pytest.raises(LakeError):
        ResultsLake(str(tmp_path / "nope.rlk"), create=False)


def test_round_trip_types(tmp_path):
    lake = make_lake(tmp_path)
    records = [
        {"i": 1, "f": 1.5, "s": "alpha", "b": True, "n": None},
        {"i": -7, "f": 0.25, "s": "beta", "b": False, "n": 3},
    ]
    assert lake.append("runs", records) == 2
    reopened = ResultsLake(lake.path, create=False)
    data = reopened.scan("runs")
    assert data["i"] == [1, -7]
    assert data["f"] == [1.5, 0.25]
    assert data["s"] == ["alpha", "beta"]
    # bools ride the i64 column
    assert data["b"] == [1, 0]
    assert data["n"] == [None, 3]
    assert data["_batch"] == [0, 0]


def test_append_accumulates_across_reopen(tmp_path):
    lake = make_lake(tmp_path)
    lake.append("runs", [{"x": 1}])
    lake.append("runs", [{"x": 2}, {"x": 3}])
    reopened = ResultsLake(lake.path, create=False)
    reopened.append("runs", [{"x": 4}])
    final = ResultsLake(lake.path, create=False)
    assert final.num_rows("runs") == 4
    assert final.scan("runs")["x"] == [1, 2, 3, 4]
    assert len(final.batches("runs")) == 3


def test_empty_append_writes_nothing(tmp_path):
    lake = make_lake(tmp_path)
    assert lake.append("runs", []) == 0
    assert lake.tables() == []


def test_multiple_tables_are_independent(tmp_path):
    lake = make_lake(tmp_path)
    lake.append("runs", [{"a": 1}])
    lake.append("bench", [{"b": 2.0}, {"b": 3.0}])
    assert lake.tables() == ["bench", "runs"]
    assert lake.num_rows("runs") == 1
    assert lake.num_rows("bench") == 2


def test_schema_evolution_missing_column_reads_none(tmp_path):
    lake = make_lake(tmp_path)
    lake.append("runs", [{"old": 1}])
    lake.append("runs", [{"old": 2, "new": "x"}])
    data = lake.scan("runs", ["old", "new"])
    assert data["old"] == [1, 2]
    assert data["new"] == [None, "x"]


def test_string_dictionary_interning(tmp_path):
    lake = make_lake(tmp_path)
    lake.append("runs", [{"s": "rocksdb"} for _ in range(100)])
    meta = lake.batches("runs")[0]["columns"]["s"]
    assert meta["pool"] == 1  # 100 rows, one interned string


def test_structured_values_stored_as_json(tmp_path):
    lake = make_lake(tmp_path)
    lake.append("runs", [{"payload": '{"a": 1}'}])
    assert lake.scan("runs")["payload"] == ['{"a": 1}']


def test_out_of_range_int_survives_as_string(tmp_path):
    lake = make_lake(tmp_path)
    big = 2**70
    lake.append("runs", [{"x": big}])
    assert lake.scan("runs")["x"] == [str(big)]


def test_numeric_stats_recorded(tmp_path):
    lake = make_lake(tmp_path)
    lake.append("runs", [{"x": 5}, {"x": -3}, {"x": 9}])
    batch = lake.batches("runs")[0]
    assert batch_stats(batch, "x") == (-3, 9)
    assert batch_stats(batch, "missing") is None


def test_string_stats_omitted_for_long_values(tmp_path):
    lake = make_lake(tmp_path)
    lake.append("runs", [{"s": "short"}, {"s": "y" * 200}])
    # A truncated max would be unsound for pushdown, so no stats at all.
    assert batch_stats(lake.batches("runs")[0], "s") is None
    lake.append("runs", [{"s": "aa"}, {"s": "zz"}])
    assert batch_stats(lake.batches("runs")[1], "s") == ("aa", "zz")


def test_chunks_read_counts_only_requested_columns(tmp_path):
    lake = make_lake(tmp_path)
    for index in range(4):
        lake.append("runs", [{"a": index, "b": index, "c": index}])
    reader = ResultsLake(lake.path, create=False)
    reader.scan("runs", ["a"])
    assert reader.chunks_read == 4  # 4 batches x 1 column
    assert reader.total_chunks("runs") == 12


def test_batch_filter_skips_whole_batches_unread(tmp_path):
    lake = make_lake(tmp_path)
    for index in range(6):
        lake.append("runs", [{"x": index, "y": index * 2}])
    reader = ResultsLake(lake.path, create=False)
    data = reader.scan(
        "runs", ["x", "y"],
        batch_filter=lambda batch: batch_stats(batch, "x")[0] >= 4,
    )
    assert data["x"] == [4, 5]
    assert reader.chunks_read == 4  # 2 surviving batches x 2 columns


def test_chunk_corruption_is_fail_stop(tmp_path):
    lake = make_lake(tmp_path)
    lake.append("runs", [{"x": 1.0}, {"x": 2.0}])
    chunk = lake.batches("runs")[0]["columns"]["x"]["chunk"]
    with open(lake.path, "r+b") as handle:
        handle.seek(chunk["off"])
        byte = handle.read(1)
        handle.seek(chunk["off"])
        handle.write(bytes([byte[0] ^ 0xFF]))
    reader = ResultsLake(lake.path, create=False)
    with pytest.raises(LakeCorruptionError):
        reader.scan("runs")
    with pytest.raises(LakeCorruptionError):
        reader.verify()


def test_verify_counts_all_chunks(tmp_path):
    lake = make_lake(tmp_path)
    lake.append("runs", [{"a": 1, "b": None}, {"a": 2, "b": "x"}])
    lake.append("bench", [{"c": 1.5}])
    # Three column chunks (a, b, c); b's validity chunk is CRC-checked
    # alongside b but not separately counted.
    assert lake.verify() == 3


def test_torn_append_falls_back_to_previous_footer(tmp_path):
    lake = make_lake(tmp_path)
    lake.append("runs", [{"x": 1}])
    lake.append("runs", [{"x": 2}])
    # Simulate a crash mid-append: partial chunk bytes after the valid
    # footer, no new trailer.
    with open(lake.path, "ab") as handle:
        handle.write(b"\x00" * 37)
    recovered = ResultsLake(lake.path, create=False)
    assert recovered.scan("runs")["x"] == [1, 2]
    # The next append truncates the unreachable partial chunks.
    recovered.append("runs", [{"x": 3}])
    assert ResultsLake(lake.path, create=False).scan("runs")["x"] == [1, 2, 3]


def test_crash_at_any_point_mid_append_preserves_prior_data(tmp_path):
    # A real torn append is the file cut at an arbitrary byte of the
    # in-flight append (chunks and footer land strictly past the old
    # footer, which must stay the newest valid one).  Every cut point
    # must reopen with the old contents and accept the retried append.
    lake = make_lake(tmp_path)
    lake.append("runs", [{"x": 1, "s": "alpha"}])
    lake.append("runs", [{"x": 2, "s": "beta"}])
    safe_size = os.path.getsize(lake.path)
    lake.append("runs", [{"x": 3, "s": "gamma"}])
    full_size = os.path.getsize(lake.path)
    with open(lake.path, "rb") as handle:
        full = handle.read()
    step = max(1, (full_size - safe_size) // 16)
    for cut in range(safe_size, full_size, step):
        torn = tmp_path / f"torn-{cut}.rlk"
        torn.write_bytes(full[:cut])
        recovered = ResultsLake(str(torn), create=False)
        assert recovered.scan("runs")["x"] == [1, 2], cut
        recovered.append("runs", [{"x": 3, "s": "gamma"}])
        assert ResultsLake(str(torn), create=False).scan("runs")["x"] == \
            [1, 2, 3], cut


def test_not_a_lake_rejected(tmp_path):
    path = tmp_path / "junk.rlk"
    path.write_bytes(b"not a lake at all")
    with pytest.raises(LakeError):
        ResultsLake(str(path), create=False)
