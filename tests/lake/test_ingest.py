"""Ingesters: evaluation rows, series, span traces, BENCH files."""

import dataclasses
import json
import os

import pytest

from repro.core.evaluator import EvaluationRow
from repro.core.histogram import LatencyHistogram
from repro.lake import (
    RECORD_SCHEMA_VERSION,
    ResultsLake,
    append_rows,
    fault_plan_label,
    import_paths,
    ingest_bench,
    ingest_series,
    ingest_spans,
    next_run_id,
    normalize_record,
    sniff_kind,
)


def make_row(**overrides):
    defaults = dict(
        store="rocksdb", workload="uniform", throughput_kops=100.0,
        p50_us=10.0, p99_us=50.0, p999_us=90.0,
    )
    defaults.update(overrides)
    return EvaluationRow(**defaults)


# -- EvaluationRow.to_record (serialization drift fix) -----------------------


def test_to_record_covers_every_dataclass_field():
    """The drift guard: a field added to EvaluationRow must land in the
    record without anyone hand-listing it."""
    record = make_row().to_record()
    for field in dataclasses.fields(EvaluationRow):
        assert field.name in record, f"field {field.name!r} missing from record"
    assert record["record_schema"] == RECORD_SCHEMA_VERSION
    assert record["store"] == "rocksdb"
    assert record["throughput_kops"] == 100.0


def test_to_record_round_trips_through_lake(tmp_path):
    lake = ResultsLake(str(tmp_path / "lake.rlk"))
    rows = [make_row(), make_row(store="faster", batch_size=64)]
    assert append_rows(lake, rows, fault_plan="seed=7") == 2
    data = lake.scan("runs")
    assert data["store"] == ["rocksdb", "faster"]
    assert data["batch_size"] == [1, 64]
    assert data["fault_plan"] == ["seed=7", "seed=7"]
    # Both rows of one append share one run id.
    assert data["run_id"][0] == data["run_id"][1]
    assert data["schema"] == [RECORD_SCHEMA_VERSION] * 2
    assert data["source"] == ["evaluate", "evaluate"]


def test_fault_plan_label():
    class Plan:
        seed = 42

    assert fault_plan_label(None) == "none"
    assert fault_plan_label(Plan()) == "seed=42"


def test_next_run_id_strictly_increases():
    ids = [next_run_id() for _ in range(100)]
    assert ids == sorted(set(ids))


def test_normalize_record_flattens_structured_values():
    record = normalize_record({
        "a": 1, "b": None, "c": {"z": 1, "a": 2}, "d": [1, 2],
        "e": object(),
    })
    assert record["a"] == 1 and record["b"] is None
    assert json.loads(record["c"]) == {"z": 1, "a": 2}
    assert json.loads(record["d"]) == [1, 2]
    assert "e" in record  # stringified via default=str, never dropped silently


# -- series ------------------------------------------------------------------


def write_series(path, store="rocksdb", samples=None, header_extra=None):
    header = {
        "sample": "header", "store": store, "total_ops": 1000,
        "interval_ms": 100.0, "metrics": [],
    }
    header.update(header_extra or {})
    with open(path, "w") as handle:
        handle.write(json.dumps(header) + "\n")
        for sample in samples or []:
            handle.write(json.dumps(sample) + "\n")


def series_sample(t_s, ops, progress, throughput, p99, hist=None, **extra):
    row = {
        "t_s": t_s, "ops": ops, "progress": progress,
        "interval_ops": 100, "throughput_ops": throughput,
        "p50_us": p99 / 2, "p95_us": p99 * 0.9, "p99_us": p99,
        "gauges": {},
    }
    if hist is not None:
        row["latency_hist"] = hist
    row.update(extra)
    return row


def test_ingest_series_aggregates_and_remerges_histograms(tmp_path):
    hist_a = LatencyHistogram()
    hist_a.record_many([1000, 2000, 3000])
    hist_b = LatencyHistogram()
    hist_b.record_many([4000, 5000])
    path = str(tmp_path / "run.jsonl")
    write_series(path, samples=[
        series_sample(0.1, 100, 0.5, 1000.0, 20.0, hist=hist_a.to_dict()),
        series_sample(0.2, 200, 1.0, 2000.0, 40.0, hist=hist_b.to_dict()),
    ])
    lake = ResultsLake(str(tmp_path / "lake.rlk"))
    assert ingest_series(lake, path) == 1
    data = lake.scan("series")
    assert data["store"] == ["rocksdb"]
    assert data["samples"] == [2]
    assert data["max_p99_us"] == [40.0]
    # The stored histogram equals the merge of every interval histogram.
    merged = LatencyHistogram.from_dict(json.loads(data["latency_hist"][0]))
    assert merged.total == 5
    assert merged.max_value == 5000
    assert data["source"] == ["series"]


# -- spans -------------------------------------------------------------------


def test_ingest_spans_totals_per_name_per_lane(tmp_path):
    trace = {"traceEvents": [
        {"ph": "M", "name": "thread_name", "pid": 1, "tid": 1,
         "args": {"name": "replay"}},
        {"ph": "M", "name": "thread_name", "pid": 1, "tid": 2,
         "args": {"name": "compaction-worker"}},
        {"ph": "X", "name": "flush", "pid": 1, "tid": 1, "ts": 0, "dur": 1500.0},
        {"ph": "X", "name": "flush", "pid": 1, "tid": 1, "ts": 10, "dur": 500.0},
        {"ph": "X", "name": "compact", "pid": 1, "tid": 2, "ts": 5, "dur": 3000.0},
        {"ph": "i", "name": "fault", "pid": 1, "tid": 1, "ts": 7},
    ]}
    path = str(tmp_path / "spans.json")
    with open(path, "w") as handle:
        json.dump(trace, handle)
    lake = ResultsLake(str(tmp_path / "lake.rlk"))
    assert ingest_spans(lake, path) == 3
    data = lake.scan("spans")
    by_key = {
        (name, lane): (count, total)
        for name, lane, count, total in zip(
            data["name"], data["lane"], data["count"], data["total_ms"]
        )
    }
    assert by_key[("flush", "replay")] == (2, 2.0)
    assert by_key[("compact", "compaction-worker")] == (1, 3.0)
    assert by_key[("fault", "replay")] == (1, 0.0)


def test_ingest_spans_rejects_non_trace(tmp_path):
    path = str(tmp_path / "x.json")
    with open(path, "w") as handle:
        json.dump({"nope": 1}, handle)
    with pytest.raises(ValueError):
        ingest_spans(ResultsLake(str(tmp_path / "lake.rlk")), path)


# -- bench -------------------------------------------------------------------


def test_ingest_stamped_bench(tmp_path):
    path = str(tmp_path / "BENCH_demo.json")
    with open(path, "w") as handle:
        json.dump({
            "env": {"python": "3.11", "cpu_count": 1, "smoke": False},
            "run": {"schema": RECORD_SCHEMA_VERSION, "run_id": 12345,
                    "git_sha": "abc123", "bench": "demo"},
            "grid": {
                "rocksdb": {"throughput_kops": 150.0, "p99_us": 40.0},
                "faster": {"throughput_kops": 420.0, "p99_us": 12.0},
            },
            "note": "prose, not results",
        }, handle)
    lake = ResultsLake(str(tmp_path / "lake.rlk"))
    assert ingest_bench(lake, path) == 2
    data = lake.scan("bench")
    assert sorted(data["label"]) == ["grid/faster", "grid/rocksdb"]
    assert data["bench"] == ["demo", "demo"]
    assert data["run_id"] == [12345, 12345]
    assert data["git_sha"] == ["abc123", "abc123"]
    assert data["schema"] == [RECORD_SCHEMA_VERSION] * 2


def test_ingest_legacy_unstamped_bench_backfills(tmp_path):
    path = str(tmp_path / "BENCH_old.json")
    with open(path, "w") as handle:
        json.dump({"results": {"throughput_kops": 99.0}}, handle)
    lake = ResultsLake(str(tmp_path / "lake.rlk"))
    assert ingest_bench(lake, path) == 1
    data = lake.scan("bench")
    assert data["schema"] == [0]  # legacy marker
    # Backfilled run id derives from the file's mtime, so trajectories
    # over pre-stamp history still order correctly.
    assert data["run_id"] == [int(os.path.getmtime(path) * 1e9)]
    assert data["git_sha"] == [None]


def test_ingest_nested_bench_cells(tmp_path):
    path = str(tmp_path / "BENCH_deep.json")
    with open(path, "w") as handle:
        json.dump({
            "modes": {
                "remote": {"1": {"p99_us": 100.0}, "8": {"p99_us": 40.0}},
            },
        }, handle)
    lake = ResultsLake(str(tmp_path / "lake.rlk"))
    assert ingest_bench(lake, path) == 2
    assert sorted(lake.scan("bench")["label"]) == [
        "modes/remote/1", "modes/remote/8",
    ]


def test_shipped_bench_files_ingest():
    """Every BENCH_*.json at the repo root (all legacy) must ingest."""
    root = os.path.dirname(os.path.dirname(os.path.dirname(
        os.path.abspath(__file__))))
    shipped = sorted(
        os.path.join(root, name) for name in os.listdir(root)
        if name.startswith("BENCH_") and name.endswith(".json")
    )
    assert shipped, "no shipped BENCH files found"
    import tempfile

    with tempfile.TemporaryDirectory() as tmp:
        lake = ResultsLake(os.path.join(tmp, "lake.rlk"))
        for path in shipped:
            assert ingest_bench(lake, path) > 0, f"{path} produced no rows"
        assert lake.num_rows("bench") > 0


# -- sniffing ----------------------------------------------------------------


def test_sniff_and_import_paths(tmp_path):
    bench = str(tmp_path / "BENCH_x.json")
    with open(bench, "w") as handle:
        json.dump({"cell": {"v": 1.0}}, handle)
    series = str(tmp_path / "run.jsonl")
    write_series(series, samples=[series_sample(0.1, 10, 1.0, 100.0, 5.0)])
    spans = str(tmp_path / "trace.json")
    with open(spans, "w") as handle:
        json.dump({"traceEvents": []}, handle)
    assert sniff_kind(bench) == "bench"
    assert sniff_kind(series) == "series"
    assert sniff_kind(spans) == "spans"
    lake = ResultsLake(str(tmp_path / "lake.rlk"))
    results = import_paths(lake, [bench, series, spans])
    assert [(kind, rows > 0) for _, kind, rows in results] == [
        ("bench", True), ("series", True), ("spans", False),
    ]
    assert lake.tables() == ["bench", "series"]
