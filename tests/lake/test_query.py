"""Query grammar, group-by aggregation, pushdown accounting, regression gates."""

import pytest

from repro.lake import (
    Query,
    QueryError,
    RegressConfig,
    ResultsLake,
    detect_regressions,
    format_query_result,
    format_regress_report,
    parse_query,
    run_query,
    run_meta,
)
from repro.lake.query import select_rows


def test_parse_full_grammar():
    query = parse_query(
        "p99 by backend,batch_size,fault_plan where backend = rocksdb "
        "and batch_size >= 8 last 50"
    )
    assert query.metric == "p99_us"
    assert query.by == ("store", "batch_size", "fault_plan")
    assert query.where == (("store", "=", "rocksdb"), ("batch_size", ">=", 8))
    assert query.last == 50


def test_parse_aliases():
    assert parse_query("throughput").metric == "throughput_kops"
    assert parse_query("p50").metric == "p50_us"
    assert parse_query("p999").metric == "p999_us"
    assert parse_query("custom_column").metric == "custom_column"


def test_parse_value_coercion():
    query = parse_query("p99 where batch_size = 64 and rate > 1.5 and ok = true")
    assert query.where[0][2] == 64
    assert query.where[1][2] == 1.5
    assert query.where[2][2] is True


def test_parse_errors():
    for text in ("", "p99 by", "p99 where", "p99 last", "p99 last x",
                 "p99 last 0", "p99 bogus", "p99 where garbage"):
        with pytest.raises(QueryError):
            parse_query(text)


def _fill(lake, runs=60, seed=3):
    """Synthetic trajectory: `runs` comparison runs, 2 stores x 2 batch
    sizes x 1 fault plan, stable metrics with small seeded noise."""
    import random

    rng = random.Random(seed)
    for _ in range(runs):
        meta = run_meta("evaluate")
        records = []
        for store, base in (("rocksdb", 200.0), ("faster", 400.0)):
            for batch in (1, 64):
                records.append({
                    "store": store,
                    "workload": "uniform",
                    "batch_size": batch,
                    "pipeline_depth": 1,
                    "fault_plan": "none",
                    "throughput_kops": base * (1 + batch / 100.0)
                    * (1 + rng.uniform(-0.02, 0.02)),
                    "p99_us": 500.0 / (1 + batch / 100.0)
                    * (1 + rng.uniform(-0.02, 0.02)),
                    **meta,
                })
        lake.append("runs", records)


def test_grouped_query_over_fifty_runs_reads_only_needed_chunks(tmp_path):
    lake = ResultsLake(str(tmp_path / "lake.rlk"))
    _fill(lake, runs=60)
    reader = ResultsLake(lake.path, create=False)
    result = run_query(
        reader, "p99 by backend,batch_size,fault_plan last 50"
    )
    assert result.runs_seen == 50
    assert len(result.groups) == 4
    for group in result.groups:
        assert group.count == 50
    # Pushdown accounting: only the 5 referenced columns of each batch
    # were read (metric + 3 group keys + run_id), out of 12 on disk.
    batches = len(reader.batches("runs"))
    assert reader.chunks_read == batches * 5
    assert reader.total_chunks("runs") == batches * 12
    text = format_query_result(result)
    assert "rocksdb" in text and "last 50 runs" in text


def test_where_predicate_skips_batches_via_footer_stats(tmp_path):
    lake = ResultsLake(str(tmp_path / "lake.rlk"))
    _fill(lake, runs=10)
    reader = ResultsLake(lake.path, create=False)
    result = run_query(reader, "throughput where batch_size = 9999")
    assert result.rows_scanned == 0
    assert reader.chunks_read == 0  # every batch excluded by min/max


def test_where_filters_rows_inside_batches(tmp_path):
    lake = ResultsLake(str(tmp_path / "lake.rlk"))
    _fill(lake, runs=10)
    result = run_query(
        ResultsLake(lake.path, create=False),
        "throughput by backend where batch_size = 64",
    )
    assert len(result.groups) == 2
    assert all(group.count == 10 for group in result.groups)


def test_last_n_counts_distinct_runs_not_rows(tmp_path):
    lake = ResultsLake(str(tmp_path / "lake.rlk"))
    _fill(lake, runs=8)
    result = run_query(ResultsLake(lake.path, create=False), "p99 last 3")
    assert result.runs_seen == 3
    assert result.rows_scanned == 12  # 4 rows per comparison run


def test_unknown_table_and_column_rejected(tmp_path):
    lake = ResultsLake(str(tmp_path / "lake.rlk"))
    _fill(lake, runs=2)
    with pytest.raises(QueryError):
        run_query(lake, "p99", table="nope")
    with pytest.raises(QueryError):
        run_query(lake, "no_such_metric")
    with pytest.raises(QueryError):
        run_query(lake, "p99 by no_such_axis")


def test_select_rows_handles_string_metric(tmp_path):
    lake = ResultsLake(str(tmp_path / "lake.rlk"))
    meta = run_meta("evaluate")
    lake.append("runs", [
        {"store": "a", "timeseries_path": "m/a.jsonl", **meta},
        {"store": "b", "timeseries_path": None, **meta},
    ])
    rows = select_rows(lake, Query(metric="timeseries_path", by=("store",)))
    assert rows["timeseries_path"] == ["m/a.jsonl", None]


# -- regression gates --------------------------------------------------------


def test_clean_trajectory_passes(tmp_path):
    lake = ResultsLake(str(tmp_path / "lake.rlk"))
    _fill(lake, runs=30)
    report = detect_regressions(lake, RegressConfig())
    assert report.ok
    assert report.groups_checked == 8  # 4 groups x 2 metrics
    assert report.groups_skipped == 0
    assert "trajectory clean" in format_regress_report(report)


def test_injected_regression_is_flagged_both_directions(tmp_path):
    lake = ResultsLake(str(tmp_path / "lake.rlk"))
    _fill(lake, runs=30)
    bad = {
        "store": "rocksdb", "workload": "uniform", "batch_size": 1,
        "pipeline_depth": 1, "fault_plan": "none",
        "throughput_kops": 100.0,  # trajectory lives near 200
        "p99_us": 2000.0,          # trajectory lives near 500
        **run_meta("evaluate"),
    }
    lake.append("runs", [bad])
    report = detect_regressions(lake, RegressConfig())
    assert not report.ok
    directions = {(f.metric, f.direction) for f in report.findings}
    assert ("throughput_kops", "drop") in directions
    assert ("p99_us", "climb") in directions
    # Only the damaged group is flagged.
    assert all(f.group[0] == "rocksdb" and f.group[2] == 1
               for f in report.findings)
    text = format_regress_report(report)
    assert "regression" in text and "drop" in text


def test_improvement_is_not_flagged(tmp_path):
    lake = ResultsLake(str(tmp_path / "lake.rlk"))
    _fill(lake, runs=30)
    better = {
        "store": "rocksdb", "workload": "uniform", "batch_size": 1,
        "pipeline_depth": 1, "fault_plan": "none",
        "throughput_kops": 400.0,  # out of band, good direction
        "p99_us": 100.0,           # out of band, good direction
        **run_meta("evaluate"),
    }
    lake.append("runs", [better])
    assert detect_regressions(lake, RegressConfig()).ok


def test_short_history_is_skipped_not_gated(tmp_path):
    lake = ResultsLake(str(tmp_path / "lake.rlk"))
    _fill(lake, runs=3)  # below min_runs + 1
    report = detect_regressions(lake, RegressConfig())
    assert report.ok
    assert report.groups_skipped == report.groups_checked == 8


def test_dead_flat_history_tolerates_rel_floor(tmp_path):
    lake = ResultsLake(str(tmp_path / "lake.rlk"))
    for _ in range(10):
        lake.append("runs", [{
            "store": "m", "workload": "w", "batch_size": 1,
            "pipeline_depth": 1, "fault_plan": "none",
            "throughput_kops": 100.0, "p99_us": 50.0,
            **run_meta("evaluate"),
        }])
    # MAD is zero; a 3% wiggle must stay inside the relative floor.
    lake.append("runs", [{
        "store": "m", "workload": "w", "batch_size": 1,
        "pipeline_depth": 1, "fault_plan": "none",
        "throughput_kops": 97.0, "p99_us": 51.5,
        **run_meta("evaluate"),
    }])
    assert detect_regressions(lake, RegressConfig()).ok
    # ...while a 10% drop falls outside it.
    lake.append("runs", [{
        "store": "m", "workload": "w", "batch_size": 1,
        "pipeline_depth": 1, "fault_plan": "none",
        "throughput_kops": 90.0, "p99_us": 50.0,
        **run_meta("evaluate"),
    }])
    report = detect_regressions(lake, RegressConfig())
    assert [f.metric for f in report.findings] == ["throughput_kops"]


def test_empty_lake_and_missing_metrics_are_clean(tmp_path):
    lake = ResultsLake(str(tmp_path / "lake.rlk"))
    assert detect_regressions(lake, RegressConfig()).ok
    lake.append("runs", [{"store": "m", **run_meta("evaluate")}])
    assert detect_regressions(lake, RegressConfig()).ok


def test_regress_config_from_dict():
    config = RegressConfig.from_dict({
        "metrics": ["throughput", "p99"],
        "by": ["backend"],
        "window": 5,
        "k": 2.0,
    })
    assert config.metrics == ("throughput_kops", "p99_us")
    assert config.by == ("store",)
    assert config.window == 5
    with pytest.raises(ValueError):
        RegressConfig.from_dict({"bogus_knob": 1})
