"""End-to-end integration tests across subsystems."""

import pytest

from repro.analysis import (
    composition_of,
    ks_test_keys,
    measure_amplification,
    max_working_set,
    working_set_over_time,
)
from repro.core import (
    Gadget,
    GadgetConfig,
    PerformanceEvaluator,
    SourceConfig,
    TraceReplayer,
    generate_workload_trace,
)
from repro.kvstores import create_connector
from repro.streaming import (
    ContinuousAggregation,
    RuntimeConfig,
    TumblingWindows,
    WindowOperator,
    run_operator,
)
from repro.trace import AccessTrace, OpType
from repro.ycsb import YCSBWorkload


class TestCharacterizationPipeline:
    """Dataset -> engine -> analysis: the section 3 pipeline."""

    def test_composition_algebra_incremental(self, borg_tasks):
        trace = run_operator(
            WindowOperator(TumblingWindows(5000)), [borg_tasks], RuntimeConfig()
        )
        comp = composition_of(trace)
        # the W-ID algebra: gets are exactly half of all operations
        assert abs(comp.get - 0.5) < 1e-9
        assert comp.put + comp.delete == pytest.approx(0.5)

    def test_holistic_is_write_heavy(self, borg_tasks):
        trace = run_operator(
            WindowOperator(TumblingWindows(5000), holistic=True),
            [borg_tasks],
            RuntimeConfig(),
        )
        assert composition_of(trace).classify() == "write-heavy"

    def test_aggregation_preserves_key_distribution(self, borg_tasks):
        trace = run_operator(ContinuousAggregation(), [borg_tasks], RuntimeConfig())
        result = ks_test_keys([e.key for e in borg_tasks], trace.key_sequence())
        assert result.passes()
        assert result.statistic < 0.01

    def test_window_distorts_key_distribution(self, borg_tasks):
        trace = run_operator(
            WindowOperator(TumblingWindows(5000)), [borg_tasks], RuntimeConfig()
        )
        result = ks_test_keys([e.key for e in borg_tasks], trace.key_sequence())
        assert not result.passes()

    def test_window_state_is_ephemeral(self, borg_tasks):
        trace = run_operator(
            WindowOperator(TumblingWindows(5000)), [borg_tasks], RuntimeConfig()
        )
        samples = working_set_over_time(trace, step=100)
        peak = max(size for _, size in samples)
        final = samples[-1][1]
        assert final < peak / 2  # state drains as windows fire

    def test_aggregation_working_set_grows(self, borg_tasks):
        trace = run_operator(ContinuousAggregation(), [borg_tasks], RuntimeConfig())
        samples = working_set_over_time(trace, step=100)
        assert samples[-1][1] == max(size for _, size in samples)

    def test_amplification_bounds(self, borg_tasks):
        trace = run_operator(
            WindowOperator(TumblingWindows(5000)), [borg_tasks], RuntimeConfig()
        )
        amp = measure_amplification(borg_tasks, trace)
        assert amp.event_amplification >= 2.0
        assert amp.keyspace_amplification > 1.0


class TestOfflineOnlineParity:
    def test_offline_trace_replays_identically(self, tmp_path):
        gadget = Gadget("tumbling-incremental", [SourceConfig(num_events=400)])
        path = str(tmp_path / "w.trace")
        trace = gadget.save_trace(path)
        loaded = AccessTrace.load(path)
        result = TraceReplayer(create_connector("rocksdb")).replay(loaded)
        assert result.operations == len(trace)

    def test_online_mode_touches_store(self):
        connector = create_connector("faster")
        gadget = Gadget("continuous-aggregation", [SourceConfig(num_events=100)])
        gadget.run_online(connector)
        assert connector.store.stats.gets == 100
        assert connector.store.stats.puts == 100


class TestYCSBvsGadgetLocality:
    """Section 4's claim: tuned YCSB still misses streaming locality."""

    def test_ycsb_has_no_deletes_but_streaming_does(self, borg_tasks):
        ycsb = YCSBWorkload.core("A", operation_count=2000).generate()
        streaming = generate_workload_trace(
            "tumbling-incremental", [borg_tasks], GadgetConfig(interleave="time")
        )
        assert ycsb.op_counts()[OpType.DELETE] == 0
        assert streaming.op_counts()[OpType.DELETE] > 0

    def test_ycsb_working_set_never_shrinks(self):
        ycsb = YCSBWorkload.core("A", operation_count=3000).generate()
        sizes = [s for _, s in working_set_over_time(ycsb, step=100)]
        assert all(b >= a for a, b in zip(sizes, sizes[1:]))

    def test_streaming_working_set_shrinks(self, borg_tasks):
        streaming = generate_workload_trace(
            "tumbling-incremental", [borg_tasks], GadgetConfig(interleave="time")
        )
        sizes = [s for _, s in working_set_over_time(streaming, step=100)]
        assert any(b < a for a, b in zip(sizes, sizes[1:]))


class TestStoreEvaluationPipeline:
    def test_full_matrix_small(self, borg_tasks):
        trace = generate_workload_trace(
            "tumbling-incremental",
            [borg_tasks[:1000]],
            GadgetConfig(interleave="time"),
        )
        rows = PerformanceEvaluator().evaluate("tumbling-incremental", trace)
        assert len(rows) == 4
        assert all(row.throughput_kops > 0 for row in rows)

    def test_concurrent_slower_than_isolated(self, borg_tasks):
        trace = generate_workload_trace(
            "sliding-incremental",
            [borg_tasks[:2000]],
            GadgetConfig(interleave="time"),
        )
        evaluator = PerformanceEvaluator()
        isolated = evaluator.evaluate("w", trace)[0]  # rocksdb row
        concurrent = evaluator.evaluate_concurrent("rocksdb", [trace, trace])
        # Sharing a store doubles the work; per-op throughput of the
        # pair can't exceed twice the isolated run's.
        assert concurrent.operations == 2 * len(trace)
