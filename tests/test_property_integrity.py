"""Property-based round-trip tests for checksummed on-disk formats.

Exercises WAL record framing and SSTable block encode/decode with
randomized inputs (hypothesis, fixed seed via derandomize) including
v1 <-> v2 compatibility, arbitrary truncation, and single-bit flips.
"""

import pytest

hypothesis = pytest.importorskip("hypothesis")

from hypothesis import given, settings, strategies as st  # noqa: E402

from repro.kvstores.integrity import ChecksumKind  # noqa: E402
from repro.kvstores.lsm.record import (  # noqa: E402
    Record,
    RecordKind,
    WAL_HEADER_SIZE,
    decode_wal,
    frame_record,
    wal_header,
)
from repro.kvstores.lsm.sstable import build_sstable, open_sstable  # noqa: E402
from repro.kvstores.storage import MemoryStorage  # noqa: E402

SETTINGS = settings(max_examples=60, derandomize=True, deadline=None)

keys = st.binary(min_size=1, max_size=40)
values = st.binary(min_size=0, max_size=120)
kinds = st.sampled_from([ChecksumKind.CRC32, ChecksumKind.CRC32C])


@st.composite
def record_lists(draw, min_size=0, max_size=30):
    pairs = draw(
        st.lists(st.tuples(keys, values), min_size=min_size, max_size=max_size)
    )
    records = []
    for seq, (key, value) in enumerate(pairs, start=1):
        kind = draw(st.sampled_from([RecordKind.PUT, RecordKind.DELETE]))
        records.append(
            Record(kind, seq, key, value if kind is RecordKind.PUT else b"")
        )
    return records


def wal_bytes(records, kind):
    return wal_header(kind) + b"".join(frame_record(r, kind) for r in records)


class TestWalProperties:
    @SETTINGS
    @given(records=record_lists(), kind=kinds)
    def test_v2_round_trip(self, records, kind):
        decoded = decode_wal(wal_bytes(records, kind))
        assert decoded.records == records
        assert decoded.version == 2
        assert not decoded.truncated

    @SETTINGS
    @given(records=record_lists(min_size=1), data=st.data())
    def test_arbitrary_truncation_yields_prefix(self, records, data):
        kind = data.draw(kinds)
        buf = wal_bytes(records, kind)
        cut = data.draw(st.integers(min_value=0, max_value=len(buf)))
        decoded = decode_wal(buf[:cut])
        assert decoded.records == records[: len(decoded.records)]
        assert decoded.valid_bytes <= cut
        if cut < len(buf):
            assert len(decoded.records) < len(records) or decoded.truncated

    @SETTINGS
    @given(records=record_lists(min_size=1), data=st.data())
    def test_single_bit_flip_never_yields_wrong_records(self, records, data):
        kind = data.draw(kinds)
        buf = bytearray(wal_bytes(records, kind))
        # Flip a bit in the framed body (header pad bytes are not covered).
        pos = data.draw(
            st.integers(min_value=WAL_HEADER_SIZE, max_value=len(buf) - 1)
        )
        bit = data.draw(st.integers(min_value=0, max_value=7))
        buf[pos] ^= 1 << bit
        decoded = decode_wal(bytes(buf))  # must not raise
        assert decoded.records == records[: len(decoded.records)]
        assert len(decoded.records) < len(records)

    @SETTINGS
    @given(records=record_lists())
    def test_v1_legacy_round_trip(self, records):
        buf = b"".join(r.encode() for r in records)
        decoded = decode_wal(buf)
        assert decoded.version in (1, 2)  # empty v1 buffer is indistinguishable
        assert decoded.records == records


@st.composite
def sorted_unique_records(draw):
    ks = draw(st.lists(keys, min_size=1, max_size=40, unique=True))
    return [
        Record(RecordKind.PUT, seq, key, draw(values))
        for seq, key in enumerate(sorted(ks), start=1)
    ]


class TestSSTableProperties:
    @SETTINGS
    @given(records=sorted_unique_records(), data=st.data())
    def test_round_trip_all_kinds(self, records, data):
        kind = data.draw(
            st.sampled_from(
                [ChecksumKind.NONE, ChecksumKind.CRC32, ChecksumKind.CRC32C]
            )
        )
        block_size = data.draw(st.sampled_from([64, 256, 4096]))
        storage = MemoryStorage()
        build_sstable(1, records, storage, block_size=block_size,
                      checksum_kind=kind)
        table = open_sstable(1, storage, "sst-00000001")
        assert list(table.iter_records()) == records
        for record in records:
            found = table.get_records(record.key)
            assert found and found[0].value == record.value

    @SETTINGS
    @given(records=sorted_unique_records())
    def test_v1_and_v2_agree(self, records):
        v1, v2 = MemoryStorage(), MemoryStorage()
        build_sstable(1, records, v1, block_size=128,
                      checksum_kind=ChecksumKind.NONE)
        build_sstable(1, records, v2, block_size=128,
                      checksum_kind=ChecksumKind.CRC32)
        t1 = open_sstable(1, v1, "sst-00000001")
        t2 = open_sstable(1, v2, "sst-00000001")
        assert list(t1.iter_records()) == list(t2.iter_records())
        assert t2.verify().clean
