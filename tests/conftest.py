"""Shared fixtures for the test suite."""

import os
import sys

import pytest

# Fallback when the package is not installed: use the in-repo sources.
_SRC = os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src")
if _SRC not in sys.path:
    sys.path.insert(0, _SRC)

from repro.datasets import AzureConfig, BorgConfig, TaxiConfig  # noqa: E402
from repro.datasets import generate_azure, generate_borg, generate_taxi  # noqa: E402


@pytest.fixture(scope="session")
def borg_streams():
    """Small Borg stream pair: (task_events, job_events)."""
    return generate_borg(BorgConfig(target_events=5000, seed=11))


@pytest.fixture(scope="session")
def borg_tasks(borg_streams):
    return borg_streams[0]


@pytest.fixture(scope="session")
def taxi_streams():
    return generate_taxi(TaxiConfig(target_events=5000, seed=11))


@pytest.fixture(scope="session")
def azure_stream():
    return generate_azure(AzureConfig(target_events=5000, seed=11))
