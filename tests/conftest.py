"""Shared fixtures for the test suite."""

import os
import signal
import sys
import threading

import pytest

# Fallback when the package is not installed: use the in-repo sources.
_SRC = os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src")
if _SRC not in sys.path:
    sys.path.insert(0, _SRC)

from repro.datasets import AzureConfig, BorgConfig, TaxiConfig  # noqa: E402
from repro.datasets import generate_azure, generate_borg, generate_taxi  # noqa: E402


@pytest.fixture
def hang_guard():
    """Lightweight pytest-timeout stand-in for socket/remote tests.

    Arms a SIGALRM watchdog: if the test wedges on a socket (the class
    of bug the remote-protocol timeout fixes prevent), the alarm
    interrupts the blocking call and fails the test fast instead of
    hanging the whole suite.  No-op on platforms without SIGALRM or
    off the main thread.

    Usage::

        @pytest.fixture(autouse=True)
        def _guard(hang_guard):
            hang_guard(30)
    """
    state = {"armed": False, "previous": None}

    def arm(seconds: float = 30.0) -> None:
        if not hasattr(signal, "SIGALRM"):
            return
        if threading.current_thread() is not threading.main_thread():
            return

        def on_alarm(signum, frame):
            raise TimeoutError(
                f"test exceeded the {seconds}s hang guard -- a socket "
                "operation is probably blocking without a timeout"
            )

        state["previous"] = signal.signal(signal.SIGALRM, on_alarm)
        state["armed"] = True
        signal.setitimer(signal.ITIMER_REAL, seconds)

    yield arm
    if state["armed"]:
        signal.setitimer(signal.ITIMER_REAL, 0)
        signal.signal(signal.SIGALRM, state["previous"])


@pytest.fixture(scope="session")
def borg_streams():
    """Small Borg stream pair: (task_events, job_events)."""
    return generate_borg(BorgConfig(target_events=5000, seed=11))


@pytest.fixture(scope="session")
def borg_tasks(borg_streams):
    return borg_streams[0]


@pytest.fixture(scope="session")
def taxi_streams():
    return generate_taxi(TaxiConfig(target_events=5000, seed=11))


@pytest.fixture(scope="session")
def azure_stream():
    return generate_azure(AzureConfig(target_events=5000, seed=11))
