"""Property-based differential tests: every store must behave like a
hash map with append-merge semantics under arbitrary op sequences."""

import hypothesis.strategies as st
from hypothesis import HealthCheck, given, settings

from repro.kvstores import InMemoryStore, connect
from repro.kvstores.btree import BTreeConfig, BTreeStore
from repro.kvstores.faster import FasterConfig, FasterStore
from repro.kvstores.lsm import LetheConfig, LetheStore, LSMConfig, RocksLSMStore

KEYS = st.binary(min_size=1, max_size=8)
VALUES = st.binary(min_size=0, max_size=24)

OPERATIONS = st.lists(
    st.one_of(
        st.tuples(st.just("put"), KEYS, VALUES),
        st.tuples(st.just("merge"), KEYS, VALUES),
        st.tuples(st.just("delete"), KEYS, st.just(b"")),
        st.tuples(st.just("get"), KEYS, st.just(b"")),
    ),
    max_size=200,
)

SETTINGS = settings(
    max_examples=40,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


def run_differential(make_store, ops):
    connector = connect(make_store())
    oracle = connect(InMemoryStore())
    for op, key, value in ops:
        if op == "put":
            connector.put(key, value)
            oracle.put(key, value)
        elif op == "merge":
            connector.merge(key, value)
            oracle.merge(key, value)
        elif op == "delete":
            connector.delete(key)
            oracle.delete(key)
        else:
            assert connector.get(key) == oracle.get(key)
    for _, key, _ in ops:
        assert connector.get(key) == oracle.get(key)


@given(ops=OPERATIONS)
@SETTINGS
def test_lsm_matches_oracle(ops):
    run_differential(
        lambda: RocksLSMStore(
            LSMConfig(write_buffer_size=256, block_cache_size=512,
                      level_base_bytes=1024, target_file_size=512,
                      l0_compaction_trigger=2, max_levels=3)
        ),
        ops,
    )


@given(ops=OPERATIONS)
@SETTINGS
def test_lethe_matches_oracle(ops):
    run_differential(
        lambda: LetheStore(
            LetheConfig(write_buffer_size=256, block_cache_size=512,
                        level_base_bytes=1024, target_file_size=512,
                        l0_compaction_trigger=2, max_levels=3,
                        delete_persistence_threshold_s=0.0,
                        fade_check_interval=20)
        ),
        ops,
    )


@given(ops=OPERATIONS)
@SETTINGS
def test_faster_matches_oracle(ops):
    run_differential(
        lambda: FasterStore(FasterConfig(memory_budget=512, segment_size=128)),
        ops,
    )


@given(ops=OPERATIONS)
@SETTINGS
def test_btree_matches_oracle(ops):
    run_differential(
        lambda: BTreeStore(BTreeConfig(order=4, cache_bytes=256)),
        ops,
    )


@given(
    items=st.dictionaries(KEYS, VALUES, max_size=50),
    bounds=st.tuples(KEYS, KEYS),
)
@SETTINGS
def test_lsm_scan_matches_sorted_dict(items, bounds):
    start, end = min(bounds), max(bounds)
    store = RocksLSMStore(
        LSMConfig(write_buffer_size=256, l0_compaction_trigger=2, max_levels=3)
    )
    for key, value in items.items():
        store.put(key, value)
    expected = sorted(
        (k, v) for k, v in items.items() if start <= k < end
    )
    assert list(store.scan(start, end)) == expected


@given(
    items=st.dictionaries(KEYS, VALUES, max_size=50),
    bounds=st.tuples(KEYS, KEYS),
)
@SETTINGS
def test_btree_scan_matches_sorted_dict(items, bounds):
    start, end = min(bounds), max(bounds)
    store = BTreeStore(BTreeConfig(order=4, cache_bytes=100_000))
    for key, value in items.items():
        store.put(key, value)
    expected = sorted(
        (k, v) for k, v in items.items() if start <= k < end
    )
    assert list(store.scan(start, end)) == expected
