"""Progress view, series summaries, progress-aligned diff, CLI plumbing."""

import io
import json

from repro.cli import main
from repro.obs.dashboard import (
    ProgressView,
    diff_series,
    format_diff,
    format_summary,
    summarize_series,
)


def write_series(path, store, rows):
    """Write a minimal metrics JSONL file for the offline readers."""
    with open(path, "w") as handle:
        header = {
            "sample": "header", "store": store, "total_ops": 1000,
            "interval_ms": 100.0, "metrics": [],
        }
        handle.write(json.dumps(header) + "\n")
        for row in rows:
            handle.write(json.dumps(row) + "\n")


def sample(t_s, ops, progress, throughput, p99, gauges=None, **extra):
    row = {
        "t_s": t_s, "ops": ops, "progress": progress,
        "interval_ops": int(throughput * 0.1),
        "throughput_ops": throughput,
        "p50_us": p99 / 4, "p95_us": p99 / 2, "p99_us": p99,
        "gauges": gauges or {},
    }
    row.update(extra)
    return row


class TestProgressView:
    def test_renders_single_refreshing_line(self):
        stream = io.StringIO()
        view = ProgressView(stream, store="rocksdb")
        view(sample(0.1, 500, 0.5, 125_000.0, 42.0,
                    gauges={"ops.compactions": 3,
                            "lsm.block_cache_hit_rate": 0.875}))
        view.finish()
        text = stream.getvalue()
        assert text.startswith("\r")
        assert text.endswith("\n")
        assert "[rocksdb]" in text
        assert "50.0%" in text
        assert "125.0kop/s" in text
        assert "p99=42us" in text
        assert "compactions=3" in text
        assert "cache=88%" in text

    def test_shows_fault_counters_when_present(self):
        stream = io.StringIO()
        view = ProgressView(stream)
        view(sample(0.1, 10, 0.1, 100.0, 5.0, faults=2, retries=7))
        assert "faults=2" in stream.getvalue()
        assert "retries=7" in stream.getvalue()

    def test_finish_without_samples_writes_nothing(self):
        stream = io.StringIO()
        ProgressView(stream).finish()
        assert stream.getvalue() == ""


class TestSummarize:
    def test_aggregates_run_and_activity(self, tmp_path):
        path = str(tmp_path / "a.jsonl")
        write_series(path, "rocksdb", [
            sample(0.1, 100, 0.1, 1000.0, 10.0,
                   gauges={"ops.flushes": 1, "ops.compactions": 0}),
            sample(1.0, 1000, 1.0, 900.0, 25.0,
                   gauges={"ops.flushes": 5, "ops.compactions": 2}),
        ])
        summary = summarize_series(path)
        assert summary["store"] == "rocksdb"
        assert summary["samples"] == 2
        assert summary["ops"] == 1000
        assert summary["duration_s"] == 1.0
        assert summary["mean_throughput_ops"] == 1000.0
        assert summary["min_interval_throughput_ops"] == 900.0
        assert summary["max_p99_us"] == 25.0
        assert summary["activity"] == {
            "ops.flushes": 4, "ops.compactions": 2,
        }
        text = format_summary(summary)
        assert "rocksdb" in text
        assert "ops.flushes" in text

    def test_empty_series_is_reported_not_crashed(self, tmp_path):
        path = str(tmp_path / "empty.jsonl")
        write_series(path, "memory", [])
        summary = summarize_series(path)
        assert summary["samples"] == 0
        assert "samples=0" in format_summary(summary)


class TestDiff:
    def _two_runs(self, tmp_path):
        """Run B stalls in the 50-60% phase with a compaction burst."""
        path_a = str(tmp_path / "a.jsonl")
        path_b = str(tmp_path / "b.jsonl")
        rows_a, rows_b = [], []
        for step in range(10):
            progress = (step + 0.5) / 10
            gauges = {"ops.compactions": step // 4, "ops.flushes": step}
            rows_a.append(sample(step * 0.1, step * 100, progress,
                                 1000.0, 10.0, gauges=dict(gauges)))
            if step == 5:
                gauges_b = {"ops.compactions": 40, "ops.flushes": step}
                rows_b.append(sample(step * 0.3, step * 100, progress,
                                     250.0, 90.0, gauges=gauges_b))
                rows_b.append(sample(step * 0.3 + 0.1, step * 100 + 50,
                                     progress + 0.04, 260.0, 80.0,
                                     gauges={"ops.compactions": 55,
                                             "ops.flushes": step}))
            else:
                rows_b.append(sample(step * 0.3, step * 100, progress,
                                     950.0, 12.0, gauges=dict(gauges)))
        write_series(path_a, "rocksdb", rows_a)
        write_series(path_b, "rocksdb", rows_b)
        return path_a, path_b

    def test_attributes_worst_phase_to_divergent_series(self, tmp_path):
        path_a, path_b = self._two_runs(tmp_path)
        diff = diff_series(path_a, path_b, bins=10)
        assert diff["bins"] == 10
        assert len(diff["phases"]) == 10
        attribution = diff["attribution"]
        assert attribution["phase"] == 5
        assert attribution["progress"] == "50-60%"
        assert attribution["throughput_ratio"] < 0.5
        assert attribution["series"] == "ops.compactions"
        assert attribution["delta"] > 0

    def test_format_diff_prints_table_and_verdict(self, tmp_path):
        path_a, path_b = self._two_runs(tmp_path)
        text = format_diff(diff_series(path_a, path_b))
        assert "50-60%" in text
        assert "worst phase: 50-60%" in text
        assert "dominated by ops.compactions" in text

    def test_identical_runs_have_ratio_near_one(self, tmp_path):
        path_a, _ = self._two_runs(tmp_path)
        diff = diff_series(path_a, path_a)
        for phase in diff["phases"]:
            if "throughput_ratio" in phase:
                assert phase["throughput_ratio"] == 1.0


class TestMetricsCLI:
    def test_summarize_command(self, tmp_path, capsys):
        path = str(tmp_path / "a.jsonl")
        write_series(path, "faster", [
            sample(0.5, 500, 0.5, 1000.0, 8.0),
        ])
        assert main(["metrics", "summarize", path]) == 0
        out = capsys.readouterr().out
        assert "faster" in out
        assert "500 ops" in out

    def test_diff_command(self, tmp_path, capsys):
        path = str(tmp_path / "a.jsonl")
        write_series(path, "rocksdb", [
            sample(0.5, 500, 0.5, 1000.0, 8.0),
        ])
        assert main(["metrics", "diff", path, path, "--bins", "4"]) == 0
        out = capsys.readouterr().out
        assert "B/A" in out
