"""Edge cases for merge_shard_series and summarize_series."""

import json

from repro.core.histogram import LatencyHistogram
from repro.obs.dashboard import summarize_series
from repro.obs.metrics import merge_shard_series, read_series


def write_series(path, store="rocksdb", total_ops=100, metrics=None,
                 samples=None, **header_extra):
    header = {"sample": "header", "store": store, "total_ops": total_ops,
              "interval_ms": 100.0, "metrics": metrics or []}
    header.update(header_extra)
    with open(path, "w") as handle:
        handle.write(json.dumps(header) + "\n")
        for sample in samples or []:
            handle.write(json.dumps(sample) + "\n")


def sample(t_s, ops, throughput=1000.0, p99=10.0, hist=None, **extra):
    row = {"t_s": t_s, "ops": ops, "progress": 0.5, "interval_ops": 50,
           "throughput_ops": throughput, "p50_us": p99 / 2,
           "p95_us": p99 * 0.9, "p99_us": p99, "gauges": {}}
    if hist is not None:
        row["latency_hist"] = hist
    row.update(extra)
    return row


class TestSummarizeEdgeCases:
    def test_empty_series_header_only(self, tmp_path):
        path = str(tmp_path / "empty.jsonl")
        write_series(path, samples=[])
        summary = summarize_series(path)
        assert summary["samples"] == 0
        assert summary["store"] == "rocksdb"

    def test_single_sample_series(self, tmp_path):
        path = str(tmp_path / "one.jsonl")
        write_series(path, samples=[sample(0.1, 50, throughput=500.0)])
        summary = summarize_series(path)
        assert summary["samples"] == 1
        assert summary["ops"] == 50
        assert summary["mean_throughput_ops"] == 500.0
        assert summary["min_interval_throughput_ops"] == 500.0
        assert summary["max_p99_us"] == 10.0


class TestMergeShardSeries:
    def test_merge_empty_shards(self, tmp_path):
        paths = []
        for index in range(2):
            path = str(tmp_path / f"s{index}.jsonl")
            write_series(path, total_ops=10, samples=[])
            paths.append(path)
        out = str(tmp_path / "merged.jsonl")
        header = merge_shard_series(paths, out)
        assert header["total_ops"] == 20
        assert header["shards"] == 2
        _, samples = read_series(out)
        assert samples == []
        assert summarize_series(out)["samples"] == 0

    def test_mismatched_headers_first_wins_counts_sum(self, tmp_path):
        a = str(tmp_path / "a.jsonl")
        b = str(tmp_path / "b.jsonl")
        write_series(a, store="rocksdb", total_ops=60, metrics=["x"],
                     samples=[sample(0.2, 60)])
        write_series(b, store="faster", total_ops=40, metrics=["x", "y"],
                     interval_ms=250.0, samples=[sample(0.1, 40)])
        out = str(tmp_path / "merged.jsonl")
        header = merge_shard_series([a, b], out)
        # First shard's header is the base; counts sum, metrics union.
        assert header["store"] == "rocksdb"
        assert header["interval_ms"] == 100.0
        assert header["total_ops"] == 100
        assert header["metrics"] == ["x", "y"]
        # Samples are re-ordered by time and tagged with their shard.
        _, samples = read_series(out)
        assert [s["t_s"] for s in samples] == [0.1, 0.2]
        assert [s["shard"] for s in samples] == [1, 0]

    def test_per_shard_cumulative_counters_sum_not_last(self, tmp_path):
        # Each shard's `ops` is its own cumulative counter; the summary
        # must sum the per-shard finals, not read the globally last
        # sample (which would report one shard's count as the run's).
        a = str(tmp_path / "a.jsonl")
        b = str(tmp_path / "b.jsonl")
        write_series(a, total_ops=100,
                     samples=[sample(0.1, 30), sample(0.3, 70)])
        write_series(b, total_ops=100,
                     samples=[sample(0.1, 20), sample(0.2, 30)])
        out = str(tmp_path / "merged.jsonl")
        merge_shard_series([a, b], out)
        assert summarize_series(out)["ops"] == 100  # 70 + 30

    def test_merged_histogram_population_equality(self, tmp_path):
        # Merging shards then merging every interval histogram must see
        # exactly the union of all recorded latencies.
        populations = [[1000, 2000, 3000], [4000], [5000, 6000]]
        paths = []
        for index, values in enumerate(populations):
            hist = LatencyHistogram()
            hist.record_many(values)
            path = str(tmp_path / f"s{index}.jsonl")
            write_series(path, samples=[
                sample(0.1 * (index + 1), len(values), hist=hist.to_dict()),
            ])
            paths.append(path)
        out = str(tmp_path / "merged.jsonl")
        merge_shard_series(paths, out)
        _, samples = read_series(out)
        merged = LatencyHistogram()
        for row in samples:
            merged.merge(LatencyHistogram.from_dict(row["latency_hist"]))
        assert merged.total == sum(len(v) for v in populations)
        assert merged.max_value == 6000
