"""End-to-end replay telemetry: sessions, crash shutdown, sharding, CLI."""

import io
import json

import pytest

from repro.core import PerformanceEvaluator, SourceConfig, TraceReplayer
from repro.core.replayer import ShardedReplayer
from repro.core import generate_workload_trace
from repro.cli import main
from repro.faults import FaultPlan
from repro.kvstores import create_connector
from repro.obs import ReplayTelemetry, tracing
from repro.obs.metrics import read_series


@pytest.fixture(autouse=True)
def no_global_tracer():
    tracing.uninstall()
    yield
    tracing.uninstall()


def small_trace(n=300, workload="tumbling-incremental"):
    return generate_workload_trace(workload, [SourceConfig(num_events=n)])


class TestTelemetrySession:
    def test_full_session_writes_trace_and_metrics(self, tmp_path):
        # Large enough that the LSM flushes at least once (so internal
        # spans actually fire), small enough to stay fast.
        trace = small_trace(5000)
        trace_path = str(tmp_path / "run.trace.json")
        metrics_path = str(tmp_path / "run.jsonl")
        telemetry = ReplayTelemetry(
            trace_path=trace_path, metrics_path=metrics_path,
            interval_ms=5.0,
        )
        connector = create_connector("rocksdb")
        result = TraceReplayer(connector, telemetry=telemetry).replay(trace)
        connector.close()
        assert result.operations == len(trace)

        doc = json.loads(open(trace_path).read())
        cats = {e.get("cat") for e in doc["traceEvents"] if e["ph"] == "X"}
        assert "lsm" in cats  # flush/WAL/compaction spans fired
        assert doc["otherData"]["dropped_spans"] == 0

        header, samples = read_series(metrics_path)
        assert header["store"] == "rocksdb"
        assert header["total_ops"] == len(trace)
        assert samples[-1]["ops"] == len(trace)
        assert samples[-1]["progress"] == 1.0
        assert samples[-1]["gauges"]["ops.puts"] > 0
        # client-observed latency reached the interval histograms
        assert sum(s["interval_ops"] for s in samples) == len(trace)
        assert any(s["p99_us"] > 0 for s in samples)

    def test_session_uninstalls_tracer_after_replay(self, tmp_path):
        telemetry = ReplayTelemetry(trace_path=str(tmp_path / "t.json"))
        connector = create_connector("memory")
        TraceReplayer(connector, telemetry=telemetry).replay(small_trace(50))
        connector.close()
        assert tracing.active() is None

    def test_no_telemetry_keeps_plain_path(self):
        connector = create_connector("memory")
        replayer = TraceReplayer(connector)
        assert replayer.telemetry is None
        result = replayer.replay(small_trace(50))
        assert result.operations > 0
        assert tracing.active() is None
        connector.close()

    def test_progress_view_draws_from_sampler(self, tmp_path):
        stream = io.StringIO()
        telemetry = ReplayTelemetry(progress_stream=stream, interval_ms=2.0)
        connector = create_connector("memory")
        TraceReplayer(connector, telemetry=telemetry).replay(small_trace())
        connector.close()
        text = stream.getvalue()
        assert "[memory]" in text
        assert text.endswith("\n")

    def test_unmeasured_replay_still_tracks_progress(self, tmp_path):
        metrics_path = str(tmp_path / "m.jsonl")
        telemetry = ReplayTelemetry(metrics_path=metrics_path)
        trace = small_trace(100)
        connector = create_connector("memory")
        TraceReplayer(
            connector, measure_latency=False, telemetry=telemetry
        ).replay(trace)
        connector.close()
        _header, samples = read_series(metrics_path)
        assert samples[-1]["ops"] == len(trace)
        assert samples[-1]["progress"] == 1.0


class TestCleanShutdown:
    def test_sampler_stops_when_replay_raises(self, tmp_path):
        class ExplodingConnector:
            name = "exploding"

            def __init__(self):
                self.calls = 0

            def _boom(self, *args):
                self.calls += 1
                if self.calls > 10:
                    raise RuntimeError("store wedged")

            get = put = merge = delete = _boom

            def take_background_ns(self):
                return 0

            def close(self):
                pass

        metrics_path = str(tmp_path / "m.jsonl")
        telemetry = ReplayTelemetry(
            trace_path=str(tmp_path / "t.json"),
            metrics_path=metrics_path, interval_ms=5.0,
        )
        replayer = TraceReplayer(ExplodingConnector(), telemetry=telemetry)
        with pytest.raises(RuntimeError):
            replayer.replay(small_trace())
        assert telemetry.last_sampler is not None
        assert telemetry.last_sampler.stopped
        assert tracing.active() is None
        # both outputs are complete and parseable despite the crash
        json.loads(open(tmp_path / "t.json").read())
        for line in open(metrics_path):
            json.loads(line)

    def test_sampler_stops_on_injected_crash_point(self, tmp_path):
        metrics_path = str(tmp_path / "m.jsonl")
        telemetry = ReplayTelemetry(metrics_path=metrics_path, interval_ms=5.0)
        trace = small_trace()
        connector = create_connector("rocksdb")
        replayer = TraceReplayer(
            connector,
            fault_plan=FaultPlan(crash_at=100),
            telemetry=telemetry,
        )
        result = replayer.replay(trace)
        assert result.crashed_at == 100
        assert telemetry.last_sampler.stopped
        _header, samples = read_series(metrics_path)
        assert samples[-1]["ops"] == 100  # progress froze at the crash


class TestShardedTelemetry:
    def test_workers_share_progress_and_export_lanes(self, tmp_path):
        trace = small_trace(20_000)  # big enough for per-shard LSM flushes
        trace_path = str(tmp_path / "sh.trace.json")
        metrics_path = str(tmp_path / "sh.jsonl")
        telemetry = ReplayTelemetry(
            trace_path=trace_path, metrics_path=metrics_path,
            interval_ms=5.0,
        )
        replayer = ShardedReplayer(
            lambda: create_connector("rocksdb"),
            num_workers=3,
            telemetry=telemetry,
        )
        result = replayer.replay(trace)
        replayer.close()
        assert result.operations == len(trace)

        _header, samples = read_series(metrics_path)
        assert samples[-1]["ops"] == len(trace)  # all shards counted

        doc = json.loads(open(trace_path).read())
        lanes = {
            e["args"]["name"]
            for e in doc["traceEvents"]
            if e["ph"] == "M" and e["name"] == "thread_name"
        }
        assert any(name.startswith("replay-shard-") for name in lanes)


class TestEvaluatorSeries:
    def test_rows_carry_timeseries_path(self, tmp_path):
        evaluator = PerformanceEvaluator(stores=["memory", "faster"])
        rows = evaluator.evaluate(
            "unit", small_trace(), metrics_dir=str(tmp_path / "series"),
            metrics_interval_ms=5.0,
        )
        for row in rows:
            assert row.timeseries_path is not None
            assert row.store in row.timeseries_path
            header, samples = read_series(row.timeseries_path)
            assert header["workload"] == "unit"
            assert samples[-1]["progress"] == 1.0

    def test_no_metrics_dir_means_no_series(self):
        evaluator = PerformanceEvaluator(stores=["memory"])
        (row,) = evaluator.evaluate("unit", small_trace(50))
        assert row.timeseries_path is None


class TestReplayCLI:
    def test_replay_with_all_telemetry_flags(self, tmp_path, capsys):
        trace_file = str(tmp_path / "t.gdgt")
        main(["generate", "-w", "tumbling-incremental", "-o", trace_file,
              "--events", "5000"])
        trace_out = str(tmp_path / "out.trace.json")
        metrics_out = str(tmp_path / "out.jsonl")
        code = main([
            "replay", trace_file, "--store", "rocksdb",
            "--trace", trace_out, "--metrics", metrics_out,
            "--metrics-interval-ms", "5",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "wrote span trace" in out
        assert "wrote metrics time series" in out
        doc = json.loads(open(trace_out).read())
        assert any(e["ph"] == "X" for e in doc["traceEvents"])
        header, samples = read_series(metrics_out)
        assert header["store"] == "rocksdb"
        assert samples[-1]["progress"] == 1.0

    def test_compare_metrics_dir(self, tmp_path, capsys):
        trace_file = str(tmp_path / "t.gdgt")
        main(["generate", "-w", "tumbling-incremental", "-o", trace_file,
              "--events", "300"])
        series_dir = tmp_path / "series"
        code = main([
            "compare", trace_file, "--stores", "memory", "faster",
            "--metrics", str(series_dir), "--metrics-interval-ms", "5",
        ])
        assert code == 0
        written = sorted(p.name for p in series_dir.iterdir())
        assert written == ["t-faster.jsonl", "t-memory.jsonl"]
        assert main([
            "metrics", "diff",
            str(series_dir / "t-memory.jsonl"),
            str(series_dir / "t-faster.jsonl"),
        ]) == 0
        assert "worst phase" in capsys.readouterr().out

    def test_crash_at_rejects_metrics_but_takes_trace(self, tmp_path):
        trace_file = str(tmp_path / "t.gdgt")
        main(["generate", "-w", "tumbling-incremental", "-o", trace_file,
              "--events", "300"])
        with pytest.raises(SystemExit):
            main(["replay", trace_file, "--store", "rocksdb",
                  "--crash-at", "100", "--metrics", str(tmp_path / "m.jsonl")])
        trace_out = str(tmp_path / "crash.trace.json")
        code = main(["replay", trace_file, "--store", "rocksdb",
                     "--crash-at", "100", "--trace", trace_out])
        assert code == 0
        doc = json.loads(open(trace_out).read())
        names = {e["name"] for e in doc["traceEvents"] if e["ph"] == "X"}
        assert "recovery.recover" in names
        assert "recovery.verify" in names
        assert tracing.active() is None
