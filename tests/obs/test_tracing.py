"""Span tracer: ring semantics, no-op default, Chrome trace export."""

import json
import threading

import pytest

from repro.obs import tracing
from repro.obs.tracing import SpanTracer


@pytest.fixture(autouse=True)
def no_global_tracer():
    """Every test starts and ends with tracing off."""
    tracing.uninstall()
    yield
    tracing.uninstall()


class FakeClock:
    """Deterministic nanosecond clock advancing 1000ns per read."""

    def __init__(self):
        self.now = 0

    def __call__(self):
        self.now += 1000
        return self.now


class TestNoOpDefault:
    def test_span_is_shared_null_object_when_off(self):
        assert tracing.active() is None
        a = tracing.span("lsm.flush", bytes=1)
        b = tracing.span("lsm.compaction")
        assert a is b  # no allocation on the disabled path
        with a as sp:
            sp.add(anything=1)  # must be a no-op, not an error

    def test_instant_is_noop_when_off(self):
        tracing.instant("retry.attempt", attempt=1)  # must not raise

    def test_install_uninstall_round_trip(self):
        tracer = tracing.install(SpanTracer(capacity=8))
        assert tracing.active() is tracer
        with tracing.span("x.y"):
            pass
        assert len(tracer) == 1
        assert tracing.uninstall() is tracer
        assert tracing.active() is None

    def test_tracing_contextmanager_uninstalls_on_exit(self):
        with tracing.tracing(capacity=4) as tracer:
            assert tracing.active() is tracer
        assert tracing.active() is None


class TestRingSemantics:
    def test_overflow_keeps_newest_and_counts_dropped(self):
        tracer = SpanTracer(capacity=4, clock=FakeClock())
        for index in range(10):
            tracer.record_instant(f"event.{index}")
        assert len(tracer) == 4
        names = [entry[0] for entry in tracer.spans()]
        assert names == ["event.6", "event.7", "event.8", "event.9"]
        assert tracer.dropped == 6

    def test_under_capacity_keeps_everything_in_order(self):
        tracer = SpanTracer(capacity=16, clock=FakeClock())
        for index in range(5):
            tracer.record_instant(f"event.{index}")
        assert [e[0] for e in tracer.spans()] == [
            f"event.{i}" for i in range(5)
        ]
        assert tracer.dropped == 0

    def test_capacity_must_be_positive(self):
        with pytest.raises(ValueError):
            SpanTracer(capacity=0)

    def test_span_records_duration_and_args(self):
        tracer = SpanTracer(capacity=8, clock=FakeClock())
        with tracer.span("lsm.flush", bytes=128) as sp:
            sp.add(sstable_bytes=256)
        (name, _tid, _start, dur_ns, args) = tracer.spans()[0]
        assert name == "lsm.flush"
        assert dur_ns == 1000  # one fake-clock tick between enter/exit
        assert args == {"bytes": 128, "sstable_bytes": 256}


class TestChromeTraceExport:
    def test_schema_of_complete_and_instant_events(self):
        tracer = SpanTracer(capacity=8, clock=FakeClock())
        with tracer.span("lsm.flush", bytes=64):
            pass
        tracer.record_instant("retry.attempt", {"attempt": 1})
        doc = tracer.to_chrome_trace()
        assert doc["otherData"]["dropped_spans"] == 0
        events = doc["traceEvents"]
        meta = [e for e in events if e["ph"] == "M"]
        assert meta[0]["name"] == "process_name"
        thread_meta = [e for e in meta if e["name"] == "thread_name"]
        assert len(thread_meta) == 1
        complete = [e for e in events if e["ph"] == "X"]
        assert len(complete) == 1
        (flush,) = complete
        assert flush["name"] == "lsm.flush"
        assert flush["cat"] == "lsm"
        assert flush["pid"] == 1
        assert flush["tid"] == 0
        assert flush["dur"] == 1.0  # 1000ns -> 1us
        assert flush["ts"] >= 0
        assert flush["args"] == {"bytes": 64}
        instants = [e for e in events if e["ph"] == "i"]
        assert len(instants) == 1
        assert instants[0]["s"] == "t"
        assert instants[0]["args"] == {"attempt": 1}

    def test_dropped_count_reaches_export(self):
        tracer = SpanTracer(capacity=2, clock=FakeClock())
        for index in range(5):
            tracer.record_instant(f"e.{index}")
        assert tracer.to_chrome_trace()["otherData"]["dropped_spans"] == 3

    def test_one_lane_per_recording_thread(self):
        tracer = SpanTracer(capacity=32)
        # Keep all workers alive together: thread idents are reused
        # once a thread exits, which would collapse lanes.
        barrier = threading.Barrier(3)

        def work():
            with tracer.span("worker.op"):
                barrier.wait(timeout=5)

        threads = [
            threading.Thread(target=work, name=f"replay-shard-{i}")
            for i in range(3)
        ]
        with tracer.span("main.op"):
            pass
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        doc = tracer.to_chrome_trace()
        lanes = {
            e["args"]["name"]
            for e in doc["traceEvents"]
            if e["ph"] == "M" and e["name"] == "thread_name"
        }
        assert {"replay-shard-0", "replay-shard-1", "replay-shard-2"} <= lanes
        tids = {e["tid"] for e in doc["traceEvents"] if e["ph"] == "X"}
        assert len(tids) == 4  # main + 3 workers, distinct small lanes

    def test_export_writes_valid_json(self, tmp_path):
        tracer = SpanTracer(capacity=8, clock=FakeClock())
        with tracer.span("a.b"):
            pass
        path = tmp_path / "out.trace.json"
        tracer.export(str(path))
        doc = json.loads(path.read_text())
        assert doc["displayTimeUnit"] == "ms"
        assert any(e["ph"] == "X" for e in doc["traceEvents"])
