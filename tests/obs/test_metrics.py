"""Metrics registry, store gauge discovery, and the JSONL sampler."""

import io
import json
import time

import pytest

from repro.core.histogram import LatencyHistogram
from repro.kvstores import create_store
from repro.obs.metrics import (
    MetricsRegistry,
    ReplayProgress,
    Sampler,
    read_series,
    register_store,
)


class TestRegistry:
    def test_counter_is_memoized_and_increments(self):
        registry = MetricsRegistry()
        counter = registry.counter("ops.custom")
        counter.inc()
        counter.inc(4)
        assert registry.counter("ops.custom") is counter
        assert registry.sample()["ops.custom"] == 5

    def test_gauge_reads_live_value(self):
        registry = MetricsRegistry()
        box = {"v": 1}
        registry.gauge("box.v", lambda: box["v"])
        assert registry.sample()["box.v"] == 1
        box["v"] = 7
        assert registry.sample()["box.v"] == 7

    def test_raising_gauge_reports_none_not_crash(self):
        registry = MetricsRegistry()
        registry.gauge("bad", lambda: 1 / 0)
        registry.gauge("good", lambda: 3)
        sample = registry.sample()
        assert sample["bad"] is None
        assert sample["good"] == 3


class TestRegisterStore:
    def _names(self, store_name):
        registry = MetricsRegistry()
        store = create_store(store_name)
        count = register_store(registry, store)
        names = registry.names()
        store.close()
        assert count == len(names)
        return names

    def test_memory_store_has_ops_and_integrity_only(self):
        names = self._names("memory")
        assert "ops.puts" in names
        assert "integrity.detected" in names
        assert not any(n.startswith(("lsm.", "btree.", "faster.")) for n in names)

    def test_lsm_store_exposes_internals(self):
        names = self._names("rocksdb")
        for expected in (
            "lsm.memtable_bytes",
            "lsm.immutable_memtables",
            "lsm.wal_bytes",
            "lsm.sstables",
            "lsm.l0_files",
            "lsm.block_cache_hit_rate",
            "lsm.quarantined",
        ):
            assert expected in names

    def test_btree_store_exposes_page_cache(self):
        names = self._names("berkeleydb")
        for expected in (
            "btree.resident_pages",
            "btree.page_ins",
            "btree.page_outs",
            "btree.page_cache_hit_rate",
            "btree.height",
        ):
            assert expected in names

    def test_faster_store_exposes_hybrid_log(self):
        names = self._names("faster")
        for expected in (
            "faster.log_tail",
            "faster.log_head",
            "faster.disk_reads",
            "faster.sealed_segments",
        ):
            assert expected in names

    def test_connector_is_unwrapped_and_client_counters_kept(self):
        from repro.kvstores import connect

        store = create_store("rocksdb")
        connector = connect(store)
        registry = MetricsRegistry()
        register_store(registry, connector)
        assert "lsm.memtable_bytes" in registry.names()
        store.put(b"k", b"v")
        assert registry.sample()["ops.puts"] == 1
        connector.close()

    def test_remote_shaped_object_registers_reconnects(self):
        class FakeClient:
            reconnects = 2

        registry = MetricsRegistry()
        register_store(registry, FakeClient())
        assert registry.sample()["remote.reconnects"] == 2

    def test_gauges_read_live_store_activity(self):
        registry = MetricsRegistry()
        store = create_store("rocksdb")
        register_store(registry, store)
        before = registry.sample()
        for index in range(200):
            store.put(b"key-%d" % index, b"x" * 64)
        after = registry.sample()
        assert after["ops.puts"] == before["ops.puts"] + 200
        assert after["lsm.memtable_bytes"] > 0 or after["ops.flushes"] > 0
        store.close()


class TestReplayProgress:
    def test_record_and_take_interval_swaps_histogram(self):
        progress = ReplayProgress(total=10)
        progress.record(1000)
        progress.record(2000)
        ops, interval = progress.take_interval()
        assert ops == 2
        assert interval.total == 2
        ops, interval = progress.take_interval()
        assert ops == 2  # cumulative
        assert interval.total == 0  # fresh interval histogram

    def test_count_without_latency(self):
        progress = ReplayProgress(total=100)
        progress.count(64)
        progress.count()
        ops, interval = progress.take_interval()
        assert ops == 65
        assert interval.total == 0

    def test_fault_counts_sum_attached_sources(self):
        class Injected:
            total_faults = 3

        class Injector:
            injected = Injected()

        class Retrier:
            retries = 5

        progress = ReplayProgress(total=1)
        assert progress.fault_counts() == (0, 0)
        progress.attach_fault_sources(Injector(), Retrier())
        progress.attach_fault_sources(None, Retrier())
        assert progress.fault_counts() == (3, 10)


class TestSampler:
    def test_writes_header_then_samples(self, tmp_path):
        registry = MetricsRegistry()
        registry.gauge("g.one", lambda: 1)
        progress = ReplayProgress(total=100)
        path = str(tmp_path / "series.jsonl")
        sampler = Sampler(
            registry, progress, sink=path, interval_ms=5.0,
            store="memory", meta={"workload": "w"},
        )
        sampler.start()
        for _ in range(50):
            progress.record(1500)
        time.sleep(0.05)
        sampler.stop()
        header, samples = read_series(path)
        assert header["sample"] == "header"
        assert header["store"] == "memory"
        assert header["workload"] == "w"
        assert header["total_ops"] == 100
        assert header["metrics"] == ["g.one"]
        assert samples, "at least the final stop() sample must exist"
        last = samples[-1]
        assert last["ops"] == 50
        assert last["progress"] == 0.5
        assert last["gauges"]["g.one"] == 1
        assert sum(s["interval_ops"] for s in samples) == 50

    def test_every_line_is_complete_json(self, tmp_path):
        registry = MetricsRegistry()
        progress = ReplayProgress(total=10)
        path = str(tmp_path / "series.jsonl")
        sampler = Sampler(registry, progress, sink=path, interval_ms=2.0)
        sampler.start()
        time.sleep(0.03)
        sampler.stop()
        for line in open(path):
            json.loads(line)  # raises on a torn line

    def test_stop_is_idempotent_and_final_sample_taken(self):
        registry = MetricsRegistry()
        progress = ReplayProgress(total=4)
        sink = io.StringIO()
        sampler = Sampler(registry, progress, sink=sink, interval_ms=60_000.0)
        sampler.start()
        progress.record(500)
        sampler.stop()
        sampler.stop()
        assert sampler.stopped
        lines = [line for line in sink.getvalue().splitlines() if line]
        assert len(lines) == 2  # header + the final stop() sample
        final = json.loads(lines[-1])
        assert final["ops"] == 1

    def test_interval_histogram_round_trips_through_jsonl(self, tmp_path):
        registry = MetricsRegistry()
        progress = ReplayProgress(total=1000)
        path = str(tmp_path / "series.jsonl")
        sampler = Sampler(registry, progress, sink=path, interval_ms=60_000.0)
        sampler.start()
        latencies = [1_000, 5_000, 5_000, 250_000, 2_000_000]
        for ns in latencies:
            progress.record(ns)
        sampler.stop()
        _header, samples = read_series(path)
        rebuilt = LatencyHistogram()
        for sample in samples:
            if "latency_hist" in sample:
                rebuilt.merge(LatencyHistogram.from_dict(sample["latency_hist"]))
        direct = LatencyHistogram()
        for ns in latencies:
            direct.record(ns)
        assert rebuilt.total == direct.total
        assert rebuilt.percentile(50.0) == direct.percentile(50.0)
        assert rebuilt.percentile(99.0) == direct.percentile(99.0)

    def test_broken_on_sample_callback_does_not_kill_sampler(self):
        registry = MetricsRegistry()
        progress = ReplayProgress(total=2)

        def broken(sample):
            raise RuntimeError("boom")

        sampler = Sampler(
            registry, progress, sink=None, interval_ms=60_000.0,
            on_sample=broken,
        )
        sampler.start()
        sampler.stop()
        assert sampler.stopped
        assert sampler.samples_written == 1

    def test_interval_must_be_positive(self):
        with pytest.raises(ValueError):
            Sampler(MetricsRegistry(), ReplayProgress(1), interval_ms=0)
