"""Property-based tests for windowing and operator invariants."""

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.events import Event, Watermark
from repro.streaming import (
    SessionWindowOperator,
    SlidingWindows,
    TumblingWindows,
    WindowOperator,
)
from repro.trace import OpType

SETTINGS = settings(max_examples=60, deadline=None)

TIMESTAMPS = st.integers(min_value=0, max_value=10**9)
LENGTHS = st.integers(min_value=1, max_value=100_000)


@given(timestamp=TIMESTAMPS, length=LENGTHS)
@SETTINGS
def test_tumbling_window_contains_its_event(timestamp, length):
    windows = TumblingWindows(length)
    starts = windows.assign(timestamp)
    assert len(starts) == 1
    assert starts[0] <= timestamp < windows.end_of(starts[0])


@given(
    timestamp=TIMESTAMPS,
    length=st.integers(min_value=1, max_value=10_000),
    slide_fraction=st.integers(min_value=1, max_value=10),
)
@SETTINGS
def test_sliding_windows_cover_event_exactly(timestamp, length, slide_fraction):
    slide = max(1, length // slide_fraction)
    windows = SlidingWindows(length, slide)
    starts = windows.assign(timestamp)
    # Every assigned window contains the event...
    for start in starts:
        assert start <= timestamp < start + length
    # ...and no window containing the event is missed.
    candidate = (timestamp // slide) * slide
    expected = 0
    start = candidate
    while start > timestamp - length:
        expected += 1
        start -= slide
    assert len(starts) == expected


@given(
    event_times=st.lists(
        st.integers(min_value=0, max_value=100_000), min_size=1, max_size=80
    ),
    length=st.integers(min_value=10, max_value=5_000),
)
@SETTINGS
def test_window_operator_balanced_ops(event_times, length):
    """Incremental window invariants on arbitrary in-order streams:
    gets == puts + deletes, and deleted keys were previously written."""
    operator = WindowOperator(TumblingWindows(length))
    for t in sorted(event_times):
        operator.process(Event(b"k", t))
    operator.on_watermark(Watermark(max(event_times) + length * 2))
    counts = operator.trace.op_counts()
    assert counts[OpType.GET] == counts[OpType.PUT] + counts[OpType.DELETE]
    written = {a.key for a in operator.trace if a.op is OpType.PUT}
    deleted = {a.key for a in operator.trace if a.op is OpType.DELETE}
    assert deleted <= written


@given(
    event_times=st.lists(
        st.integers(min_value=0, max_value=50_000), min_size=1, max_size=60
    ),
    gap=st.integers(min_value=1, max_value=5_000),
)
@SETTINGS
def test_session_operator_state_drains(event_times, gap):
    """After a watermark beyond every session end, no session state
    survives in the backend."""
    operator = SessionWindowOperator(gap_ms=gap, allowed_lateness=10**9)
    for t in event_times:  # arbitrary order: exercises merging
        operator.process(Event(b"k", t))
    operator.on_watermark(Watermark(max(event_times) + gap + 1))
    assert operator.active_sessions == 0
    assert len(operator.backend) == 0


@given(
    event_times=st.lists(
        st.integers(min_value=0, max_value=50_000), min_size=1, max_size=60
    ),
    gap=st.integers(min_value=1, max_value=5_000),
)
@SETTINGS
def test_session_count_conservation(event_times, gap):
    """Every processed event is counted in exactly one fired session."""
    operator = SessionWindowOperator(gap_ms=gap, allowed_lateness=10**9)
    for t in event_times:
        operator.process(Event(b"k", t))
    operator.on_watermark(Watermark(max(event_times) + gap + 1))
    total = sum(result[3] for result in operator.outputs)
    assert total == len(event_times)
