"""Tests for connectors and the store factory."""

import pytest

from repro.kvstores import (
    BTreeStore,
    FasterStore,
    InMemoryStore,
    LetheStore,
    ReadModifyWriteConnector,
    RocksLSMStore,
    STORE_NAMES,
    StoreConnector,
    connect,
    create_connector,
    create_store,
)


class TestConnect:
    def test_native_merge_stores_get_plain_connector(self):
        for store in (RocksLSMStore(), LetheStore(), FasterStore(), InMemoryStore()):
            connector = connect(store)
            assert type(connector) is StoreConnector

    def test_btree_gets_rmw_connector(self):
        connector = connect(BTreeStore())
        assert isinstance(connector, ReadModifyWriteConnector)

    def test_rmw_connector_merge_semantics(self):
        connector = connect(BTreeStore())
        connector.merge(b"k", b"a")
        connector.merge(b"k", b"b")
        assert connector.get(b"k") == b"ab"

    def test_rmw_merge_on_existing_value(self):
        connector = connect(BTreeStore())
        connector.put(b"k", b"base-")
        connector.merge(b"k", b"op")
        assert connector.get(b"k") == b"base-op"

    def test_connector_passthrough(self):
        connector = connect(InMemoryStore())
        connector.put(b"k", b"v")
        assert connector.get(b"k") == b"v"
        connector.delete(b"k")
        assert connector.get(b"k") is None

    def test_connector_name(self):
        assert connect(FasterStore()).name == "faster"

    def test_close(self):
        connector = connect(InMemoryStore())
        connector.close()
        assert connector.store.closed


class TestFactory:
    @pytest.mark.parametrize("name", STORE_NAMES)
    def test_create_all_stores(self, name):
        store = create_store(name)
        store.put(b"k", b"v")
        assert store.get(b"k") == b"v"

    def test_unknown_store(self):
        with pytest.raises(ValueError, match="unknown store"):
            create_store("leveldb")

    def test_config_overrides(self):
        store = create_store("rocksdb", write_buffer_size=1234)
        assert store.config.write_buffer_size == 1234

    @pytest.mark.parametrize("name", STORE_NAMES)
    def test_create_connector_merge_works_everywhere(self, name):
        connector = create_connector(name)
        connector.merge(b"k", b"a")
        connector.merge(b"k", b"b")
        assert connector.get(b"k") == b"ab"
