"""Tests for the delete-aware Lethe store (FADE)."""

from repro.kvstores.lsm import LetheConfig, LetheStore


class _FakeClock:
    def __init__(self) -> None:
        self.now = 0.0

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


def tiny_config(**overrides):
    defaults = dict(
        write_buffer_size=2048,
        block_cache_size=4096,
        level_base_bytes=8192,
        target_file_size=4096,
        max_levels=4,
        l0_compaction_trigger=2,
        delete_persistence_threshold_s=5.0,
        fade_check_interval=100,
    )
    defaults.update(overrides)
    return LetheConfig(**defaults)


def make_store(**overrides):
    clock = _FakeClock()
    return LetheStore(tiny_config(**overrides), clock=clock), clock


class TestLetheCorrectness:
    def test_behaves_like_plain_store(self):
        store, _ = make_store()
        store.put(b"a", b"1")
        store.merge(b"a", b"2")
        store.delete(b"b")
        assert store.get(b"a") == b"12"
        assert store.get(b"b") is None

    def test_reads_correct_after_fade(self):
        store, clock = make_store(delete_persistence_threshold_s=0.0)
        for i in range(400):
            store.put(f"k{i:04d}".encode(), b"v" * 32)
        for i in range(0, 400, 3):
            store.delete(f"k{i:04d}".encode())
        clock.advance(100)
        for i in range(400):
            store.put(f"x{i:04d}".encode(), b"v" * 32)  # trigger FADE checks
        for i in range(400):
            key = f"k{i:04d}".encode()
            if i % 3 == 0:
                assert store.get(key) is None
            else:
                assert store.get(key) == b"v" * 32


class TestFADE:
    def test_tombstones_tracked_per_file(self):
        store, _ = make_store()
        for i in range(200):
            store.put(f"k{i:04d}".encode(), b"v" * 32)
        for i in range(100):
            store.delete(f"k{i:04d}".encode())
        store.flush()
        assert store._tombstone_stamp  # files with tombstones stamped

    def test_expired_files_detected_after_threshold(self):
        store, clock = make_store(delete_persistence_threshold_s=5.0,
                                  fade_check_interval=10_000_000)
        for i in range(200):
            store.put(f"k{i:04d}".encode(), b"v" * 32)
        for i in range(100):
            store.delete(f"k{i:04d}".encode())
        store.flush()
        assert store.expired_tombstone_files() == []
        clock.advance(6.0)
        assert store.expired_tombstone_files()

    def test_fade_compactions_run(self):
        store, clock = make_store(delete_persistence_threshold_s=1.0,
                                  fade_check_interval=50)
        for i in range(300):
            store.put(f"k{i:04d}".encode(), b"v" * 32)
        for i in range(150):
            store.delete(f"k{i:04d}".encode())
        store.flush()
        clock.advance(10.0)
        for i in range(300):
            store.put(f"y{i:04d}".encode(), b"v" * 32)
        assert store.fade_compactions > 0

    def test_fade_purges_tombstones_faster_than_plain(self):
        """After FADE, expired tombstones should be gone from the tree."""
        store, clock = make_store(delete_persistence_threshold_s=0.5,
                                  fade_check_interval=50)
        for i in range(300):
            store.put(f"k{i:04d}".encode(), b"v" * 32)
        for i in range(300):
            store.delete(f"k{i:04d}".encode())
        store.flush()
        clock.advance(5.0)
        for i in range(400):
            store.put(f"z{i:04d}".encode(), b"v" * 32)
        store.flush()
        clock.advance(5.0)
        for i in range(400, 800):
            store.put(f"z{i:04d}".encode(), b"v" * 32)
        remaining = sum(
            t.num_tombstones for level in store._levels for t in level
        )
        dropped = store.compaction_stats.tombstones_dropped
        assert dropped > 0
        assert remaining < 300

    def test_compaction_prefers_tombstone_files(self):
        store, _ = make_store()
        # File picking: with tombstones present, pick the tombstone-heaviest.
        for i in range(500):
            store.put(f"k{i:05d}".encode(), b"v" * 48)
        for i in range(250):
            store.delete(f"k{i:05d}".encode())
        store.flush()
        level = next((lv for lv in range(1, 4) if store._levels[lv]), None)
        if level is not None and any(t.num_tombstones for t in store._levels[level]):
            picked = store._pick_compaction_file(level)
            assert picked.num_tombstones == max(
                t.num_tombstones for t in store._levels[level] if t.num_tombstones
            )
