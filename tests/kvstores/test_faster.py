"""Tests for the FASTER-like store (hash index + hybrid log)."""

import pytest

from repro.kvstores.faster import FasterConfig, FasterStore, HashIndex, HybridLog, LogRecord


class TestHashIndex:
    def test_lookup_update(self):
        index = HashIndex()
        assert index.lookup(b"k") is None
        index.update(b"k", 42)
        assert index.lookup(b"k") == 42

    def test_remove(self):
        index = HashIndex()
        index.update(b"k", 1)
        index.remove(b"k")
        assert index.lookup(b"k") is None
        assert len(index) == 0

    def test_probe_counter(self):
        index = HashIndex()
        index.lookup(b"a")
        index.lookup(b"b")
        assert index.probes == 2


class TestLogRecord:
    def test_encode_decode(self):
        record = LogRecord(b"key", b"value")
        decoded, size = LogRecord.decode(record.encode())
        assert decoded.key == b"key"
        assert decoded.value == b"value"
        assert not decoded.tombstone

    def test_tombstone_roundtrip(self):
        record = LogRecord(b"key", b"", tombstone=True)
        decoded, _ = LogRecord.decode(record.encode())
        assert decoded.tombstone

    def test_alloc_defaults_to_value_size(self):
        record = LogRecord(b"k", b"12345")
        assert record.alloc == 5

    def test_size_uses_allocation(self):
        record = LogRecord(b"k", b"12345", alloc=100)
        bigger = LogRecord(b"k", b"12345")
        assert record.size > bigger.size


class TestHybridLog:
    def test_append_read(self):
        log = HybridLog(memory_budget=1 << 20)
        addr = log.append(LogRecord(b"k", b"v"))
        assert log.read(addr).value == b"v"

    def test_addresses_monotone(self):
        log = HybridLog()
        a1 = log.append(LogRecord(b"a", b"1"))
        a2 = log.append(LogRecord(b"b", b"2"))
        assert a2 > a1

    def test_mutable_region_boundary(self):
        log = HybridLog(memory_budget=1000, mutable_fraction=0.5)
        addrs = [log.append(LogRecord(b"k", b"x" * 20)) for _ in range(20)]
        assert log.is_mutable(addrs[-1])
        assert not log.is_mutable(addrs[0])

    def test_in_place_update_within_alloc(self):
        log = HybridLog()
        addr = log.append(LogRecord(b"k", b"12345"))
        log.update_in_place(addr, b"123")
        assert log.read(addr).value == b"123"

    def test_in_place_update_rejects_growth(self):
        log = HybridLog()
        addr = log.append(LogRecord(b"k", b"123"))
        with pytest.raises(ValueError, match="allocation"):
            log.update_in_place(addr, b"123456")

    def test_in_place_update_rejects_read_only_region(self):
        log = HybridLog(memory_budget=500, mutable_fraction=0.3)
        addr = log.append(LogRecord(b"k", b"x" * 20))
        for _ in range(30):
            log.append(LogRecord(b"pad", b"x" * 20))
        assert not log.is_mutable(addr)
        with pytest.raises(ValueError, match="mutable"):
            log.update_in_place(addr, b"y")

    def test_eviction_to_disk_and_readback(self):
        log = HybridLog(memory_budget=400, segment_size=100)
        addrs = [log.append(LogRecord(f"k{i}".encode(), b"x" * 20)) for i in range(40)]
        log.flush()
        assert log.disk_records > 0
        # The earliest record must have been evicted but is still readable.
        record = log.read(addrs[0])
        assert record.key == b"k0"
        assert log.disk_reads >= 1

    def test_invalid_mutable_fraction(self):
        with pytest.raises(ValueError):
            HybridLog(mutable_fraction=0.0)


class TestFasterStore:
    def test_put_get(self):
        store = FasterStore()
        store.put(b"k", b"v")
        assert store.get(b"k") == b"v"

    def test_get_missing(self):
        assert FasterStore().get(b"nope") is None

    def test_in_place_update_same_size(self):
        store = FasterStore()
        store.put(b"k", b"aaaa")
        store.put(b"k", b"bbbb")
        assert store.get(b"k") == b"bbbb"
        assert store.log.in_place_updates == 1

    def test_growing_put_appends(self):
        store = FasterStore()
        store.put(b"k", b"aa")
        appends_before = store.log.appends
        store.put(b"k", b"a" * 100)
        assert store.log.appends == appends_before + 1
        assert store.get(b"k") == b"a" * 100

    def test_delete(self):
        store = FasterStore()
        store.put(b"k", b"v")
        store.delete(b"k")
        assert store.get(b"k") is None

    def test_delete_missing_is_noop(self):
        store = FasterStore()
        appends = store.log.appends
        store.delete(b"ghost")
        assert store.log.appends == appends

    def test_rmw_merge(self):
        store = FasterStore()
        store.merge(b"k", b"a")
        store.merge(b"k", b"b")
        assert store.get(b"k") == b"ab"

    def test_rmw_on_existing_put(self):
        store = FasterStore()
        store.put(b"k", b"base-")
        store.merge(b"k", b"op")
        assert store.get(b"k") == b"base-op"

    def test_growing_merges_append_new_records(self):
        """rmw on a growing bucket must RCU-append, not update in place."""
        store = FasterStore()
        store.merge(b"k", b"x")
        appends_before = store.log.appends
        for _ in range(10):
            store.merge(b"k", b"x" * 50)
        assert store.log.appends == appends_before + 10

    def test_put_after_delete(self):
        store = FasterStore()
        store.put(b"k", b"v1")
        store.delete(b"k")
        store.put(b"k", b"v2")
        assert store.get(b"k") == b"v2"

    def test_reads_from_disk_region(self):
        store = FasterStore(FasterConfig(memory_budget=2048, segment_size=512))
        for i in range(200):
            store.put(f"k{i:04d}".encode(), b"x" * 32)
        store.flush()
        assert store.get(b"k0000") == b"x" * 32
        assert store.log.disk_reads >= 1

    def test_len_counts_index_entries(self):
        store = FasterStore()
        store.put(b"a", b"1")
        store.put(b"b", b"2")
        assert len(store) == 2

    def test_fill_stats(self):
        store = FasterStore()
        store.put(b"a", b"1")
        stats = store.fill_stats()
        assert stats["index_entries"] == 1
        assert stats["appends"] == 1
