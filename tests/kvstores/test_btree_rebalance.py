"""Tests specific to B+Tree delete rebalancing (borrow and merge)."""

import random

from repro.kvstores.btree import BTreeConfig, BTreeStore


def full_tree(order=4, n=200):
    store = BTreeStore(BTreeConfig(order=order, cache_bytes=1 << 20))
    for i in range(n):
        store.put(f"k{i:04d}".encode(), f"v{i}".encode())
    return store


class TestRebalancing:
    def test_tree_shrinks_after_mass_delete(self):
        store = full_tree(order=4, n=300)
        tall = store.height
        for i in range(295):
            store.delete(f"k{i:04d}".encode())
        assert store.height < tall
        for i in range(295, 300):
            assert store.get(f"k{i:04d}".encode()) == f"v{i}".encode()

    def test_delete_everything_then_reinsert(self):
        store = full_tree(order=4, n=120)
        for i in range(120):
            store.delete(f"k{i:04d}".encode())
        assert len(store) == 0
        for i in range(120):
            store.put(f"k{i:04d}".encode(), b"again")
        for i in range(120):
            assert store.get(f"k{i:04d}".encode()) == b"again"

    def test_scan_correct_after_interleaved_deletes(self):
        store = full_tree(order=4, n=200)
        rng = random.Random(8)
        alive = set(range(200))
        for i in rng.sample(range(200), 150):
            store.delete(f"k{i:04d}".encode())
            alive.discard(i)
        expected = [f"k{i:04d}".encode() for i in sorted(alive)]
        assert [k for k, _ in store.scan(b"k0000", b"k9999")] == expected

    def test_leaf_chain_intact_after_merges(self):
        """next_leaf pointers must survive sibling merges."""
        store = full_tree(order=4, n=100)
        for i in range(0, 100, 2):
            store.delete(f"k{i:04d}".encode())
        # A full scan walks the leaf chain end to end.
        keys = [k for k, _ in store.scan(b"", b"\xff")]
        assert keys == [f"k{i:04d}".encode() for i in range(1, 100, 2)]

    def test_random_torture_against_dict(self):
        store = BTreeStore(BTreeConfig(order=6, cache_bytes=4096))
        rng = random.Random(21)
        model = {}
        for i in range(5000):
            key = f"k{rng.randrange(250):04d}".encode()
            if rng.random() < 0.45 and model:
                victim = rng.choice(list(model))
                store.delete(victim)
                model.pop(victim, None)
            else:
                store.put(key, f"v{i}".encode())
                model[key] = f"v{i}".encode()
        for key, value in model.items():
            assert store.get(key) == value
        assert len(store) == len(model)
        assert [k for k, _ in store.scan(b"", b"\xff")] == sorted(model)

    def test_lazy_mode_still_available(self):
        store = BTreeStore(
            BTreeConfig(order=4, rebalance_on_delete=False, cache_bytes=1 << 20)
        )
        for i in range(100):
            store.put(f"k{i:04d}".encode(), b"v")
        tall = store.height
        for i in range(100):
            store.delete(f"k{i:04d}".encode())
        assert store.height == tall  # lazy reclamation keeps the shape
        assert len(store) == 0
