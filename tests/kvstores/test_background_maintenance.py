"""Background LSM maintenance: worker equivalence, stalls, quiesce.

Covers the guarantees the background mode makes on top of the inline
store:

* **Equivalence** -- a background store and an inline store fed the
  same operations agree on every key, every scan, and a clean scrub
  (hypothesis property).
* **Backpressure accounting** -- write stalls are counted and their
  time (and only that time -- never worker busy time) flows through
  ``take_background_ns`` exactly once.
* **Observability** -- the queue-depth/stall gauges register, and
  flush/compaction spans land on the ``lsm-flush-worker`` /
  ``lsm-compaction-worker`` lanes.
* **Quiesce** -- ``flush``/``scrub``/``close`` drain the workers so
  nothing races a half-written sstable or gets lost on shutdown.
"""

import hypothesis.strategies as st
import pytest
from hypothesis import HealthCheck, given, settings

from repro.kvstores.lsm import LSMConfig, RocksLSMStore
from repro.kvstores.storage import MemoryStorage
from repro.obs import metrics, tracing


def tiny(**overrides):
    defaults = dict(
        write_buffer_size=1024,
        block_cache_size=4096,
        level_base_bytes=8192,
        target_file_size=4096,
        max_levels=4,
        l0_compaction_trigger=2,
    )
    defaults.update(overrides)
    return LSMConfig(**defaults)


def bg_store(**overrides):
    return RocksLSMStore(
        tiny(background=True, **overrides), storage=MemoryStorage()
    )


KEYS = st.integers(min_value=0, max_value=40).map(lambda i: b"k%02d" % i)
OPS = st.lists(
    st.one_of(
        st.tuples(st.just("put"), KEYS, st.binary(min_size=1, max_size=80)),
        st.tuples(st.just("delete"), KEYS, st.just(b"")),
        st.tuples(st.just("merge"), KEYS, st.binary(min_size=1, max_size=8)),
    ),
    min_size=1,
    max_size=300,
)


def apply_ops(store, ops):
    for op, key, value in ops:
        if op == "put":
            store.put(key, value)
        elif op == "delete":
            store.delete(key)
        else:
            store.merge(key, value)


class TestBackgroundInlineEquivalence:
    @settings(
        max_examples=25,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(ops=OPS)
    def test_same_contents_as_inline(self, ops):
        inline = RocksLSMStore(tiny(), storage=MemoryStorage())
        background = bg_store()
        try:
            apply_ops(inline, ops)
            apply_ops(background, ops)
            background.quiesce()
            for key in {key for _, key, _ in ops}:
                assert background.get(key) == inline.get(key)
            assert list(background.scan(b"k00", b"k99")) == list(
                inline.scan(b"k00", b"k99")
            )
            report = background.scrub()
            assert report.clean
        finally:
            background.close()
            inline.close()

    def test_flush_drains_queue(self):
        store = bg_store()
        try:
            for i in range(300):
                store.put(b"k%03d" % i, b"v" * 40)
            store.flush()
            assert store.immutable_queue_depth == 0
            assert not store._memtable
            assert store.get(b"k000") == b"v" * 40
        finally:
            store.close()

    def test_background_compactions_run(self):
        store = bg_store()
        try:
            for i in range(600):
                store.put(b"k%03d" % (i % 60), b"v" * 60)
            store.quiesce()
            assert store.stats.flushes > 0
            assert store.stats.compactions > 0
            assert len(store._levels[0]) < store.config.l0_compaction_trigger
        finally:
            store.close()


class TestStallAccounting:
    def stalled_store(self):
        """Slow workers + a one-deep queue so writers must stall."""
        return bg_store(
            max_immutable_memtables=1,
            background_delay_s=0.02,
        )

    def test_write_stalls_counted_and_timed(self):
        store = self.stalled_store()
        try:
            for i in range(300):
                store.put(b"k%03d" % i, b"v" * 40)
            assert store.write_stall_count > 0
            assert store.write_stall_ns > 0
        finally:
            store.close()

    def test_take_background_ns_reports_stall_time_once(self):
        store = self.stalled_store()
        try:
            for i in range(300):
                store.put(b"k%03d" % i, b"v" * 40)
            stall_ns = store.write_stall_ns
            taken = store.take_background_ns()
            assert taken >= stall_ns > 0
            # drained: a second take must not double-count
            assert store.take_background_ns() == 0
        finally:
            store.close()

    def test_worker_busy_time_not_charged_to_writers(self):
        """Un-stalled background runs charge (almost) nothing: worker
        busy time is concurrent, not client-visible."""
        store = bg_store(max_immutable_memtables=64, l0_stall_trigger=1000)
        try:
            for i in range(300):
                store.put(b"k%03d" % i, b"v" * 40)
            store.quiesce()
            assert store.write_stall_count == 0
            assert store.take_background_ns() == 0
            assert store._bg.flush_ns > 0  # the worker did work though
        finally:
            store.close()

    def test_inline_mode_has_zero_stalls(self):
        store = RocksLSMStore(tiny(), storage=MemoryStorage())
        for i in range(300):
            store.put(b"k%03d" % i, b"v" * 40)
        assert store.write_stall_count == 0
        assert store.write_stall_ns == 0
        assert store.immutable_queue_depth < store.config.max_write_buffers
        store.flush()
        assert store.immutable_queue_depth == 0


class TestObservability:
    def test_maintenance_gauges_registered(self):
        registry = metrics.MetricsRegistry()
        store = bg_store()
        try:
            metrics.register_store(registry, store)
            names = registry.names()
            for gauge in (
                "lsm.immutable_queue_depth",
                "lsm.write_stall_count",
                "lsm.write_stall_ms",
            ):
                assert gauge in names
            for i in range(200):
                store.put(b"k%03d" % i, b"v" * 40)
            store.quiesce()
            sample = registry.sample()
            assert sample["lsm.immutable_queue_depth"] == 0
            assert sample["lsm.write_stall_count"] == store.write_stall_count
        finally:
            store.close()

    def test_worker_span_lanes(self):
        with tracing.tracing() as tracer:
            store = bg_store()
            try:
                for i in range(600):
                    store.put(b"k%03d" % (i % 60), b"v" * 60)
                store.quiesce()
            finally:
                store.close()
            lanes = set(tracer.lane_names().values())
            assert "lsm-flush-worker" in lanes
            assert "lsm-compaction-worker" in lanes
            names = {entry[0] for entry in tracer.spans()}
            assert "lsm.flush" in names


class TestQuiesce:
    def test_scrub_quiesces_workers_first(self):
        store = bg_store(background_delay_s=0.01)
        try:
            for i in range(300):
                store.put(b"k%03d" % i, b"v" * 40)
            report = store.scrub()  # must not race a half-built sstable
            assert report.clean
            assert store.immutable_queue_depth == 0
            assert not store._bg.flush_busy
            assert not store._bg.compact_busy
        finally:
            store.close()

    def test_close_drains_and_joins_workers(self):
        storage = MemoryStorage()
        store = RocksLSMStore(tiny(background=True), storage=storage)
        for i in range(300):
            store.put(b"k%03d" % i, b"v" * 40)
        bg = store._bg
        store.close()
        assert not bg.flush_thread.is_alive()
        assert not bg.compact_thread.is_alive()

        revived = RocksLSMStore(tiny(), storage=storage)
        revived.recover()
        for i in range(300):
            assert revived.get(b"k%03d" % i) == b"v" * 40

    def test_worker_error_surfaces_to_writer(self):
        store = bg_store()
        try:
            boom = RuntimeError("injected worker failure")
            with store._mutex:
                store._bg.error = boom
            with pytest.raises(RuntimeError, match="injected worker"):
                store.quiesce()
        finally:
            store._bg.error = None
            store.close()
