"""Protocol v2 batch frames: OP_BATCH round-trips, vectored replies,
and bidirectional compatibility with pre-batching (v1) peers."""

import hypothesis.strategies as st
import pytest
from hypothesis import HealthCheck, given, settings

from repro.kvstores import InMemoryStore, connect
from repro.kvstores.api import OP_DELETE, OP_GET, OP_MERGE, OP_PUT
from repro.kvstores.remote import (
    REPLY_ERROR,
    REPLY_MISSING,
    REPLY_OK,
    REPLY_VALUE,
    RemoteStoreClient,
    RemoteStoreError,
    StoreServer,
)


@pytest.fixture(autouse=True)
def _guard(hang_guard):
    """A reintroduced protocol hang should fail fast, not wedge the suite."""
    hang_guard(60)


@pytest.fixture
def server():
    with StoreServer(InMemoryStore()) as srv:
        yield srv


@pytest.fixture
def v1_server():
    """A pre-batching build: answers OP_BATCH with ``unknown opcode``."""
    with StoreServer(InMemoryStore(), protocol_version=1) as srv:
        yield srv


def client_for(server):
    host, port = server.address
    return RemoteStoreClient(host, port)


class TestBatchRoundTrip:
    def test_apply_batch_then_multi_get(self, server):
        with client_for(server) as client:
            client.apply_batch(
                [
                    (OP_PUT, b"a", b"1"),
                    (OP_MERGE, b"b", b"x"),
                    (OP_MERGE, b"b", b"y"),
                    (OP_PUT, b"c", b"3"),
                    (OP_DELETE, b"c", b""),
                ]
            )
            assert client.multi_get([b"a", b"b", b"c", b"nope"]) == [
                b"1",
                b"xy",
                None,
                None,
            ]
            assert client._batch_supported

    def test_multi_get_duplicate_keys_and_empty_values(self, server):
        with client_for(server) as client:
            client.apply_batch([(OP_PUT, b"k", b"")])
            assert client.multi_get([b"k", b"k", b"gone"]) == [b"", b"", None]

    def test_empty_batches_are_no_ops(self, server):
        with client_for(server) as client:
            client.apply_batch([])
            assert client.multi_get([]) == []

    def test_large_batch_single_round_trip(self, server):
        with client_for(server) as client:
            ops = [(OP_PUT, b"k%04d" % i, bytes([i % 256]) * 50) for i in range(500)]
            client.apply_batch(ops)
            keys = [op[1] for op in ops]
            assert client.multi_get(keys) == [op[2] for op in ops]

    def test_mixed_batch_vectored_replies(self, server):
        """The wire format supports read/write-mixed batches even though
        the replayer only sends homogeneous runs; reply items line up
        positionally with the request items."""
        with client_for(server) as client:
            replies = client._batch_request(
                [
                    (OP_PUT, b"m", b"v"),
                    (OP_GET, b"m", b""),
                    (OP_GET, b"absent", b""),
                    (OP_DELETE, b"m", b""),
                    (OP_GET, b"m", b""),
                ]
            )
            assert [status for status, _ in replies] == [
                REPLY_OK,
                REPLY_VALUE,
                REPLY_MISSING,
                REPLY_OK,
                REPLY_MISSING,
            ]
            assert replies[1][1] == b"v"


class TestCompatibility:
    def test_v2_client_falls_back_against_v1_server(self, v1_server):
        with client_for(v1_server) as client:
            assert client._batch_supported
            client.apply_batch([(OP_PUT, b"a", b"1"), (OP_PUT, b"b", b"2")])
            # Downgrade is permanent and invisible: the ops still landed.
            assert not client._batch_supported
            assert client.get(b"a") == b"1"
            assert client.get(b"b") == b"2"

    def test_v1_fallback_on_multi_get_first(self, v1_server):
        with client_for(v1_server) as client:
            client.put(b"k", b"v")
            assert client.multi_get([b"k", b"nope"]) == [b"v", None]
            assert not client._batch_supported
            # Later batches go straight to the per-op path.
            client.apply_batch([(OP_MERGE, b"k", b"2")])
            assert client.get(b"k") == b"v2"

    def test_per_op_client_against_v2_server(self, server):
        """An old client never sends OP_BATCH; the v2 server speaks the
        per-op protocol unchanged."""
        with client_for(server) as client:
            client._batch_supported = False  # pre-batching client build
            client.put(b"k", b"v")
            client.merge(b"k", b"w")
            assert client.get(b"k") == b"vw"
            assert client.multi_get([b"k", b"x"]) == [b"vw", None]
            client.apply_batch([(OP_DELETE, b"k", b"")])
            assert client.get(b"k") is None


class _PoisonStore(InMemoryStore):
    """Raises on any write touching the poison key."""

    POISON = b"poison"

    def put(self, key, value):
        if key == self.POISON:
            raise RuntimeError("poisoned key")
        super().put(key, value)

    def apply_batch(self, ops):
        if any(op[1] == self.POISON for op in ops):
            raise RuntimeError("poisoned key")
        super().apply_batch(ops)


class TestBatchErrors:
    def test_failed_batch_reports_error_and_connection_survives(self):
        with StoreServer(_PoisonStore()) as server:
            with client_for(server) as client:
                with pytest.raises(RemoteStoreError, match="poisoned"):
                    client.apply_batch(
                        [(OP_PUT, b"ok", b"1"), (OP_PUT, b"poison", b"2")]
                    )
                # One bad batch never kills the connection: the same
                # socket keeps serving batches and per-op requests.
                client.apply_batch([(OP_PUT, b"ok2", b"3")])
                assert client.get(b"ok2") == b"3"
                assert client.reconnects == 0

    def test_error_items_are_vectored_per_op(self):
        with StoreServer(_PoisonStore()) as server:
            with client_for(server) as client:
                replies = client._batch_request(
                    [
                        (OP_GET, b"nope", b""),
                        (OP_PUT, b"poison", b"2"),
                        (OP_GET, b"nope", b""),
                    ]
                )
                statuses = [status for status, _ in replies]
                assert statuses == [REPLY_MISSING, REPLY_ERROR, REPLY_MISSING]
                assert b"poisoned" in replies[1][1]

    def test_batch_rejects_read_opcode_in_apply_batch(self, server):
        with client_for(server) as client:
            client._batch_supported = False
            with pytest.raises(ValueError):
                client.apply_batch([(OP_GET, b"k", b"")])


KEYS = st.binary(min_size=1, max_size=4)
VALUES = st.binary(min_size=0, max_size=16)
BATCHES = st.lists(
    st.lists(
        st.one_of(
            st.tuples(st.just(OP_PUT), KEYS, VALUES),
            st.tuples(st.just(OP_MERGE), KEYS, VALUES),
            st.tuples(st.just(OP_DELETE), KEYS, st.just(b"")),
        ),
        min_size=1,
        max_size=12,
    ),
    max_size=8,
)


@given(batches=BATCHES, v1=st.booleans())
@settings(
    max_examples=15, deadline=None, suppress_health_check=[HealthCheck.too_slow]
)
def test_remote_batches_match_local_per_op(batches, v1):
    """Any sequence of write batches lands identically through the wire
    (v2 batch frames or the v1 per-op fallback) and locally per-op."""
    local = connect(InMemoryStore())
    for batch in batches:
        for opcode, key, value in batch:
            if opcode == OP_PUT:
                local.put(key, value)
            elif opcode == OP_MERGE:
                local.merge(key, value)
            else:
                local.delete(key)
    version = 1 if v1 else 2
    with StoreServer(InMemoryStore(), protocol_version=version) as server:
        with client_for(server) as client:
            for batch in batches:
                client.apply_batch(batch)
            keys = sorted({op[1] for batch in batches for op in batch})
            assert client.multi_get(keys) == [local.get(key) for key in keys]
    local.close()
