"""Batched execution: apply_batch/multi_get across every store family.

The core contract, property-tested per backend: replaying any op
sequence through batched calls (write runs via ``apply_batch``, read
runs via ``multi_get``, run boundaries at read/write transitions like
the replayer's) leaves the store in EXACTLY the state of per-op replay,
and batched reads return exactly the per-op answers -- including mixed
same-key ops inside one batch.
"""

import hypothesis.strategies as st
import pytest
from hypothesis import HealthCheck, given, settings

from repro.core.replayer import (
    _VALUE_CACHE,
    _VALUE_CACHE_MAX_BYTES,
    _VALUE_CACHE_MAX_ENTRIES,
    synthesize_value,
)
from repro.kvstores import InMemoryStore, connect
from repro.kvstores.api import OP_DELETE, OP_GET, OP_MERGE, OP_PUT
from repro.kvstores.btree import BTreeConfig, BTreeStore
from repro.kvstores.faster import FasterConfig, FasterStore
from repro.kvstores.integrity import CorruptionError
from repro.kvstores.lsm import LetheConfig, LetheStore, LSMConfig, RocksLSMStore
from repro.kvstores.lsm.bloom import BloomFilter
from repro.kvstores.lsm.record import (
    _FRAME,
    WAL_HEADER_SIZE,
    Record,
    RecordKind,
    decode_wal,
    frame_records,
)

# Tiny limits so hypothesis sequences cross flush/compaction/eviction
# boundaries inside a few hundred ops.
STORE_FACTORIES = {
    "rocksdb": lambda: RocksLSMStore(
        LSMConfig(write_buffer_size=256, block_cache_size=512,
                  level_base_bytes=1024, target_file_size=512,
                  l0_compaction_trigger=2, max_levels=3)
    ),
    "lethe": lambda: LetheStore(
        LetheConfig(write_buffer_size=256, block_cache_size=512,
                    level_base_bytes=1024, target_file_size=512,
                    l0_compaction_trigger=2, max_levels=3,
                    fade_check_interval=16)
    ),
    "berkeleydb": lambda: BTreeStore(BTreeConfig(order=4)),
    "faster": lambda: FasterStore(
        FasterConfig(memory_budget=2048, segment_size=256)
    ),
    "memory": InMemoryStore,
}

KEYS = st.binary(min_size=1, max_size=4)  # small space -> same-key batches
VALUES = st.binary(min_size=0, max_size=16)

OPERATIONS = st.lists(
    st.one_of(
        st.tuples(st.just(OP_PUT), KEYS, VALUES),
        st.tuples(st.just(OP_MERGE), KEYS, VALUES),
        st.tuples(st.just(OP_DELETE), KEYS, st.just(b"")),
        st.tuples(st.just(OP_GET), KEYS, st.just(b"")),
    ),
    max_size=150,
)

SETTINGS = settings(
    max_examples=30,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


def apply_per_op(connector, ops):
    reads = []
    for opcode, key, value in ops:
        if opcode == OP_PUT:
            connector.put(key, value)
        elif opcode == OP_MERGE:
            connector.merge(key, value)
        elif opcode == OP_DELETE:
            connector.delete(key)
        else:
            reads.append(connector.get(key))
    return reads


def apply_batched(connector, ops, batch_size):
    """Replayer-style batching: runs of same-kind ops, capped at
    ``batch_size``, never mixing reads and writes."""
    reads = []
    i = 0
    while i < len(ops):
        is_read = ops[i][0] == OP_GET
        j = i
        while (
            j < len(ops)
            and j - i < batch_size
            and (ops[j][0] == OP_GET) == is_read
        ):
            j += 1
        if is_read:
            reads.extend(connector.multi_get([op[1] for op in ops[i:j]]))
        else:
            connector.apply_batch(ops[i:j])
        i = j
    return reads


@pytest.mark.parametrize("store_name", sorted(STORE_FACTORIES))
@given(ops=OPERATIONS, batch_size=st.integers(min_value=1, max_value=32))
@SETTINGS
def test_batched_equals_per_op(store_name, ops, batch_size):
    factory = STORE_FACTORIES[store_name]
    reference = connect(factory())
    batched = connect(factory())
    expected_reads = apply_per_op(reference, ops)
    actual_reads = apply_batched(batched, ops, batch_size)
    assert actual_reads == expected_reads
    for key in {op[1] for op in ops}:
        assert batched.get(key) == reference.get(key), key
    reference.close()
    batched.close()


@pytest.mark.parametrize("store_name", sorted(STORE_FACTORIES))
def test_multi_get_preserves_duplicate_and_missing_keys(store_name):
    connector = connect(STORE_FACTORIES[store_name]())
    connector.put(b"a", b"1")
    connector.put(b"b", b"2")
    assert connector.multi_get([b"b", b"missing", b"a", b"b"]) == [
        b"2", None, b"1", b"2",
    ]
    connector.close()


def test_apply_batch_rejects_reads():
    connector = connect(InMemoryStore())
    with pytest.raises(ValueError):
        connector.apply_batch([(OP_GET, b"k", b"")])
    connector.close()


# -- LSM group commit -------------------------------------------------------


def wal_frames(store):
    """Parse the store's WAL into per-frame payload lengths."""
    data = store.storage.read("wal-current")
    offset = WAL_HEADER_SIZE
    frames = []
    while offset < len(data):
        _, length = _FRAME.unpack_from(data, offset)
        frames.append(length)
        offset += _FRAME.size + length
    return frames


def test_group_commit_writes_one_frame_per_batch():
    store = RocksLSMStore(LSMConfig(write_buffer_size=1 << 20))
    store.apply_batch([(OP_PUT, b"k%d" % i, b"v%d" % i) for i in range(10)])
    store.apply_batch([(OP_MERGE, b"k0", b"x"), (OP_DELETE, b"k1", b"")])
    assert len(wal_frames(store)) == 2
    result = decode_wal(store.storage.read("wal-current"))
    assert not result.truncated
    assert len(result.records) == 12
    store.close()


def test_torn_group_frame_drops_whole_batch_only():
    store = RocksLSMStore(LSMConfig(write_buffer_size=1 << 20))
    store.apply_batch([(OP_PUT, b"a", b"1"), (OP_PUT, b"b", b"2")])
    store.apply_batch([(OP_PUT, b"c", b"3"), (OP_PUT, b"d", b"4")])
    storage = store.storage
    # Tear the tail of the second group frame (a crashed append).
    data = storage.read("wal-current")
    storage.write("wal-current", data[:-3])
    revived = RocksLSMStore(LSMConfig(write_buffer_size=1 << 20), storage=storage)
    with pytest.warns(UserWarning, match="WAL corruption"):
        revived.recover()
    # The intact first batch replays completely; the torn second batch
    # is dropped atomically -- no partial prefix of it survives.
    assert revived.get(b"a") == b"1"
    assert revived.get(b"b") == b"2"
    assert revived.get(b"c") is None
    assert revived.get(b"d") is None
    revived.close()


def test_group_frame_decodes_multiple_records():
    records = [
        Record(RecordKind.PUT, 1, b"k1", b"v1"),
        Record(RecordKind.MERGE, 2, b"k1", b"v2"),
        Record(RecordKind.DELETE, 3, b"k2", b""),
    ]
    from repro.kvstores.integrity import ChecksumKind
    from repro.kvstores.lsm.record import wal_header

    buf = wal_header(ChecksumKind.CRC32) + frame_records(
        records, ChecksumKind.CRC32
    )
    result = decode_wal(buf)
    assert not result.truncated
    assert result.records == records


def test_lethe_fade_counts_batch_members_like_per_op():
    def make(interval):
        return LetheStore(
            LetheConfig(write_buffer_size=1 << 20, fade_check_interval=interval)
        )

    per_op, batched = make(8), make(8)
    ops = [(OP_PUT, b"k%d" % i, b"v") for i in range(20)]
    apply_per_op(per_op, ops)
    # Batch size divides the interval, so the check fires at the same
    # write counts as per-op replay: resets at 8 and 16, 4 writes left.
    apply_batched(batched, ops, batch_size=4)
    assert per_op._writes_since_fade == batched._writes_since_fade == 4
    per_op.close()
    batched.close()

    # A batch that crosses the interval mid-batch still triggers the
    # fade check (at batch granularity), resetting the counter.
    crossing = make(8)
    crossing.apply_batch([(OP_PUT, b"k%d" % i, b"v") for i in range(11)])
    assert crossing._writes_since_fade == 0
    crossing.close()


# -- bloom decode validation (satellite) ------------------------------------


def test_bloom_roundtrip_still_works():
    bloom = BloomFilter(16)
    bloom.add(b"hello")
    decoded = BloomFilter.decode(bloom.encode())
    assert decoded.may_contain(b"hello")


@pytest.mark.parametrize(
    "data, reason",
    [
        (b"\x00" * 9, "truncated header"),
        ((0).to_bytes(8, "little") + (1).to_bytes(2, "little"), "zero bits"),
        (
            (64).to_bytes(8, "little") + (31).to_bytes(2, "little") + b"\x00" * 8,
            "too many hashes",
        ),
        (
            (64).to_bytes(8, "little") + (4).to_bytes(2, "little") + b"\x00" * 7,
            "short bitmap",
        ),
        (
            (64).to_bytes(8, "little") + (4).to_bytes(2, "little") + b"\x00" * 9,
            "long bitmap",
        ),
    ],
)
def test_bloom_decode_rejects_malformed(data, reason):
    with pytest.raises(CorruptionError):
        BloomFilter.decode(data)


# -- value-cache bound regression (satellite) -------------------------------


def test_value_cache_is_bounded():
    synthesize_value(1)  # populate at least one entry
    baseline_bytes = sum(len(v) for v in _VALUE_CACHE.values())
    assert baseline_bytes <= _VALUE_CACHE_MAX_BYTES
    # A hostile trace with thousands of distinct value sizes must not
    # grow the cache without bound (the pre-fix behaviour).
    for size in range(1, 3 * _VALUE_CACHE_MAX_ENTRIES):
        synthesize_value(size)
    assert len(_VALUE_CACHE) <= _VALUE_CACHE_MAX_ENTRIES
    assert sum(len(v) for v in _VALUE_CACHE.values()) <= _VALUE_CACHE_MAX_BYTES
    # Oversize values are returned but never cached.
    big = synthesize_value(_VALUE_CACHE_MAX_BYTES + 1)
    assert len(big) == _VALUE_CACHE_MAX_BYTES + 1
    assert _VALUE_CACHE_MAX_BYTES + 1 not in _VALUE_CACHE
