"""Tests for LSM building blocks: records, bloom filters, memtables,
SSTables, and compaction resolution."""

import pytest

from repro.kvstores import AppendMergeOperator
from repro.kvstores.lsm.bloom import BloomFilter
from repro.kvstores.lsm.compaction import (
    compact_records,
    resolve_key_records,
    split_into_runs,
)
from repro.kvstores.lsm.memtable import Memtable
from repro.kvstores.lsm.record import Record, RecordKind, decode_all, decode_record
from repro.kvstores.lsm.sstable import build_sstable, open_sstable
from repro.kvstores.storage import MemoryStorage


def rec(kind, seq, key, value=b""):
    return Record(kind, seq, key, value)


class TestRecord:
    def test_encode_decode_roundtrip(self):
        record = rec(RecordKind.PUT, 42, b"key", b"value")
        decoded, offset = decode_record(record.encode())
        assert decoded == record
        assert offset == record.encoded_size

    def test_decode_all(self):
        records = [
            rec(RecordKind.PUT, 1, b"a", b"1"),
            rec(RecordKind.DELETE, 2, b"b"),
            rec(RecordKind.MERGE, 3, b"c", b"op"),
        ]
        blob = b"".join(r.encode() for r in records)
        assert list(decode_all(blob)) == records

    def test_empty_value(self):
        record = rec(RecordKind.DELETE, 1, b"k")
        decoded, _ = decode_record(record.encode())
        assert decoded.value == b""


class TestBloomFilter:
    def test_no_false_negatives(self):
        bloom = BloomFilter(100)
        keys = [f"k{i}".encode() for i in range(100)]
        bloom.add_all(keys)
        assert all(bloom.may_contain(k) for k in keys)

    def test_low_false_positive_rate(self):
        bloom = BloomFilter(1000, bits_per_key=10)
        bloom.add_all(f"in{i}".encode() for i in range(1000))
        false_positives = sum(
            bloom.may_contain(f"out{i}".encode()) for i in range(1000)
        )
        assert false_positives < 50  # ~1% expected at 10 bits/key

    def test_encode_decode(self):
        bloom = BloomFilter(10)
        bloom.add(b"hello")
        restored = BloomFilter.decode(bloom.encode())
        assert restored.may_contain(b"hello")
        assert restored.num_bits == bloom.num_bits

    def test_empty_filter_rejects(self):
        assert not BloomFilter(10).may_contain(b"anything")


class TestMemtable:
    def test_put_lookup(self):
        table = Memtable()
        table.add(rec(RecordKind.PUT, 1, b"a", b"v"))
        stack = table.lookup(b"a")
        assert len(stack) == 1
        assert stack[0].value == b"v"

    def test_put_supersedes_older_records(self):
        table = Memtable()
        table.add(rec(RecordKind.PUT, 1, b"a", b"old"))
        table.add(rec(RecordKind.MERGE, 2, b"a", b"m"))
        table.add(rec(RecordKind.PUT, 3, b"a", b"new"))
        stack = table.lookup(b"a")
        assert len(stack) == 1
        assert stack[0].value == b"new"

    def test_merges_accumulate(self):
        table = Memtable()
        table.add(rec(RecordKind.PUT, 1, b"a", b"base"))
        table.add(rec(RecordKind.MERGE, 2, b"a", b"x"))
        table.add(rec(RecordKind.MERGE, 3, b"a", b"y"))
        assert len(table.lookup(b"a")) == 3

    def test_delete_collapses(self):
        table = Memtable()
        table.add(rec(RecordKind.PUT, 1, b"a", b"v"))
        table.add(rec(RecordKind.DELETE, 2, b"a"))
        stack = table.lookup(b"a")
        assert len(stack) == 1
        assert stack[0].kind is RecordKind.DELETE

    def test_arena_accounting_grows_on_overwrite(self):
        """RocksDB memtables are arena-allocated: superseded records
        keep consuming buffer space until the flush."""
        table = Memtable()
        table.add(rec(RecordKind.PUT, 1, b"a", b"x" * 100))
        before = table.approximate_bytes
        table.add(rec(RecordKind.PUT, 2, b"a", b"y"))
        assert table.approximate_bytes > before

    def test_sorted_records_order(self):
        table = Memtable()
        table.add(rec(RecordKind.PUT, 1, b"b", b"1"))
        table.add(rec(RecordKind.PUT, 2, b"a", b"2"))
        keys = [r.key for r in table.sorted_records()]
        assert keys == [b"a", b"b"]

    def test_bool(self):
        table = Memtable()
        assert not table
        table.add(rec(RecordKind.PUT, 1, b"a", b"v"))
        assert table


class TestSSTable:
    def build(self, records, block_size=64):
        storage = MemoryStorage()
        table = build_sstable(1, iter(records), storage, block_size=block_size)
        return table, storage

    def test_build_and_get(self):
        records = [rec(RecordKind.PUT, i, f"k{i:03d}".encode(), b"v") for i in range(20)]
        table, _ = self.build(records)
        found = table.get_records(b"k005")
        assert len(found) == 1
        assert found[0].sequence == 5

    def test_build_empty_returns_none(self):
        storage = MemoryStorage()
        assert build_sstable(1, iter([]), storage) is None

    def test_get_absent_key(self):
        records = [rec(RecordKind.PUT, 1, b"b", b"v")]
        table, _ = self.build(records)
        assert table.get_records(b"a") == []
        assert table.get_records(b"c") == []

    def test_multi_record_key_across_blocks(self):
        # Many records for one key, forced across tiny blocks.
        records = [rec(RecordKind.PUT, 0, b"a", b"x" * 30)]
        records += [
            rec(RecordKind.MERGE, i, b"k", b"y" * 30) for i in range(1, 10)
        ]
        records += [rec(RecordKind.PUT, 10, b"z", b"x" * 30)]
        table, _ = self.build(records, block_size=64)
        found = table.get_records(b"k")
        assert [r.sequence for r in found] == list(range(1, 10))

    def test_tombstone_metadata(self):
        records = [
            rec(RecordKind.PUT, 1, b"a", b"v"),
            rec(RecordKind.DELETE, 2, b"b"),
            rec(RecordKind.DELETE, 3, b"c"),
        ]
        table, _ = self.build(records)
        assert table.num_tombstones == 2
        assert table.oldest_tombstone_seq == 2

    def test_iter_records_full_scan(self):
        records = [rec(RecordKind.PUT, i, f"k{i:02d}".encode(), b"v") for i in range(15)]
        table, _ = self.build(records)
        assert list(table.iter_records()) == records

    def test_overlaps(self):
        records = [rec(RecordKind.PUT, 1, b"d", b""), rec(RecordKind.PUT, 2, b"m", b"")]
        table, _ = self.build(records)
        assert table.overlaps(b"a", b"e")
        assert table.overlaps(b"m", b"z")
        assert not table.overlaps(b"n", b"z")
        assert not table.overlaps(b"a", b"c")

    def test_open_sstable_roundtrip(self):
        records = [
            rec(RecordKind.PUT, 1, b"a", b"v1"),
            rec(RecordKind.MERGE, 2, b"a", b"m"),
            rec(RecordKind.DELETE, 3, b"b"),
        ]
        table, storage = self.build(records)
        reopened = open_sstable(table.file_id, storage, table.blob_name)
        assert reopened.num_entries == 3
        assert reopened.num_tombstones == 1
        assert reopened.get_records(b"a") == table.get_records(b"a")

    def test_drop_deletes_blob(self):
        records = [rec(RecordKind.PUT, 1, b"a", b"v")]
        table, storage = self.build(records)
        table.drop()
        assert not storage.exists(table.blob_name)


class TestCompactionResolution:
    op = AppendMergeOperator()

    def test_newest_put_wins(self):
        records = [
            rec(RecordKind.PUT, 1, b"k", b"old"),
            rec(RecordKind.PUT, 2, b"k", b"new"),
        ]
        out = resolve_key_records(records, self.op, at_bottom=False)
        assert len(out) == 1
        assert out[0].value == b"new"

    def test_merges_fold_into_put(self):
        records = [
            rec(RecordKind.PUT, 1, b"k", b"a"),
            rec(RecordKind.MERGE, 2, b"k", b"b"),
            rec(RecordKind.MERGE, 3, b"k", b"c"),
        ]
        out = resolve_key_records(records, self.op, at_bottom=False)
        assert len(out) == 1
        assert out[0].kind is RecordKind.PUT
        assert out[0].value == b"abc"

    def test_merges_above_delete(self):
        records = [
            rec(RecordKind.PUT, 1, b"k", b"x"),
            rec(RecordKind.DELETE, 2, b"k"),
            rec(RecordKind.MERGE, 3, b"k", b"m"),
        ]
        out = resolve_key_records(records, self.op, at_bottom=False)
        assert len(out) == 1
        assert out[0].value == b"m"

    def test_tombstone_kept_above_bottom(self):
        records = [rec(RecordKind.DELETE, 5, b"k")]
        out = resolve_key_records(records, self.op, at_bottom=False)
        assert len(out) == 1
        assert out[0].kind is RecordKind.DELETE

    def test_tombstone_dropped_at_bottom(self):
        records = [
            rec(RecordKind.PUT, 1, b"k", b"x"),
            rec(RecordKind.DELETE, 2, b"k"),
        ]
        assert resolve_key_records(records, self.op, at_bottom=True) == []

    def test_bare_operands_kept_above_bottom(self):
        records = [
            rec(RecordKind.MERGE, 1, b"k", b"a"),
            rec(RecordKind.MERGE, 2, b"k", b"b"),
        ]
        out = resolve_key_records(records, self.op, at_bottom=False)
        # partial merge folds them into a single operand
        assert len(out) == 1
        assert out[0].kind is RecordKind.MERGE
        assert out[0].value == b"ab"

    def test_bare_operands_resolve_at_bottom(self):
        records = [rec(RecordKind.MERGE, 1, b"k", b"a")]
        out = resolve_key_records(records, self.op, at_bottom=True)
        assert out[0].kind is RecordKind.PUT
        assert out[0].value == b"a"

    def test_compact_records_groups_by_key(self):
        records = [
            rec(RecordKind.PUT, 1, b"a", b"1"),
            rec(RecordKind.PUT, 2, b"a", b"2"),
            rec(RecordKind.PUT, 3, b"b", b"3"),
        ]
        out = list(compact_records(iter(records), self.op, at_bottom=False))
        assert [(r.key, r.value) for r in out] == [(b"a", b"2"), (b"b", b"3")]

    def test_split_into_runs_respects_key_boundaries(self):
        records = [
            rec(RecordKind.PUT, 1, b"a", b"x" * 50),
            rec(RecordKind.MERGE, 2, b"b", b"y" * 50),
            rec(RecordKind.MERGE, 3, b"b", b"y" * 50),
            rec(RecordKind.PUT, 4, b"c", b"z" * 50),
        ]
        runs = list(split_into_runs(iter(records), target_file_size=80))
        # No run may split records of the same key.
        for run in runs:
            keys = [r.key for r in run]
            for other in runs:
                if other is not run:
                    assert not set(keys) & {r.key for r in other}
        assert sum(len(r) for r in runs) == 4
