"""Tests for external state management (store server + remote client)."""

import threading

import pytest

from repro.kvstores import InMemoryStore, create_store
from repro.kvstores.remote import RemoteStoreClient, StoreServer


@pytest.fixture(autouse=True)
def _guard(hang_guard):
    """A reintroduced protocol hang should fail fast, not wedge the suite."""
    hang_guard(60)


@pytest.fixture
def server():
    with StoreServer(create_store("rocksdb")) as srv:
        yield srv


def client_for(server):
    host, port = server.address
    return RemoteStoreClient(host, port, store_name=server.store.name)


class TestRemoteOperations:
    def test_put_get_roundtrip(self, server):
        with client_for(server) as client:
            client.put(b"k", b"v")
            assert client.get(b"k") == b"v"

    def test_get_missing(self, server):
        with client_for(server) as client:
            assert client.get(b"missing") is None

    def test_empty_value(self, server):
        with client_for(server) as client:
            client.put(b"k", b"")
            assert client.get(b"k") == b""

    def test_merge_over_the_wire(self, server):
        with client_for(server) as client:
            client.merge(b"k", b"a")
            client.merge(b"k", b"b")
            assert client.get(b"k") == b"ab"

    def test_delete(self, server):
        with client_for(server) as client:
            client.put(b"k", b"v")
            client.delete(b"k")
            assert client.get(b"k") is None

    def test_large_values(self, server):
        payload = bytes(range(256)) * 512  # 128 KB
        with client_for(server) as client:
            client.put(b"big", payload)
            assert client.get(b"big") == payload

    def test_sequential_consistency_per_client(self, server):
        with client_for(server) as client:
            for i in range(300):
                client.put(f"k{i % 10}".encode(), f"v{i}".encode())
            for i in range(290, 300):
                assert client.get(f"k{i % 10}".encode()) == f"v{i}".encode()


class TestMultipleClients:
    def test_two_clients_share_state(self, server):
        with client_for(server) as a, client_for(server) as b:
            a.put(b"k", b"from-a")
            assert b.get(b"k") == b"from-a"

    def test_concurrent_disjoint_writers(self, server):
        """The dataflow model's per-key single-writer setting: tasks on
        disjoint key ranges may share an external store."""
        errors = []

        def worker(prefix):
            try:
                with client_for(server) as client:
                    for i in range(200):
                        key = f"{prefix}-{i}".encode()
                        client.put(key, key)
                    for i in range(200):
                        key = f"{prefix}-{i}".encode()
                        assert client.get(key) == key
            except Exception as exc:  # pragma: no cover - surfaced below
                errors.append(exc)

        threads = [
            threading.Thread(target=worker, args=(p,)) for p in ("a", "b", "c")
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert errors == []


class TestReplayerIntegration:
    def test_trace_replay_against_remote_store(self):
        from repro.core import SourceConfig, TraceReplayer, generate_workload_trace

        trace = generate_workload_trace(
            "continuous-aggregation", [SourceConfig(num_events=300)]
        )
        with StoreServer(InMemoryStore()) as server:
            with client_for(server) as client:
                result = TraceReplayer(client).replay(trace)
        assert result.operations == len(trace)
        assert result.throughput_ops > 0

    def test_remote_slower_than_embedded(self):
        """The external-state overhead: every access pays the IPC hop."""
        from repro.core import SourceConfig, TraceReplayer, generate_workload_trace
        from repro.kvstores import connect

        trace = generate_workload_trace(
            "continuous-aggregation", [SourceConfig(num_events=500)]
        )
        embedded = TraceReplayer(connect(InMemoryStore())).replay(trace)
        with StoreServer(InMemoryStore()) as server:
            with client_for(server) as client:
                remote = TraceReplayer(client).replay(trace)
        assert remote.throughput_ops < embedded.throughput_ops
