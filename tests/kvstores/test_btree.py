"""Tests for the BerkeleyDB-like B+Tree store."""

import random

import pytest

from repro.kvstores.btree import BTreeConfig, BTreeStore
from repro.kvstores.btree.node import InternalNode, LeafNode, decode_node


class TestNodes:
    def test_leaf_roundtrip(self):
        leaf = LeafNode([b"a", b"b"], [b"1", b"2"], next_leaf=7)
        decoded = decode_node(leaf.encode())
        assert decoded.keys == [b"a", b"b"]
        assert decoded.values == [b"1", b"2"]
        assert decoded.next_leaf == 7

    def test_leaf_without_next(self):
        leaf = LeafNode([b"a"], [b"1"])
        decoded = decode_node(leaf.encode())
        assert decoded.next_leaf is None

    def test_internal_roundtrip(self):
        node = InternalNode([b"m"], [3, 9])
        decoded = decode_node(node.encode())
        assert decoded.keys == [b"m"]
        assert decoded.children == [3, 9]
        assert not decoded.is_leaf

    def test_size_accounting(self):
        leaf = LeafNode([b"abc"], [b"12345"])
        assert leaf.size_bytes > 8


class TestBasicOperations:
    def test_put_get(self):
        store = BTreeStore()
        store.put(b"k", b"v")
        assert store.get(b"k") == b"v"

    def test_get_missing(self):
        assert BTreeStore().get(b"nope") is None

    def test_overwrite_in_place(self):
        store = BTreeStore()
        store.put(b"k", b"v1")
        store.put(b"k", b"v2")
        assert store.get(b"k") == b"v2"
        assert len(store) == 1

    def test_delete(self):
        store = BTreeStore()
        store.put(b"k", b"v")
        store.delete(b"k")
        assert store.get(b"k") is None
        assert len(store) == 0

    def test_delete_missing_is_noop(self):
        store = BTreeStore()
        store.delete(b"ghost")
        assert len(store) == 0

    def test_no_native_merge(self):
        from repro.kvstores import UnsupportedOperationError

        with pytest.raises(UnsupportedOperationError):
            BTreeStore().merge(b"k", b"v")

    def test_order_validation(self):
        with pytest.raises(ValueError):
            BTreeStore(BTreeConfig(order=2))


class TestTreeStructure:
    def test_splits_grow_height(self):
        store = BTreeStore(BTreeConfig(order=4))
        for i in range(100):
            store.put(f"k{i:04d}".encode(), b"v")
        assert store.height > 1
        for i in range(100):
            assert store.get(f"k{i:04d}".encode()) == b"v"

    def test_random_insert_order(self):
        store = BTreeStore(BTreeConfig(order=8))
        keys = [f"k{i:05d}".encode() for i in range(500)]
        rng = random.Random(5)
        rng.shuffle(keys)
        for key in keys:
            store.put(key, key)
        for key in keys:
            assert store.get(key) == key

    def test_scan_is_sorted(self):
        store = BTreeStore(BTreeConfig(order=8))
        keys = [f"k{i:04d}".encode() for i in range(200)]
        rng = random.Random(9)
        shuffled = list(keys)
        rng.shuffle(shuffled)
        for key in shuffled:
            store.put(key, b"v")
        out = [k for k, _ in store.scan(b"k0050", b"k0100")]
        assert out == keys[50:100]

    def test_scan_empty_range(self):
        store = BTreeStore()
        store.put(b"b", b"v")
        assert list(store.scan(b"c", b"d")) == []

    def test_scan_after_deletes(self):
        store = BTreeStore(BTreeConfig(order=4))
        for i in range(50):
            store.put(f"k{i:03d}".encode(), b"v")
        for i in range(0, 50, 2):
            store.delete(f"k{i:03d}".encode())
        out = [k for k, _ in store.scan(b"k000", b"k050")]
        assert out == [f"k{i:03d}".encode() for i in range(1, 50, 2)]


class TestPageCache:
    def test_eviction_and_reload(self):
        store = BTreeStore(BTreeConfig(order=8, cache_bytes=2048))
        for i in range(800):
            store.put(f"k{i:05d}".encode(), b"v" * 16)
        stats = store.cache_stats()
        assert stats["page_outs"] > 0
        # Everything must still be readable after paging.
        for i in range(0, 800, 31):
            assert store.get(f"k{i:05d}".encode()) == b"v" * 16
        assert store.cache_stats()["page_ins"] > 0

    def test_flush_persists_dirty_pages(self):
        store = BTreeStore(BTreeConfig(order=8, cache_bytes=1 << 20))
        store.put(b"a", b"1")
        store.flush()
        assert store._pages.page_outs >= 1

    def test_mutation_under_memory_pressure(self):
        """Heavy churn with a tiny cache must never lose updates."""
        store = BTreeStore(BTreeConfig(order=6, cache_bytes=1024))
        rng = random.Random(17)
        expected = {}
        for i in range(2000):
            key = f"k{rng.randrange(300):04d}".encode()
            if rng.random() < 0.25 and key in expected:
                store.delete(key)
                del expected[key]
            else:
                value = f"v{i}".encode()
                store.put(key, value)
                expected[key] = value
        for key, value in expected.items():
            assert store.get(key) == value, key
        for i in range(300):
            key = f"k{i:04d}".encode()
            if key not in expected:
                assert store.get(key) is None
