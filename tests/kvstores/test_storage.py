"""Tests for the blob storage backends."""

import pytest

from repro.kvstores.storage import (
    FileStorage,
    MemoryStorage,
    StorageError,
    make_storage,
)


@pytest.fixture(params=["memory", "file"])
def storage(request, tmp_path):
    if request.param == "memory":
        return MemoryStorage()
    return FileStorage(str(tmp_path / "blobs"))


class TestStorageBackends:
    def test_write_read(self, storage):
        storage.write("a", b"hello")
        assert storage.read("a") == b"hello"

    def test_overwrite(self, storage):
        storage.write("a", b"one")
        storage.write("a", b"two")
        assert storage.read("a") == b"two"

    def test_append(self, storage):
        storage.append("log", b"aa")
        storage.append("log", b"bb")
        assert storage.read("log") == b"aabb"

    def test_read_range(self, storage):
        storage.write("a", b"0123456789")
        assert storage.read_range("a", 2, 3) == b"234"

    def test_read_missing_raises(self, storage):
        with pytest.raises(StorageError):
            storage.read("nope")

    def test_read_range_missing_raises(self, storage):
        with pytest.raises(StorageError):
            storage.read_range("nope", 0, 1)

    def test_delete(self, storage):
        storage.write("a", b"x")
        storage.delete("a")
        assert not storage.exists("a")

    def test_delete_missing_is_noop(self, storage):
        storage.delete("ghost")

    def test_exists(self, storage):
        assert not storage.exists("a")
        storage.write("a", b"x")
        assert storage.exists("a")

    def test_list(self, storage):
        storage.write("b", b"")
        storage.write("a", b"")
        assert list(storage.list()) == ["a", "b"]

    def test_size(self, storage):
        storage.write("a", b"12345")
        assert storage.size("a") == 5

    def test_size_missing_raises(self, storage):
        with pytest.raises(StorageError):
            storage.size("nope")


class TestMakeStorage:
    def test_memory(self):
        assert isinstance(make_storage("memory"), MemoryStorage)

    def test_file(self, tmp_path):
        assert isinstance(make_storage("file", str(tmp_path)), FileStorage)

    def test_file_requires_root(self):
        with pytest.raises(ValueError):
            make_storage("file")

    def test_unknown_kind(self):
        with pytest.raises(ValueError):
            make_storage("s3")


class TestMemoryStorageExtras:
    def test_total_bytes(self):
        storage = MemoryStorage()
        storage.write("a", b"123")
        storage.append("b", b"4567")
        assert storage.total_bytes == 7
