"""Pipelined remote I/O: bounded in-flight windows, FIFO reply
correlation, drain-on-error recovery, allocation-free framing, and
TCP_NODELAY on every data-path socket."""

import gc
import socket
import sys

import pytest

from repro.faults import RetryPolicy
from repro.kvstores import InMemoryStore, connect
from repro.kvstores.api import OP_DELETE, OP_GET, OP_MERGE, OP_PUT
from repro.kvstores.remote import (
    RemoteStoreClient,
    RemoteStoreError,
    StoreServer,
    _frame_op_into,
    _recv_into_exact,
)


@pytest.fixture(autouse=True)
def _guard(hang_guard):
    """A reintroduced pipeline deadlock should fail fast, not wedge."""
    hang_guard(60)


@pytest.fixture
def server():
    with StoreServer(InMemoryStore()) as srv:
        yield srv


def client_for(server, **kwargs):
    host, port = server.address
    return RemoteStoreClient(host, port, **kwargs)


class Collector:
    """Completion sink that records (opcode, arrival, complete, value)."""

    def __init__(self):
        self.completions = []

    def __call__(self, opcode, arrival_ns, complete_ns, value):
        self.completions.append((opcode, arrival_ns, complete_ns, value))

    @property
    def values(self):
        return [value for _, _, _, value in self.completions]


class TestWindow:
    def test_pipelined_writes_match_sync_and_coalesce(self, server):
        local = connect(InMemoryStore())
        with client_for(server) as client:
            sink = Collector()
            session = client.pipeline(8, sink)
            for i in range(100):
                key = b"k%03d" % (i % 25)
                if i % 10 == 9:
                    session.submit(OP_DELETE, key, b"", 0)
                    local.delete(key)
                elif i % 3 == 0:
                    session.submit(OP_MERGE, key, b"m%d" % i, 0)
                    local.merge(key, b"m%d" % i)
                else:
                    session.submit(OP_PUT, key, b"v%d" % i, 0)
                    local.put(key, b"v%d" % i)
            session.drain()
            assert len(sink.completions) == 100
            assert session.pending == 0
            keys = [b"k%03d" % i for i in range(25)]
            assert client.multi_get(keys) == [local.get(key) for key in keys]
            # the mechanism: 100 ops left in far fewer sendall bursts
            assert session.flushes < 30
            assert session.coalesced_ops == 100
            assert client.pipeline_flushes == session.flushes
            assert client.flush_coalesced_ops == 100
        local.close()

    def test_fifo_get_values_correlate_positionally(self, server):
        """Reply correlation is positional: interleaved puts and gets
        complete with exactly the value the op would have seen in
        program order -- no IDs on the wire."""
        expected = []
        shadow = {}
        with client_for(server) as client:
            sink = Collector()
            session = client.pipeline(16, sink)
            for i in range(200):
                key = b"k%02d" % (i % 7)
                if i % 2:
                    session.submit(OP_GET, key, b"", 0)
                    expected.append(shadow.get(key))
                else:
                    value = b"v%03d" % i
                    session.submit(OP_PUT, key, value, 0)
                    shadow[key] = value
                    expected.append(None)  # OK replies carry no value
            session.drain()
            assert sink.values == expected

    def test_window_never_exceeds_depth(self, server):
        with client_for(server) as client:
            session = client.pipeline(8, Collector())
            for _ in range(7):
                session.submit(OP_PUT, b"k", b"v", 0)
                assert session.pending <= 8
            assert session.flushes == 0  # window not yet full
            session.submit(OP_PUT, b"k", b"v", 0)
            # full window: flushed, then drained to depth//2 so reply
            # reads overlap the next burst's framing
            assert session.flushes >= 1
            assert session.pending <= 4
            session.drain()

    def test_latency_spans_submit_to_reply(self, server):
        """arrival_ns is the caller's stamp and complete_ns is taken at
        reply parse, so window queueing time is inside the interval."""
        import time

        with client_for(server) as client:
            sink = Collector()
            session = client.pipeline(4, sink)
            stamps = []
            for i in range(20):
                stamp = time.perf_counter_ns()
                stamps.append(stamp)
                session.submit(OP_PUT, b"k%d" % i, b"v", stamp)
            session.drain()
            arrivals = [arrival for _, arrival, _, _ in sink.completions]
            assert arrivals == stamps  # FIFO: completions in submit order
            assert all(
                complete >= arrival
                for _, arrival, complete, _ in sink.completions
            )


class TestDowngrade:
    def test_downgraded_client_collapses_window_to_one(self):
        """Once the client has proven its peer is v1 (permanent batch
        downgrade), the window collapses to depth 1: every submit is a
        synchronous round-trip, but the ops still land."""
        with StoreServer(InMemoryStore(), protocol_version=1) as server:
            with client_for(server) as client:
                client.apply_batch([(OP_PUT, b"probe", b"1")])
                assert not client._batch_supported  # downgrade happened
                sink = Collector()
                session = client.pipeline(16, sink)
                assert session.requested_depth == 16
                assert session.depth == 1
                for i in range(10):
                    session.submit(OP_PUT, b"k%d" % i, b"v%d" % i, 0)
                session.drain()
                # depth 1 means no coalescing: one flush per op
                assert session.flushes == 10
                assert len(sink.completions) == 10
                for i in range(10):
                    assert client.get(b"k%d" % i) == b"v%d" % i

    def test_fresh_client_pipelines_per_op_frames_against_v1(self):
        """Per-op frames predate batching, so a v1 server answers a
        pipelined burst of them in order -- full-depth windows work
        against old peers until a batch call proves the downgrade."""
        with StoreServer(InMemoryStore(), protocol_version=1) as server:
            with client_for(server) as client:
                sink = Collector()
                session = client.pipeline(8, sink)
                for i in range(40):
                    session.submit(OP_PUT, b"k%d" % i, b"v%d" % i, 0)
                session.drain()
                assert session.flushes < 20  # coalescing intact
                for i in range(40):
                    assert client.get(b"k%d" % i) == b"v%d" % i


class TestRecovery:
    def test_killed_server_aborts_window_and_retry_resends(self):
        """A transport death mid-window re-queues every un-acked op;
        the retry policy reconnects and re-sends them, so the drain
        completes with every op landed (at-least-once)."""
        server = StoreServer(InMemoryStore()).start()
        port = server.port
        client = client_for(server, retry_policy=RetryPolicy(
            max_attempts=8, base_delay_s=0.05, jitter=0.0
        ))
        try:
            sink = Collector()
            session = client.pipeline(8, sink)
            for i in range(20):
                session.submit(OP_PUT, b"k%02d" % i, b"v%02d" % i, 0)
            session.drain()  # window empty: everything below is un-acked
            server.kill()
            fresh = InMemoryStore()  # a restarted process starts empty
            replacement = StoreServer(fresh, port=port).start()
            try:
                for i in range(20, 40):
                    session.submit(OP_PUT, b"k%02d" % i, b"v%02d" % i, 0)
                session.drain()
                assert len(sink.completions) >= 40  # re-sends may re-ack
                assert client.reconnects >= 1
                assert session.aborted_windows >= 1
                # every op of the aborted window was re-sent and landed
                for i in range(20, 40):
                    assert fresh.get(b"k%02d" % i) == b"v%02d" % i
            finally:
                replacement.stop()
        finally:
            client.close()
            server.stop()

    def test_unrecoverable_death_raises_typed_error(self):
        server = StoreServer(InMemoryStore()).start()
        client = client_for(server, retry_policy=RetryPolicy(
            max_attempts=2, base_delay_s=0.0, jitter=0.0
        ))
        try:
            session = client.pipeline(4, Collector())
            session.submit(OP_PUT, b"k", b"v", 0)
            session.drain()
            server.kill()
            with pytest.raises(RemoteStoreError):
                for i in range(50):
                    session.submit(OP_PUT, b"k%d" % i, b"v", 0)
                session.drain()
        finally:
            client.close()
            server.stop()


class _PoisonStore(InMemoryStore):
    POISON = b"poison"

    def put(self, key, value):
        if key == self.POISON:
            raise RuntimeError("poisoned key")
        super().put(key, value)


class TestStoreErrors:
    def test_reply_error_raises_and_is_not_resent(self):
        """REPLY_ERROR is not a transport failure: the op completes
        exceptionally and is never re-sent, and the connection (and the
        rest of the window) survives."""
        with StoreServer(_PoisonStore()) as server:
            with client_for(server, retry_policy=RetryPolicy(
                max_attempts=3, base_delay_s=0.0, jitter=0.0
            )) as client:
                session = client.pipeline(4, Collector())
                session.submit(OP_PUT, b"good", b"1", 0)
                session.submit(OP_PUT, _PoisonStore.POISON, b"2", 0)
                with pytest.raises(RemoteStoreError, match="poisoned"):
                    session.drain()
                assert client.reconnects == 0  # rejected, not re-sent
                assert client.get(b"good") == b"1"
                assert client.get(_PoisonStore.POISON) is None


class _ScriptedSocket:
    """recv_into-only socket fed from a preset byte string."""

    def __init__(self, payload):
        self._payload = payload
        self._pos = 0

    def rewind(self):
        self._pos = 0

    def recv_into(self, buf):
        n = min(len(buf), len(self._payload) - self._pos)
        buf[:n] = self._payload[self._pos : self._pos + n]
        self._pos += n
        return n


class TestAllocationFree:
    def _steady_state_blocks(self, step, warmup=50, iterations=2000):
        """Net allocated-block growth across ``iterations`` calls of
        ``step`` after a warmup (buffers grown, caches primed)."""
        for _ in range(warmup):
            step()
        gc.collect()
        gc.disable()
        try:
            before = sys.getallocatedblocks()
            for _ in range(iterations):
                step()
            after = sys.getallocatedblocks()
        finally:
            gc.enable()
        return after - before

    def test_recv_into_exact_is_allocation_free(self):
        sock = _ScriptedSocket(b"x" * 64)
        buf = bytearray(64)

        def step():
            sock.rewind()
            _recv_into_exact(sock, buf, 64)

        # zero heap churn per call once warm; the bound leaves room for
        # interpreter-internal noise only
        assert self._steady_state_blocks(step) < 50

    def test_frame_op_into_is_allocation_free(self):
        buf = bytearray(4096)
        key, value = b"key%06d" % 7, b"v" * 64

        def step():
            _frame_op_into(buf, 0, OP_PUT, key, value)

        assert self._steady_state_blocks(step) < 50


class TestNoDelay:
    def _nodelay(self, sock):
        return sock.getsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY) != 0

    def test_client_socket_sets_nodelay(self, server):
        with client_for(server) as client:
            assert self._nodelay(client._sock)

    def test_server_accepted_sockets_set_nodelay(self, server):
        with client_for(server) as client:
            client.put(b"k", b"v")  # guarantees the accept completed
            conns = list(server._connections)
            assert conns, "server accepted no connection"
            assert all(self._nodelay(sock) for sock in conns)

    def test_replication_link_socket_sets_nodelay(self, server):
        with StoreServer(InMemoryStore()) as downstream:
            with client_for(server) as client:
                client.admin(
                    "configure",
                    {"downstream": list(downstream.address), "sync": True},
                )
                client.put(b"k", b"v")  # traverses the link
                link = server._replication
                assert link is not None
                assert self._nodelay(link._sock)
