"""Remote-protocol robustness: timeouts, error replies, drain-on-stop.

Regression tests for the hang class of bugs: before the timeout fixes,
a hung or killed :class:`StoreServer` left ``RemoteStoreClient`` (and
any replay driving it) blocked forever in ``_recv_exact``, and an
unknown opcode killed the handler without a reply, deadlocking the
client.  Every test arms the ``hang_guard`` fixture so a reintroduced
hang fails fast instead of wedging the suite.
"""

import socket
import threading
import time

import pytest

from repro.faults import RetryPolicy
from repro.kvstores import InMemoryStore
from repro.kvstores.remote import (
    REPLY_ERROR,
    RemoteStoreClient,
    RemoteStoreError,
    StoreServer,
)


@pytest.fixture(autouse=True)
def _guard(hang_guard):
    hang_guard(30)


@pytest.fixture
def server():
    with StoreServer(InMemoryStore()) as srv:
        yield srv


def client_for(server, **kwargs):
    host, port = server.address
    return RemoteStoreClient(host, port, store_name="remote", **kwargs)


class TestClientTimeouts:
    def test_hung_server_raises_typed_error_within_timeout(self):
        # A listener that accepts connections but never replies -- the
        # shape of a wedged server process.
        listener = socket.socket()
        listener.bind(("127.0.0.1", 0))
        listener.listen(1)
        host, port = listener.getsockname()
        try:
            client = RemoteStoreClient(host, port, timeout=0.2)
            start = time.monotonic()
            with pytest.raises(RemoteStoreError, match="timed out"):
                client.get(b"k")
            assert time.monotonic() - start < 2.0
            client.close()
        finally:
            listener.close()

    def test_connect_to_dead_address_raises_typed_error(self):
        # Bind-then-close to get a port with nothing listening.
        probe = socket.socket()
        probe.bind(("127.0.0.1", 0))
        host, port = probe.getsockname()
        probe.close()
        with pytest.raises(RemoteStoreError, match="cannot connect"):
            RemoteStoreClient(host, port, timeout=0.5)

    def test_server_killed_mid_session_raises_typed_error(self, server):
        client = client_for(server, timeout=0.5)
        client.put(b"k", b"v")
        server.stop()
        start = time.monotonic()
        with pytest.raises(RemoteStoreError):
            client.put(b"k2", b"v")
        assert time.monotonic() - start < 2.0
        client.close()


class TestErrorReplies:
    def test_unknown_opcode_gets_error_reply_not_silence(self, server):
        client = client_for(server)
        with pytest.raises(RemoteStoreError, match="unknown opcode 9"):
            client._request_once(9, b"", b"")
        client.close()

    def test_unknown_opcode_frame_is_reply_error(self, server):
        # Speak the wire format directly to pin down the reply byte.
        host, port = server.address
        with socket.create_connection((host, port), timeout=2.0) as sock:
            sock.settimeout(2.0)
            sock.sendall(bytes([200]) + (0).to_bytes(4, "little") * 2)
            status = sock.recv(1)
            assert status == bytes([REPLY_ERROR])

    def test_store_exception_reported_and_connection_survives(self):
        class ExplodingStore(InMemoryStore):
            def merge(self, key, operand):
                raise RuntimeError("merge operator exploded")

        with StoreServer(ExplodingStore()) as server:
            client = client_for(server)
            with pytest.raises(RemoteStoreError, match="merge operator exploded"):
                client.merge(b"k", b"v")
            # Same connection keeps serving after the error reply.
            client.put(b"k", b"v")
            assert client.get(b"k") == b"v"
            client.close()


class TestRetryPolicy:
    def test_reconnects_through_a_dropped_socket(self, server):
        policy = RetryPolicy(max_attempts=3, base_delay_s=0.0, jitter=0.0)
        client = client_for(server, timeout=2.0, retry_policy=policy)
        client.put(b"k", b"v")
        client._sock.close()  # simulate a transient network failure
        assert client.get(b"k") == b"v"
        assert client.reconnects == 1
        client.close()

    def test_gives_up_with_typed_error_when_server_stays_dead(self):
        server = StoreServer(InMemoryStore()).start()
        host, port = server.address
        policy = RetryPolicy(max_attempts=3, base_delay_s=0.0, jitter=0.0)
        client = RemoteStoreClient(host, port, timeout=0.3, retry_policy=policy)
        client.put(b"k", b"v")
        server.stop()
        with pytest.raises(RemoteStoreError):
            client.put(b"k2", b"v")
        client.close()


class TestDrainOnStop:
    def test_stop_waits_for_inflight_operation(self):
        class StrictStore(InMemoryStore):
            """Fails loudly if an operation overlaps ``close()``."""

            completed_puts = 0

            def put(self, key, value):
                assert not self.closed, "put started after close"
                time.sleep(0.25)
                assert not self.closed, "store closed mid-operation"
                super().put(key, value)
                self.completed_puts += 1

        store = StrictStore()
        server = StoreServer(store).start()
        client = client_for(server, timeout=5.0)
        errors = []

        def slow_put():
            try:
                client.put(b"k", b"v")
            except Exception as exc:  # pragma: no cover - surfaced below
                errors.append(exc)

        worker = threading.Thread(target=slow_put)
        worker.start()
        time.sleep(0.05)  # let the put reach the server
        server.stop()
        worker.join()
        assert errors == []
        assert store.completed_puts == 1
        assert store.closed
        client.close()

    def test_requests_after_shutdown_are_refused_not_hung(self, server):
        client = client_for(server, timeout=1.0)
        client.put(b"k", b"v")
        server.stop()
        with pytest.raises(RemoteStoreError):
            client.get(b"k")


class TestReplayTermination:
    def test_replay_against_killed_server_terminates_with_typed_error(self):
        """Acceptance criterion: a replay whose server dies mid-run must
        stop within the configured timeout with a typed error, not hang."""
        from repro.core import SourceConfig, TraceReplayer, generate_workload_trace

        trace = generate_workload_trace(
            "continuous-aggregation", [SourceConfig(num_events=400)]
        )
        server = StoreServer(InMemoryStore()).start()
        host, port = server.address
        client = RemoteStoreClient(host, port, timeout=0.5)
        replayer = TraceReplayer(client)
        replayer.replay(trace[: len(trace) // 2])
        server.stop()
        start = time.monotonic()
        with pytest.raises(RemoteStoreError):
            replayer.replay(trace[len(trace) // 2 :])
        assert time.monotonic() - start < 5.0
        client.close()
