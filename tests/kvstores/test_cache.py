"""Tests for the byte-budgeted LRU cache."""

from repro.kvstores.cache import LRUCache


class TestLRUCache:
    def test_put_get(self):
        cache = LRUCache(100)
        cache.put("a", b"xxxx")
        assert cache.get("a") == b"xxxx"

    def test_miss_returns_none_and_counts(self):
        cache = LRUCache(100)
        assert cache.get("missing") is None
        assert cache.misses == 1
        assert cache.hits == 0

    def test_eviction_by_bytes(self):
        cache = LRUCache(10)
        cache.put("a", b"12345")
        cache.put("b", b"12345")
        cache.put("c", b"12345")  # exceeds 10 bytes: evicts "a"
        assert "a" not in cache
        assert "b" in cache and "c" in cache
        assert cache.evictions == 1

    def test_lru_order_updated_by_get(self):
        cache = LRUCache(10)
        cache.put("a", b"12345")
        cache.put("b", b"12345")
        cache.get("a")  # refresh "a"
        cache.put("c", b"12345")  # evicts "b", not "a"
        assert "a" in cache
        assert "b" not in cache

    def test_overwrite_updates_size(self):
        cache = LRUCache(100)
        cache.put("a", b"xx")
        cache.put("a", b"xxxxxx")
        assert cache.used_bytes == 6

    def test_peek_does_not_count(self):
        cache = LRUCache(100)
        cache.put("a", b"x")
        cache.peek("a")
        cache.peek("nope")
        assert cache.hits == 0
        assert cache.misses == 0

    def test_invalidate(self):
        cache = LRUCache(100)
        cache.put("a", b"xyz")
        cache.invalidate("a")
        assert "a" not in cache
        assert cache.used_bytes == 0

    def test_invalidate_where(self):
        cache = LRUCache(100)
        cache.put(("f1", 0), b"x")
        cache.put(("f2", 0), b"y")
        cache.invalidate_where(lambda k: k[0] == "f1")
        assert ("f1", 0) not in cache
        assert ("f2", 0) in cache

    def test_on_evict_called(self):
        evicted = []
        cache = LRUCache(4, on_evict=lambda k, v: evicted.append(k))
        cache.put("a", b"123")
        cache.put("b", b"123")
        assert evicted == ["a"]

    def test_clear_flushes_all_through_on_evict(self):
        evicted = []
        cache = LRUCache(100, on_evict=lambda k, v: evicted.append(k))
        cache.put("a", b"1")
        cache.put("b", b"1")
        cache.clear()
        assert sorted(evicted) == ["a", "b"]
        assert len(cache) == 0

    def test_oversized_single_entry_evicted_immediately(self):
        cache = LRUCache(2)
        cache.put("big", b"xxxxxxxx")
        assert "big" not in cache

    def test_custom_sizer(self):
        cache = LRUCache(100, sizer=lambda v: 10)
        cache.put("a", "anything")
        assert cache.used_bytes == 10
