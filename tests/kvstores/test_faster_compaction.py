"""Tests for FASTER log compaction (segment garbage collection)."""

import pytest

from repro.kvstores.faster import FasterConfig, FasterStore


def churned_store(**config):
    defaults = dict(memory_budget=4096, segment_size=1024)
    defaults.update(config)
    store = FasterStore(FasterConfig(**defaults))
    # Write then overwrite so old segments hold mostly dead versions.
    for round_no in range(3):
        for i in range(200):
            store.put(f"k{i:04d}".encode(), f"r{round_no}-{i}".encode().ljust(24))
    store.flush()
    return store


class TestLogCompaction:
    def test_reclaims_bytes(self):
        store = churned_store()
        assert store.log.sealed_segments()
        stats = store.compact_log(max_segments=3)
        assert stats["bytes_reclaimed"] > 0
        assert stats["dead_dropped"] > 0

    def test_live_records_still_readable(self):
        store = churned_store()
        before = {f"k{i:04d}".encode(): store.get(f"k{i:04d}".encode())
                  for i in range(200)}
        # Compacting copies live records to the tail; with a log bigger
        # than memory some sealed segments always remain, so compact a
        # bounded number of rounds rather than "until empty".
        for _ in range(5):
            if not store.log.sealed_segments():
                break
            store.compact_log(max_segments=len(store.log.sealed_segments()))
            store.flush()
        for key, value in before.items():
            assert store.get(key) == value

    def test_dead_versions_dropped_not_copied(self):
        store = churned_store()
        stats = store.compact_log(max_segments=2)
        # Overwritten 3x: most records in old segments are superseded.
        assert stats["dead_dropped"] >= stats["live_copied"]

    def test_tombstoned_keys_retired(self):
        store = FasterStore(FasterConfig(memory_budget=2048, segment_size=512))
        for i in range(100):
            store.put(f"k{i:04d}".encode(), b"x" * 24)
        for i in range(100):
            store.delete(f"k{i:04d}".encode())
        # Push everything (incl. tombstones) to disk with fresh writes.
        for i in range(200):
            store.put(f"z{i:04d}".encode(), b"x" * 24)
        store.flush()
        segments = len(store.log.sealed_segments())
        store.compact_log(max_segments=segments)
        for i in range(100):
            assert store.get(f"k{i:04d}".encode()) is None
        for i in range(200):
            assert store.get(f"z{i:04d}".encode()) == b"x" * 24

    def test_compaction_with_no_segments_is_noop(self):
        store = FasterStore()
        store.put(b"k", b"v")
        stats = store.compact_log()
        assert stats == {
            "live_copied": 0, "dead_dropped": 0, "bytes_reclaimed": 0,
        }

    def test_index_points_at_copied_records(self):
        store = churned_store()
        store.compact_log(max_segments=2)
        # All index targets must resolve in the log.
        for key in list(store.index.keys())[:50]:
            address = store.index.lookup(key)
            record = store.log.read(address)
            assert record.key == key
