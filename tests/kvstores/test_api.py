"""Tests for the store API, merge operators, and stats."""

import pytest

from repro.kvstores import (
    AppendMergeOperator,
    CounterMergeOperator,
    InMemoryStore,
    StoreClosedError,
    StoreStats,
    UnsupportedOperationError,
)
from repro.kvstores.api import KVStore


class TestAppendMergeOperator:
    def test_full_merge_with_base(self):
        op = AppendMergeOperator()
        assert op.full_merge(b"a", (b"b", b"c")) == b"abc"

    def test_full_merge_without_base(self):
        assert AppendMergeOperator().full_merge(None, (b"x", b"y")) == b"xy"

    def test_full_merge_empty_operands(self):
        assert AppendMergeOperator().full_merge(b"base", ()) == b"base"

    def test_partial_merge(self):
        assert AppendMergeOperator().partial_merge(b"a", b"b") == b"ab"


class TestCounterMergeOperator:
    def encode(self, n):
        return n.to_bytes(8, "little", signed=True)

    def test_full_merge_sums(self):
        op = CounterMergeOperator()
        out = op.full_merge(self.encode(5), (self.encode(3), self.encode(-2)))
        assert out == self.encode(6)

    def test_full_merge_no_base(self):
        op = CounterMergeOperator()
        assert op.full_merge(None, (self.encode(7),)) == self.encode(7)

    def test_partial_merge(self):
        op = CounterMergeOperator()
        assert op.partial_merge(self.encode(2), self.encode(3)) == self.encode(5)


class TestStoreStats:
    def test_total_ops(self):
        stats = StoreStats(gets=1, puts=2, merges=3, deletes=4)
        assert stats.total_ops == 10

    def test_snapshot_is_independent(self):
        stats = StoreStats(gets=1)
        snap = stats.snapshot()
        stats.gets = 99
        assert snap.gets == 1

    def test_snapshot_covers_every_declared_field(self):
        """Drift guard: snapshot() must copy every dataclass field, so
        adding a counter can never silently produce zeroed snapshots."""
        import dataclasses

        stats = StoreStats()
        expected = {}
        for index, field in enumerate(dataclasses.fields(StoreStats)):
            value = {"marker": index} if field.name == "extra" else index + 1
            setattr(stats, field.name, value)
            expected[field.name] = value
        snap = stats.snapshot()
        for name, value in expected.items():
            assert getattr(snap, name) == value, name

    def test_snapshot_decouples_extra_dict(self):
        stats = StoreStats(extra={"wal_truncations": 1})
        snap = stats.snapshot()
        stats.extra["wal_truncations"] = 99
        assert snap.extra == {"wal_truncations": 1}


class TestKVStoreBase:
    def test_default_merge_unsupported(self):
        class Bare(KVStore):
            name = "bare"

            def get(self, key):
                return None

            def put(self, key, value):
                pass

            def delete(self, key):
                pass

        with pytest.raises(UnsupportedOperationError):
            Bare().merge(b"k", b"v")

    def test_closed_store_rejects_ops(self):
        store = InMemoryStore()
        store.close()
        with pytest.raises(StoreClosedError):
            store.get(b"k")

    def test_context_manager_closes(self):
        with InMemoryStore() as store:
            store.put(b"k", b"v")
        assert store.closed

    def test_double_close_is_safe(self):
        store = InMemoryStore()
        store.close()
        store.close()
        assert store.closed
