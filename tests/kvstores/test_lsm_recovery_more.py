"""Manifest-based recovery details for the LSM store."""

import random

from repro.kvstores.lsm import LetheConfig, LetheStore, LSMConfig, RocksLSMStore
from repro.kvstores.storage import FileStorage, MemoryStorage


def tiny(**overrides):
    defaults = dict(
        write_buffer_size=2048,
        block_cache_size=4096,
        level_base_bytes=8192,
        target_file_size=4096,
        max_levels=4,
        l0_compaction_trigger=2,
    )
    defaults.update(overrides)
    return LSMConfig(**defaults)


class TestManifestRecovery:
    def test_flushed_data_survives_restart(self):
        storage = MemoryStorage()
        store = RocksLSMStore(tiny(), storage=storage)
        for i in range(500):
            store.put(f"k{i:04d}".encode(), b"v" * 64)
        store.flush()
        del store

        revived = RocksLSMStore(tiny(), storage=storage)
        revived.recover()
        for i in range(0, 500, 13):
            assert revived.get(f"k{i:04d}".encode()) == b"v" * 64

    def test_sequence_numbers_continue_after_recovery(self):
        storage = MemoryStorage()
        store = RocksLSMStore(tiny(), storage=storage)
        store.put(b"a", b"old")
        store.flush()
        del store

        revived = RocksLSMStore(tiny(), storage=storage)
        revived.recover()
        revived.put(b"a", b"new")  # must supersede the recovered record
        assert revived.get(b"a") == b"new"
        revived.flush()
        assert revived.get(b"a") == b"new"

    def test_file_ids_do_not_collide_after_recovery(self):
        storage = MemoryStorage()
        store = RocksLSMStore(tiny(), storage=storage)
        for i in range(500):
            store.put(f"k{i:04d}".encode(), b"v" * 64)
        store.flush()
        del store

        revived = RocksLSMStore(tiny(), storage=storage)
        revived.recover()
        for i in range(500, 900):
            revived.put(f"k{i:04d}".encode(), b"w" * 64)
        revived.flush()
        for i in range(0, 900, 17):
            expected = b"v" * 64 if i < 500 else b"w" * 64
            assert revived.get(f"k{i:04d}".encode()) == expected

    def test_recovery_with_file_storage(self, tmp_path):
        """End to end on the real filesystem."""
        root = str(tmp_path / "db")
        storage = FileStorage(root)
        store = RocksLSMStore(tiny(), storage=storage)
        for i in range(400):
            store.put(f"k{i:04d}".encode(), f"v{i}".encode())
        # no flush: half the data only in the WAL
        del store

        revived = RocksLSMStore(tiny(), storage=FileStorage(root))
        revived.recover()
        for i in range(0, 400, 7):
            assert revived.get(f"k{i:04d}".encode()) == f"v{i}".encode()

    def test_lethe_recovers_too(self):
        storage = MemoryStorage()
        config = LetheConfig(
            write_buffer_size=2048, level_base_bytes=8192,
            target_file_size=4096, max_levels=4,
            delete_persistence_threshold_s=0.0, fade_check_interval=200,
        )
        store = LetheStore(config, storage=storage)
        rng = random.Random(2)
        expected = {}
        for i in range(2000):
            key = f"k{rng.randrange(200):04d}".encode()
            if rng.random() < 0.3:
                store.delete(key)
                expected.pop(key, None)
            else:
                value = f"v{i}".encode()
                store.put(key, value)
                expected[key] = value
        del store

        revived = LetheStore(config, storage=storage)
        revived.recover()
        for i in range(200):
            key = f"k{i:04d}".encode()
            assert revived.get(key) == expected.get(key), key
