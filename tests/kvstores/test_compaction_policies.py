"""Compaction-policy zoo: conformance every policy must satisfy.

Each registered policy (leveled / tiered / universal) is run through
the same behavioral gauntlet -- correctness is policy-independent, only
the tree *shape* may differ:

* every written key stays readable through flushes and compactions
* deletes never resurrect, even after the tombstone is compacted
* a manifest + WAL recovery round-trips the full contents
* the L0 trigger actually fires (compactions happen)

Plus the registry surface itself and Lethe's veto of overlapping-run
policies (FADE requires disjoint levels).
"""

import pytest

from repro.kvstores.lsm import (
    POLICY_NAMES,
    LetheConfig,
    LetheStore,
    LSMConfig,
    RocksLSMStore,
)
from repro.kvstores.lsm.policies import (
    POLICIES,
    LeveledPolicy,
    TieredPolicy,
    UniversalPolicy,
    resolve_policy,
)
from repro.kvstores.storage import MemoryStorage


def tiny(policy, **overrides):
    defaults = dict(
        write_buffer_size=1024,
        block_cache_size=4096,
        level_base_bytes=4096,
        target_file_size=2048,
        max_levels=4,
        l0_compaction_trigger=2,
        compaction_policy=policy,
    )
    defaults.update(overrides)
    return LSMConfig(**defaults)


class TestPolicyRegistry:
    def test_registry_names_are_sorted_and_complete(self):
        assert POLICY_NAMES == tuple(sorted(POLICIES))
        assert {"leveled", "tiered", "universal"} <= set(POLICY_NAMES)

    @pytest.mark.parametrize("name", POLICY_NAMES)
    def test_resolve_round_trips(self, name):
        assert resolve_policy(name).name == name

    def test_unknown_policy_rejected(self):
        with pytest.raises(ValueError, match="unknown compaction policy"):
            resolve_policy("mystery")

    def test_unknown_policy_rejected_at_config(self):
        with pytest.raises(ValueError, match="unknown compaction policy"):
            RocksLSMStore(tiny("mystery"), storage=MemoryStorage())

    def test_overlap_semantics(self):
        # leveled keeps levels >=1 disjoint; the others stack runs
        assert not LeveledPolicy().overlapping_runs
        assert TieredPolicy().overlapping_runs
        assert UniversalPolicy().overlapping_runs


@pytest.mark.parametrize("policy", POLICY_NAMES)
class TestPolicyConformance:
    def ingest(self, store, rounds=600, keys=60):
        for i in range(rounds):
            store.put(b"k%03d" % (i % keys), b"v%04d" % i)

    def test_all_keys_readable_after_compactions(self, policy):
        store = RocksLSMStore(tiny(policy), storage=MemoryStorage())
        self.ingest(store)
        assert store.stats.compactions > 0, "trigger never fired"
        for k in range(60):
            assert store.get(b"k%03d" % k) is not None

    def test_newest_version_wins(self, policy):
        store = RocksLSMStore(tiny(policy), storage=MemoryStorage())
        self.ingest(store, rounds=600, keys=60)
        # last write of key k was at round 540 + k
        for k in range(60):
            assert store.get(b"k%03d" % k) == b"v%04d" % (540 + k)

    def test_deletes_do_not_resurrect(self, policy):
        store = RocksLSMStore(tiny(policy), storage=MemoryStorage())
        self.ingest(store, rounds=300)
        for k in range(0, 60, 3):
            store.delete(b"k%03d" % k)
        # keep compacting past the tombstones
        self.ingest(store, rounds=300, keys=30)
        store.flush()
        for k in range(30, 60, 3):  # not re-written by the second ingest
            assert store.get(b"k%03d" % k) is None

    def test_scan_is_sorted_and_deduplicated(self, policy):
        store = RocksLSMStore(tiny(policy), storage=MemoryStorage())
        self.ingest(store)
        rows = list(store.scan(b"k000", b"k999"))
        keys = [key for key, _ in rows]
        assert keys == sorted(keys)
        assert len(keys) == len(set(keys))

    def test_recovery_round_trip(self, policy):
        storage = MemoryStorage()
        store = RocksLSMStore(tiny(policy), storage=storage)
        self.ingest(store)
        expected = dict(store.scan(b"k000", b"k999"))
        store.close()

        revived = RocksLSMStore(tiny(policy), storage=storage)
        revived.recover()
        assert dict(revived.scan(b"k000", b"k999")) == expected

    def test_scrub_clean_after_compactions(self, policy):
        store = RocksLSMStore(tiny(policy), storage=MemoryStorage())
        self.ingest(store)
        assert store.scrub().clean

    def test_background_mode_matches_inline(self, policy):
        inline = RocksLSMStore(tiny(policy), storage=MemoryStorage())
        background = RocksLSMStore(
            tiny(policy, background=True), storage=MemoryStorage()
        )
        try:
            self.ingest(inline)
            self.ingest(background)
            background.quiesce()
            assert dict(background.scan(b"k000", b"k999")) == dict(
                inline.scan(b"k000", b"k999")
            )
        finally:
            background.close()


class TestTreeShapes:
    """The one place policies *should* differ: the shape of the tree."""

    def build(self, policy):
        store = RocksLSMStore(tiny(policy), storage=MemoryStorage())
        for i in range(1200):
            store.put(b"k%03d" % (i % 120), b"v" * 48)
        store.flush()
        return store

    def test_leveled_keeps_l1_disjoint(self):
        store = self.build("leveled")
        for level in range(1, len(store._levels)):
            tables = sorted(store._levels[level], key=lambda t: t.smallest_key)
            for left, right in zip(tables, tables[1:]):
                assert left.largest_key < right.smallest_key

    def test_tiered_stacks_runs(self):
        store = self.build("tiered")
        # tiered never splits or re-partitions: each deeper level holds
        # whole merged runs, so data lives in far fewer, larger files
        assert store.stats.compactions > 0
        assert sum(store.level_file_counts()[1:]) >= 1


class TestLethePolicyVeto:
    @pytest.mark.parametrize("policy", ["tiered", "universal"])
    def test_overlapping_run_policies_rejected(self, policy):
        with pytest.raises(ValueError, match="FADE requires"):
            LetheStore(
                LetheConfig(compaction_policy=policy), storage=MemoryStorage()
            )

    def test_leveled_accepted(self):
        store = LetheStore(
            LetheConfig(compaction_policy="leveled"), storage=MemoryStorage()
        )
        store.put(b"k", b"v")
        assert store.get(b"k") == b"v"
