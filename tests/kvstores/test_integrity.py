"""Storage-integrity subsystem: checksums, corruption detection, scrub."""

import warnings

import pytest

from repro.kvstores import InMemoryStore, connect
from repro.kvstores.btree.node import (
    InternalNode,
    LeafNode,
    PAGE_MAGIC,
    decode_page,
    encode_page,
)
from repro.kvstores.btree.pagecache import PageCache
from repro.kvstores.btree.store import BTreeConfig, BTreeStore
from repro.kvstores.faster.hybridlog import (
    LogRecord,
    SEGMENT_MAGIC,
    decode_segment_record,
    frame_log_record,
    segment_checksum_kind,
    segment_header,
)
from repro.kvstores.faster.store import FasterConfig, FasterStore
from repro.kvstores.integrity import (
    DEFAULT_CHECKSUM_KIND,
    ChecksumKind,
    CorruptionError,
    IntegrityCounters,
    ScrubFinding,
    ScrubReport,
    checksum,
    crc32c,
    resolve_checksum_kind,
    _crc32c_py,
)
from repro.kvstores.lsm.record import (
    Record,
    RecordKind,
    WAL_HEADER_SIZE,
    WAL_MAGIC,
    decode_wal,
    frame_record,
    wal_header,
)
from repro.kvstores.lsm.sstable import build_sstable, open_sstable
from repro.kvstores.lsm.store import LSMConfig, RocksLSMStore
from repro.kvstores.storage import MemoryStorage

TINY_LSM = LSMConfig(
    write_buffer_size=2048,
    block_size=512,
    block_cache_size=8192,
    level_base_bytes=16384,
    target_file_size=8192,
    max_levels=4,
)


def _records(count, prefix=b"k", start_seq=1):
    return [
        Record(RecordKind.PUT, start_seq + i, b"%s%05d" % (prefix, i), b"v%d" % i)
        for i in range(count)
    ]


class TestChecksumPrimitives:
    def test_crc32c_check_vector(self):
        # The CRC-32C (Castagnoli) check value from the CRC catalogue.
        assert _crc32c_py(b"123456789") == 0xE3069283
        assert crc32c(b"123456789") == 0xE3069283

    def test_crc32c_empty_and_deterministic(self):
        assert _crc32c_py(b"") == 0
        assert _crc32c_py(b"hello world") == _crc32c_py(b"hello world")
        assert _crc32c_py(b"hello world") != _crc32c_py(b"hello worle")

    def test_checksum_dispatch(self):
        data = b"some block bytes"
        assert checksum(data, ChecksumKind.NONE) == 0
        assert checksum(data, ChecksumKind.CRC32C) == crc32c(data)
        import zlib

        assert checksum(data, ChecksumKind.CRC32) == zlib.crc32(data) & 0xFFFFFFFF

    def test_checksum_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown checksum kind"):
            checksum(b"x", 99)

    def test_resolve_names(self):
        assert resolve_checksum_kind(None) is DEFAULT_CHECKSUM_KIND
        assert resolve_checksum_kind("default") is DEFAULT_CHECKSUM_KIND
        assert resolve_checksum_kind("none") is ChecksumKind.NONE
        assert resolve_checksum_kind("crc32") is ChecksumKind.CRC32
        assert resolve_checksum_kind("CRC32C") is ChecksumKind.CRC32C
        with pytest.raises(ValueError, match="unknown checksum"):
            resolve_checksum_kind("md5")

    def test_scrub_report_accounting(self):
        report = ScrubReport()
        report.add(ScrubFinding("a", 0, "bad", repaired=True))
        report.add(ScrubFinding("b", 4, "worse"))
        assert report.corruptions_detected == 2
        assert report.corruptions_repaired == 1
        assert report.unrecoverable == 1
        assert not report.clean
        counters = IntegrityCounters()
        counters.absorb(report)
        assert (counters.detected, counters.repaired) == (2, 1)

    def test_scrub_report_merge(self):
        left, right = ScrubReport(structures_checked=3), ScrubReport(structures_checked=2)
        right.add(ScrubFinding("x", 1, "flip"))
        left.merge(right)
        assert left.structures_checked == 5
        assert left.corruptions_detected == 1


class TestWalFraming:
    @pytest.mark.parametrize("kind", [ChecksumKind.CRC32, ChecksumKind.CRC32C])
    def test_v2_round_trip(self, kind):
        records = _records(20)
        buf = wal_header(kind) + b"".join(frame_record(r, kind) for r in records)
        assert buf[:4] == WAL_MAGIC
        decoded = decode_wal(buf)
        assert decoded.records == records
        assert decoded.version == 2
        assert not decoded.truncated
        assert decoded.valid_bytes == len(buf)

    def test_v2_torn_tail_truncates_at_frame_boundary(self):
        kind = ChecksumKind.CRC32
        records = _records(10)
        frames = [frame_record(r, kind) for r in records]
        buf = wal_header(kind) + b"".join(frames)
        cut = len(buf) - len(frames[-1]) // 2  # tear the last record
        decoded = decode_wal(buf[:cut])
        assert decoded.truncated
        assert decoded.records == records[:-1]
        assert decoded.valid_bytes == len(buf) - len(frames[-1])

    def test_v2_bit_flip_detected(self):
        kind = ChecksumKind.CRC32
        records = _records(10)
        buf = bytearray(wal_header(kind) + b"".join(frame_record(r, kind) for r in records))
        # Flip one payload bit in the 4th frame.
        frame_len = len(frame_record(records[0], kind))
        buf[WAL_HEADER_SIZE + 3 * frame_len + 10] ^= 0x01
        decoded = decode_wal(bytes(buf))
        assert decoded.truncated
        assert decoded.records == records[:3]
        assert "checksum mismatch" in decoded.corruption

    def test_v1_legacy_decode(self):
        records = _records(15)
        buf = b"".join(r.encode() for r in records)
        decoded = decode_wal(buf)
        assert decoded.version == 1
        assert decoded.records == records
        assert not decoded.truncated

    def test_v1_torn_tail(self):
        records = _records(5)
        buf = b"".join(r.encode() for r in records)
        decoded = decode_wal(buf[:-3])
        assert decoded.truncated
        assert decoded.records == records[:-1]

    def test_header_only_wal_is_clean(self):
        decoded = decode_wal(wal_header(ChecksumKind.CRC32))
        assert decoded.records == []
        assert not decoded.truncated


class TestSSTableChecksums:
    @pytest.mark.parametrize(
        "kind", [ChecksumKind.NONE, ChecksumKind.CRC32, ChecksumKind.CRC32C]
    )
    def test_round_trip_all_kinds(self, kind):
        storage = MemoryStorage()
        records = _records(200)
        build_sstable(1, records, storage, block_size=256, checksum_kind=kind)
        table = open_sstable(1, storage, "sst-00000001")
        assert list(table.iter_records()) == records
        assert table.get_records(b"k00042")[0].value == b"v42"
        report = table.verify()
        assert report.clean and report.structures_checked > 1

    def test_none_kind_writes_legacy_v1(self):
        storage = MemoryStorage()
        build_sstable(1, _records(50), storage, checksum_kind=ChecksumKind.NONE)
        raw = storage.read("sst-00000001")
        assert raw[-4:] != b"GST2"
        # v1 blobs remain fully readable.
        assert len(list(open_sstable(1, storage, "sst-00000001").iter_records())) == 50

    def test_checksummed_blob_carries_magic(self):
        storage = MemoryStorage()
        build_sstable(1, _records(50), storage, checksum_kind=ChecksumKind.CRC32)
        assert storage.read("sst-00000001")[-4:] == b"GST2"

    def test_bit_flip_raises_corruption_error(self):
        storage = MemoryStorage()
        build_sstable(1, _records(200), storage, block_size=256,
                      checksum_kind=ChecksumKind.CRC32)
        raw = bytearray(storage.read("sst-00000001"))
        raw[len(raw) // 3] ^= 0x10  # inside a data block
        storage.write("sst-00000001", bytes(raw))
        with pytest.raises(CorruptionError, match="sst-00000001"):
            list(open_sstable(1, storage, "sst-00000001").iter_records())

    def test_verify_locates_damage_without_raising(self):
        storage = MemoryStorage()
        build_sstable(1, _records(200), storage, block_size=256,
                      checksum_kind=ChecksumKind.CRC32)
        table = open_sstable(1, storage, "sst-00000001")
        raw = bytearray(storage.read("sst-00000001"))
        raw[len(raw) // 3] ^= 0x10
        storage.write("sst-00000001", bytes(raw))
        report = table.verify()
        assert report.corruptions_detected >= 1
        assert all(f.blob == "sst-00000001" for f in report.findings)

    def test_empty_blob_raises_corruption_error(self):
        storage = MemoryStorage()
        storage.write("sst-00000007", b"")
        with pytest.raises(CorruptionError, match="no footer"):
            open_sstable(7, storage, "sst-00000007")


class TestLSMCorruptionHandling:
    def _flushed_store(self, storage, checksum="default"):
        import dataclasses

        config = dataclasses.replace(TINY_LSM, checksum=checksum)
        store = RocksLSMStore(config, storage=storage)
        for i in range(400):
            store.put(b"key-%04d" % (i % 120), b"x" * 32 + b"%d" % i)
        store.flush()
        return store

    def test_read_raises_then_quarantines(self):
        storage = MemoryStorage()
        store = self._flushed_store(storage)
        tables = [t for level in store._levels for t in level]
        assert tables, "expected flushed sstables"
        victim = tables[0]
        raw = bytearray(storage.read(victim.blob_name))
        raw[len(raw) // 2] ^= 0x20
        storage.write(victim.blob_name, bytes(raw))
        # Force reads through the damaged table until one hits the bad block.
        hit = False
        for i in range(120):
            try:
                store.get(b"key-%04d" % i)
            except CorruptionError:
                hit = True
                break
        if hit:
            assert victim in store.quarantined
            assert store.integrity.detected >= 1
            # Subsequent reads never return garbage; the table is gone.
            for i in range(120):
                store.get(b"key-%04d" % i)

    def test_scrub_detects_and_quarantines(self):
        storage = MemoryStorage()
        store = self._flushed_store(storage)
        victim = next(t for level in store._levels for t in level)
        raw = bytearray(storage.read(victim.blob_name))
        raw[len(raw) // 2] ^= 0x20
        storage.write(victim.blob_name, bytes(raw))
        report = store.scrub()
        assert report.corruptions_detected == 1
        assert report.findings[0].blob == victim.blob_name
        assert victim in store.quarantined
        assert store.integrity.detected == 1
        # After quarantine the tree is clean again.
        assert store.scrub().clean

    def test_scrub_repairs_torn_wal(self):
        storage = MemoryStorage()
        store = self._flushed_store(storage)
        store.put(b"tail-key", b"tail-value")  # unflushed WAL tail
        buf = storage.read("wal-current")
        storage.write("wal-current", buf[:-3])
        report = store.scrub()
        assert report.corruptions_detected == 1
        assert report.corruptions_repaired == 1
        assert report.findings[0].repaired
        # The WAL is now the intact prefix; a re-scrub is clean.
        assert store.scrub().clean

    def test_recovery_skips_zero_length_sstable(self):
        # Regression: a crash between blob creation and its first write
        # leaves a zero-length SSTable; recovery must skip it with a
        # warning rather than die in struct.unpack.
        storage = MemoryStorage()
        store = self._flushed_store(storage)
        victim = next(t for level in store._levels for t in level)
        survivors = {
            t.blob_name for level in store._levels for t in level
        } - {victim.blob_name}
        del store
        storage.write(victim.blob_name, b"")
        revived = RocksLSMStore(TINY_LSM, storage=storage)
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            revived.recover()
        assert any("skipping unreadable sstable" in str(w.message) for w in caught)
        assert revived.integrity.detected >= 1
        recovered = {t.blob_name for level in revived._levels for t in level}
        assert recovered == survivors

    def test_recovery_truncates_torn_wal_to_exact_prefix(self):
        storage = MemoryStorage()
        config = LSMConfig(checksum="crc32")
        store = RocksLSMStore(config, storage=storage)
        for i in range(50):
            store.put(b"key-%02d" % i, b"value-%02d" % i)
        del store  # crash: nothing flushed, WAL holds all 50
        buf = storage.read("wal-current")
        storage.write("wal-current", buf[:-5])  # tear mid-record
        revived = RocksLSMStore(config, storage=storage)
        with warnings.catch_warnings():
            warnings.simplefilter("ignore")
            replayed = revived.recover()
        assert replayed == 49
        assert revived.integrity.detected == 1
        assert revived.integrity.repaired == 1
        assert revived.get(b"key-48") == b"value-48"
        assert revived.get(b"key-49") is None

    def test_v1_store_files_readable_by_checksummed_store(self):
        storage = MemoryStorage()
        legacy = self._flushed_store(storage, checksum="none")
        keys = [b"key-%04d" % i for i in range(120)]
        expected = {k: legacy.get(k) for k in keys}
        del legacy
        import dataclasses

        config = dataclasses.replace(TINY_LSM, checksum="crc32")
        reader = RocksLSMStore(config, storage=storage)
        reader.recover()
        assert {k: reader.get(k) for k in keys} == expected


class TestBTreePageFraming:
    def test_round_trip_checksummed(self):
        leaf = LeafNode([b"a", b"b"], [b"1", b"2"], next_leaf=7)
        data = encode_page(leaf, ChecksumKind.CRC32)
        assert data[0] == PAGE_MAGIC
        decoded = decode_page(data)
        assert decoded.keys == leaf.keys and decoded.values == leaf.values
        assert decoded.next_leaf == 7

    def test_round_trip_internal(self):
        node = InternalNode([b"m"], [3, 9])
        decoded = decode_page(encode_page(node, ChecksumKind.CRC32C))
        assert decoded.keys == [b"m"] and decoded.children == [3, 9]

    def test_none_kind_is_legacy_encoding(self):
        leaf = LeafNode([b"a"], [b"1"])
        assert encode_page(leaf, ChecksumKind.NONE) == leaf.encode()

    def test_legacy_payload_decodes(self):
        leaf = LeafNode([b"a"], [b"1"])
        decoded = decode_page(leaf.encode(), "page-0")
        assert decoded.keys == [b"a"]

    def test_bit_flip_raises(self):
        data = bytearray(encode_page(LeafNode([b"a"], [b"1"]), ChecksumKind.CRC32))
        data[-1] ^= 0x04
        with pytest.raises(CorruptionError, match="checksum mismatch"):
            decode_page(bytes(data), "page-1")

    def test_unknown_marker_raises(self):
        with pytest.raises(CorruptionError, match="unrecognized page marker"):
            decode_page(b"\x55garbage", "page-2")

    def test_torn_header_raises(self):
        data = encode_page(LeafNode([b"a"], [b"1"]), ChecksumKind.CRC32)
        with pytest.raises(CorruptionError, match="torn page header"):
            decode_page(data[:3], "page-3")

    def test_empty_page_raises(self):
        with pytest.raises(CorruptionError, match="empty page"):
            decode_page(b"", "page-4")


class TestPageCacheScrub:
    def test_repairs_from_resident_copy(self):
        cache = PageCache(64 * 1024, checksum_kind=ChecksumKind.CRC32)
        page_id = cache.allocate(LeafNode([b"k"], [b"v"]))
        cache.flush()  # persisted AND still resident
        blob = cache._blob(page_id)
        raw = bytearray(cache.storage.read(blob))
        raw[-1] ^= 0xFF
        cache.storage.write(blob, bytes(raw))
        report = cache.scrub()
        assert report.corruptions_detected == 1
        assert report.corruptions_repaired == 1
        assert cache.scrub().clean

    def test_unrecoverable_without_resident_copy(self):
        cache = PageCache(64 * 1024, checksum_kind=ChecksumKind.CRC32)
        page_id = cache.allocate(LeafNode([b"k"], [b"v"]))
        cache.flush()
        cache._cache.invalidate(page_id)  # evict the clean resident copy
        blob = cache._blob(page_id)
        raw = bytearray(cache.storage.read(blob))
        raw[-1] ^= 0xFF
        cache.storage.write(blob, bytes(raw))
        report = cache.scrub()
        assert report.corruptions_detected == 1
        assert report.unrecoverable == 1
        with pytest.raises(CorruptionError):
            cache.get(page_id)

    def test_btree_store_scrub_and_backend(self):
        storage = MemoryStorage()
        store = BTreeStore(BTreeConfig(cache_bytes=8192, checksum="crc32"),
                           storage=storage)
        for i in range(500):
            store.put(b"%05d" % i, b"v" * 30)
        store.flush()
        assert store.storage_backend() is storage
        assert store.scrub().clean
        victim = sorted(storage.list())[0]
        raw = bytearray(storage.read(victim))
        raw[10] ^= 0x08
        storage.write(victim, bytes(raw))
        report = store.scrub()
        assert report.corruptions_detected == 1
        assert store.integrity.detected == 1


class TestFasterSegmentFraming:
    def _spilled(self, checksum="crc32"):
        storage = MemoryStorage()
        store = FasterStore(
            FasterConfig(memory_budget=8 * 1024, segment_size=2 * 1024,
                         checksum=checksum),
            storage=storage,
        )
        for i in range(600):
            store.put(b"k%04d" % i, b"v" * 48)
        store.flush()
        return store, storage

    def test_segment_header_round_trip(self):
        raw = segment_header(ChecksumKind.CRC32) + frame_log_record(
            LogRecord(b"k", b"v"), ChecksumKind.CRC32
        )
        kind = segment_checksum_kind(raw, "seg")
        assert kind is ChecksumKind.CRC32
        record, end = decode_segment_record(raw, 8, kind, "seg")
        assert (record.key, record.value) == (b"k", b"v")
        assert end == len(raw)

    def test_legacy_segment_has_no_magic(self):
        raw = LogRecord(b"k", b"v").encode()
        assert segment_checksum_kind(raw) is None
        record, _ = decode_segment_record(raw, 0, None)
        assert record.key == b"k"

    def test_spilled_round_trip_and_clean_scrub(self):
        store, storage = self._spilled()
        segments = sorted(storage.list())
        assert segments and storage.read(segments[0])[:4] == SEGMENT_MAGIC
        for i in range(0, 600, 83):
            assert store.get(b"k%04d" % i) == b"v" * 48
        report = store.scrub()
        assert report.clean
        assert report.structures_checked == len(store.log.sealed_segments())

    def test_corrupt_read_raises_and_scrub_detects(self):
        store, storage = self._spilled()
        victim = store.log.sealed_segments()[1]
        raw = bytearray(storage.read(victim))
        raw[60] ^= 0x02
        storage.write(victim, bytes(raw))
        report = store.scrub()
        assert report.corruptions_detected == 1
        assert report.findings[0].blob == victim
        assert report.unrecoverable == 1
        raised = False
        for key in (b"k%04d" % i for i in range(600)):
            address = store.index.lookup(key)
            location = store.log._disk_index.get(address)
            if location and location[0] == victim:
                try:
                    store.get(key)
                except CorruptionError:
                    raised = True
        assert raised

    def test_legacy_checksum_none_still_works(self):
        store, storage = self._spilled(checksum="none")
        assert storage.read(store.log.sealed_segments()[0])[:4] != SEGMENT_MAGIC
        for i in range(0, 600, 83):
            assert store.get(b"k%04d" % i) == b"v" * 48
        assert store.scrub().clean

    def test_compaction_over_checksummed_segments(self):
        store, _ = self._spilled()
        before = len(store.log.sealed_segments())
        out = store.compact_log(max_segments=2)
        assert out["live_copied"] + out["dead_dropped"] > 0
        assert len(store.log.sealed_segments()) <= before


class TestScrubDefaults:
    def test_memory_store_scrub_is_clean_noop(self):
        store = InMemoryStore()
        store.put(b"a", b"1")
        report = store.scrub()
        assert report.clean and report.structures_checked == 0
        assert store.storage_backend() is None

    def test_connector_passthrough(self):
        storage = MemoryStorage()
        store = BTreeStore(BTreeConfig(checksum="crc32"), storage=storage)
        connector = connect(store)
        store.put(b"a", b"1")
        connector.flush()
        assert connector.storage_backend() is storage
        assert connector.scrub().clean
