"""Differential tests: every store against the in-memory oracle.

Small configurations force flushes, compactions, FADE cycles, log
evictions, and page-cache churn while the oracle checks every read.
"""

import random

import pytest

from repro.kvstores import InMemoryStore, connect
from repro.kvstores.btree import BTreeConfig, BTreeStore
from repro.kvstores.faster import FasterConfig, FasterStore
from repro.kvstores.lsm import LetheConfig, LetheStore, LSMConfig, RocksLSMStore


def build_all_stores():
    lsm_kwargs = dict(
        write_buffer_size=4096,
        block_cache_size=8192,
        level_base_bytes=16384,
        target_file_size=8192,
        max_levels=5,
    )
    return {
        "rocksdb": connect(RocksLSMStore(LSMConfig(**lsm_kwargs))),
        "lethe": connect(
            LetheStore(
                LetheConfig(
                    **lsm_kwargs,
                    delete_persistence_threshold_s=0.0,
                    fade_check_interval=400,
                )
            )
        ),
        "faster": connect(FasterStore(FasterConfig(memory_budget=8192, segment_size=2048))),
        "berkeleydb": connect(BTreeStore(BTreeConfig(order=16, cache_bytes=8192))),
    }


@pytest.mark.parametrize("seed", [1, 2, 3])
def test_differential_mixed_workload(seed):
    stores = build_all_stores()
    oracle = connect(InMemoryStore())
    rng = random.Random(seed)
    keys = [f"k{i:05d}".encode() for i in range(400)]
    for i in range(12_000):
        key = rng.choice(keys)
        roll = rng.random()
        if roll < 0.35:
            expected = oracle.get(key)
            for name, connector in stores.items():
                assert connector.get(key) == expected, (name, key, i)
        elif roll < 0.6:
            value = (f"v{i}" * 2).encode()
            oracle.put(key, value)
            for connector in stores.values():
                connector.put(key, value)
        elif roll < 0.85:
            operand = f"m{i};".encode()
            oracle.merge(key, operand)
            for connector in stores.values():
                connector.merge(key, operand)
        else:
            oracle.delete(key)
            for connector in stores.values():
                connector.delete(key)
    for key in keys:
        expected = oracle.get(key)
        for name, connector in stores.items():
            assert connector.get(key) == expected, (name, key)


def test_differential_exercises_internals():
    """The tiny configs must actually trigger internal machinery."""
    stores = build_all_stores()
    rng = random.Random(7)
    keys = [f"k{i:05d}".encode() for i in range(400)]
    for i in range(15_000):
        key = rng.choice(keys)
        roll = rng.random()
        if roll < 0.5:
            value = (f"v{i}" * 3).encode()
            for connector in stores.values():
                connector.put(key, value)
        elif roll < 0.8:
            for connector in stores.values():
                connector.merge(key, f"m{i};".encode())
        else:
            for connector in stores.values():
                connector.delete(key)
    rocks = stores["rocksdb"].store
    lethe = stores["lethe"].store
    faster = stores["faster"].store
    btree = stores["berkeleydb"].store
    assert rocks.stats.flushes > 0
    assert rocks.stats.compactions > 0
    assert lethe.fade_compactions > 0
    faster.flush()
    assert faster.log.disk_records > 0
    assert btree.cache_stats()["page_outs"] > 0


def test_differential_streaming_shaped_workload(borg_tasks):
    """Window-style access pattern (get-put pairs, bucket merges,
    expiry deletes) against the oracle."""
    from repro.core import GadgetConfig, generate_workload_trace
    from repro.core.replayer import synthesize_value
    from repro.trace import OpType

    trace = generate_workload_trace(
        "tumbling-incremental", [borg_tasks], GadgetConfig(interleave="time")
    )
    stores = build_all_stores()
    oracle = connect(InMemoryStore())
    for i, access in enumerate(trace):
        if access.op is OpType.GET:
            expected = oracle.get(access.key)
            for name, connector in stores.items():
                assert connector.get(access.key) == expected, (name, i)
        elif access.op is OpType.PUT:
            value = synthesize_value(access.value_size)
            oracle.put(access.key, value)
            for connector in stores.values():
                connector.put(access.key, value)
        elif access.op is OpType.MERGE:
            value = synthesize_value(access.value_size)
            oracle.merge(access.key, value)
            for connector in stores.values():
                connector.merge(access.key, value)
        else:
            oracle.delete(access.key)
            for connector in stores.values():
                connector.delete(access.key)
