"""Tests for the RocksDB-like LSM store."""

import pytest

from repro.kvstores import CounterMergeOperator
from repro.kvstores.lsm import LSMConfig, RocksLSMStore
from repro.kvstores.storage import MemoryStorage


def tiny_config(**overrides):
    defaults = dict(
        write_buffer_size=2048,
        block_cache_size=4096,
        level_base_bytes=8192,
        target_file_size=4096,
        max_levels=4,
        l0_compaction_trigger=2,
    )
    defaults.update(overrides)
    return LSMConfig(**defaults)


class TestBasicOperations:
    def test_put_get(self):
        store = RocksLSMStore()
        store.put(b"k", b"v")
        assert store.get(b"k") == b"v"

    def test_get_missing(self):
        assert RocksLSMStore().get(b"nope") is None

    def test_overwrite(self):
        store = RocksLSMStore()
        store.put(b"k", b"v1")
        store.put(b"k", b"v2")
        assert store.get(b"k") == b"v2"

    def test_delete(self):
        store = RocksLSMStore()
        store.put(b"k", b"v")
        store.delete(b"k")
        assert store.get(b"k") is None

    def test_delete_missing_is_noop(self):
        store = RocksLSMStore()
        store.delete(b"ghost")
        assert store.get(b"ghost") is None

    def test_merge_without_base(self):
        store = RocksLSMStore()
        store.merge(b"k", b"a")
        store.merge(b"k", b"b")
        assert store.get(b"k") == b"ab"

    def test_merge_on_put(self):
        store = RocksLSMStore()
        store.put(b"k", b"base-")
        store.merge(b"k", b"op")
        assert store.get(b"k") == b"base-op"

    def test_merge_after_delete(self):
        store = RocksLSMStore()
        store.put(b"k", b"gone")
        store.delete(b"k")
        store.merge(b"k", b"fresh")
        assert store.get(b"k") == b"fresh"

    def test_custom_merge_operator(self):
        store = RocksLSMStore(merge_operator=CounterMergeOperator())
        one = (1).to_bytes(8, "little", signed=True)
        store.merge(b"n", one)
        store.merge(b"n", one)
        assert int.from_bytes(store.get(b"n"), "little", signed=True) == 2

    def test_stats_counted(self):
        store = RocksLSMStore()
        store.put(b"a", b"1")
        store.get(b"a")
        store.merge(b"a", b"2")
        store.delete(b"a")
        stats = store.stats
        assert (stats.puts, stats.gets, stats.merges, stats.deletes) == (1, 1, 1, 1)


class TestFlushAndCompaction:
    def fill(self, store, n=500, value=b"v" * 64):
        for i in range(n):
            store.put(f"key-{i:05d}".encode(), value)

    def test_flush_moves_data_to_l0(self):
        store = RocksLSMStore(tiny_config())
        store.put(b"a", b"v")
        store.flush()
        assert store.level_file_counts()[0] >= 1 or sum(store.level_file_counts()) >= 1
        assert store.get(b"a") == b"v"

    def test_reads_after_automatic_flushes(self):
        store = RocksLSMStore(tiny_config())
        self.fill(store, 300)
        assert store.stats.flushes > 0
        for i in range(0, 300, 7):
            assert store.get(f"key-{i:05d}".encode()) == b"v" * 64

    def test_compaction_happens(self):
        store = RocksLSMStore(tiny_config())
        self.fill(store, 800)
        assert store.stats.compactions > 0

    def test_overwrites_survive_compaction(self):
        store = RocksLSMStore(tiny_config())
        for round_value in (b"old" * 20, b"new" * 20):
            for i in range(200):
                store.put(f"key-{i:04d}".encode(), round_value)
        store.flush()
        for i in range(0, 200, 11):
            assert store.get(f"key-{i:04d}".encode()) == b"new" * 20

    def test_deletes_survive_compaction(self):
        store = RocksLSMStore(tiny_config())
        self.fill(store, 300)
        for i in range(0, 300, 2):
            store.delete(f"key-{i:05d}".encode())
        self.fill(store, 50, value=b"x" * 64)  # rewrites keys 0..49
        for i in range(50):
            assert store.get(f"key-{i:05d}".encode()) == b"x" * 64
        for i in range(50, 300, 2):
            assert store.get(f"key-{i:05d}".encode()) is None
        for i in range(51, 300, 2):
            assert store.get(f"key-{i:05d}".encode()) == b"v" * 64

    def test_merges_survive_flush_and_compaction(self):
        store = RocksLSMStore(tiny_config())
        for i in range(100):
            for j in range(5):
                store.merge(f"key-{i:03d}".encode(), f"{j}".encode())
        store.flush()
        assert store.get(b"key-042") == b"01234"

    def test_compaction_reduces_records(self):
        store = RocksLSMStore(tiny_config())
        for _ in range(4):
            self.fill(store, 200)
        store.flush()
        stats = store.compaction_stats
        assert stats.compactions > 0
        assert stats.records_out <= stats.records_in


class TestScan:
    def test_scan_ordered(self):
        store = RocksLSMStore(tiny_config())
        for i in (5, 1, 3, 2, 4):
            store.put(f"k{i}".encode(), str(i).encode())
        out = list(store.scan(b"k1", b"k4"))
        assert [k for k, _ in out] == [b"k1", b"k2", b"k3"]

    def test_scan_skips_deleted(self):
        store = RocksLSMStore(tiny_config())
        store.put(b"a", b"1")
        store.put(b"b", b"2")
        store.delete(b"a")
        assert [k for k, _ in store.scan(b"a", b"z")] == [b"b"]

    def test_scan_resolves_merges(self):
        store = RocksLSMStore(tiny_config())
        store.merge(b"m", b"x")
        store.merge(b"m", b"y")
        out = dict(store.scan(b"a", b"z"))
        assert out[b"m"] == b"xy"

    def test_scan_across_flushed_data(self):
        store = RocksLSMStore(tiny_config())
        for i in range(100):
            store.put(f"k{i:03d}".encode(), b"v" * 64)
        store.flush()
        store.put(b"k050", b"fresh")
        out = dict(store.scan(b"k049", b"k052"))
        assert out[b"k050"] == b"fresh"


class TestWALRecovery:
    def test_recover_unflushed_writes(self):
        storage = MemoryStorage()
        store = RocksLSMStore(tiny_config(write_buffer_size=1 << 20), storage=storage)
        store.put(b"a", b"1")
        store.merge(b"a", b"2")
        store.put(b"b", b"3")
        # Simulate a crash: new store over the same storage, replay WAL.
        revived = RocksLSMStore(tiny_config(write_buffer_size=1 << 20), storage=storage)
        replayed = revived.recover_wal()
        assert replayed == 3
        assert revived.get(b"a") == b"12"
        assert revived.get(b"b") == b"3"

    def test_wal_truncated_after_flush(self):
        storage = MemoryStorage()
        store = RocksLSMStore(tiny_config(), storage=storage)
        for i in range(300):
            store.put(f"k{i:04d}".encode(), b"v" * 64)
        store.flush()
        revived = RocksLSMStore(tiny_config(), storage=storage)
        assert revived.recover_wal() == 0

    def test_wal_disabled(self):
        store = RocksLSMStore(tiny_config(enable_wal=False))
        store.put(b"a", b"1")
        assert store.recover_wal() == 0


class TestConfig:
    def test_level_budget_grows_by_multiplier(self):
        config = LSMConfig(level_base_bytes=100, level_multiplier=10)
        assert config.max_level_bytes(1) == 100
        assert config.max_level_bytes(2) == 1000
        assert config.max_level_bytes(3) == 10000
