"""Tests for the YCSB workload generator."""

import pytest

from repro.trace import OpType
from repro.ycsb import CORE_WORKLOADS, YCSBConfig, YCSBWorkload


class TestConfig:
    def test_proportions_must_sum_to_one(self):
        with pytest.raises(ValueError):
            YCSBConfig(read_proportion=0.9, update_proportion=0.9).validate()

    def test_valid_defaults(self):
        YCSBConfig().validate()


class TestCoreWorkloads:
    @pytest.mark.parametrize("name", sorted(CORE_WORKLOADS))
    def test_all_presets_generate(self, name):
        workload = YCSBWorkload.core(name, operation_count=2000, record_count=100)
        trace = workload.generate()
        assert len(trace) >= 2000

    def test_unknown_preset(self):
        with pytest.raises(ValueError):
            YCSBWorkload.core("Z")

    def test_workload_a_mix(self):
        trace = YCSBWorkload.core("A", operation_count=10000, record_count=100).generate()
        fractions = trace.op_fractions()
        assert abs(fractions[OpType.GET] - 0.5) < 0.05
        assert abs(fractions[OpType.PUT] - 0.5) < 0.05

    def test_workload_d_read_heavy(self):
        trace = YCSBWorkload.core("D", operation_count=10000, record_count=100).generate()
        assert trace.op_fractions()[OpType.GET] > 0.9

    def test_workload_f_rmw_pairs(self):
        trace = YCSBWorkload.core("F", operation_count=10000, record_count=100).generate()
        # rmw emits get+put for the same key back to back
        rmw_pairs = 0
        for a, b in zip(trace, trace[1:]):
            if a.op is OpType.GET and b.op is OpType.PUT and a.key == b.key:
                rmw_pairs += 1
        assert rmw_pairs > 1000

    def test_no_deletes_ever(self):
        for name in CORE_WORKLOADS:
            trace = YCSBWorkload.core(name, operation_count=1000, record_count=50).generate()
            assert trace.op_counts()[OpType.DELETE] == 0


class TestWorkloadSemantics:
    def test_reads_only_touch_preloaded_keys(self):
        workload = YCSBWorkload(
            YCSBConfig(
                record_count=50,
                operation_count=5000,
                read_proportion=0.5,
                update_proportion=0.0,
                insert_proportion=0.5,
            )
        )
        preloaded = set(workload.load_keys())
        trace = workload.generate()
        read_keys = {a.key for a in trace if a.op is OpType.GET}
        assert read_keys <= preloaded

    def test_inserts_extend_keyspace(self):
        workload = YCSBWorkload(
            YCSBConfig(
                record_count=50,
                operation_count=1000,
                read_proportion=0.0,
                update_proportion=0.0,
                insert_proportion=1.0,
            )
        )
        trace = workload.generate()
        assert trace.distinct_keys() == 1000

    def test_value_sizes(self):
        workload = YCSBWorkload(
            YCSBConfig(record_count=10, operation_count=100, value_size=64)
        )
        trace = workload.generate()
        puts = [a for a in trace if a.op is OpType.PUT]
        assert all(a.value_size == 64 for a in puts)

    def test_deterministic_per_seed(self):
        a = YCSBWorkload(YCSBConfig(operation_count=500, seed=9)).generate()
        b = YCSBWorkload(YCSBConfig(operation_count=500, seed=9)).generate()
        assert a.accesses == b.accesses

    def test_load_keys_count(self):
        workload = YCSBWorkload(YCSBConfig(record_count=77))
        assert len(workload.load_keys()) == 77

    def test_key_padding(self):
        workload = YCSBWorkload(YCSBConfig(key_size=16))
        assert len(workload.key_for(3)) == 16

    def test_distribution_override(self):
        workload = YCSBWorkload.core("A", request_distribution="uniform",
                                     operation_count=100)
        assert workload.config.request_distribution == "uniform"
