"""Tests for the YCSB request distributions."""

import random

import pytest

from repro.ycsb import (
    DISTRIBUTIONS,
    ExponentialGenerator,
    HotspotGenerator,
    LatestGenerator,
    ScrambledZipfianGenerator,
    SequentialGenerator,
    UniformGenerator,
    ZipfianGenerator,
    fnv_hash64,
    make_generator,
)


def sample(generator, n=5000):
    return [generator.next_index() for _ in range(n)]


class TestFNVHash:
    def test_deterministic(self):
        assert fnv_hash64(42) == fnv_hash64(42)

    def test_spreads_values(self):
        hashes = {fnv_hash64(i) for i in range(1000)}
        assert len(hashes) == 1000

    def test_64bit_range(self):
        assert 0 <= fnv_hash64(123456789) < 2 ** 64


class TestUniform:
    def test_in_range(self):
        gen = UniformGenerator(100, random.Random(1))
        assert all(0 <= s < 100 for s in sample(gen))

    def test_roughly_flat(self):
        gen = UniformGenerator(10, random.Random(1))
        counts = [0] * 10
        for s in sample(gen, 10000):
            counts[s] += 1
        assert max(counts) < 2 * min(counts)


class TestZipfian:
    def test_in_range(self):
        gen = ZipfianGenerator(1000, random.Random(1))
        assert all(0 <= s < 1000 for s in sample(gen))

    def test_low_indices_most_popular(self):
        gen = ZipfianGenerator(1000, random.Random(1))
        samples = sample(gen, 20000)
        assert samples.count(0) > samples.count(100) > 0

    def test_scrambled_spreads_hotness(self):
        gen = ScrambledZipfianGenerator(1000, random.Random(1))
        samples = sample(gen, 20000)
        counts = {}
        for s in samples:
            counts[s] = counts.get(s, 0) + 1
        hottest = max(counts, key=counts.get)
        # Scrambling moves the hottest item away from index 0 (w.h.p.)
        assert 0 <= hottest < 1000

    def test_skew_survives_scrambling(self):
        gen = ScrambledZipfianGenerator(1000, random.Random(1))
        samples = sample(gen, 20000)
        counts = sorted(
            (samples.count(i) for i in set(samples)), reverse=True
        )
        top10 = sum(counts[:10]) / len(samples)
        assert top10 > 0.2


class TestLatest:
    def test_prefers_recent(self):
        gen = LatestGenerator(1000, random.Random(1))
        samples = sample(gen, 10000)
        recent = sum(1 for s in samples if s > 900)
        assert recent > len(samples) * 0.3

    def test_advance_shifts_frontier(self):
        gen = LatestGenerator(100, random.Random(1))
        gen.advance()
        assert gen.last_index == 100
        samples = sample(gen, 5000)
        assert max(samples) == 100


class TestHotspot:
    def test_hot_set_dominates(self):
        gen = HotspotGenerator(1000, random.Random(1))
        samples = sample(gen, 10000)
        hot = sum(1 for s in samples if s < 200)
        assert hot > len(samples) * 0.7

    def test_cold_set_reached(self):
        gen = HotspotGenerator(1000, random.Random(1))
        samples = sample(gen, 10000)
        assert any(s >= 200 for s in samples)


class TestSequential:
    def test_cycles_in_order(self):
        gen = SequentialGenerator(5, random.Random(1))
        assert sample(gen, 12) == [0, 1, 2, 3, 4, 0, 1, 2, 3, 4, 0, 1]


class TestExponential:
    def test_in_range(self):
        gen = ExponentialGenerator(1000, random.Random(1))
        assert all(0 <= s < 1000 for s in sample(gen))

    def test_mass_in_front(self):
        gen = ExponentialGenerator(1000, random.Random(1))
        samples = sample(gen, 10000)
        front = sum(1 for s in samples if s < 857)
        assert front > len(samples) * 0.9


class TestMakeGenerator:
    @pytest.mark.parametrize("name", sorted(DISTRIBUTIONS))
    def test_all_constructible(self, name):
        gen = make_generator(name, 100, random.Random(1))
        assert 0 <= gen.next_index() < 101  # latest may advance past count

    def test_unknown(self):
        with pytest.raises(ValueError):
            make_generator("pareto", 100)

    def test_invalid_count(self):
        with pytest.raises(ValueError):
            UniformGenerator(0, random.Random(1))
