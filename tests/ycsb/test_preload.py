"""Tests for YCSB's load phase and the evaluator setup hook."""

from repro.core import PerformanceEvaluator
from repro.kvstores import create_connector
from repro.ycsb import YCSBConfig, YCSBWorkload


class TestPreload:
    def test_loads_all_records(self):
        workload = YCSBWorkload(YCSBConfig(record_count=50))
        connector = create_connector("memory")
        assert workload.preload(connector) == 50
        assert len(connector.store) == 50

    def test_reads_hit_after_preload(self):
        workload = YCSBWorkload(
            YCSBConfig(record_count=20, operation_count=200,
                       read_proportion=1.0, update_proportion=0.0)
        )
        connector = create_connector("memory")
        workload.preload(connector)
        trace = workload.generate()
        for access in trace:
            assert connector.get(access.key) is not None

    def test_values_match_configured_size(self):
        workload = YCSBWorkload(YCSBConfig(record_count=5, value_size=99))
        connector = create_connector("memory")
        workload.preload(connector)
        assert len(connector.get(workload.key_for(0))) == 99


class TestEvaluatorSetupHook:
    def test_setup_runs_per_store(self):
        workload = YCSBWorkload(
            YCSBConfig(record_count=10, operation_count=100)
        )
        trace = workload.generate()
        seen = []

        def setup(connector):
            seen.append(connector.name)
            workload.preload(connector)

        rows = PerformanceEvaluator(stores=("memory", "faster")).evaluate(
            "w", trace, setup=setup
        )
        assert seen == ["memory", "faster"]
        assert len(rows) == 2
