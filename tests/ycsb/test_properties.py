"""Tests for YCSB .properties file parsing."""

import pytest

from repro.trace import OpType
from repro.ycsb.properties import (
    CORE_WORKLOAD_FILES,
    config_from_properties,
    load_workload_file,
    parse_properties,
)


class TestParseProperties:
    def test_basic(self):
        out = parse_properties("a=1\nb = two\n")
        assert out == {"a": "1", "b": "two"}

    def test_comments_and_blanks(self):
        out = parse_properties("# comment\n! also\n\nx=1\n")
        assert out == {"x": "1"}

    def test_last_key_wins(self):
        assert parse_properties("a=1\na=2\n")["a"] == "2"

    def test_keys_lowercased(self):
        assert parse_properties("ReadProportion=0.5")["readproportion"] == "0.5"

    def test_malformed(self):
        with pytest.raises(ValueError, match="malformed"):
            parse_properties("not a property")

    def test_value_may_contain_equals(self):
        assert parse_properties("a=x=y")["a"] == "x=y"


class TestConfigFromProperties:
    def test_defaults(self):
        config = config_from_properties({"readproportion": "1.0"})
        assert config.record_count == 1000
        assert config.value_size == 1000  # 10 fields x 100 bytes

    def test_field_sizing(self):
        config = config_from_properties(
            {"readproportion": "1.0", "fieldcount": "2", "fieldlength": "8"}
        )
        assert config.value_size == 16

    def test_invalid_proportions_rejected(self):
        with pytest.raises(ValueError):
            config_from_properties(
                {"readproportion": "0.9", "updateproportion": "0.9"}
            )

    def test_seed_override(self):
        config = config_from_properties({"readproportion": "1.0"}, seed=7)
        assert config.seed == 7


class TestWorkloadFiles:
    @pytest.mark.parametrize("name", sorted(CORE_WORKLOAD_FILES))
    def test_shipped_files_parse(self, name, tmp_path):
        path = tmp_path / name
        path.write_text(
            CORE_WORKLOAD_FILES[name]
            + "recordcount=100\noperationcount=1000\n"
        )
        workload = load_workload_file(str(path))
        trace = workload.generate()
        assert len(trace) >= 1000

    def test_workloada_mix(self, tmp_path):
        path = tmp_path / "workloada"
        path.write_text(
            CORE_WORKLOAD_FILES["workloada"]
            + "recordcount=100\noperationcount=4000\n"
        )
        trace = load_workload_file(str(path)).generate()
        fractions = trace.op_fractions()
        assert abs(fractions[OpType.GET] - 0.5) < 0.05
        assert abs(fractions[OpType.PUT] - 0.5) < 0.05
