"""Tests for window assigners and state-key encoding."""

import pytest

from repro.streaming.windows import (
    SlidingWindows,
    TumblingWindows,
    join_state_key,
    window_state_key,
)


class TestStateKeys:
    def test_window_key_distinct_per_window(self):
        assert window_state_key(b"k", 0) != window_state_key(b"k", 5000)

    def test_window_key_distinct_per_event_key(self):
        assert window_state_key(b"a", 0) != window_state_key(b"b", 0)

    def test_window_key_sort_order_follows_time(self):
        assert window_state_key(b"k", 1000) < window_state_key(b"k", 2000)

    def test_join_key_distinct_per_side(self):
        assert join_state_key(0, b"k", 0) != join_state_key(1, b"k", 0)


class TestTumblingWindows:
    def test_assign_single_window(self):
        assert TumblingWindows(5000).assign(12_345) == [10_000]

    def test_boundary_belongs_to_new_window(self):
        assert TumblingWindows(5000).assign(10_000) == [10_000]

    def test_end_of(self):
        assert TumblingWindows(5000).end_of(10_000) == 15_000

    def test_invalid_length(self):
        with pytest.raises(ValueError):
            TumblingWindows(0)


class TestSlidingWindows:
    def test_assign_count_equals_length_over_slide(self):
        windows = SlidingWindows(5000, 1000)
        assert len(windows.assign(12_345)) == 5
        assert windows.windows_per_event == 5

    def test_assigned_windows_contain_timestamp(self):
        windows = SlidingWindows(5000, 1000)
        for start in windows.assign(12_345):
            assert start <= 12_345 < start + 5000

    def test_slide_equal_to_length_is_tumbling(self):
        windows = SlidingWindows(5000, 5000)
        assert windows.assign(12_345) == [10_000]

    def test_non_divisible_slide(self):
        windows = SlidingWindows(5000, 3000)
        starts = windows.assign(7000)
        assert starts == [6000, 3000]

    def test_slide_larger_than_length_rejected(self):
        with pytest.raises(ValueError):
            SlidingWindows(1000, 5000)

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            SlidingWindows(0, 0)
