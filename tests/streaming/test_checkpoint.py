"""Tests for checkpointing and crash recovery (exactly-once state)."""

import pytest

from repro.datasets import BorgConfig, generate_borg
from repro.streaming import (
    ContinuousAggregation,
    RuntimeConfig,
    SessionWindowOperator,
    TumblingWindows,
    WindowOperator,
    run_operator,
    run_with_checkpoints,
)

RCFG = RuntimeConfig(interleave="time")


@pytest.fixture(scope="module")
def small_tasks():
    tasks, _ = generate_borg(BorgConfig(target_events=3000, seed=4))
    return tasks


def reference_run(factory, streams):
    operator = factory()
    run_operator(operator, streams, RCFG)
    return operator


class TestCheckpointRestore:
    def test_checkpoint_captures_backend(self):
        operator = ContinuousAggregation()
        operator.process(_ev(b"k", 1))
        snapshot = operator.checkpoint()
        operator.process(_ev(b"k", 2))
        operator.restore(snapshot)
        assert operator.backend.peek(b"k") == 1

    def test_restore_resets_outputs(self):
        operator = ContinuousAggregation()
        operator.process(_ev(b"k", 1))
        snapshot = operator.checkpoint()
        operator.process(_ev(b"k", 2))
        operator.restore(snapshot)
        assert len(operator.outputs) == 1

    def test_checkpoint_is_deep(self):
        """Mutations after the checkpoint must not leak into it."""
        operator = WindowOperator(TumblingWindows(1000), holistic=True)
        operator.process(_ev(b"k", 1))
        snapshot = operator.checkpoint()
        operator.process(_ev(b"k", 2))  # appends into the same bucket
        operator.restore(snapshot)
        bucket = operator.backend.peek(next(iter(operator.backend.live_keys())))
        assert len(bucket) == 1


def _ev(key, t):
    from repro.events import Event

    return Event(key, t)


class TestRunWithCheckpoints:
    def test_no_crash_matches_plain_run(self, small_tasks):
        plain = reference_run(
            lambda: WindowOperator(TumblingWindows(5000)), [small_tasks]
        )
        checkpointed = WindowOperator(TumblingWindows(5000))
        log = run_with_checkpoints(
            checkpointed, [small_tasks], RCFG, checkpoint_every=400
        )
        assert log.checkpoints_taken > 0
        assert log.crashes_injected == 0
        assert checkpointed.outputs == plain.outputs
        assert checkpointed.backend._data == plain.backend._data

    @pytest.mark.parametrize(
        "factory",
        [
            lambda: ContinuousAggregation(),
            lambda: WindowOperator(TumblingWindows(5000)),
            lambda: WindowOperator(TumblingWindows(5000), holistic=True),
            lambda: SessionWindowOperator(120_000),
        ],
        ids=["aggregation", "window-incr", "window-hol", "session"],
    )
    def test_crash_recovery_is_exactly_once(self, factory, small_tasks):
        """A crashed-and-recovered run must produce identical outputs
        and final state to an uninterrupted run."""
        plain = reference_run(factory, [small_tasks])
        recovered = factory()
        log = run_with_checkpoints(
            recovered,
            [small_tasks],
            RCFG,
            checkpoint_every=300,
            crash_at={450, 1200, 2500},
        )
        assert log.crashes_injected == 3
        assert log.events_replayed > 0
        assert recovered.outputs == plain.outputs
        assert recovered.backend._data == plain.backend._data

    def test_crash_before_first_checkpoint(self, small_tasks):
        plain = reference_run(lambda: ContinuousAggregation(), [small_tasks])
        recovered = ContinuousAggregation()
        log = run_with_checkpoints(
            recovered, [small_tasks], RCFG,
            checkpoint_every=1000, crash_at={50},
        )
        assert log.crashes_injected == 1
        assert recovered.outputs == plain.outputs

    def test_replay_cost_tracked(self, small_tasks):
        recovered = ContinuousAggregation()
        log = run_with_checkpoints(
            recovered, [small_tasks], RCFG,
            checkpoint_every=100, crash_at={150},
        )
        # Crash at 150 with last checkpoint at 100: 50 events replayed.
        assert log.events_replayed == 50

    def test_invalid_interval(self, small_tasks):
        with pytest.raises(ValueError):
            run_with_checkpoints(
                ContinuousAggregation(), [small_tasks], RCFG, checkpoint_every=0
            )
