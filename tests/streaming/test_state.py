"""Tests for the instrumented state backend."""

from repro.streaming.state import StateBackend, approximate_size
from repro.trace import OpType


class TestApproximateSize:
    def test_none(self):
        assert approximate_size(None) == 0

    def test_bytes_and_str(self):
        assert approximate_size(b"abc") == 3
        assert approximate_size("abcd") == 4

    def test_numbers(self):
        assert approximate_size(7) == 8
        assert approximate_size(1.5) == 8

    def test_list(self):
        assert approximate_size([1, 2]) == 20  # 2*8 + 4

    def test_dict(self):
        assert approximate_size({b"k": 1}) == 17  # 1 + 8 + 8

    def test_other_objects(self):
        assert approximate_size(object()) == 16


class TestStateBackend:
    def test_put_get(self):
        backend = StateBackend()
        backend.put(b"k", 42)
        assert backend.get(b"k") == 42

    def test_get_missing(self):
        assert StateBackend().get(b"nope") is None

    def test_merge_appends(self):
        backend = StateBackend()
        backend.merge(b"k", "a")
        backend.merge(b"k", "b")
        assert backend.peek(b"k") == ["a", "b"]

    def test_delete(self):
        backend = StateBackend()
        backend.put(b"k", 1)
        backend.delete(b"k")
        assert backend.peek(b"k") is None

    def test_every_access_recorded(self):
        backend = StateBackend()
        backend.get(b"a")
        backend.put(b"a", 1)
        backend.merge(b"a", 2)
        backend.delete(b"a")
        ops = [a.op for a in backend.trace]
        assert ops == [OpType.GET, OpType.PUT, OpType.MERGE, OpType.DELETE]

    def test_access_timestamps_follow_current_time(self):
        backend = StateBackend()
        backend.current_time = 123
        backend.get(b"a")
        assert backend.trace[0].timestamp == 123

    def test_value_sizes_recorded(self):
        backend = StateBackend()
        backend.put(b"a", b"12345")
        assert backend.trace[0].value_size == 5

    def test_peek_not_traced(self):
        backend = StateBackend()
        backend.peek(b"a")
        assert len(backend.trace) == 0

    def test_len_and_live_keys(self):
        backend = StateBackend()
        backend.put(b"a", 1)
        backend.put(b"b", 2)
        backend.delete(b"a")
        assert len(backend) == 1
        assert set(backend.live_keys()) == {b"b"}
