"""Tests for the task runtime: merging, disorder, watermark injection."""

from repro.events import Event
from repro.streaming import (
    ContinuousAggregation,
    RuntimeConfig,
    TumblingWindows,
    WindowOperator,
    apply_disorder,
    merged_stream,
    run_operator,
)
from repro.trace import OpType


def ev(key, t):
    return Event(key, t)


class TestMergedStream:
    def test_time_interleave_orders_by_timestamp(self):
        a = [ev(b"a", 1), ev(b"a", 5)]
        b = [ev(b"b", 3)]
        merged = list(merged_stream([a, b], "time"))
        assert [e.timestamp for e, _ in merged] == [1, 3, 5]
        assert [i for _, i in merged] == [0, 1, 0]

    def test_round_robin_alternates(self):
        a = [ev(b"a", 1), ev(b"a", 2), ev(b"a", 3)]
        b = [ev(b"b", 10)]
        merged = list(merged_stream([a, b], "round_robin"))
        assert [i for _, i in merged] == [0, 1, 0, 0]

    def test_unknown_mode(self):
        import pytest

        with pytest.raises(ValueError):
            list(merged_stream([[]], "random"))


class TestApplyDisorder:
    def test_zero_fraction_is_identity(self):
        pairs = [(ev(b"k", t), 0) for t in range(10)]
        assert apply_disorder(pairs, 0.0, 100, seed=1) is pairs

    def test_timestamps_unchanged(self):
        pairs = [(ev(b"k", t * 10), 0) for t in range(100)]
        shuffled = apply_disorder(pairs, 0.5, 50, seed=1)
        assert sorted(e.timestamp for e, _ in shuffled) == [
            t * 10 for t in range(100)
        ]

    def test_creates_out_of_order_deliveries(self):
        pairs = [(ev(b"k", t * 10) , 0) for t in range(200)]
        shuffled = apply_disorder(pairs, 0.5, 100, seed=1)
        times = [e.timestamp for e, _ in shuffled]
        assert any(a > b for a, b in zip(times, times[1:]))


class TestRunOperator:
    def test_aggregation_trace_length(self):
        events = [ev(b"k", t) for t in range(1, 51)]
        trace = run_operator(ContinuousAggregation(), [events])
        assert len(trace) == 100  # get+put per event

    def test_watermarks_fire_windows(self):
        events = [ev(b"k", t * 100) for t in range(1, 300)]
        operator = WindowOperator(TumblingWindows(5000))
        run_operator(operator, [events], RuntimeConfig(watermark_frequency=50))
        assert len(operator.outputs) > 0

    def test_closing_watermark_fires_complete_windows(self):
        events = [ev(b"k", 100), ev(b"k", 6000)]
        operator = WindowOperator(TumblingWindows(5000))
        run_operator(operator, [events], RuntimeConfig(watermark_frequency=1000))
        # the first window [0,5000) fires via the closing watermark
        assert len(operator.outputs) == 1

    def test_input_count_mismatch(self):
        import pytest

        with pytest.raises(ValueError, match="input"):
            run_operator(ContinuousAggregation(), [[], []])

    def test_disorder_produces_late_drops(self):
        events = [ev(b"k", t * 10) for t in range(1, 2001)]
        operator = WindowOperator(TumblingWindows(1000))
        run_operator(
            operator,
            [events],
            RuntimeConfig(
                watermark_frequency=20,
                out_of_order_fraction=0.3,
                max_delay_ms=5000,
            ),
        )
        assert operator.dropped_late_events > 0

    def test_empty_stream(self):
        trace = run_operator(ContinuousAggregation(), [[]])
        assert len(trace) == 0


class TestDataflowJob:
    def test_parallel_tasks_partition_keys(self):
        from repro.streaming import Job, LogicalOperator

        events = [ev(f"k{i % 10}".encode(), i) for i in range(1, 500)]
        job = Job(
            LogicalOperator(
                "agg", lambda: ContinuousAggregation(), parallelism=4
            )
        )
        traces = job.run(events)
        assert len(traces) == 4
        assert sum(len(t) for t in traces) == 2 * len(events)
        # single-writer isolation: task state key sets are disjoint
        key_sets = [set(t.key_sequence()) for t in traces]
        for i in range(4):
            for j in range(i + 1, 4):
                assert not key_sets[i] & key_sets[j]

    def test_collected_outputs(self):
        from repro.streaming import Job, LogicalOperator

        events = [ev(b"k", t) for t in range(1, 20)]
        job = Job(LogicalOperator("agg", lambda: ContinuousAggregation()))
        job.run(events)
        assert len(job.collected_outputs()) == 19
