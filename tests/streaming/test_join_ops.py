"""Tests for the join operators."""

from repro.events import Event, Watermark
from repro.streaming import (
    ContinuousJoinOperator,
    IntervalJoinOperator,
    SlidingWindows,
    TumblingWindows,
    WindowJoinOperator,
)
from repro.trace import OpType


def ev(key, t, size=8, kind=""):
    return Event(key, t, size, kind)


class TestWindowJoin:
    def test_matching_pairs_emitted_on_fire(self):
        op = WindowJoinOperator(TumblingWindows(5000))
        op.process(ev(b"k", 100), 0)
        op.process(ev(b"k", 200), 1)
        op.on_watermark(Watermark(5000))
        assert len(op.outputs) == 1
        key, start, a, b = op.outputs[0]
        assert (a.timestamp, b.timestamp) == (100, 200)

    def test_no_match_across_windows(self):
        op = WindowJoinOperator(TumblingWindows(5000))
        op.process(ev(b"k", 100), 0)
        op.process(ev(b"k", 6000), 1)
        op.on_watermark(Watermark(20_000))
        assert op.outputs == []

    def test_no_match_across_keys(self):
        op = WindowJoinOperator(TumblingWindows(5000))
        op.process(ev(b"a", 100), 0)
        op.process(ev(b"b", 200), 1)
        op.on_watermark(Watermark(5000))
        assert op.outputs == []

    def test_cross_product_within_window(self):
        op = WindowJoinOperator(TumblingWindows(5000))
        for t in (1, 2):
            op.process(ev(b"k", t), 0)
        for t in (3, 4, 5):
            op.process(ev(b"k", t), 1)
        op.on_watermark(Watermark(5000))
        assert len(op.outputs) == 6

    def test_fire_reads_and_deletes_both_sides(self):
        op = WindowJoinOperator(TumblingWindows(5000))
        op.process(ev(b"k", 100), 0)  # only the left side gets data
        op.on_watermark(Watermark(5000))
        counts = op.trace.op_counts()
        assert counts[OpType.GET] == 2
        assert counts[OpType.DELETE] == 2

    def test_events_buffered_with_merge(self):
        op = WindowJoinOperator(SlidingWindows(5000, 1000))
        op.process(ev(b"k", 4500), 0)
        assert op.trace.op_counts()[OpType.MERGE] == 5


class TestIntervalJoin:
    def make(self):
        return IntervalJoinOperator(lower_ms=1000, upper_ms=3000, bucket_ms=1000)

    def test_match_within_interval(self):
        op = self.make()
        op.process(ev(b"k", 1000), 0)
        op.process(ev(b"k", 3000), 1)  # 1000 + [1000,3000] covers 3000
        assert len(op.outputs) == 1

    def test_no_match_outside_interval(self):
        op = self.make()
        op.process(ev(b"k", 1000), 0)
        op.process(ev(b"k", 1500), 1)  # before 1000+lower
        op.process(ev(b"k", 9000), 1)  # after 1000+upper
        assert op.outputs == []

    def test_symmetric_matching(self):
        op = self.make()
        op.process(ev(b"k", 3000), 1)  # right arrives first
        op.process(ev(b"k", 1000), 0)  # left probes backwards
        assert len(op.outputs) == 1

    def test_buffer_appends_are_get_put(self):
        op = self.make()
        op.process(ev(b"k", 1000), 0)
        assert [a.op for a in op.trace] == [OpType.GET, OpType.PUT]

    def test_watermark_expires_buckets(self):
        op = self.make()
        op.process(ev(b"k", 1000), 0)
        assert op.live_buckets == 1
        op.on_watermark(Watermark(10_000))
        assert op.live_buckets == 0
        assert op.trace.op_counts()[OpType.DELETE] == 1

    def test_buckets_not_expired_early(self):
        op = self.make()
        op.process(ev(b"k", 1000), 0)
        op.on_watermark(Watermark(2000))
        assert op.live_buckets == 1

    def test_invalid_bounds(self):
        import pytest

        with pytest.raises(ValueError):
            IntervalJoinOperator(lower_ms=5, upper_ms=1)


class TestContinuousJoin:
    def make(self):
        return ContinuousJoinOperator(invalidate_kinds={"end"})

    def test_events_match_across_sides(self):
        op = self.make()
        op.process(ev(b"k", 1), 0)
        op.process(ev(b"k", 2), 1)
        assert len(op.outputs) == 1

    def test_state_accumulates_until_invalidation(self):
        op = self.make()
        op.process(ev(b"k", 1), 0)
        op.process(ev(b"k", 2), 0)
        op.process(ev(b"k", 3), 1)
        assert len(op.outputs) == 2  # right event matches both left events

    def test_invalidation_cleans_both_sides(self):
        op = self.make()
        op.process(ev(b"k", 1), 0)
        op.process(ev(b"k", 2), 1)
        op.process(ev(b"k", 3, kind="end"), 0)
        deletes = op.trace.op_counts()[OpType.DELETE]
        assert deletes == 2

    def test_no_matches_after_invalidation(self):
        op = self.make()
        op.process(ev(b"k", 1), 0)
        op.process(ev(b"k", 2, kind="end"), 0)
        op.process(ev(b"k", 3), 1)
        assert op.outputs[-1][1] is None or len(op.outputs) == 1

    def test_first_touch_put_then_merges(self):
        op = self.make()
        op.process(ev(b"k", 1), 0)
        op.process(ev(b"k", 2), 0)
        counts = op.trace.op_counts()
        assert counts[OpType.PUT] == 1
        assert counts[OpType.MERGE] == 1
