"""Tests for the session window operator."""

from repro.events import Event, Watermark
from repro.streaming import SessionWindowOperator
from repro.trace import OpType


def ev(key, t, size=8):
    return Event(key, t, size)


class TestSessionLifecycle:
    def test_new_session_per_quiet_key(self):
        op = SessionWindowOperator(gap_ms=1000)
        op.process(ev(b"k", 100))
        op.process(ev(b"k", 5000))  # beyond the gap: new session
        assert op.active_sessions == 2

    def test_events_within_gap_extend_session(self):
        op = SessionWindowOperator(gap_ms=1000)
        op.process(ev(b"k", 100))
        op.process(ev(b"k", 800))
        assert op.active_sessions == 1

    def test_fire_after_gap_of_inactivity(self):
        op = SessionWindowOperator(gap_ms=1000)
        op.process(ev(b"k", 100))
        op.process(ev(b"k", 500))
        op.on_watermark(Watermark(1500))
        assert len(op.outputs) == 1
        key, start, end, count = op.outputs[0]
        assert (key, start, end, count) == (b"k", 100, 1500, 2)

    def test_not_fired_while_active(self):
        op = SessionWindowOperator(gap_ms=1000)
        op.process(ev(b"k", 100))
        op.on_watermark(Watermark(1000))
        assert op.outputs == []

    def test_invalid_gap(self):
        import pytest

        with pytest.raises(ValueError):
            SessionWindowOperator(gap_ms=0)


class TestSessionMerging:
    def test_bridging_event_merges_sessions(self):
        op = SessionWindowOperator(gap_ms=1000, allowed_lateness=10_000)
        op.process(ev(b"k", 0))
        op.process(ev(b"k", 1800))
        assert op.active_sessions == 2
        # An out-of-order event at 900 spans [900,1900): it overlaps
        # both [0,1000) and [1800,2800), merging them.
        op.process(ev(b"k", 900))
        assert op.active_sessions == 1
        assert op.session_merges == 1

    def test_merged_session_spans_both(self):
        op = SessionWindowOperator(gap_ms=1000, allowed_lateness=10_000)
        op.process(ev(b"k", 0))
        op.process(ev(b"k", 1800))
        op.process(ev(b"k", 900))
        op.on_watermark(Watermark(4000))
        key, start, end, count = op.outputs[0]
        assert start == 0
        assert end == 2800
        assert count == 3

    def test_merge_emits_absorbed_read_and_delete(self):
        op = SessionWindowOperator(gap_ms=1000, allowed_lateness=10_000)
        op.process(ev(b"k", 0))
        op.process(ev(b"k", 1800))
        trace_before = len(op.trace)
        op.process(ev(b"k", 900))
        new_ops = [a.op for a in op.trace][trace_before:]
        assert OpType.DELETE in new_ops
        assert OpType.GET in new_ops

    def test_backward_extension_rekeys_state(self):
        op = SessionWindowOperator(gap_ms=1000, allowed_lateness=10_000)
        op.process(ev(b"k", 1000))
        # An earlier event extends the session start backwards.
        op.process(ev(b"k", 500))
        op.on_watermark(Watermark(3000))
        key, start, end, count = op.outputs[0]
        assert start == 500
        assert count == 2


class TestSessionComposition:
    def test_incremental_mix_has_index_reads(self):
        op = SessionWindowOperator(gap_ms=1000)
        for t in (0, 100, 200):
            op.process(ev(b"k", t))
        counts = op.trace.op_counts()
        # per event: index get + state get + state put
        assert counts[OpType.GET] == 6
        assert counts[OpType.PUT] == 3

    def test_holistic_uses_merge(self):
        op = SessionWindowOperator(gap_ms=1000, holistic=True)
        op.process(ev(b"k", 0))
        counts = op.trace.op_counts()
        assert counts[OpType.MERGE] == 1
        assert counts[OpType.PUT] == 0

    def test_index_deleted_when_key_goes_quiet(self):
        op = SessionWindowOperator(gap_ms=1000)
        op.process(ev(b"k", 0))
        op.on_watermark(Watermark(2000))
        deletes = [a for a in op.trace if a.op is OpType.DELETE]
        assert len(deletes) == 2  # session state + window-set index

    def test_holistic_fire_computes_function(self):
        op = SessionWindowOperator(gap_ms=1000, holistic=True)
        for size in (1, 5, 9):
            op.process(ev(b"k", 100, size))
        op.on_watermark(Watermark(2000))
        assert op.outputs[0][3] == 5
