"""Data-parallel jobs with two-input operators (joins)."""

from repro.events import Event
from repro.streaming import (
    ContinuousJoinOperator,
    Job,
    LogicalOperator,
    TumblingWindows,
    WindowJoinOperator,
    hash_partition,
)


def events_for(keys, base_time, kind=""):
    return [Event(key, base_time + i, kind=kind) for i, key in enumerate(keys)]


class TestParallelJoins:
    def test_join_tasks_see_consistent_partitions(self):
        """Both inputs of a join must partition by the same key hash,
        or matching pairs would land on different tasks."""
        keys = [f"k{i}".encode() for i in range(40)]
        left = events_for(keys, 0)
        right = events_for(keys, 10)
        job = Job(
            LogicalOperator(
                "join",
                lambda: WindowJoinOperator(TumblingWindows(10_000)),
                parallelism=4,
            )
        )
        job.run(left, right)
        # The stream ends inside the window; flush every task so the
        # window fires (a draining job would do the same).
        from repro.events import Watermark

        for task in job.tasks:
            task.on_watermark(Watermark(10_000))
        # Every key matched exactly once across all tasks.
        outputs = job.collected_outputs()
        matched_keys = {out[0] for out in outputs}
        assert matched_keys == set(keys)

    def test_continuous_join_parallel(self):
        keys = [f"k{i}".encode() for i in range(30)]
        left = events_for(keys, 0)
        ends = events_for(keys, 100, kind="end")
        right = events_for(keys, 50)
        job = Job(
            LogicalOperator(
                "cjoin",
                lambda: ContinuousJoinOperator({"end"}),
                parallelism=3,
            )
        )
        job.run(left + ends, right)
        outputs = [o for o in job.collected_outputs() if o[1] is not None]
        assert len(outputs) >= len(keys)  # every right event matched

    def test_partitioning_is_deterministic(self):
        for key in (b"a", b"b", b"zzz"):
            assert hash_partition(key, 5) == hash_partition(key, 5)
            assert 0 <= hash_partition(key, 5) < 5
