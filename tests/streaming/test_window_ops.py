"""Tests for tumbling/sliding window operators."""

from repro.events import Event, Watermark
from repro.streaming import (
    SlidingWindows,
    TumblingWindows,
    WindowOperator,
)
from repro.trace import OpType


def ev(key, t, size=8):
    return Event(key, t, size)


def ops(operator):
    return [a.op for a in operator.trace]


class TestIncrementalWindows:
    def test_event_triggers_get_put(self):
        op = WindowOperator(TumblingWindows(5000))
        op.process(ev(b"k", 100))
        assert ops(op) == [OpType.GET, OpType.PUT]

    def test_fire_triggers_final_get_delete(self):
        op = WindowOperator(TumblingWindows(5000))
        op.process(ev(b"k", 100))
        op.on_watermark(Watermark(5000))
        assert ops(op) == [OpType.GET, OpType.PUT, OpType.GET, OpType.DELETE]

    def test_count_aggregate_result(self):
        op = WindowOperator(TumblingWindows(5000))
        for t in (100, 200, 300):
            op.process(ev(b"k", t))
        op.on_watermark(Watermark(5000))
        assert op.outputs == [(b"k", 0, 5000, 3)]

    def test_window_not_fired_before_end(self):
        op = WindowOperator(TumblingWindows(5000))
        op.process(ev(b"k", 100))
        op.on_watermark(Watermark(4999))
        assert op.outputs == []

    def test_separate_keys_separate_state(self):
        op = WindowOperator(TumblingWindows(5000))
        op.process(ev(b"a", 100))
        op.process(ev(b"b", 200))
        op.on_watermark(Watermark(5000))
        assert len(op.outputs) == 2

    def test_sliding_assigns_multiple_windows(self):
        op = WindowOperator(SlidingWindows(5000, 1000))
        op.process(ev(b"k", 4500))
        gets = sum(1 for o in ops(op) if o is OpType.GET)
        assert gets == 5  # one get-put pair per assigned window

    def test_late_event_dropped(self):
        op = WindowOperator(TumblingWindows(5000))
        op.on_watermark(Watermark(10_000))
        op.process(ev(b"k", 9_000))
        assert op.dropped_late_events == 1
        assert len(op.trace) == 0

    def test_allowed_lateness_admits_event(self):
        op = WindowOperator(TumblingWindows(5000), allowed_lateness=5_000)
        op.on_watermark(Watermark(10_000))
        op.process(ev(b"k", 11_000))
        assert op.dropped_late_events == 0
        assert len(op.trace) == 2

    def test_event_for_already_fired_window_skipped(self):
        op = WindowOperator(TumblingWindows(5000), allowed_lateness=10_000)
        op.on_watermark(Watermark(6_000))
        # Within lateness, but its window [0, 5000) already fired.
        op.process(ev(b"k", 4_000))
        assert len(op.trace) == 0


class TestHolisticWindows:
    def test_event_triggers_single_merge(self):
        op = WindowOperator(TumblingWindows(5000), holistic=True)
        op.process(ev(b"k", 100))
        assert ops(op) == [OpType.MERGE]

    def test_fire_computes_holistic_function(self):
        op = WindowOperator(TumblingWindows(5000), holistic=True)
        for size in (2, 4, 9):
            op.process(ev(b"k", 100, size))
        op.on_watermark(Watermark(5000))
        key, start, end, result = op.outputs[0]
        assert result == 4  # median of sizes

    def test_fire_on_empty_contents_is_safe(self):
        op = WindowOperator(TumblingWindows(5000), holistic=True)
        op.process(ev(b"k", 100))
        op.on_watermark(Watermark(5000))
        assert len(op.outputs) == 1


class TestWatermarkSemantics:
    def test_stale_watermark_ignored(self):
        op = WindowOperator(TumblingWindows(5000))
        op.process(ev(b"k", 100))
        op.on_watermark(Watermark(6000))
        before = len(op.trace)
        op.on_watermark(Watermark(5000))
        assert len(op.trace) == before

    def test_one_watermark_fires_many_windows(self):
        op = WindowOperator(TumblingWindows(1000))
        for t in (100, 1100, 2100):
            op.process(ev(b"k", t))
        op.on_watermark(Watermark(10_000))
        assert len(op.outputs) == 3

    def test_active_windows_counter(self):
        op = WindowOperator(TumblingWindows(5000))
        op.process(ev(b"a", 100))
        op.process(ev(b"b", 100))
        assert op.active_windows == 2
        op.on_watermark(Watermark(5000))
        assert op.active_windows == 0
