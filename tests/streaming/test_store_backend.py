"""Tests for running engine operators over a real KV store.

The "full system" baseline: identical operator logic, state persisted
in an actual store.  Outputs and traces must match the dict-backed runs
exactly -- which also cross-validates the stores' merge semantics
against the engine's expectations.
"""

import pytest

from repro.kvstores import create_connector
from repro.streaming import (
    ContinuousAggregation,
    RuntimeConfig,
    SessionWindowOperator,
    SlidingWindows,
    TumblingWindows,
    WindowOperator,
    run_operator,
)
from repro.streaming.store_backend import (
    StoreStateBackend,
    decode_frames,
    encode_frame,
)

RCFG = RuntimeConfig(interleave="time")


class TestFraming:
    def test_roundtrip_scalar(self):
        assert decode_frames(encode_frame(42)) == [42]

    def test_roundtrip_event(self):
        from repro.events import Event

        event = Event(b"k", 7, 16, "pickup")
        assert decode_frames(encode_frame(event)) == [event]

    def test_concatenated_frames(self):
        blob = encode_frame("a") + encode_frame("b") + encode_frame(3)
        assert decode_frames(blob) == ["a", "b", 3]

    def test_empty(self):
        assert decode_frames(b"") == []


class TestBackendSemantics:
    def make(self, store="rocksdb"):
        return StoreStateBackend(create_connector(store))

    def test_put_get_scalar(self):
        backend = self.make()
        backend.put(b"k", 5)
        assert backend.get(b"k") == 5

    def test_get_missing(self):
        assert self.make().get(b"nope") is None

    def test_merge_builds_bucket(self):
        backend = self.make()
        backend.merge(b"k", "a")
        backend.merge(b"k", "b")
        assert backend.get(b"k") == ["a", "b"]

    def test_merge_onto_put_promotes(self):
        backend = self.make()
        backend.put(b"k", 1)
        backend.merge(b"k", 2)
        assert backend.get(b"k") == [1, 2]

    def test_put_resets_bucket(self):
        backend = self.make()
        backend.merge(b"k", "a")
        backend.put(b"k", 9)
        assert backend.get(b"k") == 9

    def test_delete(self):
        backend = self.make()
        backend.put(b"k", 1)
        backend.delete(b"k")
        assert backend.get(b"k") is None

    def test_accesses_traced(self):
        backend = self.make()
        backend.put(b"k", 1)
        backend.get(b"k")
        ops = [a.op.value for a in backend.trace]
        assert ops == ["put", "get"]


@pytest.mark.parametrize("store_name", ["rocksdb", "faster", "berkeleydb"])
class TestFullSystemParity:
    """Engine-over-store must equal engine-over-dict exactly."""

    def run_both(self, factory, stream, store_name):
        dict_operator = factory(None)
        run_operator(dict_operator, [stream], RCFG)
        backend = StoreStateBackend(create_connector(store_name))
        store_operator = factory(backend)
        run_operator(store_operator, [stream], RCFG)
        return dict_operator, store_operator

    def test_aggregation(self, borg_tasks, store_name):
        stream = borg_tasks[:1500]
        a, b = self.run_both(
            lambda be: ContinuousAggregation(backend=be), stream, store_name
        )
        assert a.outputs == b.outputs
        assert a.trace.key_sequence() == b.trace.key_sequence()

    def test_tumbling_incremental(self, borg_tasks, store_name):
        stream = borg_tasks[:1500]
        a, b = self.run_both(
            lambda be: WindowOperator(TumblingWindows(5000), backend=be),
            stream, store_name,
        )
        assert a.outputs == b.outputs

    def test_sliding_holistic(self, borg_tasks, store_name):
        stream = borg_tasks[:1000]
        a, b = self.run_both(
            lambda be: WindowOperator(
                SlidingWindows(5000, 1000), backend=be, holistic=True
            ),
            stream, store_name,
        )
        assert a.outputs == b.outputs

    def test_session_incremental(self, borg_tasks, store_name):
        stream = borg_tasks[:1000]
        a, b = self.run_both(
            lambda be: SessionWindowOperator(120_000, backend=be),
            stream, store_name,
        )
        assert a.outputs == b.outputs
