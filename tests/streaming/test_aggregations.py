"""Tests for the continuous aggregation operator and aggregate fns."""

from repro.events import Event, Watermark
from repro.streaming import ContinuousAggregation
from repro.streaming.operators.aggregations import (
    count_aggregate,
    max_time_aggregate,
    sum_sizes_aggregate,
)
from repro.trace import OpType


def ev(key, t, size=8):
    return Event(key, t, size)


class TestAggregateFunctions:
    def test_count_from_none(self):
        assert count_aggregate(None, ev(b"k", 1)) == 1

    def test_count_increments(self):
        assert count_aggregate(4, ev(b"k", 1)) == 5

    def test_sum_sizes(self):
        assert sum_sizes_aggregate(None, ev(b"k", 1, 10)) == 10
        assert sum_sizes_aggregate(5, ev(b"k", 1, 10)) == 15

    def test_max_time(self):
        assert max_time_aggregate(None, ev(b"k", 7)) == 7
        assert max_time_aggregate(9, ev(b"k", 7)) == 9


class TestContinuousAggregation:
    def test_get_put_per_event(self):
        op = ContinuousAggregation()
        op.process(ev(b"k", 1))
        assert [a.op for a in op.trace] == [OpType.GET, OpType.PUT]

    def test_state_key_is_event_key(self):
        op = ContinuousAggregation()
        op.process(ev(b"user-1", 1))
        assert all(a.key == b"user-1" for a in op.trace)

    def test_rolling_count(self):
        op = ContinuousAggregation()
        for t in range(1, 6):
            op.process(ev(b"k", t))
        assert op.outputs[-1] == (b"k", 5)

    def test_watermarks_are_noops(self):
        op = ContinuousAggregation()
        op.process(ev(b"k", 1))
        before = len(op.trace)
        op.on_watermark(Watermark(100))
        assert len(op.trace) == before

    def test_custom_aggregate(self):
        op = ContinuousAggregation(aggregate=sum_sizes_aggregate)
        op.process(ev(b"k", 1, 10))
        op.process(ev(b"k", 2, 20))
        assert op.outputs[-1] == (b"k", 30)

    def test_keys_are_independent(self):
        op = ContinuousAggregation()
        op.process(ev(b"a", 1))
        op.process(ev(b"b", 2))
        op.process(ev(b"a", 3))
        assert (b"a", 2) in op.outputs
        assert (b"b", 1) in op.outputs
