"""Tests for the shared state-access trace model."""

import random

import pytest

from repro.trace import (
    AccessTrace,
    OpType,
    StateAccess,
    concat_traces,
    interleave_traces,
    shuffled_trace,
)


def make_trace(n=10):
    trace = AccessTrace()
    ops = [OpType.GET, OpType.PUT, OpType.MERGE, OpType.DELETE]
    for i in range(n):
        trace.record(ops[i % 4], f"k{i % 3}".encode(), i, i * 10)
    return trace


class TestStateAccess:
    def test_encode_roundtrip_via_trace_file(self, tmp_path):
        trace = make_trace(25)
        path = str(tmp_path / "t.trace")
        trace.save(path)
        loaded = AccessTrace.load(path)
        assert loaded.accesses == trace.accesses

    def test_access_is_frozen(self):
        access = StateAccess(OpType.GET, b"k")
        with pytest.raises(AttributeError):
            access.op = OpType.PUT

    def test_default_fields(self):
        access = StateAccess(OpType.PUT, b"k")
        assert access.value_size == 0
        assert access.timestamp == 0


class TestAccessTrace:
    def test_record_and_len(self):
        trace = AccessTrace()
        assert len(trace) == 0
        trace.record(OpType.GET, b"a")
        assert len(trace) == 1

    def test_iteration_order(self):
        trace = make_trace(8)
        keys = [a.key for a in trace]
        assert keys == trace.key_sequence()

    def test_getitem_index_and_slice(self):
        trace = make_trace(10)
        assert trace[0].op is OpType.GET
        sliced = trace[2:5]
        assert isinstance(sliced, AccessTrace)
        assert len(sliced) == 3

    def test_op_counts(self):
        trace = make_trace(8)
        counts = trace.op_counts()
        assert counts[OpType.GET] == 2
        assert counts[OpType.PUT] == 2
        assert sum(counts.values()) == 8

    def test_op_fractions_sum_to_one(self):
        fractions = make_trace(12).op_fractions()
        assert abs(sum(fractions.values()) - 1.0) < 1e-9

    def test_op_fractions_empty_trace(self):
        fractions = AccessTrace().op_fractions()
        assert all(v == 0.0 for v in fractions.values())

    def test_distinct_keys(self):
        assert make_trace(10).distinct_keys() == 3

    def test_filter(self):
        trace = make_trace(12)
        gets = trace.filter(lambda a: a.op is OpType.GET)
        assert len(gets) == 3
        assert all(a.op is OpType.GET for a in gets)

    def test_extend(self):
        a, b = make_trace(4), make_trace(6)
        a.extend(b)
        assert len(a) == 10

    def test_load_rejects_non_trace_file(self, tmp_path):
        path = tmp_path / "bogus"
        path.write_bytes(b"NOPE" + b"\x00" * 32)
        with pytest.raises(ValueError, match="not a Gadget trace"):
            AccessTrace.load(str(path))

    def test_save_load_empty(self, tmp_path):
        path = str(tmp_path / "empty.trace")
        AccessTrace().save(path)
        assert len(AccessTrace.load(path)) == 0


class TestTraceCombinators:
    def test_shuffled_preserves_multiset(self):
        trace = make_trace(50)
        shuffled = shuffled_trace(trace, random.Random(3))
        assert sorted(a.key for a in shuffled) == sorted(a.key for a in trace)
        assert shuffled.op_counts() == trace.op_counts()

    def test_shuffle_changes_order(self):
        trace = make_trace(200)
        shuffled = shuffled_trace(trace, random.Random(3))
        assert shuffled.accesses != trace.accesses

    def test_concat(self):
        merged = concat_traces([make_trace(3), make_trace(4)])
        assert len(merged) == 7

    def test_interleave_round_robin(self):
        a = AccessTrace([StateAccess(OpType.GET, b"a")] * 3)
        b = AccessTrace([StateAccess(OpType.PUT, b"b")] * 1)
        merged = interleave_traces([a, b])
        assert len(merged) == 4
        assert merged[0].key == b"a"
        assert merged[1].key == b"b"
        assert merged[2].key == b"a"

    def test_interleave_empty(self):
        assert len(interleave_traces([])) == 0
