"""Property-based tests for analysis invariants and trace encoding."""

import random

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.analysis import (
    stack_distances,
    total_unique_sequences,
    unique_sequence_counts,
    working_set_over_time,
)
from repro.trace import AccessTrace, OpType, StateAccess, shuffled_trace

KEY_LISTS = st.lists(
    st.sampled_from([b"a", b"b", b"c", b"d", b"e"]), max_size=150
)

ACCESSES = st.lists(
    st.builds(
        StateAccess,
        op=st.sampled_from(list(OpType)),
        key=st.binary(min_size=1, max_size=6),
        value_size=st.integers(min_value=0, max_value=1000),
        timestamp=st.integers(min_value=0, max_value=2 ** 40),
    ),
    max_size=100,
)

SETTINGS = settings(max_examples=60, deadline=None)


def naive_stack_distances(keys):
    stack, out = [], []
    for key in keys:
        if key in stack:
            position = stack.index(key)
            out.append(position)
            stack.pop(position)
        else:
            out.append(None)
        stack.insert(0, key)
    return out


@given(keys=KEY_LISTS)
@SETTINGS
def test_stack_distance_matches_naive(keys):
    assert stack_distances(keys) == naive_stack_distances(keys)


@given(keys=KEY_LISTS)
@SETTINGS
def test_stack_distances_bounded_by_alphabet(keys):
    finite = [d for d in stack_distances(keys) if d is not None]
    assert all(0 <= d < 5 for d in finite)


@given(keys=KEY_LISTS)
@SETTINGS
def test_first_accesses_are_none_exactly_once_per_key(keys):
    distances = stack_distances(keys)
    nones = sum(1 for d in distances if d is None)
    assert nones == len(set(keys))


@given(keys=KEY_LISTS)
@SETTINGS
def test_unique_sequences_monotone_decreasing_in_length(keys):
    counts = unique_sequence_counts(keys, max_len=4)
    # n-grams of length L can't outnumber positions available
    n = len(keys)
    for length, count in counts.items():
        assert count <= max(0, n - length + 1)


@given(accesses=ACCESSES)
@SETTINGS
def test_trace_file_roundtrip(accesses, tmp_path_factory):
    trace = AccessTrace(list(accesses))
    path = str(tmp_path_factory.mktemp("traces") / "t.trace")
    trace.save(path)
    assert AccessTrace.load(path).accesses == trace.accesses


@given(accesses=ACCESSES, seed=st.integers(min_value=0, max_value=999))
@SETTINGS
def test_shuffle_preserves_op_and_key_multisets(accesses, seed):
    trace = AccessTrace(list(accesses))
    shuffled = shuffled_trace(trace, random.Random(seed))
    assert sorted(a.key for a in shuffled) == sorted(a.key for a in trace)
    assert shuffled.op_counts() == trace.op_counts()


@given(accesses=ACCESSES)
@SETTINGS
def test_working_set_never_negative_and_bounded(accesses):
    trace = AccessTrace(list(accesses))
    samples = working_set_over_time(trace, step=7)
    distinct = trace.distinct_keys()
    assert all(0 <= size <= distinct for _, size in samples)


@given(keys=KEY_LISTS)
@SETTINGS
def test_total_unique_sequences_at_most_positions(keys):
    total = total_unique_sequences(keys, max_len=3)
    assert total <= 3 * max(1, len(keys))
