"""Failure-injection tests: crash stores mid-workload and recover."""

import random

import pytest

from repro.core import GadgetConfig, SourceConfig, generate_workload_trace
from repro.core.replayer import synthesize_value
from repro.kvstores import MemoryStorage, connect
from repro.kvstores.lsm import LSMConfig, RocksLSMStore
from repro.trace import OpType


def tiny_lsm_config():
    return LSMConfig(
        write_buffer_size=4096,
        block_cache_size=8192,
        level_base_bytes=16384,
        target_file_size=8192,
        max_levels=4,
    )


def apply_access(connector, access):
    if access.op is OpType.GET:
        connector.get(access.key)
    elif access.op is OpType.PUT:
        connector.put(access.key, synthesize_value(access.value_size))
    elif access.op is OpType.MERGE:
        connector.merge(access.key, synthesize_value(access.value_size))
    else:
        connector.delete(access.key)


class TestLSMCrashRecovery:
    @pytest.mark.parametrize("crash_at", [500, 2_000, 7_500])
    def test_crash_mid_workload_recovers_via_wal(self, crash_at):
        """Kill the store mid-trace; a recovered store over the same
        storage must agree with an uninterrupted reference run."""
        trace = generate_workload_trace(
            "tumbling-incremental",
            [SourceConfig(num_events=3_000, seed=9)],
            GadgetConfig(),
        )
        # Reference: uninterrupted run on its own store.
        reference = connect(RocksLSMStore(tiny_lsm_config()))
        for access in trace:
            apply_access(reference, access)

        # Crashing run: shared storage, abandon the store object at the
        # crash point (no flush/close -- like a process kill).
        storage = MemoryStorage()
        doomed = connect(RocksLSMStore(tiny_lsm_config(), storage=storage))
        for access in trace[:crash_at]:
            apply_access(doomed, access)
        del doomed

        revived = RocksLSMStore(tiny_lsm_config(), storage=storage)
        revived.recover()  # manifest (flushed runs) + WAL (unflushed)
        recovered = connect(revived)
        for access in trace[crash_at:]:
            apply_access(recovered, access)

        keys = {access.key for access in trace}
        for key in keys:
            assert recovered.get(key) == reference.get(key), key

    def test_recovery_loses_nothing_before_crash(self):
        """Every write acknowledged before the crash must be visible
        after WAL replay (durability of the write-ahead log)."""
        storage = MemoryStorage()
        store = RocksLSMStore(tiny_lsm_config(), storage=storage)
        rng = random.Random(5)
        expected = {}
        for i in range(5_000):
            key = f"k{rng.randrange(300):04d}".encode()
            if rng.random() < 0.2:
                store.delete(key)
                expected.pop(key, None)
            else:
                value = f"v{i}".encode()
                store.put(key, value)
                expected[key] = value
        del store  # crash

        revived = RocksLSMStore(tiny_lsm_config(), storage=storage)
        revived.recover()
        for key, value in expected.items():
            assert revived.get(key) == value
        for i in range(300):
            key = f"k{i:04d}".encode()
            if key not in expected:
                assert revived.get(key) is None


class TestReplayerRobustness:
    def test_replay_of_corrupt_trace_file_fails_loudly(self, tmp_path):
        from repro.trace import AccessTrace

        path = tmp_path / "bad.gdgt"
        path.write_bytes(b"GDGT" + b"\xff" * 4)  # bad version/len
        with pytest.raises((ValueError, Exception)):
            AccessTrace.load(str(path))

    def test_interrupted_replay_leaves_store_usable(self):
        trace = generate_workload_trace(
            "continuous-aggregation", [SourceConfig(num_events=500)]
        )
        connector = connect(RocksLSMStore(tiny_lsm_config()))
        for access in trace[:400]:
            apply_access(connector, access)
        # The store stays fully operational for ad-hoc access.
        connector.put(b"extra", b"1")
        assert connector.get(b"extra") == b"1"
