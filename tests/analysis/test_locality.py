"""Tests for stack distances and unique-sequence counting."""

import random

from repro.analysis import (
    average_stack_distance,
    finite_distances,
    stack_distance_histogram,
    stack_distances,
    total_unique_sequences,
    unique_sequence_counts,
)


def naive_stack_distances(keys):
    """O(n^2) reference implementation (LRU stack walk)."""
    stack = []
    out = []
    for key in keys:
        if key in stack:
            position = stack.index(key)
            out.append(position)
            stack.pop(position)
        else:
            out.append(None)
        stack.insert(0, key)
    return out


class TestStackDistances:
    def test_first_access_is_none(self):
        assert stack_distances([b"a"]) == [None]

    def test_immediate_reuse_is_zero(self):
        assert stack_distances([b"a", b"a"]) == [None, 0]

    def test_one_key_between(self):
        assert stack_distances([b"a", b"b", b"a"]) == [None, None, 1]

    def test_duplicate_intervening_key_counts_once(self):
        # b accessed twice between the two a's: still distance 1
        assert stack_distances([b"a", b"b", b"b", b"a"])[-1] == 1

    def test_matches_naive_on_random_traces(self):
        rng = random.Random(3)
        keys = [f"k{rng.randrange(20)}".encode() for _ in range(500)]
        assert stack_distances(keys) == naive_stack_distances(keys)

    def test_empty(self):
        assert stack_distances([]) == []

    def test_finite_distances_filters_none(self):
        distances = stack_distances([b"a", b"b", b"a"])
        assert finite_distances(distances) == [1]

    def test_average(self):
        assert average_stack_distance([b"a", b"a", b"a"]) == 0.0
        assert average_stack_distance([b"a", b"b"]) == 0.0  # no reuse

    def test_sequential_trace_has_high_average(self):
        keys = [f"k{i}".encode() for i in range(50)] * 2
        assert average_stack_distance(keys) == 49.0

    def test_histogram_bins(self):
        keys = [b"a", b"a", b"b", b"a"]
        counts = stack_distance_histogram(keys, bins=[0, 1])
        assert counts == [1, 1, 0]

    def test_locality_lower_than_shuffled(self):
        """A run-heavy trace must show lower average distance than its
        shuffle -- the paper's core temporal-locality observation."""
        rng = random.Random(5)
        trace = []
        for i in range(100):
            trace.extend([f"k{i}".encode()] * 10)
        shuffled = list(trace)
        rng.shuffle(shuffled)
        assert average_stack_distance(trace) < average_stack_distance(shuffled)


class TestUniqueSequences:
    def test_counts_per_length(self):
        keys = [b"a", b"b", b"a", b"b"]
        counts = unique_sequence_counts(keys, max_len=2)
        assert counts[1] == 2  # {a, b}
        assert counts[2] == 2  # {ab, ba}

    def test_repetitive_trace_fewer_sequences(self):
        repetitive = [b"a", b"b"] * 50
        rng = random.Random(1)
        shuffled = list(repetitive)
        rng.shuffle(shuffled)
        assert total_unique_sequences(repetitive, 5) <= total_unique_sequences(
            shuffled, 5
        )

    def test_short_trace(self):
        counts = unique_sequence_counts([b"a"], max_len=3)
        assert counts == {1: 1, 2: 0, 3: 0}

    def test_invalid_max_len(self):
        import pytest

        with pytest.raises(ValueError):
            unique_sequence_counts([b"a"], max_len=0)

    def test_all_distinct(self):
        keys = [f"k{i}".encode() for i in range(10)]
        counts = unique_sequence_counts(keys, max_len=3)
        assert counts == {1: 10, 2: 9, 3: 8}
