"""Tests for arrival-pattern analysis."""

import random

import pytest

from repro.analysis.arrivals import (
    arrival_stats,
    event_arrival_stats,
    peak_to_mean_ratio,
    rate_over_time,
)


class TestArrivalStats:
    def test_empty(self):
        stats = arrival_stats([])
        assert stats.count == 0
        assert stats.rate_per_s == 0.0

    def test_regular_gaps(self):
        stats = arrival_stats(list(range(0, 1000, 10)))
        assert stats.mean_gap == 10.0
        assert stats.std_gap == 0.0
        assert stats.burstiness == "regular"
        assert stats.rate_per_s == pytest.approx(100.0)

    def test_poisson_cv_near_one(self):
        rng = random.Random(3)
        t = 0
        timestamps = []
        for _ in range(5000):
            t += max(1, int(rng.expovariate(0.1)))
            timestamps.append(t)
        stats = arrival_stats(timestamps)
        assert 0.8 < stats.cv < 1.2
        assert stats.burstiness == "poisson-like"

    def test_bursty_detection(self):
        timestamps = []
        t = 0
        for _ in range(100):
            t += 10_000  # long quiet gap
            for _ in range(20):
                t += 1  # burst
                timestamps.append(t)
        assert arrival_stats(timestamps).burstiness == "bursty"

    def test_min_max_gap(self):
        stats = arrival_stats([0, 1, 100])
        assert stats.min_gap == 1
        assert stats.max_gap == 99

    def test_event_stream_helper(self, azure_stream):
        stats = event_arrival_stats(azure_stream)
        assert stats.count == len(azure_stream) - 1
        assert stats.rate_per_s > 0

    def test_azure_is_bursty(self, azure_stream):
        """The Azure generator's deployment bursts must register."""
        assert peak_to_mean_ratio(
            [e.timestamp for e in azure_stream], 5000
        ) > 1.5


class TestRateOverTime:
    def test_bucket_counts(self):
        series = rate_over_time([5, 15, 25, 1005], window_ms=1000)
        assert series == [(0, 3), (1000, 1)]

    def test_empty(self):
        assert rate_over_time([]) == []

    def test_invalid_window(self):
        with pytest.raises(ValueError):
            rate_over_time([1], window_ms=0)

    def test_generator_arrival_process_matches_config(self):
        """Gadget's Poisson source should measure as poisson-like at
        the configured rate."""
        from repro.core import ArrivalConfig, EventGenerator, SourceConfig

        events = EventGenerator(
            SourceConfig(
                num_events=5000,
                arrivals=ArrivalConfig(process="poisson",
                                       mean_interarrival_ms=20),
            )
        ).generate()
        stats = event_arrival_stats(events)
        assert stats.mean_gap == pytest.approx(20, rel=0.15)
        assert stats.burstiness == "poisson-like"
