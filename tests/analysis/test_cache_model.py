"""Tests for the Mattson miss-ratio curve and cache sizing."""

import pytest

from repro.analysis import (
    compare_working_set_vs_cache,
    miss_ratio_curve,
    recommend_cache_size,
)
from repro.trace import AccessTrace, OpType


def trace_of_keys(keys):
    trace = AccessTrace()
    for key in keys:
        trace.record(OpType.GET, key, 0)
    return trace


class TestMissRatioCurve:
    def test_empty_trace(self):
        curve = miss_ratio_curve(AccessTrace())
        assert curve.total_accesses == 0
        assert curve.miss_ratio_at(100) == 0.0

    def test_single_key_reuse(self):
        curve = miss_ratio_curve(trace_of_keys([b"a"] * 10))
        # cache of 1 key: only the first access misses
        assert curve.miss_ratio_at(1) == pytest.approx(0.1)

    def test_compulsory_misses_counted(self):
        curve = miss_ratio_curve(trace_of_keys([b"a", b"b", b"a", b"b"]))
        assert curve.compulsory_misses == 2

    def test_miss_ratio_monotone_in_cache_size(self):
        keys = [f"k{i % 7}".encode() for i in range(100)]
        curve = miss_ratio_curve(trace_of_keys(keys), sizes=[1, 2, 4, 7])
        assert list(curve.miss_ratios) == sorted(curve.miss_ratios, reverse=True)

    def test_full_cache_leaves_only_compulsory(self):
        keys = [f"k{i % 5}".encode() for i in range(50)]
        curve = miss_ratio_curve(trace_of_keys(keys), sizes=[5])
        assert curve.miss_ratio_at(5) == pytest.approx(5 / 50)

    def test_matches_lru_simulation(self):
        """The Mattson curve must equal a direct LRU simulation."""
        import random
        from collections import OrderedDict

        rng = random.Random(3)
        keys = [f"k{rng.randrange(12)}".encode() for _ in range(400)]
        trace = trace_of_keys(keys)
        for capacity in (1, 2, 4, 8, 12):
            lru = OrderedDict()
            misses = 0
            for key in keys:
                if key in lru:
                    lru.move_to_end(key)
                else:
                    misses += 1
                    lru[key] = True
                    if len(lru) > capacity:
                        lru.popitem(last=False)
            curve = miss_ratio_curve(trace, sizes=[capacity])
            assert curve.miss_ratio_at(capacity) == pytest.approx(
                misses / len(keys)
            ), capacity

    def test_zero_capacity_misses_everything(self):
        curve = miss_ratio_curve(trace_of_keys([b"a", b"a"]), sizes=[1])
        assert curve.miss_ratio_at(0) == 1.0

    def test_default_size_ladder_reaches_distinct(self):
        keys = [f"k{i}".encode() for i in range(10)] * 3
        curve = miss_ratio_curve(trace_of_keys(keys))
        assert curve.sizes[-1] == 10

    def test_smallest_size_for_target(self):
        keys = [f"k{i % 4}".encode() for i in range(100)]
        curve = miss_ratio_curve(trace_of_keys(keys), sizes=[1, 2, 4])
        size = curve.smallest_size_for(0.9)
        assert size == 4

    def test_smallest_size_unreachable(self):
        # A scan never reuses keys: no finite cache reaches 50% hits.
        keys = [f"k{i}".encode() for i in range(50)]
        curve = miss_ratio_curve(trace_of_keys(keys))
        assert curve.smallest_size_for(0.5) is None


class TestRecommendation:
    def make_trace(self):
        trace = AccessTrace()
        for i in range(300):
            key = f"k{i % 5}".encode()
            trace.record(OpType.GET, key, 0)
            trace.record(OpType.PUT, key, 100)
        return trace

    def test_recommends_working_set(self):
        rec = recommend_cache_size(self.make_trace(), target_hit_ratio=0.9)
        assert rec is not None
        assert rec.cache_keys <= 5
        assert rec.expected_hit_ratio >= 0.9

    def test_bytes_scale_with_value_size(self):
        rec = recommend_cache_size(self.make_trace(), target_hit_ratio=0.9)
        assert rec.cache_bytes >= rec.cache_keys * 100

    def test_invalid_target(self):
        with pytest.raises(ValueError):
            recommend_cache_size(self.make_trace(), target_hit_ratio=1.5)

    def test_unreachable_target_returns_none(self):
        keys = [f"k{i}".encode() for i in range(20)]
        assert recommend_cache_size(trace_of_keys(keys), 0.5) is None


class TestCompareWorkingSet:
    def test_summary_fields(self):
        keys = [b"a", b"b", b"a"]
        summary = compare_working_set_vs_cache(trace_of_keys(keys), 2)
        assert summary["cache_keys"] == 2.0
        assert 0.0 <= summary["miss_ratio"] <= 1.0
        assert summary["compulsory_miss_ratio"] == pytest.approx(2 / 3)
