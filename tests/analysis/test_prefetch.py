"""Tests for the Markov prefetch model."""

import random

import pytest

from repro.analysis.prefetch import (
    MarkovPrefetcher,
    predictability_gain,
    prefetch_hit_ratio,
)
from repro.trace import AccessTrace, OpType, shuffled_trace


def trace_of_keys(keys):
    trace = AccessTrace()
    for key in keys:
        trace.record(OpType.GET, key)
    return trace


class TestMarkovPrefetcher:
    def test_learns_most_frequent_successor(self):
        prefetcher = MarkovPrefetcher()
        prefetcher.train([b"a", b"b", b"a", b"b", b"a", b"c"])
        assert prefetcher.predict(b"a") == b"b"

    def test_unseen_key_predicts_none(self):
        prefetcher = MarkovPrefetcher()
        prefetcher.train([b"a", b"b"])
        assert prefetcher.predict(b"zzz") is None

    def test_len(self):
        prefetcher = MarkovPrefetcher()
        prefetcher.train([b"a", b"b", b"c"])
        assert len(prefetcher) == 2  # a and b have successors


class TestPrefetchHitRatio:
    def test_perfectly_periodic_trace(self):
        keys = [b"a", b"b", b"c"] * 100
        report = prefetch_hit_ratio(trace_of_keys(keys))
        assert report.hit_ratio > 0.99

    def test_random_trace_scores_low(self):
        rng = random.Random(3)
        keys = [f"k{rng.randrange(50)}".encode() for _ in range(2000)]
        report = prefetch_hit_ratio(trace_of_keys(keys))
        assert report.hit_ratio < 0.2

    def test_get_put_pairs_are_predictable(self):
        """The streaming signature: each key accessed twice in a row."""
        rng = random.Random(5)
        keys = []
        for _ in range(1000):
            key = f"k{rng.randrange(100)}".encode()
            keys.extend([key, key])
        report = prefetch_hit_ratio(trace_of_keys(keys))
        assert report.hit_ratio > 0.45  # every second access predictable

    def test_tiny_trace(self):
        assert prefetch_hit_ratio(trace_of_keys([b"a"])).predictions == 0

    def test_invalid_fraction(self):
        with pytest.raises(ValueError):
            prefetch_hit_ratio(trace_of_keys([b"a"] * 10), train_fraction=1.5)

    def test_cold_keys_counted(self):
        keys = [b"a"] * 10 + [b"b"] * 10  # b unseen during training
        report = prefetch_hit_ratio(trace_of_keys(keys), train_fraction=0.5)
        assert report.cold_keys > 0


class TestStreamingPredictability:
    def test_real_trace_beats_shuffled(self, borg_tasks):
        from repro.core import GadgetConfig, generate_workload_trace

        trace = generate_workload_trace(
            "tumbling-incremental", [borg_tasks], GadgetConfig(interleave="time")
        )
        shuffled = shuffled_trace(trace, random.Random(1))
        real, chance = predictability_gain(trace, shuffled)
        assert real > 2 * chance
        assert real > 0.4  # get-put pairs alone give ~0.5
