"""Tests for KS/Wasserstein statistics, amplification, composition, and
report formatting."""

from repro.analysis import (
    composition_of,
    frequency_ranks,
    key_indices,
    ks_test_keys,
    measure_amplification,
    combined_amplification,
    print_table,
    render_table,
    wasserstein_keys,
)
from repro.events import Event
from repro.trace import AccessTrace, OpType


class TestKeyIndices:
    def test_first_appearance_order(self):
        indices = key_indices([b"b", b"a", b"b", b"c"])
        assert list(indices) == [0, 1, 0, 2]


class TestKSTest:
    def test_identical_distributions_pass(self):
        keys = [f"k{i % 5}".encode() for i in range(1000)]
        result = ks_test_keys(keys, list(keys))
        assert result.statistic < 0.01
        assert result.passes()

    def test_different_distributions_fail(self):
        uniform = [f"k{i % 100}".encode() for i in range(5000)]
        skewed = [b"k0"] * 4500 + [f"k{i % 100}".encode() for i in range(500)]
        result = ks_test_keys(uniform, skewed)
        assert not result.passes()

    def test_sample_sizes_recorded(self):
        result = ks_test_keys([b"a"] * 10, [b"b"] * 20)
        assert result.n == 10
        assert result.m == 20


class TestWasserstein:
    def test_zero_for_identical(self):
        keys = [f"k{i % 7}".encode() for i in range(100)]
        assert wasserstein_keys(keys, list(keys)) == 0.0

    def test_positive_for_different(self):
        a = [f"k{i}".encode() for i in range(100)]
        b = [b"k0"] * 100
        assert wasserstein_keys(a, b) > 0


class TestFrequencyRanks:
    def test_descending(self):
        ranks = frequency_ranks([b"a", b"a", b"b"])
        assert ranks == [2, 1]


class TestAmplification:
    def test_aggregation_is_2x_events_1x_keys(self):
        events = [Event(f"k{i % 10}".encode(), i) for i in range(100)]
        trace = AccessTrace()
        for event in events:
            trace.record(OpType.GET, event.key)
            trace.record(OpType.PUT, event.key)
        amp = measure_amplification(events, trace)
        assert amp.event_amplification == 2.0
        assert amp.keyspace_amplification == 1.0

    def test_window_amplifies_keyspace(self):
        events = [Event(b"k", i * 1000) for i in range(10)]
        trace = AccessTrace()
        for event in events:
            state_key = event.key + str(event.timestamp // 5000).encode()
            trace.record(OpType.PUT, state_key)
        amp = measure_amplification(events, trace)
        assert amp.keyspace_amplification == 2.0

    def test_empty_events(self):
        amp = measure_amplification([], AccessTrace())
        assert amp.event_amplification == 0.0

    def test_combined_merges_streams(self):
        left = [Event(b"a", 1)]
        right = [Event(b"b", 2)]
        trace = AccessTrace()
        trace.record(OpType.GET, b"a")
        amp = combined_amplification([left, right], trace)
        assert amp.num_events == 2
        assert amp.event_amplification == 0.5


class TestComposition:
    def make_trace(self, gets=0, puts=0, merges=0, deletes=0):
        trace = AccessTrace()
        for _ in range(gets):
            trace.record(OpType.GET, b"k")
        for _ in range(puts):
            trace.record(OpType.PUT, b"k")
        for _ in range(merges):
            trace.record(OpType.MERGE, b"k")
        for _ in range(deletes):
            trace.record(OpType.DELETE, b"k")
        return trace

    def test_fractions(self):
        comp = composition_of(self.make_trace(gets=5, puts=5))
        assert comp.get == 0.5
        assert comp.put == 0.5

    def test_update_heavy_classification(self):
        comp = composition_of(self.make_trace(gets=50, puts=45, deletes=5))
        assert comp.classify() == "update-heavy"

    def test_write_heavy_classification(self):
        comp = composition_of(self.make_trace(gets=8, merges=84, deletes=8))
        assert comp.classify() == "write-heavy"

    def test_as_row(self):
        comp = composition_of(self.make_trace(gets=1, puts=1))
        row = comp.as_row()
        assert set(row) == {"GET", "PUT", "MERGE", "DELETE"}


class TestReport:
    def test_render_alignment(self):
        table = render_table(
            ["name", "value"], [["a", 1], ["longer", 2.5]], title="T"
        )
        lines = table.splitlines()
        assert lines[0] == "T"
        assert "longer" in table
        assert "2.5" in table

    def test_large_numbers_have_commas(self):
        table = render_table(["x"], [[1234567.0]])
        assert "1,234,567" in table

    def test_print_table_no_crash(self, capsys):
        print_table(["a"], [[1]])
        assert "a" in capsys.readouterr().out
