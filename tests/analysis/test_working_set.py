"""Tests for working set and TTL analysis."""

import pytest

from repro.analysis import (
    max_working_set,
    single_access_key_fraction,
    ttl_per_key,
    ttl_percentiles,
    working_set_over_time,
)
from repro.trace import AccessTrace, OpType


def trace_of(*ops):
    trace = AccessTrace()
    for op, key in ops:
        trace.record(op, key)
    return trace


class TestWorkingSet:
    def test_puts_grow_set(self):
        trace = trace_of((OpType.PUT, b"a"), (OpType.PUT, b"b"))
        samples = working_set_over_time(trace, step=1)
        assert [s for _, s in samples][:2] == [1, 2]

    def test_deletes_shrink_set(self):
        trace = trace_of(
            (OpType.PUT, b"a"), (OpType.PUT, b"b"), (OpType.DELETE, b"a")
        )
        samples = working_set_over_time(trace, step=1)
        assert samples[2][1] == 1

    def test_merge_counts_as_live(self):
        trace = trace_of((OpType.MERGE, b"a"))
        assert working_set_over_time(trace, step=1)[0][1] == 1

    def test_gets_do_not_grow_set(self):
        trace = trace_of((OpType.GET, b"a"), (OpType.GET, b"b"))
        assert working_set_over_time(trace, step=1)[-1][1] == 0

    def test_final_sample_always_present(self):
        trace = trace_of((OpType.PUT, b"a"))
        samples = working_set_over_time(trace, step=100)
        assert samples[-1] == (1, 1)

    def test_invalid_step(self):
        with pytest.raises(ValueError):
            working_set_over_time(AccessTrace(), step=0)

    def test_max_working_set(self):
        trace = trace_of(
            (OpType.PUT, b"a"),
            (OpType.PUT, b"b"),
            (OpType.DELETE, b"a"),
            (OpType.DELETE, b"b"),
        )
        assert max_working_set(trace, step=1) == 2


class TestTTL:
    def test_single_access_ttl_zero(self):
        trace = trace_of((OpType.PUT, b"a"))
        assert ttl_per_key(trace) == {b"a": 0}

    def test_ttl_spans_first_to_last(self):
        trace = trace_of(
            (OpType.PUT, b"a"), (OpType.GET, b"b"), (OpType.DELETE, b"a")
        )
        assert ttl_per_key(trace)[b"a"] == 2

    def test_percentiles_monotone(self):
        trace = AccessTrace()
        for i in range(100):
            trace.record(OpType.PUT, f"k{i}".encode())
        for i in range(100):
            trace.record(OpType.DELETE, f"k{i}".encode())
        result = ttl_percentiles(trace, sample_keys=None)
        assert result["p50"] <= result["p90"] <= result["p99.9"] <= result["max"]

    def test_sampling_caps_keys(self):
        trace = AccessTrace()
        for i in range(500):
            trace.record(OpType.PUT, f"k{i}".encode())
        result = ttl_percentiles(trace, sample_keys=100)
        assert result["max"] >= 0

    def test_empty_trace(self):
        result = ttl_percentiles(AccessTrace())
        assert result["max"] == 0.0


class TestSingleAccessFraction:
    def test_all_single(self):
        trace = trace_of((OpType.GET, b"a"), (OpType.GET, b"b"))
        assert single_access_key_fraction(trace) == 1.0

    def test_none_single(self):
        trace = trace_of((OpType.GET, b"a"), (OpType.GET, b"a"))
        assert single_access_key_fraction(trace) == 0.0

    def test_empty(self):
        assert single_access_key_fraction(AccessTrace()) == 0.0
