"""Tests for the event model and watermark interleaving."""

import pytest

from repro.events import Event, Watermark, sort_by_time, with_watermarks


def events(*timestamps):
    return [Event(b"k", t) for t in timestamps]


class TestEvent:
    def test_frozen(self):
        event = Event(b"k", 1)
        with pytest.raises(AttributeError):
            event.timestamp = 2

    def test_defaults(self):
        event = Event(b"k", 5)
        assert event.value_size == 8
        assert event.kind == ""


class TestSortByTime:
    def test_orders_by_timestamp(self):
        out = sort_by_time(events(5, 1, 3))
        assert [e.timestamp for e in out] == [1, 3, 5]


class TestWithWatermarks:
    def test_watermark_every_n_events(self):
        out = list(with_watermarks(events(1, 2, 3, 4, 5), frequency=2))
        marks = [x for x in out if isinstance(x, Watermark)]
        # two periodic marks plus the closing mark
        assert len(marks) == 3
        assert marks[0].timestamp == 2
        assert marks[1].timestamp == 4

    def test_watermark_carries_max_time_seen(self):
        out = list(with_watermarks(events(5, 1), frequency=2))
        mark = next(x for x in out if isinstance(x, Watermark))
        assert mark.timestamp == 5

    def test_closing_watermark(self):
        out = list(with_watermarks(events(7), frequency=100))
        assert isinstance(out[-1], Watermark)
        assert out[-1].timestamp == 7

    def test_empty_stream(self):
        assert list(with_watermarks([], frequency=10)) == []

    def test_invalid_frequency(self):
        with pytest.raises(ValueError):
            list(with_watermarks(events(1), frequency=0))
