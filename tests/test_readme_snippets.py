"""The README's quickstart and extension snippets must actually run."""

from repro.core import (
    Driver,
    Gadget,
    OperatorModel,
    ShardedReplayer,
    SourceConfig,
    StateMachine,
    TraceReplayer,
)
from repro.kvstores import create_connector
from repro.trace import OpType


def test_quickstart_snippet():
    source = SourceConfig(num_events=1_000)  # README uses 100_000
    gadget = Gadget("tumbling-incremental", [source])
    trace = gadget.generate()
    store = create_connector("rocksdb")
    result = TraceReplayer(store).replay(trace)
    summary = result.summary()
    assert set(summary) == {"throughput_kops", "p50_us", "p99_us", "p99.9_us"}
    assert summary["throughput_kops"] > 0


def test_sharded_replay_snippet():
    trace = Gadget("tumbling-incremental", [SourceConfig(num_events=1_000)]).generate()
    replayer = ShardedReplayer(lambda: create_connector("rocksdb"), num_workers=4)
    result = replayer.replay(trace)
    summary = result.summary()
    assert result.operations == len(trace)
    assert summary["throughput_kops"] > 0
    replayer.close()


def test_extension_snippet():
    class MyMachine(StateMachine):
        def run(self, ctx, event):
            ctx.emit(OpType.GET, self.state_key)
            ctx.emit(OpType.PUT, self.state_key, event.value_size)

        def terminate(self, ctx):
            ctx.emit(OpType.DELETE, self.state_key)

    class MyModel(OperatorModel):
        def assign_state_machines(self, event, input_index, driver):
            return [
                driver.machine_for(
                    event.key,
                    MyMachine,
                    event_key=event.key,
                    # README uses 60s; the 500-event test stream only
                    # spans ~5s of event time, so expire after 1s here.
                    expires_at=event.timestamp + 1_000,
                )
            ]

    driver = Driver(MyModel(), [SourceConfig(num_events=500)])
    trace = driver.run()
    counts = trace.op_counts()
    assert counts[OpType.GET] == counts[OpType.PUT] == 500
    assert counts[OpType.DELETE] > 0  # expirations fired
