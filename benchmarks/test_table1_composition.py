"""Table 1: workload composition per operator x input stream.

Paper reference rows (Borg): tumbling-incremental 0.50/0.459/0/0.041,
tumbling-holistic 0.076/0/0.847/0.076, aggregation 0.5/0.5/0/0.
"""

import pytest

from conftest import emit
from repro.analysis import composition_of
from repro.streaming import (
    ContinuousAggregation,
    ContinuousJoinOperator,
    IntervalJoinOperator,
    RuntimeConfig,
    SessionWindowOperator,
    SlidingWindows,
    TumblingWindows,
    WindowOperator,
    run_operator,
)

RCFG = RuntimeConfig(interleave="time")

SINGLE_INPUT_OPERATORS = [
    ("Tumbl-Incr", lambda: WindowOperator(TumblingWindows(5000))),
    ("Sliding-Incr", lambda: WindowOperator(SlidingWindows(5000, 1000))),
    ("Session-Incr", lambda: SessionWindowOperator(120_000)),
    ("Tumbl-Hol", lambda: WindowOperator(TumblingWindows(5000), holistic=True)),
    (
        "Sliding-Hol",
        lambda: WindowOperator(SlidingWindows(5000, 1000), holistic=True),
    ),
    ("Session-Hol", lambda: SessionWindowOperator(120_000, holistic=True)),
    ("Aggregation", lambda: ContinuousAggregation()),
]


def compose_rows(streams_by_name):
    rows = []
    for stream_name, (stream, secondary, invalidate_kind) in streams_by_name.items():
        for operator_name, factory in SINGLE_INPUT_OPERATORS:
            trace = run_operator(factory(), [stream], RCFG)
            comp = composition_of(trace)
            rows.append(
                [stream_name, operator_name, comp.get, comp.put, comp.merge,
                 comp.delete, comp.classify()]
            )
        if secondary is not None:
            joins = [
                ("Join-Cont", ContinuousJoinOperator({invalidate_kind})),
                ("Join-Interval", IntervalJoinOperator(120_000, 180_000)),
            ]
            for operator_name, operator in joins:
                trace = run_operator(operator, [stream, secondary], RCFG)
                comp = composition_of(trace)
                rows.append(
                    [stream_name, operator_name, comp.get, comp.put,
                     comp.merge, comp.delete, comp.classify()]
                )
    return rows


def test_table1_composition(benchmark, capsys, borg, taxi, azure):
    tasks, jobs = borg
    trips, fares = taxi
    streams = {
        "Borg": (tasks, jobs, "finish"),
        "Taxi": (trips, fares, "dropoff"),
        "Azure": (azure, None, ""),
    }
    rows = benchmark.pedantic(compose_rows, args=(streams,), rounds=1, iterations=1)
    emit(
        capsys,
        ["stream", "operator", "GET", "PUT", "MERGE", "DELETE", "class"],
        rows,
        "Table 1: workload composition (fractions of all state operations)",
    )
    by_key = {(r[0], r[1]): r for r in rows}
    # Paper-pinned algebra: incremental windows have get fraction 0.5.
    for stream in ("Borg", "Taxi", "Azure"):
        assert by_key[(stream, "Tumbl-Incr")][2] == pytest.approx(0.5, abs=0.01)
        assert by_key[(stream, "Aggregation")][2] == pytest.approx(0.5, abs=1e-9)
    # Holistic windows are write-heavy; incremental are update-heavy.
    assert by_key[("Borg", "Tumbl-Hol")][6] == "write-heavy"
    assert by_key[("Borg", "Tumbl-Incr")][6] == "update-heavy"
    # Taxi's low arrival rate yields the highest delete fraction.
    assert (
        by_key[("Taxi", "Tumbl-Incr")][5]
        > by_key[("Azure", "Tumbl-Incr")][5]
        > by_key[("Borg", "Tumbl-Incr")][5]
    )
