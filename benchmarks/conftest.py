"""Shared fixtures and helpers for the benchmark harness.

Each module in this directory regenerates one table or figure of the
paper (see DESIGN.md's experiment index).  Scales are reduced to suit a
pure-Python run: event counts in the tens of thousands instead of
millions.  Absolute performance numbers are therefore Python-scale;
EXPERIMENTS.md compares the *shapes* against the paper.
"""

import os
import sys

import pytest

_SRC = os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src")
if _SRC not in sys.path:
    sys.path.insert(0, _SRC)

from repro.analysis import render_table  # noqa: E402
from repro.datasets import (  # noqa: E402
    AzureConfig,
    BorgConfig,
    TaxiConfig,
    generate_azure,
    generate_borg,
    generate_taxi,
)

#: default stream size for characterization benches
N_EVENTS = 20_000
#: default op count for store-performance benches
N_OPS = 20_000


@pytest.fixture(scope="session")
def borg():
    """(task_events, job_events) at benchmark scale."""
    return generate_borg(BorgConfig(target_events=N_EVENTS))


@pytest.fixture(scope="session")
def taxi():
    return generate_taxi(TaxiConfig(target_events=N_EVENTS))


@pytest.fixture(scope="session")
def azure():
    return generate_azure(AzureConfig(target_events=N_EVENTS))


def emit(capsys, headers, rows, title):
    """Print a paper-style table through pytest's capture."""
    with capsys.disabled():
        print()
        print(render_table(headers, rows, title=title))
        print()
