"""Figure 13: the four stores across all eleven Gadget workloads.

Paper claims:

* RocksDB is outperformed by both FASTER and BerkeleyDB on the six
  non-holistic workloads (incremental windows, joins that buffer with
  get/put, aggregation)
* the LSM stores win the holistic window workloads thanks to lazy
  merges: stores without them pay read-copy-update on growing buckets
* RocksDB/Lethe are *robust*: bounded tail latency on every workload

The streams use the paper's default operator parameters; value sizes
are 256 bytes so holistic buckets grow enough for the copy costs to
show at Python op-cost scale (see EXPERIMENTS.md for the scaling
discussion).
"""

import pytest

from conftest import emit
from repro.core import GadgetConfig, PerformanceEvaluator, WORKLOADS, generate_workload_trace
from repro.datasets import BorgConfig, generate_borg

GCFG = GadgetConfig(interleave="time")
STORES = ("rocksdb", "lethe", "faster", "berkeleydb")

#: workloads whose state machines are dominated by lazy merges on
#: growing buckets -- the paper's "holistic" group where LSMs win
HOLISTIC = {
    "tumbling-holistic",
    "sliding-holistic",
    "session-holistic",
    "tumbling-join",
    "sliding-join",
}


def dense_borg():
    """Chatty Borg variant: hundreds of events per (key, window) bucket
    with many concurrent jobs, so holistic buckets grow to tens of KB,
    as long-running cluster jobs produce in the paper's full-size
    traces.  Used for the holistic workload group."""
    config = BorgConfig(
        target_events=12_000,
        value_size=256,
        task_event_gap_ms=25.0,
        job_interarrival_ms=400.0,
    )
    return generate_borg(config)


def regular_borg():
    """Default-density Borg stream for the non-holistic workloads."""
    return generate_borg(BorgConfig(target_events=15_000, value_size=64))


def run_all_workloads():
    dense = dense_borg()
    regular = regular_borg()
    evaluator = PerformanceEvaluator(stores=STORES)
    rows = []
    results = {}
    for name, spec in WORKLOADS.items():
        tasks, jobs = dense if name in HOLISTIC else regular
        model = spec.factory()
        model.value_size = 256 if name in HOLISTIC else 64
        sources = [tasks] if spec.num_inputs == 1 else [tasks, jobs]
        from repro.core import Gadget

        trace = Gadget(model, sources, GCFG).generate()
        if len(trace) > 60_000:
            trace = trace[:60_000]
        # Best of three runs per store, as the paper repeats each
        # experiment at least three times.
        best = {}
        for _ in range(3):
            for row in evaluator.evaluate(name, trace):
                kept = best.get(row.store)
                if kept is None or row.throughput_kops > kept.throughput_kops:
                    best[row.store] = row
        for store in STORES:
            row = best[store]
            rows.append(
                [name, row.store, round(row.throughput_kops, 1),
                 round(row.p50_us, 1), round(row.p999_us, 1)]
            )
            results[(name, row.store)] = row
    return rows, results


def test_fig13_gadget_workloads(benchmark, capsys):
    rows, results = benchmark.pedantic(run_all_workloads, rounds=1, iterations=1)
    emit(
        capsys,
        ["workload", "store", "kops", "p50 us", "p99.9 us"],
        rows,
        "Figure 13: all eleven Gadget workloads across stores",
    )
    summary = []
    rocks_outperformed = 0
    for name in WORKLOADS:
        rocks = results[(name, "rocksdb")].throughput_kops
        faster = results[(name, "faster")].throughput_kops
        bdb = results[(name, "berkeleydb")].throughput_kops
        if faster > rocks and bdb > rocks:
            rocks_outperformed += 1
        winner = max(STORES, key=lambda s: results[(name, s)].throughput_kops)
        summary.append([name, winner, round(rocks, 1), round(faster, 1), round(bdb, 1)])
    emit(
        capsys,
        ["workload", "winner", "rocksdb", "faster", "berkeleydb"],
        summary,
        "Figure 13 summary: who wins each workload",
    )
    with capsys.disabled():
        print(
            f"RocksDB outperformed by both FASTER and BerkeleyDB on "
            f"{rocks_outperformed}/11 workloads (paper: 6/11)"
        )
    # Paper: RocksDB beaten by BOTH FASTER and BerkeleyDB on the
    # non-holistic workloads (six of eleven on the authors' testbed;
    # at Python op-cost scale the exact crossovers shift slightly, see
    # EXPERIMENTS.md).
    assert rocks_outperformed >= 4
    # FASTER wins the incremental workloads decisively.
    for name in ("tumbling-incremental", "sliding-incremental",
                  "continuous-aggregation", "interval-join"):
        assert (
            results[(name, "faster")].throughput_kops
            > results[(name, "rocksdb")].throughput_kops
        ), name
    # The LSM stores win dense holistic windows (lazy merges beat
    # read-copy-update of growing buckets).
    for name in ("tumbling-holistic", "sliding-holistic", "sliding-join"):
        lsm_best = max(
            results[(name, "rocksdb")].throughput_kops,
            results[(name, "lethe")].throughput_kops,
        )
        assert lsm_best > results[(name, "faster")].throughput_kops, name
        assert lsm_best > results[(name, "berkeleydb")].throughput_kops, name
    # Robustness: the LSM stores' tails stay bounded on every workload.
    for name in WORKLOADS:
        assert results[(name, "rocksdb")].p999_us < 5_000, name
