"""Background-maintenance benchmark: inline vs worker flush/compaction.

Replays a paced 100%-put ingest trace against the LSM store across a
grid of

* **mode** -- ``inline`` (flush + compaction absorbed synchronously by
  whichever write crosses the trigger) vs ``background`` (immutable
  memtables drained by a flush worker, compaction driven by a policy
  worker, writers pausing only at the write-stall gate),
* **compaction policy** -- leveled / tiered / universal, and
* **memtable size** -- a small buffer (flushes more frequent than the
  p99 boundary, so inline p99 *must* capture maintenance cost) and a
  large one (few flushes; maintenance only visible past p99.9).

Design notes, each load-bearing on a 1-CPU GIL runtime:

* **Paced replay** (``service_rate``): an open-loop arrival process is
  the realistic regime for tail-latency claims -- closed-loop replay
  lets a slow op delay all subsequent arrivals, and coordinated
  omission hides exactly the bursts this benchmark measures.  The
  replayer stamps op latency after the pacing sleep, so each op's
  latency is its service time.
* **MemoryStorage**: file I/O releases the GIL mid-op, which lets a
  GIL-waiting worker thread steal a slice *inside* a foreground op and
  charge maintenance time to it.  Memory ops are GIL-atomic, so worker
  interference lands between ops (absorbed by pacing slack) or at the
  explicit stall gate -- never silently inside an unrelated op.
* **Raw latency**: the replayer's usual ``take_background_ns``
  subtraction is disabled through a wrapper, so inline cells pay their
  synchronous flush/compaction bursts inside op latency and background
  cells pay their write stalls.  The p99 comparison is then exactly
  the paper's question: how much foreground tail latency does moving
  maintenance off the write path buy?

Every cell is the median of ``REPS`` runs by p99 (pacing pins
throughput, so latency is the stable ranking key).  Writes
``BENCH_compaction.json`` next to the repo root.

Run:  PYTHONPATH=src python benchmarks/bench_compaction.py [--smoke]
"""

from __future__ import annotations

import json
import random

from _harness import SMOKE, env_block, median_run, one_cpu_note, scaled, write_bench

from repro.core import TraceReplayer  # noqa: E402
from repro.kvstores import connect  # noqa: E402
from repro.kvstores.lsm import LSMConfig, RocksLSMStore  # noqa: E402
from repro.kvstores.storage import MemoryStorage  # noqa: E402
from repro.trace import AccessTrace, OpType  # noqa: E402

MODES = ("inline", "background")
POLICIES = ("leveled", "tiered", "universal")
#: (write_buffer_bytes, paced arrival rate ops/s).  4K floods ~1.9% of
#: ops with a flush (above the 1% p99 boundary); 32K flushes ~0.2% of
#: ops (maintenance visible only past p99.9).
CELLS = ((4 * 1024, 1200.0), (32 * 1024, 2000.0))
SEED = 42
VALUE_SIZE = 64
NUM_KEYS = 2_000

OPS = scaled(10_000, 2_000)
REPS = scaled(5, 1)


def make_trace(ops: int) -> AccessTrace:
    """Pure ingest: 100% puts over uniform keys -- the maintenance-heavy
    shape where flushes and compactions dominate the write path."""
    rng = random.Random(SEED)
    trace = AccessTrace()
    for i in range(ops):
        key = b"key%06d" % rng.randrange(NUM_KEYS)
        trace.record(OpType.PUT, key, VALUE_SIZE, i)
    return trace


class RawLatencyConnector:
    """Pass-through that hides ``take_background_ns`` from the replayer.

    The replayer normally subtracts maintenance time pro-rata from op
    latencies; this benchmark measures the *client-observed* latency,
    so inline maintenance bursts and background write stalls must stay
    inside the percentiles.
    """

    def __init__(self, inner) -> None:
        self._inner = inner

    def take_background_ns(self) -> int:
        self._inner.take_background_ns()  # drain so nothing accumulates
        return 0

    def __getattr__(self, name):
        return getattr(self._inner, name)


def run_cell(policy: str, write_buffer: int, rate: float, background: bool, trace):
    store = RocksLSMStore(
        LSMConfig(
            write_buffer_size=write_buffer,
            compaction_policy=policy,
            background=background,
            max_immutable_memtables=8,
        ),
        storage=MemoryStorage(),
    )
    connector = connect(store)
    try:
        replayer = TraceReplayer(RawLatencyConnector(connector), service_rate=rate)
        result = replayer.replay(trace)
        summary = result.summary()
        return {
            "throughput_kops": summary["throughput_kops"],
            "p50_us": summary["p50_us"],
            "p99_us": summary["p99_us"],
            "p999_us": summary["p99.9_us"],
            "write_stalls": store.write_stall_count,
            "stall_ms": round(store.write_stall_ns / 1e6, 3),
            "compactions": store.stats.compactions,
        }
    finally:
        connector.close()


def main():
    trace = make_trace(OPS)

    grid = {}
    for policy in POLICIES:
        per_buffer = {}
        for write_buffer, rate in CELLS:
            cells = {}
            for mode in MODES:
                # median by p99: pacing pins throughput, so tail
                # latency is the quantity under test
                cell = median_run(
                    lambda: run_cell(
                        policy, write_buffer, rate, mode == "background", trace
                    ),
                    REPS,
                    key="p99_us",
                )
                for key in ("throughput_kops", "p50_us", "p99_us", "p999_us"):
                    cell[key] = round(cell[key], 1)
                cells[mode] = cell
                print(
                    f"  {policy:<10} buf {write_buffer // 1024:>3}K "
                    f"{mode:<10}: p50={cell['p50_us']:>6.1f}us "
                    f"p99={cell['p99_us']:>7.1f}us "
                    f"p99.9={cell['p999_us']:>8.1f}us "
                    f"stalls={cell['write_stalls']} "
                    f"stall_ms={cell['stall_ms']}"
                )
            cells["arrival_rate_ops_s"] = rate
            cells["inline_over_background_p99"] = round(
                cells["inline"]["p99_us"] / max(cells["background"]["p99_us"], 0.001),
                2,
            )
            cells["inline_over_background_p999"] = round(
                cells["inline"]["p999_us"]
                / max(cells["background"]["p999_us"], 0.001),
                2,
            )
            per_buffer[str(write_buffer)] = cells
        grid[policy] = per_buffer

    small, large = (str(buf) for buf, _ in CELLS)
    claims = {
        "inline_over_background_p99_leveled_small_buffer":
            grid["leveled"][small]["inline_over_background_p99"],
        "inline_over_background_p99_tiered_small_buffer":
            grid["tiered"][small]["inline_over_background_p99"],
        "inline_over_background_p999_leveled_large_buffer":
            grid["leveled"][large]["inline_over_background_p999"],
        "background_write_stalls_leveled_small_buffer":
            grid["leveled"][small]["background"]["write_stalls"],
        "background_stall_ms_leveled_small_buffer":
            grid["leveled"][small]["background"]["stall_ms"],
    }

    results = {
        "env": env_block(),
        "method": {
            "modes": list(MODES),
            "policies": list(POLICIES),
            "cells": [list(cell) for cell in CELLS],
            "reps_per_cell": REPS,
            "aggregation": "median by p99_us (pacing pins throughput)",
            "operations": OPS,
            "value_size": VALUE_SIZE,
            "num_keys": NUM_KEYS,
            "storage": (
                "MemoryStorage: GIL-atomic ops keep worker interference "
                "out of unrelated foreground op latencies (file I/O "
                "releases the GIL mid-op and would smear maintenance "
                "time across ops)"
            ),
            "latency": (
                "raw client-observed, open-loop paced arrivals: the "
                "replayer's take_background_ns subtraction is disabled, "
                "so inline cells include their synchronous "
                "flush/compaction bursts and background cells include "
                "their write stalls"
            ),
        },
        "note": one_cpu_note(
            "worker threads share one core and the GIL with the "
            "writer, so background mode wins by duty-cycling "
            "maintenance into the pacing gaps between arrivals instead "
            "of absorbing a whole flush or compaction inside one "
            "unlucky op; when the worker cannot keep up the "
            "write-stall gate blocks the writer and that stall time is "
            "counted (write_stalls / stall_ms), not hidden."
        ),
        "workload": {"name": "ingest_100put", "operations": OPS},
        "grid": grid,
        "claims": claims,
    }

    write_bench("compaction", results)
    print(json.dumps(claims, indent=2))

    if not SMOKE:
        assert claims["inline_over_background_p99_leveled_small_buffer"] >= 1.2, (
            "background maintenance should cut p99 on maintenance-heavy "
            "ingest by at least 1.2x"
        )
    return results


if __name__ == "__main__":
    main()
