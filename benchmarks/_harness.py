"""Shared boilerplate for the ``bench_*.py`` scripts.

Every benchmark repeats the same scaffolding: make ``src/`` importable
when run as a plain script, parse ``--smoke`` (CI runs the full
pipeline on shrunken inputs), aggregate repetitions by median, stamp
the environment block, spell out the 1-CPU caveat, and write
``BENCH_<name>.json`` next to the repo root.  That scaffolding lives
here once; the benchmarks keep only what they actually measure.

Importing this module has the side effect of putting ``src/`` on
``sys.path`` -- it must be the first repo import in every benchmark.
"""

from __future__ import annotations

import json
import os
import platform
import sys

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
_SRC = os.path.join(REPO_ROOT, "src")
if _SRC not in sys.path:
    sys.path.insert(0, _SRC)

#: smoke mode shrinks every input so CI can validate the pipeline
SMOKE = "--smoke" in sys.argv


def scaled(full: int, smoke: int) -> int:
    """Pick the full-size or smoke-size value for a tunable."""
    return smoke if SMOKE else full


def median_run(runner, reps: int, key: str = "throughput_kops") -> dict:
    """Run ``runner()`` ``reps`` times, return the median cell by ``key``.

    Single runs are noisy (flush/compaction alignment, scheduler
    jitter); the median of an odd number of reps is stable.  ``key``
    selects the aggregation axis: throughput for unpaced replays, p99
    for paced ones where pacing pins throughput.
    """
    runs = [runner() for _ in range(reps)]
    runs.sort(key=lambda r: r[key])
    return runs[len(runs) // 2]


def env_block() -> dict:
    """The ``env`` stanza every BENCH json carries."""
    return {
        "python": platform.python_version(),
        "cpu_count": os.cpu_count(),
        "smoke": SMOKE,
    }


def one_cpu_note(detail: str) -> str:
    """The honest-measurement caveat, with a bench-specific tail.

    Containers here typically expose one CPU: client, server threads,
    and stores time-slice a single core under the GIL, so relative
    orderings and mechanisms are meaningful while absolute numbers are
    a single-core artifact.
    """
    return (
        f"MEASURED ON {os.cpu_count()} CPU(S). Single-process numbers: "
        f"{detail} Absolute figures are not comparable across machines "
        f"and must be re-measured on a multi-core host before being "
        f"quoted."
    )


def write_bench(name: str, results: dict) -> str:
    """Write ``BENCH_<name>.json`` at the repo root; returns the path.

    Stamps a ``run`` stanza (schema version, monotonically-derived run
    id, git SHA) so the file joins the results-lake trajectory;
    ``repro lake import`` also accepts legacy unstamped files.  With
    ``REPRO_LAKE`` set, the file is additionally appended to that lake
    -- failures there warn rather than discard a finished measurement.
    """
    from repro.lake import RECORD_SCHEMA_VERSION, git_sha, next_run_id

    results = dict(results)
    results["run"] = {
        "schema": RECORD_SCHEMA_VERSION,
        "run_id": next_run_id(),
        "git_sha": git_sha(REPO_ROOT),
        "bench": name,
    }
    path = os.path.join(REPO_ROOT, f"BENCH_{name}.json")
    with open(path, "w") as handle:
        json.dump(results, handle, indent=2)
        handle.write("\n")
    print(f"\nwrote {path}")
    lake_dir = os.environ.get("REPRO_LAKE")
    if lake_dir:
        try:
            from repro.lake import ResultsLake, ingest_bench, lake_path

            lake = ResultsLake(lake_path(lake_dir))
            rows = ingest_bench(lake, path)
            print(f"appended {rows} rows to lake {lake_dir}")
        except Exception as exc:  # noqa: BLE001 - results already on disk
            print(f"warning: lake append failed: {exc}", file=sys.stderr)
    return path
