"""Figure 5: locality and ephemerality of streaming state workloads
(Borg), for the three representative operators.

Paper claims: real traces have far lower average stack distance and far
fewer unique key sequences than their shuffled counterparts; window
state working sets drain, aggregation working sets grow.
"""

import random

from conftest import emit
from repro.analysis import (
    average_stack_distance,
    total_unique_sequences,
    working_set_over_time,
)
from repro.streaming import (
    ContinuousAggregation,
    IntervalJoinOperator,
    RuntimeConfig,
    TumblingWindows,
    WindowOperator,
    run_operator,
)
from repro.trace import shuffled_trace

RCFG = RuntimeConfig(interleave="time")


def run_locality(tasks, jobs):
    operators = [
        ("Aggregation", lambda: ContinuousAggregation(), 1),
        ("Tumbling-Incr", lambda: WindowOperator(TumblingWindows(5000)), 1),
        ("Interval-Join", lambda: IntervalJoinOperator(120_000, 180_000), 2),
    ]
    rng = random.Random(11)
    rows = []
    details = {}
    for name, factory, inputs in operators:
        streams = [tasks] if inputs == 1 else [tasks, jobs]
        trace = run_operator(factory(), streams, RCFG)
        shuffled = shuffled_trace(trace, rng)
        avg_real = average_stack_distance(trace.key_sequence())
        avg_shuf = average_stack_distance(shuffled.key_sequence())
        seq_real = total_unique_sequences(trace.key_sequence(), 10)
        seq_shuf = total_unique_sequences(shuffled.key_sequence(), 10)
        ws = [size for _, size in working_set_over_time(trace, 100)]
        rows.append(
            [name, round(avg_real, 1), round(avg_shuf, 1), seq_real, seq_shuf,
             max(ws), ws[-1]]
        )
        details[name] = ws
    return rows, details


def test_fig5_locality(benchmark, capsys, borg):
    rows, working_sets = benchmark.pedantic(
        run_locality, args=borg, rounds=1, iterations=1
    )
    emit(
        capsys,
        ["operator", "stackdist", "stackdist(shuf)", "uniq-seq",
         "uniq-seq(shuf)", "ws-max", "ws-final"],
        rows,
        "Figure 5: locality and ephemerality (Borg)",
    )
    for row in rows:
        name, avg_real, avg_shuf, seq_real, seq_shuf, ws_max, ws_final = row
        # Temporal locality: much lower stack distances than chance.
        assert avg_real < avg_shuf / 2, name
        # Spatial locality: fewer unique sequences than chance.
        assert seq_real < seq_shuf, name
    by_name = {r[0]: r for r in rows}
    # Windows are ephemeral: the working set drains at the end.
    assert by_name["Tumbling-Incr"][6] < by_name["Tumbling-Incr"][5] / 2
    # Aggregation state only grows.
    agg_ws = working_sets["Aggregation"]
    assert agg_ws[-1] == max(agg_ws)
