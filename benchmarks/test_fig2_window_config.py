"""Figure 2: effect of window length / session gap on workload
composition (Taxi).

Paper claim: smaller window lengths and session gaps produce a higher
proportion of delete operations, because windows hold fewer updates and
expire more often.
"""

from conftest import emit
from repro.analysis import composition_of
from repro.streaming import (
    RuntimeConfig,
    SessionWindowOperator,
    TumblingWindows,
    WindowOperator,
    run_operator,
)

RCFG = RuntimeConfig(interleave="time")

WINDOW_LENGTHS_MS = [1_000, 5_000, 30_000, 60_000]
SESSION_GAPS_MS = [30_000, 120_000, 600_000]


def sweep(trips):
    rows = []
    for length in WINDOW_LENGTHS_MS:
        trace = run_operator(WindowOperator(TumblingWindows(length)), [trips], RCFG)
        comp = composition_of(trace)
        rows.append([f"tumbling {length // 1000}s", comp.get, comp.put,
                     comp.merge, comp.delete])
    for gap in SESSION_GAPS_MS:
        trace = run_operator(SessionWindowOperator(gap), [trips], RCFG)
        comp = composition_of(trace)
        rows.append([f"session gap {gap // 1000}s", comp.get, comp.put,
                     comp.merge, comp.delete])
    return rows


def test_fig2_window_config(benchmark, capsys, taxi):
    trips, _ = taxi
    rows = benchmark.pedantic(sweep, args=(trips,), rounds=1, iterations=1)
    emit(
        capsys,
        ["configuration", "GET", "PUT", "MERGE", "DELETE"],
        rows,
        "Figure 2: window configuration vs composition (Taxi)",
    )
    window_deletes = [r[4] for r in rows[: len(WINDOW_LENGTHS_MS)]]
    session_deletes = [r[4] for r in rows[len(WINDOW_LENGTHS_MS):]]
    # Smaller windows -> strictly more deletes.
    assert all(a >= b for a, b in zip(window_deletes, window_deletes[1:]))
    # Smaller session gaps -> more deletes.
    assert session_deletes[0] >= session_deletes[-1]
