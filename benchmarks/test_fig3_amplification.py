"""Figure 3: event and keyspace amplification for the Borg stream.

Paper claims: all operators except tumbling-holistic generate at least
2 state accesses per event; all operators amplify the key space except
continuous aggregation (exactly 1.0).
"""

from conftest import emit
from repro.analysis import combined_amplification, measure_amplification
from repro.streaming import (
    ContinuousAggregation,
    ContinuousJoinOperator,
    IntervalJoinOperator,
    RuntimeConfig,
    SessionWindowOperator,
    SlidingWindows,
    TumblingWindows,
    WindowOperator,
    run_operator,
)

RCFG = RuntimeConfig(interleave="time")


def run_amplification(tasks, jobs):
    operators = [
        ("Tumbling-Incr", lambda: WindowOperator(TumblingWindows(5000)), 1),
        ("Tumbling-Hol", lambda: WindowOperator(TumblingWindows(5000), holistic=True), 1),
        ("Sliding-Incr", lambda: WindowOperator(SlidingWindows(5000, 1000)), 1),
        ("Sliding-Hol", lambda: WindowOperator(SlidingWindows(5000, 1000), holistic=True), 1),
        ("Session-Incr", lambda: SessionWindowOperator(120_000), 1),
        ("Join-Interval", lambda: IntervalJoinOperator(120_000, 180_000), 2),
        ("Join-Cont", lambda: ContinuousJoinOperator({"finish"}), 2),
        ("Aggregation", lambda: ContinuousAggregation(), 1),
    ]
    rows = []
    for name, factory, inputs in operators:
        streams = [tasks] if inputs == 1 else [tasks, jobs]
        trace = run_operator(factory(), streams, RCFG)
        if inputs == 1:
            amp = measure_amplification(tasks, trace)
        else:
            amp = combined_amplification(streams, trace)
        rows.append(
            [name, round(amp.event_amplification, 2),
             round(amp.keyspace_amplification, 2),
             amp.distinct_input_keys, amp.distinct_state_keys]
        )
    return rows


def test_fig3_amplification(benchmark, capsys, borg):
    tasks, jobs = borg
    rows = benchmark.pedantic(run_amplification, args=borg, rounds=1, iterations=1)
    emit(
        capsys,
        ["operator", "event-amp", "key-amp", "input-keys", "state-keys"],
        rows,
        "Figure 3: event and keyspace amplification (Borg)",
    )
    by_name = {r[0]: r for r in rows}
    # >= 2 accesses per event for all but tumbling-holistic.
    for name, row in by_name.items():
        if name != "Tumbling-Hol":
            assert row[1] >= 1.9, name
    # Sliding windows amplify ~2x the window/slide ratio.
    assert by_name["Sliding-Incr"][1] > 4 * by_name["Tumbling-Incr"][1] / 1.2
    # Aggregation is exactly (2.0 events, 1.0 keys).
    assert by_name["Aggregation"][1] == 2.0
    assert by_name["Aggregation"][2] == 1.0
    # Time-based operators amplify the key space.
    assert by_name["Tumbling-Incr"][2] > 1.0
    assert by_name["Join-Interval"][2] > 1.0
