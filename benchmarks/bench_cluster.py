"""Cluster-mode benchmark: ack-level cost and failover latency.

Replays one mixed trace through four serving topologies:

* **local** -- in-process connector, the no-network floor every other
  number sits on top of.
* **remote-1** -- one :class:`StoreServer` behind one client: the cost
  of a loopback round trip per op.
* **3x1@-** -- three partitions, no replicas: partitioned round trips,
  no replication.
* **3x2@none / one / all** -- three partitions, one replica each, at
  the three ack levels: what synchronous chain replication costs per
  acked write versus fire-and-forget.

A final **failover** cell runs :func:`evaluate_cluster_recovery` with a
seeded primary kill mid-replay and reports the client-observed failover
latency, recovery wall-clock, and the lost-ack window -- the robustness
numbers the chaos harness exists to measure.

**Read the caveat in the JSON before quoting numbers**: this container
exposes ONE CPU, so servers, replicas, and the client time-slice a
single core.  Ack-level *ordering* (none <= one <= all cost) and the
failover-latency *mechanism* are meaningful; absolute throughput is a
single-core artifact and must be re-measured on a multi-core host.

Writes ``BENCH_cluster.json`` next to the repo root.

Run:  PYTHONPATH=src python benchmarks/bench_cluster.py [--smoke]
"""

from __future__ import annotations

import random

from _harness import env_block, median_run, one_cpu_note, scaled, write_bench

from repro.cluster import (  # noqa: E402
    ClusterConfig,
    ClusterConnector,
    StoreCluster,
    evaluate_cluster_recovery,
)
from repro.core import TraceReplayer  # noqa: E402
from repro.faults import ClusterAction, ClusterFaultPlan, RetryPolicy  # noqa: E402
from repro.kvstores import InMemoryStore, connect, create_store  # noqa: E402
from repro.kvstores.remote import RemoteStoreClient, StoreServer  # noqa: E402
from repro.trace import AccessTrace, OpType  # noqa: E402

SEED = 42
VALUE_SIZE = 64
NUM_KEYS = 2_000
STORE = "memory"  # bounds protocol cost, not store cost

OPS = scaled(20_000, 2_000)
REPS = scaled(3, 1)

RETRY = RetryPolicy(max_attempts=5, base_delay_s=0.0, jitter=0.0)


def make_trace(ops: int) -> AccessTrace:
    """Mixed workload (70% put / 20% get / 10% merge), uniform keys."""
    rng = random.Random(SEED)
    trace = AccessTrace()
    for i in range(ops):
        key = b"key%06d" % rng.randrange(NUM_KEYS)
        draw = rng.random()
        if draw < 0.7:
            trace.record(OpType.PUT, key, VALUE_SIZE, i)
        elif draw < 0.9:
            trace.record(OpType.GET, key, 0, i)
        else:
            trace.record(OpType.MERGE, key, VALUE_SIZE, i)
    return trace


def _summary(result):
    summary = result.summary()
    return {
        "throughput_kops": summary["throughput_kops"],
        "p50_us": summary["p50_us"],
        "p99_us": summary["p99_us"],
    }


def run_local(trace):
    connector = connect(InMemoryStore())
    try:
        return _summary(TraceReplayer(connector, use_histograms=True).replay(trace))
    finally:
        connector.close()


def run_remote_single(trace):
    with StoreServer(create_store(STORE)) as server:
        host, port = server.address
        with RemoteStoreClient(host, port, store_name=STORE) as client:
            result = TraceReplayer(client, use_histograms=True).replay(trace)
    return _summary(result)


def run_cluster(trace, partitions, replicas, ack):
    config = ClusterConfig(partitions=partitions, replicas=replicas, ack=ack)
    with StoreCluster(config) as cluster:
        with ClusterConnector(cluster, retry_policy=RETRY) as connector:
            result = TraceReplayer(connector, use_histograms=True).replay(trace)
    return _summary(result)


def run_failover(trace):
    chaos = ClusterFaultPlan(
        actions=(
            ClusterAction(at=len(trace) // 2, action="kill", target="primary:0"),
        )
    )
    result = evaluate_cluster_recovery(
        trace, partitions=3, replicas=1, ack="all", chaos=chaos, retry_policy=RETRY
    )
    return {
        "failovers": result.failovers,
        "failover_ms": [round(ms, 3) for ms in result.failover_ms],
        "recovery_ms": round(result.recovery_ms, 3),
        "lost_ack_window": result.lost_ack_window,
        "replication_lag_ms": round(result.replication_lag_ms, 3),
        "mismatches": result.mismatches,
        "recovered_ok": result.recovered_ok,
    }


MODES = {
    "local": lambda trace: run_local(trace),
    "remote-1": lambda trace: run_remote_single(trace),
    "3x1@-": lambda trace: run_cluster(trace, 3, 0, "none"),
    "3x2@none": lambda trace: run_cluster(trace, 3, 1, "none"),
    "3x2@one": lambda trace: run_cluster(trace, 3, 1, "one"),
    "3x2@all": lambda trace: run_cluster(trace, 3, 1, "all"),
}


def main():
    trace = make_trace(OPS)
    print(f"cluster benchmark: {OPS} ops, store={STORE}, reps={REPS}")

    modes = {}
    base = None
    for label, runner in MODES.items():
        cell = median_run(lambda: runner(trace), REPS)
        if base is None:
            base = cell["throughput_kops"]
        cell["relative_to_local"] = round(cell["throughput_kops"] / base, 3)
        for key in ("throughput_kops", "p50_us", "p99_us"):
            cell[key] = round(cell[key], 1)
        modes[label] = cell
        print(
            f"  {label:<10} {cell['throughput_kops']:>8.1f} kops "
            f"({cell['relative_to_local']:.3f}x local)  "
            f"p50={cell['p50_us']:.1f}us p99={cell['p99_us']:.1f}us"
        )

    failover = run_failover(trace)
    print(
        f"  failover   recovery={failover['recovery_ms']}ms "
        f"failover_ms={failover['failover_ms']} "
        f"lost_ack={failover['lost_ack_window']} "
        f"recovered_ok={failover['recovered_ok']}"
    )

    results = {
        "env": env_block(),
        "method": {
            "ops": OPS,
            "store": STORE,
            "reps_per_cell": REPS,
            "aggregation": "median by throughput",
            "topologies": list(MODES),
            "failover_scenario": (
                "3 partitions, RF=2, ack=all; seeded plan kills the "
                "partition-0 primary at the trace midpoint; client "
                "failover latency measured from error to promotion"
            ),
        },
        "caveat": one_cpu_note(
            "servers, replicas, and the client time-slice a single "
            "core, so absolute throughput is a scheduling artifact; "
            "the ack-level cost ordering (none <= one <= all) and the "
            "failover-latency mechanism are the portable results."
        ),
        "modes": modes,
        "failover": failover,
    }
    write_bench("cluster", results)


if __name__ == "__main__":
    main()
