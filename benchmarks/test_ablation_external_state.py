"""Ablation: embedded vs external state management (paper §8 / intro).

The paper's introduction cites evidence that moving state out of the
process costs up to an order of magnitude in latency; its section 8
sketches how Gadget extends to external stores.  This bench runs the
same Gadget workload against an embedded store and the same store
behind a localhost socket.
"""

from conftest import emit
from repro.core import GadgetConfig, SourceConfig, TraceReplayer, generate_workload_trace
from repro.kvstores import StoreServer, create_connector, create_store
from repro.kvstores.remote import RemoteStoreClient


def run_comparison():
    trace = generate_workload_trace(
        "continuous-aggregation",
        [SourceConfig(num_events=10_000)],
        GadgetConfig(),
    )
    rows = []
    results = {}
    for store_name in ("rocksdb", "faster"):
        embedded = TraceReplayer(create_connector(store_name)).replay(trace)
        with StoreServer(create_store(store_name)) as server:
            host, port = server.address
            with RemoteStoreClient(host, port, store_name) as client:
                external = TraceReplayer(client).replay(trace)
        for deployment, result in (("embedded", embedded), ("external", external)):
            rows.append(
                [store_name, deployment,
                 round(result.throughput_ops / 1000, 1),
                 round(result.latency_percentile(50), 1),
                 round(result.latency_percentile(99.9), 1)]
            )
        results[store_name] = (embedded, external)
    return rows, results


def test_ablation_external_state(benchmark, capsys):
    rows, results = benchmark.pedantic(run_comparison, rounds=1, iterations=1)
    emit(
        capsys,
        ["store", "deployment", "kops", "p50 us", "p99.9 us"],
        rows,
        "Ablation: embedded vs external state management",
    )
    for store_name, (embedded, external) in results.items():
        # The IPC hop costs each access dearly -- the reason embedded
        # stores are the streaming default.
        assert external.throughput_ops < embedded.throughput_ops / 2, store_name
        assert external.latency_percentile(50) > embedded.latency_percentile(50)
