"""Pipelined remote I/O benchmark: in-flight window depth ladder.

Replays one mixed trace at pipeline depths 1/4/16/64 against the two
networked deployments:

* **remote** -- an in-memory store behind one :class:`StoreServer`:
  the window coalesces frames into burst ``sendall`` calls and
  correlates replies FIFO, so a depth-N window pays ~1 syscall pair
  per N/2 ops instead of one pair per op.
* **cluster** -- 3 partitions, no replicas: each window flush
  scatter-gathers one ``OP_BATCH`` frame per touched partition (all
  sends before the first reply read), so k partitions cost ~1 RTT,
  not k.

Depth 1 is the synchronous baseline (same wire protocol, no window).
Each cell reports the median of ``REPS`` runs by throughput plus
**syscalls_per_op**, measured from the client's own ``send_calls`` /
``recv_calls`` counters -- the mechanism behind the speedup, and the
number that transfers to multi-core hosts even when throughput does
not.  Per-op latency stays honest: every op is stamped at submission
and completed when its reply lands, so window queueing is inside the
percentiles -- expect p50 to *rise* with depth while throughput rises
faster.

Writes ``BENCH_pipeline.json`` next to the repo root.

Run:  PYTHONPATH=src python benchmarks/bench_pipeline.py [--smoke]
"""

from __future__ import annotations

import json
import random

from _harness import SMOKE, env_block, median_run, one_cpu_note, scaled, write_bench

from repro.cluster import ClusterConfig, ClusterConnector, StoreCluster  # noqa: E402
from repro.core import TraceReplayer  # noqa: E402
from repro.faults import RetryPolicy  # noqa: E402
from repro.kvstores import InMemoryStore  # noqa: E402
from repro.kvstores.remote import RemoteStoreClient, StoreServer  # noqa: E402
from repro.trace import AccessTrace, OpType  # noqa: E402

DEPTHS = (1, 4, 16, 64)
SEED = 42
VALUE_SIZE = 64
NUM_KEYS = 2_000
PARTITIONS = 3

OPS = scaled(20_000, 2_000)
CLUSTER_OPS = scaled(10_000, 2_000)
REPS = scaled(5, 1)

RETRY = RetryPolicy(max_attempts=5, base_delay_s=0.0, jitter=0.0)


def make_trace(ops: int) -> AccessTrace:
    """Mixed workload (50% put / 40% get / 10% merge), uniform keys."""
    rng = random.Random(SEED)
    trace = AccessTrace()
    for i in range(ops):
        key = b"key%06d" % rng.randrange(NUM_KEYS)
        draw = rng.random()
        if draw < 0.5:
            trace.record(OpType.PUT, key, VALUE_SIZE, i)
        elif draw < 0.9:
            trace.record(OpType.GET, key, 0, i)
        else:
            trace.record(OpType.MERGE, key, VALUE_SIZE, i)
    return trace


def _cell(result, send_calls, recv_calls, flushes):
    summary = result.summary()
    ops = result.operations
    return {
        "throughput_kops": summary["throughput_kops"],
        "p50_us": summary["p50_us"],
        "p99_us": summary["p99_us"],
        "syscalls_per_op": round((send_calls + recv_calls) / ops, 3),
        "send_calls_per_op": round(send_calls / ops, 3),
        "recv_calls_per_op": round(recv_calls / ops, 3),
        "flushes": flushes,
    }


def run_remote(trace, depth):
    with StoreServer(InMemoryStore()) as server:
        host, port = server.address
        client = RemoteStoreClient(host, port, retry_policy=RETRY)
        try:
            result = TraceReplayer(
                client, pipeline_depth=None if depth == 1 else depth
            ).replay(trace)
            return _cell(
                result, client.send_calls, client.recv_calls,
                client.pipeline_flushes,
            )
        finally:
            client.close()


def run_cluster(trace, depth):
    config = ClusterConfig(
        partitions=PARTITIONS, replicas=0, ack="all", store="memory"
    )
    cluster = StoreCluster(config)
    try:
        connector = ClusterConnector(cluster, retry_policy=RETRY)
        try:
            result = TraceReplayer(
                connector, pipeline_depth=None if depth == 1 else depth
            ).replay(trace)
            clients = list(connector._clients.values())
            send_calls = sum(c.send_calls for c in clients)
            recv_calls = sum(c.recv_calls for c in clients)
            return _cell(
                result, send_calls, recv_calls, connector.pipeline_flushes
            )
        finally:
            connector.close()
    finally:
        cluster.stop()


MODES = {"remote": run_remote, "cluster": run_cluster}


def bench_mode(name, runner, trace):
    cells = {}
    base_kops = None
    for depth in DEPTHS:
        cell = median_run(lambda: runner(trace, depth), REPS)
        if base_kops is None:
            base_kops = cell["throughput_kops"]
        cell["speedup_vs_depth1"] = round(cell["throughput_kops"] / base_kops, 2)
        for key in ("throughput_kops", "p50_us", "p99_us"):
            cell[key] = round(cell[key], 1)
        cells[str(depth)] = cell
        print(
            f"  {name:<8} depth {depth:>3}: "
            f"{cell['throughput_kops']:>8.1f} kops "
            f"({cell['speedup_vs_depth1']:.2f}x)  "
            f"{cell['syscalls_per_op']:.2f} syscalls/op  "
            f"p50={cell['p50_us']:.1f}us p99={cell['p99_us']:.1f}us"
        )
    return cells


def main():
    trace = make_trace(OPS)
    cluster_trace = make_trace(CLUSTER_OPS)
    print(f"pipeline benchmark: {OPS} ops remote, {CLUSTER_OPS} ops "
          f"cluster, reps={REPS}")

    modes = {}
    for name, runner in MODES.items():
        modes[name] = bench_mode(
            name, runner, cluster_trace if name == "cluster" else trace
        )

    claims = {
        "remote_depth16_speedup": modes["remote"]["16"]["speedup_vs_depth1"],
        "cluster_depth16_speedup": modes["cluster"]["16"]["speedup_vs_depth1"],
        "remote_depth16_syscalls_per_op": modes["remote"]["16"][
            "syscalls_per_op"
        ],
        "remote_depth1_syscalls_per_op": modes["remote"]["1"][
            "syscalls_per_op"
        ],
    }

    results = {
        "env": env_block(),
        "method": {
            "depths": list(DEPTHS),
            "reps_per_cell": REPS,
            "aggregation": "median by throughput",
            "ops": OPS,
            "cluster_ops": CLUSTER_OPS,
            "value_size": VALUE_SIZE,
            "num_keys": NUM_KEYS,
            "cluster": f"{PARTITIONS} partitions, RF=1 (no replicas)",
            "syscalls": (
                "send_calls/recv_calls are counted by the client at "
                "every socket sendall/recv_into; syscalls_per_op is "
                "their sum over operations -- the round-trip "
                "amortization mechanism, independent of scheduling"
            ),
            "latency": (
                "per-op, arrival-stamped: each op's latency runs from "
                "its submission into the window to its reply, so window "
                "queueing is inside the percentiles; deeper windows "
                "trade per-op latency for throughput and the numbers "
                "show it"
            ),
        },
        "note": one_cpu_note(
            "client and server(s) time-slice one core, so pipelining "
            "wins by cutting syscalls and context switches per op, not "
            "by overlapping network latency with server work; on a "
            "real network the depth ladder steepens (the overlapped "
            "RTT is then physical)."
        ),
        "modes": modes,
        "claims": claims,
    }

    write_bench("pipeline", results)
    print(json.dumps(claims, indent=2))

    if not SMOKE:
        assert claims["remote_depth16_speedup"] >= 1.5, (
            "pipeline depth 16 under 1.5x on the remote store"
        )
        assert claims["cluster_depth16_speedup"] >= 1.2, (
            "pipeline depth 16 under 1.2x on the cluster"
        )
        assert (
            claims["remote_depth16_syscalls_per_op"]
            < claims["remote_depth1_syscalls_per_op"] / 3
        ), "depth 16 should cut syscalls per op by >3x"
    return results


if __name__ == "__main__":
    main()
