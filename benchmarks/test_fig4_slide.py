"""Figure 4: varying the slide of a 10-minute window (Taxi).

Paper claim: amplification is proportional to length/slide, since each
event lands in that many window buckets.
"""

from conftest import emit
from repro.analysis import measure_amplification
from repro.streaming import (
    RuntimeConfig,
    SlidingWindows,
    WindowOperator,
    run_operator,
)

RCFG = RuntimeConfig(interleave="time")
WINDOW_MS = 600_000
SLIDES_MS = [60_000, 120_000, 300_000, 600_000]


def sweep(trips):
    rows = []
    for slide in SLIDES_MS:
        operator = WindowOperator(SlidingWindows(WINDOW_MS, slide))
        trace = run_operator(operator, [trips], RCFG)
        amp = measure_amplification(trips, trace)
        ratio = WINDOW_MS // slide
        rows.append(
            [f"slide {slide // 1000}s", ratio,
             round(amp.event_amplification, 2),
             round(amp.keyspace_amplification, 2)]
        )
    return rows


def test_fig4_slide_amplification(benchmark, capsys, taxi):
    trips, _ = taxi
    rows = benchmark.pedantic(sweep, args=(trips,), rounds=1, iterations=1)
    emit(
        capsys,
        ["slide", "length/slide", "event-amp", "key-amp"],
        rows,
        "Figure 4: slide vs amplification, 10-min window (Taxi)",
    )
    # Event amplification decreases as the slide grows ...
    amps = [r[2] for r in rows]
    assert all(a > b for a, b in zip(amps, amps[1:]))
    # ... and tracks the length/slide ratio: ~2 accesses per bucket.
    for row in rows:
        assert row[2] >= 2 * row[1] * 0.9
    # Keyspace amplification also shrinks with larger slides.
    key_amps = [r[3] for r in rows]
    assert key_amps[0] > key_amps[-1]
