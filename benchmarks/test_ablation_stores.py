"""Ablation studies for the store design choices DESIGN.md calls out.

Not a paper figure -- these benches isolate the mechanisms the paper's
explanations rely on:

* **bloom filters** gate the LSM's read amplification
* **block cache size** trades memory for read latency
* **FASTER's mutable fraction** controls how many updates stay in-place
* **Lethe's delete persistence threshold** bounds tombstone lifetime
"""

import random

from conftest import emit
from repro.core import GadgetConfig, TraceReplayer, generate_workload_trace
from repro.kvstores import connect
from repro.kvstores.faster import FasterConfig, FasterStore
from repro.kvstores.lsm import LetheConfig, LetheStore, LSMConfig, RocksLSMStore


def run_ops(store, ops):
    """Apply (op, key) pairs and return the throughput in kops."""
    import time

    connector = connect(store)
    begin = time.perf_counter()
    for op, key in ops:
        if op == "put":
            connector.put(key, b"v" * 64)
        else:
            connector.get(key)
    elapsed = time.perf_counter() - begin
    return len(ops) / elapsed / 1000.0


def make_reads(n_keys=3000, n_ops=20_000, seed=3):
    """Point reads over a flushed key space, one third of them misses."""
    rng = random.Random(seed)
    keys = [f"k{i:06d}".encode() for i in range(n_keys)]
    reads = [rng.choice(keys) for _ in range(n_ops)]
    # Missing keys interleave with existing ones so only the bloom
    # filter (not the table's key range) can reject them.
    reads += [f"k{i:06d}q".encode() for i in range(n_ops // 2)]
    rng.shuffle(reads)
    return keys, reads


def test_ablation_bloom_filters(benchmark, capsys):
    """Disabling bloom filters must increase block reads per get."""
    keys, reads = make_reads()

    def run():
        import time

        rows = []
        for bits in (0, 10):
            store = RocksLSMStore(LSMConfig(bits_per_key=bits))
            for key in keys:
                store.put(key, b"v" * 128)
            store.flush()
            begin = time.perf_counter()
            for key in reads:
                store.get(key)
            elapsed = time.perf_counter() - begin
            cache = store.block_cache
            rows.append(
                [f"{bits} bits/key", round(len(reads) / elapsed / 1000, 1),
                 store.stats.bytes_read, cache.hits + cache.misses]
            )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    emit(capsys, ["bloom", "kops", "bytes read", "block accesses"], rows,
         "Ablation: LSM bloom filters (reads, 33% misses)")
    no_bloom, with_bloom = rows
    # Bloom filters cut block accesses for missing keys.
    assert with_bloom[3] < no_bloom[3]


def test_ablation_block_cache_size(benchmark, capsys):
    """Larger block caches must raise hit rates on skewed reads."""
    rng = random.Random(5)
    keys = [f"k{i:06d}".encode() for i in range(4000)]
    ops = [("put", key) for key in keys]
    ops += [("get", keys[int(rng.random() ** 3 * len(keys))]) for _ in range(30_000)]

    def run():
        rows = []
        for cache_kb in (4, 64, 512):
            store = RocksLSMStore(LSMConfig(block_cache_size=cache_kb * 1024))
            kops = run_ops(store, ops)
            cache = store.block_cache
            total = cache.hits + cache.misses
            hit_rate = cache.hits / total if total else 0.0
            rows.append([f"{cache_kb} KB", round(kops, 1), round(hit_rate, 3)])
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    emit(capsys, ["block cache", "kops", "hit rate"], rows,
         "Ablation: LSM block cache size (skewed reads)")
    hit_rates = [r[2] for r in rows]
    assert hit_rates == sorted(hit_rates)


def test_ablation_faster_mutable_fraction(benchmark, capsys):
    """A larger mutable region keeps more updates in place."""
    rng = random.Random(7)
    keys = [f"k{i:05d}".encode() for i in range(800)]
    updates = [rng.choice(keys) for _ in range(30_000)]

    def run():
        rows = []
        for fraction in (0.1, 0.5, 0.9):
            store = FasterStore(
                FasterConfig(memory_budget=64 * 1024, mutable_fraction=fraction)
            )
            for key in keys:
                store.put(key, b"v" * 32)
            for key in updates:
                store.put(key, b"w" * 32)
            stats = store.fill_stats()
            in_place = stats["in_place_updates"]
            rows.append(
                [f"{fraction:.0%}", in_place,
                 stats["appends"], round(in_place / len(updates), 3)]
            )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    emit(capsys, ["mutable fraction", "in-place", "appends", "in-place ratio"],
         rows, "Ablation: FASTER mutable region size")
    ratios = [r[3] for r in rows]
    assert ratios == sorted(ratios)
    assert ratios[-1] > ratios[0]


def test_ablation_lethe_delete_threshold(benchmark, capsys):
    """Lower delete-persistence thresholds purge tombstones sooner.

    This is the paper's section 8 observation that streaming deletes
    are predictable and compaction can exploit them.
    """

    class FakeClock:
        def __init__(self):
            self.now = 0.0

        def __call__(self):
            return self.now

    def run():
        rows = []
        for threshold in (0.0, 1e9):
            clock = FakeClock()
            store = LetheStore(
                LetheConfig(
                    write_buffer_size=8 * 1024,
                    level_base_bytes=32 * 1024,
                    target_file_size=16 * 1024,
                    delete_persistence_threshold_s=threshold,
                    fade_check_interval=500,
                ),
                clock=clock,
            )
            for i in range(3000):
                store.put(f"k{i:05d}".encode(), b"v" * 48)
            for i in range(3000):
                store.delete(f"k{i:05d}".encode())
            store.flush()
            clock.now += 100.0
            for i in range(3000):
                store.put(f"z{i:05d}".encode(), b"v" * 48)
            store.flush()
            remaining = sum(
                t.num_tombstones for level in store._levels for t in level
            )
            label = "eager (0s)" if threshold == 0.0 else "never"
            rows.append(
                [label, remaining, store.fade_compactions,
                 store.compaction_stats.tombstones_dropped]
            )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    emit(capsys, ["threshold", "tombstones left", "fade compactions",
                  "tombstones dropped"], rows,
         "Ablation: Lethe delete persistence threshold")
    eager, never = rows
    assert eager[1] <= never[1]
    assert eager[2] > 0


def test_ablation_cache_recommendation(benchmark, capsys):
    """The stack-distance cache model (section 8 extension) must
    predict the hit rate an actual LRU cache achieves."""
    from collections import OrderedDict

    from repro.analysis import recommend_cache_size
    from repro.core import SourceConfig

    def run():
        trace = generate_workload_trace(
            "tumbling-incremental",
            [SourceConfig(num_events=15_000)],
            GadgetConfig(),
        )
        recommendation = recommend_cache_size(trace, target_hit_ratio=0.8)
        assert recommendation is not None
        # Simulate an LRU key cache of the recommended size.
        lru = OrderedDict()
        hits = 0
        keys = trace.key_sequence()
        for key in keys:
            if key in lru:
                hits += 1
                lru.move_to_end(key)
            else:
                lru[key] = True
                if len(lru) > recommendation.cache_keys:
                    lru.popitem(last=False)
        measured = hits / len(keys)
        return [[recommendation.cache_keys,
                 round(recommendation.expected_hit_ratio, 3),
                 round(measured, 3)]]

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    emit(capsys, ["recommended keys", "predicted hit rate", "measured hit rate"],
         rows, "Ablation: cache-size recommendation accuracy")
    predicted, measured = rows[0][1], rows[0][2]
    assert abs(predicted - measured) < 0.01
    assert measured >= 0.8
