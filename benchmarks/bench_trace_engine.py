"""Trace-engine benchmark: columnar AccessTrace vs the seed layout.

Times generate -> save -> load -> replay on a fixed Borg-derived
workload for two trace representations:

* **columnar** -- the current struct-of-arrays :class:`AccessTrace`
  (op/value-size/timestamp columns + interned key pool) with the
  dispatch-table replay fast path.
* **seed** -- a faithful replica of the seed representation: a Python
  list of frozen per-access dataclass objects, per-record
  ``struct.pack`` file I/O, and an attribute-chasing replay loop.

Writes ``BENCH_trace_engine.json`` (ops/s per stage, speedups, trace
memory, peak RSS, sharded-replay throughput) next to the repo root so
future PRs have a perf trajectory to regress against.

Run:  PYTHONPATH=src python benchmarks/bench_trace_engine.py
"""

from __future__ import annotations

import json
import os
import resource
import struct
import sys
import time
from dataclasses import dataclass

from _harness import env_block, write_bench

from repro.core import (  # noqa: E402
    Driver,
    GadgetConfig,
    MachineContext,
    ShardedReplayer,
    TraceReplayer,
    sliding_window_model,
    synthesize_value,
)
from repro.datasets import BorgConfig, generate_borg  # noqa: E402
from repro.kvstores import create_connector  # noqa: E402
from repro.trace import AccessTrace, OpType  # noqa: E402

#: fixed workload: Borg task events through an incremental sliding window
BORG_EVENTS = 30_000
SEED = 42
SHARD_WORKERS = 4

_ENTRY = struct.Struct("<BIIq")
_OP_CODES = {OpType.GET: 0, OpType.PUT: 1, OpType.MERGE: 2, OpType.DELETE: 3}
_CODE_OPS = {code: op for op, code in _OP_CODES.items()}


# ---------------------------------------------------------------------------
# Seed-representation replica (list of frozen dataclasses, record I/O)
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class SeedAccess:
    op: OpType
    key: bytes
    value_size: int = 0
    timestamp: int = 0


class SeedTrace:
    """The seed's list-of-objects AccessTrace, for comparison."""

    def __init__(self) -> None:
        self.accesses = []

    def record(self, op, key, value_size=0, timestamp=0):
        self.accesses.append(SeedAccess(op, key, value_size, timestamp))

    def __len__(self):
        return len(self.accesses)

    def __iter__(self):
        return iter(self.accesses)

    def save(self, path):
        with open(path, "wb") as handle:
            handle.write(b"GDGT")
            handle.write(struct.pack("<HQ", 1, len(self.accesses)))
            for a in self.accesses:
                handle.write(
                    _ENTRY.pack(_OP_CODES[a.op], len(a.key), a.value_size, a.timestamp)
                    + a.key
                )

    @classmethod
    def load(cls, path):
        with open(path, "rb") as handle:
            data = handle.read()
        _, count = struct.unpack_from("<HQ", data, 4)
        offset = 4 + struct.calcsize("<HQ")
        trace = cls()
        accesses = trace.accesses
        for _ in range(count):
            code, klen, vsize, timestamp = _ENTRY.unpack_from(data, offset)
            offset += _ENTRY.size
            key = bytes(data[offset : offset + klen])
            offset += klen
            accesses.append(SeedAccess(_CODE_OPS[code], key, vsize, timestamp))
        return trace


def seed_replay(trace, connector):
    """The seed's attribute-chasing replay loop (latency measured)."""
    latencies = {op: [] for op in OpType}
    timer = time.perf_counter_ns
    started = time.perf_counter()
    for access in trace:
        op = access.op
        begin = timer()
        if op is OpType.GET:
            connector.get(access.key)
        elif op is OpType.PUT:
            connector.put(access.key, synthesize_value(access.value_size))
        elif op is OpType.MERGE:
            connector.merge(access.key, synthesize_value(access.value_size))
        else:
            connector.delete(access.key)
        elapsed_ns = timer() - begin - connector.take_background_ns()
        latencies[op].append(max(0, elapsed_ns))
    return time.perf_counter() - started


# ---------------------------------------------------------------------------


def make_driver(workload_cls=None):
    tasks, _ = generate_borg(BorgConfig(target_events=BORG_EVENTS, seed=SEED))
    model = sliding_window_model(5000, 1000, value_size=64)
    driver = Driver(model, [tasks], GadgetConfig(interleave="time"))
    if workload_cls is not None:
        driver.workload = workload_cls()
        driver.ctx = MachineContext(driver.workload, model.value_size)
    return driver


def timed(fn):
    started = time.perf_counter()
    result = fn()
    return result, time.perf_counter() - started


def seed_trace_bytes(trace):
    """Deep-ish size of the seed representation (keys shared, excluded
    the same way for both representations)."""
    total = sys.getsizeof(trace.accesses)
    for access in trace.accesses:
        total += sys.getsizeof(access)
        attrs = getattr(access, "__dict__", None)
        if attrs is not None:
            total += sys.getsizeof(attrs)
    return total


def peak_rss_bytes():
    rss = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    return rss * 1024 if sys.platform != "darwin" else rss


def main():
    tmp_dir = os.environ.get("TMPDIR", "/tmp")
    columnar_path = os.path.join(tmp_dir, "bench_trace_engine_v2.gdgt")
    seed_path = os.path.join(tmp_dir, "bench_trace_engine_v1.gdgt")

    results = {
        "workload": {
            "dataset": "borg",
            "events": BORG_EVENTS,
            "operator": "sliding-window-incremental(5000,1000)",
            "seed": SEED,
        },
        "env": env_block(),
    }

    # -- columnar pipeline --------------------------------------------------
    trace, generate_s = timed(lambda: make_driver().run())
    ops = len(trace)
    _, save_s = timed(lambda: trace.save(columnar_path))
    loaded, load_s = timed(lambda: AccessTrace.load(columnar_path))
    assert len(loaded) == ops
    connector = create_connector("memory")
    # exact-mode latency lists, like the seed loop below (histogram
    # mode trades ~25% throughput for O(1) latency memory)
    replayer = TraceReplayer(connector, use_histograms=False)
    result, replay_s = timed(lambda: replayer.replay(loaded))
    connector.close()
    columnar_total = generate_s + save_s + load_s + replay_s
    results["columnar"] = {
        "operations": ops,
        "generate_s": round(generate_s, 4),
        "save_s": round(save_s, 4),
        "load_s": round(load_s, 4),
        "replay_s": round(replay_s, 4),
        "total_s": round(columnar_total, 4),
        "replay_kops": round(result.throughput_ops / 1000.0, 1),
        "trace_bytes": trace.nbytes,
        "bytes_per_op": round(trace.nbytes / ops, 2),
        "file_bytes": os.path.getsize(columnar_path),
    }

    # -- sharded replay -----------------------------------------------------
    single_rate = result.throughput_ops
    sharded = ShardedReplayer(
        lambda: create_connector("memory"),
        num_workers=SHARD_WORKERS,
        use_histograms=False,  # measurement parity with the single-thread run
    )
    sharded_result, _ = timed(lambda: sharded.replay(loaded))
    sharded.close()
    results["sharded_replay"] = {
        "workers": SHARD_WORKERS,
        "aggregate_kops": round(sharded_result.throughput_ops / 1000.0, 1),
        "single_thread_kops": round(single_rate / 1000.0, 1),
        "speedup_vs_single": round(sharded_result.throughput_ops / single_rate, 2),
        "note": (
            "thread workers; wall-clock speedup requires multiple cores "
            "and GIL-free store calls (cpu_count above)"
        ),
    }

    # -- seed-representation pipeline ---------------------------------------
    seed_trace, seed_generate_s = timed(lambda: make_driver(SeedTrace).run())
    assert len(seed_trace) == ops, "representations must generate identical traces"
    _, seed_save_s = timed(lambda: seed_trace.save(seed_path))
    seed_loaded, seed_load_s = timed(lambda: SeedTrace.load(seed_path))
    connector = create_connector("memory")
    seed_replay_s = seed_replay(seed_loaded, connector)
    connector.close()
    seed_total = seed_generate_s + seed_save_s + seed_load_s + seed_replay_s
    seed_bytes = seed_trace_bytes(seed_loaded)
    results["seed_representation"] = {
        "operations": ops,
        "generate_s": round(seed_generate_s, 4),
        "save_s": round(seed_save_s, 4),
        "load_s": round(seed_load_s, 4),
        "replay_s": round(seed_replay_s, 4),
        "total_s": round(seed_total, 4),
        "replay_kops": round(ops / seed_replay_s / 1000.0, 1),
        "trace_bytes": seed_bytes,
        "bytes_per_op": round(seed_bytes / ops, 2),
        "file_bytes": os.path.getsize(seed_path),
    }

    results["speedup"] = {
        "generate": round(seed_generate_s / generate_s, 2),
        "save": round(seed_save_s / save_s, 2),
        "load": round(seed_load_s / load_s, 2),
        "replay": round(seed_replay_s / replay_s, 2),
        "end_to_end": round(seed_total / columnar_total, 2),
        "memory_reduction": round(seed_bytes / trace.nbytes, 2),
    }
    results["peak_rss_bytes"] = peak_rss_bytes()

    for path in (columnar_path, seed_path):
        try:
            os.remove(path)
        except OSError:
            pass

    print(json.dumps(results, indent=2))
    write_bench("trace_engine", results)
    speedup = results["speedup"]
    assert speedup["end_to_end"] >= 1.0, "columnar engine slower than seed?"
    return results


if __name__ == "__main__":
    main()
