"""Multi-process sharded replay benchmark: single vs threads vs processes.

Replays one mixed trace through the three execution modes:

* **single** -- one :class:`TraceReplayer`, the baseline every other
  BENCH file reports.
* **threads** -- :class:`ShardedReplayer`, N worker threads over CRC32
  key partitions.  On CPython the GIL serializes them: this mode buys
  isolation per shard, not parallel CPU.
* **processes** -- :class:`ProcessShardedReplayer`, the same partitions
  replayed by N worker *processes* attached zero-copy to one
  shared-memory image of the trace.

Every cell is the median of ``REPS`` runs.  Process-mode elapsed time
includes process startup, shared-memory serialization, and result
transport -- the honest end-to-end cost of the mode, not just the hot
loop.

**Read the caveat in the JSON before quoting speedups**: this
container exposes ONE CPU, so the processes time-slice a single core
and process mode pays its orchestration overhead with no parallel
speedup available.  The numbers establish (a) equivalence of work
done across modes and (b) the overhead floor; the scaling claim is
architectural and must be re-measured on a multi-core host.

Writes ``BENCH_mp_replay.json`` next to the repo root.

Run:  PYTHONPATH=src python benchmarks/bench_mp_replay.py [--smoke]
"""

from __future__ import annotations

import random

from _harness import env_block, median_run, one_cpu_note, scaled, write_bench

from repro.core import (  # noqa: E402
    ConnectorSpec,
    ProcessShardedReplayer,
    ShardedReplayer,
    TraceReplayer,
)
from repro.kvstores import create_connector  # noqa: E402
from repro.trace import AccessTrace, OpType  # noqa: E402

SEED = 42
VALUE_SIZE = 64
NUM_KEYS = 2_000
STORE = "memory"  # bounds orchestration overhead, not store cost
WORKER_COUNTS = (2, 4)

OPS = scaled(60_000, 4_000)
REPS = scaled(5, 1)


def make_trace(ops: int) -> AccessTrace:
    """Mixed workload (70% put / 20% get / 10% merge), uniform keys."""
    rng = random.Random(SEED)
    trace = AccessTrace()
    for i in range(ops):
        key = b"key%06d" % rng.randrange(NUM_KEYS)
        draw = rng.random()
        if draw < 0.7:
            trace.record(OpType.PUT, key, VALUE_SIZE, i)
        elif draw < 0.9:
            trace.record(OpType.GET, key, 0, i)
        else:
            trace.record(OpType.MERGE, key, VALUE_SIZE, i)
    return trace


def _summary(result):
    summary = result.summary()
    return {
        "throughput_kops": summary["throughput_kops"],
        "p50_us": summary["p50_us"],
        "p99_us": summary["p99_us"],
    }


def run_single(trace, workers):
    replayer = TraceReplayer(create_connector(STORE), use_histograms=True)
    result = replayer.replay(trace)
    replayer.connector.close()
    return _summary(result)


def run_threads(trace, workers):
    replayer = ShardedReplayer(
        lambda: create_connector(STORE), num_workers=workers, use_histograms=True
    )
    result = replayer.replay(trace)
    replayer.close()
    return _summary(result)


def run_processes(trace, workers):
    replayer = ProcessShardedReplayer(
        ConnectorSpec.for_store(STORE), num_workers=workers
    )
    return _summary(replayer.replay(trace))


MODES = {
    "single": run_single,
    "threads": run_threads,
    "processes": run_processes,
}


def main():
    trace = make_trace(OPS)
    print(f"mp-replay benchmark: {OPS} ops, store={STORE}, reps={REPS}")

    modes = {}
    base = None
    for workers in WORKER_COUNTS:
        for mode, runner in MODES.items():
            if mode == "single" and workers != WORKER_COUNTS[0]:
                continue  # worker count is meaningless for the baseline
            cell = median_run(lambda: runner(trace, workers), REPS)
            if mode == "single":
                base = cell["throughput_kops"]
            cell["speedup_vs_single"] = round(cell["throughput_kops"] / base, 2)
            for key in ("throughput_kops", "p50_us", "p99_us"):
                cell[key] = round(cell[key], 1)
            label = "single" if mode == "single" else f"{mode}-x{workers}"
            modes[label] = cell
            print(
                f"  {label:<14} {cell['throughput_kops']:>8.1f} kops "
                f"({cell['speedup_vs_single']:.2f}x vs single)  "
                f"p50={cell['p50_us']:.1f}us p99={cell['p99_us']:.1f}us"
            )

    results = {
        "env": env_block(),
        "method": {
            "ops": OPS,
            "store": STORE,
            "worker_counts": list(WORKER_COUNTS),
            "reps_per_cell": REPS,
            "aggregation": "median by throughput",
            "elapsed": (
                "process mode includes fork, shared-memory image "
                "serialization, per-worker shard gathering, and result "
                "transport -- end-to-end cost, not hot-loop-only"
            ),
        },
        "caveat": one_cpu_note(
            "with one core the worker processes time-slice instead of "
            "running in parallel, so process mode shows pure "
            "orchestration overhead and NO speedup here; these numbers "
            "establish the overhead floor and the cross-mode "
            "equivalence of work done."
        ),
        "modes": modes,
    }
    write_bench("mp_replay", results)


if __name__ == "__main__":
    main()
