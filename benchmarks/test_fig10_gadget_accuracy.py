"""Figure 10: Gadget traces vs real traces, locality comparison.

Paper claim: for the three representative operators, Gadget produces
traces with almost identical stack-distance distributions and unique
sequence counts as the real (engine) traces.
"""

from conftest import emit
from repro.analysis import average_stack_distance, total_unique_sequences
from repro.core import GadgetConfig, generate_workload_trace
from repro.streaming import (
    ContinuousAggregation,
    RuntimeConfig,
    SlidingWindows,
    TumblingWindows,
    WindowJoinOperator,
    WindowOperator,
    run_operator,
)

RCFG = RuntimeConfig(interleave="time")
GCFG = GadgetConfig(interleave="time")


def run_accuracy(tasks, jobs):
    cases = [
        ("Aggregation", lambda: ContinuousAggregation(),
         "continuous-aggregation", 1),
        ("Tumbling-Incr", lambda: WindowOperator(TumblingWindows(5000)),
         "tumbling-incremental", 1),
        ("Sliding-Join",
         lambda: WindowJoinOperator(SlidingWindows(5000, 1000)),
         "sliding-join", 2),
    ]
    rows = []
    for name, factory, workload, inputs in cases:
        streams = [tasks] if inputs == 1 else [tasks, jobs]
        real = run_operator(factory(), streams, RCFG)
        gadget = generate_workload_trace(workload, streams, GCFG)
        rows.append(
            [name,
             len(real), len(gadget),
             round(average_stack_distance(real.key_sequence()), 1),
             round(average_stack_distance(gadget.key_sequence()), 1),
             total_unique_sequences(real.key_sequence(), 10),
             total_unique_sequences(gadget.key_sequence(), 10)]
        )
    return rows


def test_fig10_gadget_accuracy(benchmark, capsys, borg):
    rows = benchmark.pedantic(run_accuracy, args=borg, rounds=1, iterations=1)
    emit(
        capsys,
        ["operator", "ops(real)", "ops(gadget)", "stackdist(real)",
         "stackdist(gadget)", "uniqseq(real)", "uniqseq(gadget)"],
        rows,
        "Figure 10: Gadget vs real traces (Borg)",
    )
    for row in rows:
        name, len_r, len_g, sd_r, sd_g, us_r, us_g = row
        assert abs(len_r - len_g) <= 0.01 * len_r, name
        assert abs(sd_r - sd_g) <= 0.05 * max(sd_r, 1), name
        assert abs(us_r - us_g) <= 0.05 * us_r, name
