"""Ablation: how exploitable is streaming spatial locality? (paper §8)

A first-order Markov prefetcher is trained on half of each trace and
scored on the rest.  Streaming traces should be far more predictable
than their shuffles and than tuned YCSB -- the quantitative basis for
the paper's suggestion that prefetching is a promising streaming-state
optimization.
"""

import random

from conftest import emit
from repro.analysis import predictability_gain, prefetch_hit_ratio
from repro.core import GadgetConfig, generate_workload_trace
from repro.trace import shuffled_trace
from repro.ycsb import YCSBWorkload

GCFG = GadgetConfig(interleave="time")


def run_predictability(tasks, jobs):
    rng = random.Random(9)
    rows = []
    results = {}
    for workload in (
        "continuous-aggregation",
        "tumbling-incremental",
        "sliding-incremental",
        "interval-join",
    ):
        sources = [tasks] if workload != "interval-join" else [tasks, jobs]
        trace = generate_workload_trace(workload, sources, GCFG)
        real, chance = predictability_gain(
            trace, shuffled_trace(trace, rng)
        )
        rows.append([workload, round(real, 3), round(chance, 3)])
        results[workload] = (real, chance)
    ycsb = YCSBWorkload.core("A", operation_count=30_000).generate()
    ycsb_ratio = prefetch_hit_ratio(ycsb).hit_ratio
    rows.append(["ycsb-A (zipfian)", round(ycsb_ratio, 3), "-"])
    results["ycsb"] = (ycsb_ratio, ycsb_ratio)
    return rows, results


def test_ablation_prefetch_predictability(benchmark, capsys, borg):
    rows, results = benchmark.pedantic(
        run_predictability, args=borg, rounds=1, iterations=1
    )
    emit(
        capsys,
        ["workload", "prefetch hit ratio", "shuffled baseline"],
        rows,
        "Ablation: next-key predictability (Markov prefetcher)",
    )
    for workload, (real, chance) in results.items():
        if workload == "ycsb":
            continue
        assert real > chance, workload
    # Streaming traces beat tuned YCSB's predictability handily.
    assert results["tumbling-incremental"][0] > 2 * results["ycsb"][0]
    assert results["tumbling-incremental"][0] > 0.4
