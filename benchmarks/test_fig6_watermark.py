"""Figure 6: watermark frequency vs working set size (Azure,
incremental tumbling window).

Paper claim: slow watermarks (one per 1K events instead of one per 100)
keep windows in the store longer, growing the maximum working set by up
to ~3x.
"""

from conftest import emit
from repro.analysis import working_set_over_time
from repro.streaming import (
    RuntimeConfig,
    TumblingWindows,
    WindowOperator,
    run_operator,
)

FREQUENCIES = [100, 1000]


def sweep(events):
    results = []
    for frequency in FREQUENCIES:
        operator = WindowOperator(TumblingWindows(5000))
        run_operator(
            operator, [events],
            RuntimeConfig(interleave="time", watermark_frequency=frequency),
        )
        sizes = [s for _, s in working_set_over_time(operator.trace, 100)]
        results.append(
            [f"wm every {frequency}", max(sizes),
             round(sum(sizes) / len(sizes), 1)]
        )
    return results


def test_fig6_watermark_frequency(benchmark, capsys, azure):
    rows = benchmark.pedantic(sweep, args=(azure,), rounds=1, iterations=1)
    emit(
        capsys,
        ["watermark frequency", "max working set", "mean working set"],
        rows,
        "Figure 6: watermark frequency vs working set (Azure, tumbling-incr)",
    )
    fast_max, slow_max = rows[0][1], rows[1][1]
    # Slow watermarks clearly grow the working set (paper: up to 3x).
    assert slow_max > 1.5 * fast_max
