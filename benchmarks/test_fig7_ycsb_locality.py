"""Figure 7 + Table 3: tuned YCSB traces vs real streaming traces.

Paper claims:

* YCSB-latest (temporal locality) shows poor spatial locality, close
  to the shuffled trace; YCSB-sequential (spatial) distorts temporal
  locality; neither matches the real trace on both metrics.
* Real streaming workloads have far shorter key TTLs than the closest
  YCSB workloads (Table 3), and YCSB traces contain many single-access
  keys, which never happens in streaming traces.
"""

import random

from conftest import emit
from repro.analysis import (
    average_stack_distance,
    single_access_key_fraction,
    total_unique_sequences,
    ttl_percentiles,
)
from repro.streaming import (
    ContinuousAggregation,
    RuntimeConfig,
    TumblingWindows,
    WindowOperator,
    run_operator,
)
from repro.trace import shuffled_trace
from repro.ycsb import YCSBConfig, YCSBWorkload

RCFG = RuntimeConfig(interleave="time")


def tuned_ycsb(real_trace, distribution):
    """YCSB workload tuned to the real trace (section 4 methodology):
    same op count, same distinct keys, same read/update ratio, no
    inserts, no deletes."""
    counts = real_trace.op_counts()
    from repro.trace import OpType

    reads = counts[OpType.GET]
    writes = counts[OpType.PUT] + counts[OpType.MERGE] + counts[OpType.DELETE]
    total = reads + writes
    config = YCSBConfig(
        record_count=real_trace.distinct_keys(),
        operation_count=total,
        read_proportion=reads / total,
        update_proportion=writes / total,
        request_distribution=distribution,
    )
    return YCSBWorkload(config).generate()


def run_comparison(tasks):
    operators = [
        ("Aggregation", lambda: ContinuousAggregation()),
        ("Tumbling-Incr", lambda: WindowOperator(TumblingWindows(5000))),
    ]
    rng = random.Random(23)
    locality_rows = []
    ttl_rows = []
    single_rows = []
    for name, factory in operators:
        real = run_operator(factory(), [tasks], RCFG)
        shuffled = shuffled_trace(real, rng)
        ycsb_latest = tuned_ycsb(real, "latest")
        ycsb_sequential = tuned_ycsb(real, "sequential")
        for label, trace in [
            ("real", real),
            ("shuffled", shuffled),
            ("YCSB-L", ycsb_latest),
            ("YCSB-S", ycsb_sequential),
        ]:
            keys = trace.key_sequence()
            locality_rows.append(
                [name, label, round(average_stack_distance(keys), 1),
                 total_unique_sequences(keys, 10)]
            )
            ttl = ttl_percentiles(trace, sample_keys=1000)
            ttl_rows.append(
                [name, label, ttl["p50"], ttl["p90"], ttl["p99.9"], ttl["max"]]
            )
            single_rows.append(
                [name, label, round(single_access_key_fraction(trace), 3)]
            )
    return locality_rows, ttl_rows, single_rows


def test_fig7_and_table3(benchmark, capsys, borg):
    tasks, _ = borg
    locality_rows, ttl_rows, single_rows = benchmark.pedantic(
        run_comparison, args=(tasks,), rounds=1, iterations=1
    )
    emit(
        capsys,
        ["operator", "trace", "avg stack dist", "unique sequences"],
        locality_rows,
        "Figure 7: temporal/spatial locality, real vs tuned YCSB (Borg)",
    )
    emit(
        capsys,
        ["operator", "trace", "p50", "p90", "p99.9", "max"],
        ttl_rows,
        "Table 3: TTL percentiles (steps), real vs tuned YCSB",
    )
    emit(
        capsys,
        ["operator", "trace", "single-access key fraction"],
        single_rows,
        "Single-access keys (section 4)",
    )

    loc = {(r[0], r[1]): r for r in locality_rows}
    ttl = {(r[0], r[1]): r for r in ttl_rows}
    for op in ("Aggregation", "Tumbling-Incr"):
        real_dist, real_seq = loc[(op, "real")][2], loc[(op, "real")][3]
        latest_seq = loc[(op, "YCSB-L")][3]
        shuffled_seq = loc[(op, "shuffled")][3]
        sequential_dist = loc[(op, "YCSB-S")][2]
        # YCSB-L has poor spatial locality: unique sequences close to
        # the shuffled trace, far above the real trace.
        assert latest_seq > real_seq
        assert latest_seq > 0.7 * shuffled_seq
        # YCSB-S distorts temporal locality relative to the real trace.
        assert sequential_dist > real_dist
        # Real traces have much shorter median TTLs than YCSB (paper:
        # over 1000x at p50 for aggregation-scale traces).
        assert ttl[(op, "real")][2] < ttl[(op, "YCSB-L")][2]
