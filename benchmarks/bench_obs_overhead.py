"""Telemetry overhead benchmark: what does observability cost a replay?

The obs package promises to be **no-op by default**: a replay without a
:class:`ReplayTelemetry` must run the same loops it ran before the
package existed, and the permanent instrumentation sites in the stores
must cost one global load each while tracing is off.  This benchmark
measures that promise on the hottest configuration (memory store --
nothing to hide the replayer's own cost behind) and on the LSM store
whose flush/compaction/WAL paths carry span sites:

* **pre_obs_equivalent** -- ``TraceReplayer._run`` called directly,
  bypassing the telemetry session wrapper entirely; this is the code
  path that existed before the obs package.
* **telemetry_off** -- the public ``replay()`` with no telemetry
  attached: one ``None`` check per replay plus the disabled span sites.
* **metrics_only** -- a sampler thread at 100ms plus the per-op
  latency tee into the shared progress histogram.
* **full_tracing** -- metrics plus an installed span tracer (the span
  sites light up; per-op paths stay untraced by design).

Each cell reports the median of ``REPS`` runs by throughput plus the
fastest rep, with reps interleaved round-robin across modes (after one
discarded warmup run) so slow machine drift cancels out of the
mode-vs-mode ratios.  The headline claim, asserted below:
**telemetry_off is within 2% of pre_obs_equivalent**, comparing
best-of reps -- on a shared single CPU, scheduler noise only ever
slows a run down, so the fastest rep is the cleanest estimate of each
mode's true speed (smoke mode skips the assertion).

Writes ``BENCH_obs_overhead.json`` next to the repo root.

Run:  PYTHONPATH=src python benchmarks/bench_obs_overhead.py [--smoke]
"""

from __future__ import annotations

import json
import os
import random

from _harness import SMOKE, env_block, one_cpu_note, scaled, write_bench

from repro.core import TraceReplayer  # noqa: E402
from repro.kvstores import create_connector  # noqa: E402
from repro.obs import ReplayTelemetry  # noqa: E402
from repro.trace import AccessTrace, OpType  # noqa: E402

SEED = 42
VALUE_SIZE = 64
NUM_KEYS = 2_000

REPS = scaled(5, 1)

#: ops per run, sized per store so every run lasts long enough to
#: measure: the memory store clears 1.5M+ ops/s, so 50k ops finish in
#: ~30ms -- inside a single scheduler timeslice, where run-to-run
#: noise swamps a 2% claim
OPS_BY_STORE = {"memory": 300_000, "rocksdb": 50_000}
if SMOKE:
    OPS_BY_STORE = {"memory": 2_000, "rocksdb": 2_000}

STORES = ("memory", "rocksdb")


def make_trace(ops: int) -> AccessTrace:
    """50/50 get/put over uniform keys: a balanced hot loop."""
    rng = random.Random(SEED)
    trace = AccessTrace()
    for i in range(ops):
        key = b"key%06d" % rng.randrange(NUM_KEYS)
        if rng.random() < 0.5:
            trace.record(OpType.GET, key, 0, i)
        else:
            trace.record(OpType.PUT, key, VALUE_SIZE, i)
    return trace


def _run(store_name, trace, mode, scratch_dir):
    connector = create_connector(store_name)
    telemetry = None
    if mode == "metrics_only":
        telemetry = ReplayTelemetry(
            metrics_path=os.path.join(scratch_dir, "bench.jsonl")
        )
    elif mode == "full_tracing":
        telemetry = ReplayTelemetry(
            trace_path=os.path.join(scratch_dir, "bench.trace.json"),
            metrics_path=os.path.join(scratch_dir, "bench.jsonl"),
        )
    replayer = TraceReplayer(connector, telemetry=telemetry)
    try:
        if mode == "pre_obs_equivalent":
            result = replayer._run(trace)  # the pre-obs replay body
        else:
            result = replayer.replay(trace)
    finally:
        connector.close()
    summary = result.summary()
    return {
        "throughput_kops": summary["throughput_kops"],
        "p50_us": summary["p50_us"],
        "p99_us": summary["p99_us"],
    }


MODES = (
    "pre_obs_equivalent",
    "telemetry_off",
    "metrics_only",
    "full_tracing",
)


def measure_modes(store_name, trace, scratch_dir):
    """Median-of-REPS per mode, with reps interleaved round-robin.

    Running all reps of one mode as a block, then the next mode's
    block, lets slow machine drift (thermal, page cache, allocator
    growth) land entirely on whichever mode ran last and show up as
    fake overhead.  Interleaving pairs every mode with every part of
    the run, so drift cancels out of the mode-vs-mode ratios.
    """
    _run(store_name, trace, MODES[0], scratch_dir)  # warmup, discarded
    runs = {mode: [] for mode in MODES}
    for _ in range(REPS):
        for mode in MODES:
            runs[mode].append(_run(store_name, trace, mode, scratch_dir))
    picked = {}
    for mode, cells in runs.items():
        cells.sort(key=lambda r: r["throughput_kops"])
        cell = dict(cells[len(cells) // 2])
        # On a shared single CPU, noise only ever slows a run down, so
        # the fastest rep is the cleanest estimate of each mode's true
        # speed; the overhead claim compares those.  The median stays
        # in the cell as the typical-run number.
        cell["best_throughput_kops"] = cells[-1]["throughput_kops"]
        picked[mode] = cell
    return picked


def main():
    import tempfile

    results = {
        "env": env_block(),
        "method": {
            "operations": dict(OPS_BY_STORE),
            "workload": "50% get / 50% put, uniform keys",
            "reps_per_cell": REPS,
            "aggregation": (
                "cells report the median rep by throughput, plus "
                "best_throughput_kops (fastest rep); reps are "
                "interleaved round-robin across modes after one "
                "discarded warmup run, and the overhead claims compare "
                "best-of reps, since on a shared single CPU scheduler "
                "noise only ever slows a run down"
            ),
            "modes": list(MODES),
            "baseline": (
                "pre_obs_equivalent calls TraceReplayer._run directly -- "
                "the replay body as it existed before the obs package, "
                "with no telemetry session wrapper"
            ),
        },
        "note": one_cpu_note(
            "the sampler thread and the replay share one core and the "
            "GIL, so metrics_only / full_tracing overheads here are "
            "upper bounds."
        ),
        "stores": {},
    }

    with tempfile.TemporaryDirectory(prefix="bench_obs_") as scratch:
        for store_name in STORES:
            ops = OPS_BY_STORE[store_name]
            print(f"\n== {store_name} ({ops} ops) ==")
            trace = make_trace(ops)
            picked = measure_modes(store_name, trace, scratch)
            cells = {}
            base_best = None
            for mode in MODES:
                cell = picked[mode]
                if base_best is None:
                    base_best = cell["best_throughput_kops"]
                cell["relative_throughput"] = round(
                    cell["best_throughput_kops"] / base_best, 4
                )
                for key in (
                    "throughput_kops", "best_throughput_kops",
                    "p50_us", "p99_us",
                ):
                    cell[key] = round(cell[key], 1)
                cells[mode] = cell
                print(
                    f"  {mode:<20} {cell['best_throughput_kops']:>8.1f} kops "
                    f"best ({cell['relative_throughput']:.3f}x)  "
                    f"median {cell['throughput_kops']:.1f}  "
                    f"p50={cell['p50_us']:.1f}us p99={cell['p99_us']:.1f}us"
                )
            results["stores"][store_name] = cells

    claims = {
        f"{store}_off_vs_pre_obs": results["stores"][store]["telemetry_off"][
            "relative_throughput"
        ]
        for store in STORES
    }
    claims.update(
        {
            f"{store}_full_tracing_vs_pre_obs": results["stores"][store][
                "full_tracing"
            ]["relative_throughput"]
            for store in STORES
        }
    )
    results["claims"] = claims

    write_bench("obs_overhead", results)
    print(json.dumps(claims, indent=2))

    if not SMOKE:
        for store in STORES:
            assert claims[f"{store}_off_vs_pre_obs"] >= 0.98, (
                f"{store}: telemetry-off replay more than 2% below the "
                f"pre-obs-equivalent path"
            )
    return results


if __name__ == "__main__":
    main()
