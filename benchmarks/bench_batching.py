"""Batched-execution benchmark: write-batch/multi-get vs per-op replay.

Replays write-heavy traces through :class:`TraceReplayer` at batch
sizes 1/8/64/256 against every store family:

* **rocksdb / lethe** -- LSM stores on :class:`FileStorage` (their
  durable deployment), where ``apply_batch`` group-commits one
  checksummed WAL frame per batch instead of one per record.
* **berkeleydb** -- B+Tree with key-sorted batch application.
* **faster** -- hybrid-log store appending one contiguous region per
  batch.
* **memory** -- hash-map baseline (bounds the replayer's own cost).
* **remote** -- an in-memory store behind :class:`StoreServer`; the
  protocol v2 ``OP_BATCH`` frame turns N round-trips into one.

Two workloads are measured: **ingest** (100% put -- full batches, the
shape batching is built for) and **mixed** (95% put / 5% get -- reads
chop write runs, so batches stay partially filled; this bounds the
realistic gain).  Every cell is the median of ``REPS`` runs, with
honest per-op latency: each member's latency is measured from its own
arrival, so queueing-for-the-batch is included, not averaged away.

Writes ``BENCH_batching.json`` next to the repo root.

Run:  PYTHONPATH=src python benchmarks/bench_batching.py [--smoke]
"""

from __future__ import annotations

import json
import random
import shutil
import tempfile

from _harness import SMOKE, env_block, median_run, one_cpu_note, scaled, write_bench

from repro.core import TraceReplayer  # noqa: E402
from repro.kvstores import InMemoryStore, connect, create_connector  # noqa: E402
from repro.kvstores.lsm import (  # noqa: E402
    LetheConfig,
    LetheStore,
    LSMConfig,
    RocksLSMStore,
)
from repro.kvstores.remote import RemoteStoreClient, StoreServer  # noqa: E402
from repro.kvstores.storage import FileStorage  # noqa: E402
from repro.trace import AccessTrace, OpType  # noqa: E402

BATCH_SIZES = (1, 8, 64, 256)
SEED = 42
VALUE_SIZE = 64
NUM_KEYS = 2_000

OPS = scaled(20_000, 2_000)
REMOTE_OPS = scaled(8_000, 2_000)
REPS = scaled(5, 1)


def make_trace(ops: int, get_fraction: float) -> AccessTrace:
    """Write-heavy trace: puts with a configurable sprinkle of gets
    (uniform keys; batching economics do not depend on skew)."""
    rng = random.Random(SEED)
    trace = AccessTrace()
    for i in range(ops):
        key = b"key%06d" % rng.randrange(NUM_KEYS)
        if rng.random() < get_fraction:
            trace.record(OpType.GET, key, 0, i)
        else:
            trace.record(OpType.PUT, key, VALUE_SIZE, i)
    return trace


# -- store factories: fresh instance per run -------------------------------


def _lsm_run(store_cls, config_cls, trace, batch_size):
    root = tempfile.mkdtemp(prefix="bench_batching_")
    connector = connect(store_cls(config_cls(), storage=FileStorage(root)))
    try:
        return _replay(connector, trace, batch_size)
    finally:
        connector.close()
        shutil.rmtree(root, ignore_errors=True)


def _embedded_run(store_name, trace, batch_size):
    connector = create_connector(store_name)
    try:
        return _replay(connector, trace, batch_size)
    finally:
        connector.close()


def _remote_run(trace, batch_size):
    with StoreServer(InMemoryStore()) as server:
        host, port = server.address
        client = RemoteStoreClient(host, port)
        try:
            return _replay(client, trace, batch_size)
        finally:
            client.close()


def _replay(connector, trace, batch_size):
    replayer = TraceReplayer(
        connector, batch_size=None if batch_size == 1 else batch_size
    )
    result = replayer.replay(trace)
    summary = result.summary()
    return {
        "throughput_kops": summary["throughput_kops"],
        "p50_us": summary["p50_us"],
        "p99_us": summary["p99_us"],
        "p999_us": summary["p99.9_us"],
    }


RUNNERS = {
    "rocksdb": lambda t, b: _lsm_run(RocksLSMStore, LSMConfig, t, b),
    "lethe": lambda t, b: _lsm_run(LetheStore, LetheConfig, t, b),
    "berkeleydb": lambda t, b: _embedded_run("berkeleydb", t, b),
    "faster": lambda t, b: _embedded_run("faster", t, b),
    "memory": lambda t, b: _embedded_run("memory", t, b),
    "remote": _remote_run,
}

STORAGE_NOTE = {
    "rocksdb": "FileStorage (durable WAL; group commit amortizes file appends)",
    "lethe": "FileStorage (durable WAL; group commit amortizes file appends)",
    "berkeleydb": "MemoryStorage",
    "faster": "MemoryStorage (hybrid log)",
    "memory": "MemoryStorage",
    "remote": "InMemoryStore behind StoreServer on 127.0.0.1 (protocol v2)",
}


def bench_store(name, runner, trace):
    cells = {}
    base_kops = None
    for batch_size in BATCH_SIZES:
        cell = median_run(lambda: runner(trace, batch_size), REPS)
        if base_kops is None:
            base_kops = cell["throughput_kops"]
        cell["speedup_vs_per_op"] = round(cell["throughput_kops"] / base_kops, 2)
        for key in ("throughput_kops", "p50_us", "p99_us", "p999_us"):
            cell[key] = round(cell[key], 1)
        cells[str(batch_size)] = cell
        print(
            f"  {name:<10} batch {batch_size:>3}: "
            f"{cell['throughput_kops']:>8.1f} kops "
            f"({cell['speedup_vs_per_op']:.2f}x)  "
            f"p50={cell['p50_us']:.1f}us p99={cell['p99_us']:.1f}us"
        )
    return {"storage": STORAGE_NOTE[name], "results": cells}


def main():
    ingest = make_trace(OPS, 0.0)
    mixed = make_trace(OPS, 0.05)
    remote_ingest = make_trace(REMOTE_OPS, 0.0)
    remote_mixed = make_trace(REMOTE_OPS, 0.05)

    results = {
        "env": env_block(),
        "method": {
            "batch_sizes": list(BATCH_SIZES),
            "reps_per_cell": REPS,
            "aggregation": "median by throughput",
            "value_size": VALUE_SIZE,
            "num_keys": NUM_KEYS,
            "latency": (
                "per-op, arrival-stamped: each batch member's latency runs "
                "from its own dispatch to batch completion, so queueing for "
                "the batch is included in the percentiles"
            ),
        },
        "note": one_cpu_note(
            "client, server thread, and store share one core and the "
            "GIL, so remote speedups reflect round-trip amortization, "
            "not parallelism."
        ),
        "workloads": {},
    }

    for workload_name, trace, remote_trace in (
        ("ingest_100put", ingest, remote_ingest),
        ("mixed_95put_5get", mixed, remote_mixed),
    ):
        print(f"\n== {workload_name} ({len(trace)} ops embedded, "
              f"{len(remote_trace)} ops remote) ==")
        stores = {}
        for name, runner in RUNNERS.items():
            stores[name] = bench_store(
                name, runner, remote_trace if name == "remote" else trace
            )
        results["workloads"][workload_name] = {
            "operations": len(trace),
            "remote_operations": len(remote_trace),
            "get_fraction": 0.0 if workload_name.startswith("ingest") else 0.05,
            "stores": stores,
        }

    ingest_stores = results["workloads"]["ingest_100put"]["stores"]
    claims = {
        "lsm_group_commit_batch64_speedup": ingest_stores["rocksdb"]["results"][
            "64"
        ]["speedup_vs_per_op"],
        "lethe_batch64_speedup": ingest_stores["lethe"]["results"]["64"][
            "speedup_vs_per_op"
        ],
        "remote_batch64_speedup": ingest_stores["remote"]["results"]["64"][
            "speedup_vs_per_op"
        ],
    }
    results["claims"] = claims

    write_bench("batching", results)
    print(json.dumps(claims, indent=2))

    if not SMOKE:
        assert claims["lsm_group_commit_batch64_speedup"] >= 2.0, (
            "LSM group commit under 2x on write-heavy ingest"
        )
        assert claims["remote_batch64_speedup"] >= 5.0, (
            "remote batch 64 under 5x"
        )
    return results


if __name__ == "__main__":
    main()
