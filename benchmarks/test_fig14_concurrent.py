"""Figure 14: concurrent operators sharing one RocksDB instance.

Paper setup: an incremental sliding window and a holistic sliding
window (5s length, 1s slide).  Concurrent-A co-locates two operators of
the same type; Concurrent-B co-locates the two different types.  Paper
claims: co-location costs the incremental operator ~1.7x throughput
(same-type) and the holistic one ~1.4x, with latency inflation.
"""

from conftest import emit
from repro.core import (
    Gadget,
    GadgetConfig,
    PerformanceEvaluator,
    sliding_window_model,
)
from repro.datasets import BorgConfig, generate_borg

GCFG = GadgetConfig(interleave="time")
N = 30_000


def make_traces():
    tasks, _ = generate_borg(BorgConfig(target_events=8_000, value_size=64))
    incremental = Gadget(
        sliding_window_model(5000, 1000, value_size=64), [tasks], GCFG
    ).generate()[:N]
    holistic = Gadget(
        sliding_window_model(5000, 1000, holistic=True, value_size=64),
        [tasks],
        GCFG,
    ).generate()[:N]
    return incremental, holistic


def run_concurrent():
    incremental, holistic = make_traces()
    evaluator = PerformanceEvaluator(stores=("rocksdb",))
    rows = []
    results = {}

    alone_incr = evaluator.evaluate("incremental alone", incremental)[0]
    alone_hol = evaluator.evaluate("holistic alone", holistic)[0]
    results["alone-incr"] = alone_incr.throughput_kops
    results["alone-hol"] = alone_hol.throughput_kops
    rows.append(["incremental", "alone", round(alone_incr.throughput_kops, 1),
                 round(alone_incr.p999_us, 1)])
    rows.append(["holistic", "alone", round(alone_hol.throughput_kops, 1),
                 round(alone_hol.p999_us, 1)])

    # Concurrent-A: two operators of the same type share the store.
    same_incr = evaluator.evaluate_concurrent("rocksdb", [incremental, incremental])
    same_hol = evaluator.evaluate_concurrent("rocksdb", [holistic, holistic])
    # Per-operator throughput is half the shared instance's total.
    results["concA-incr"] = same_incr.throughput_ops / 2000.0
    results["concA-hol"] = same_hol.throughput_ops / 2000.0
    rows.append(["incremental", "concurrent-A", round(results["concA-incr"], 1),
                 round(same_incr.latency_percentile(99.9), 1)])
    rows.append(["holistic", "concurrent-A", round(results["concA-hol"], 1),
                 round(same_hol.latency_percentile(99.9), 1)])

    # Concurrent-B: the two different operator types share the store.
    mixed = evaluator.evaluate_concurrent("rocksdb", [incremental, holistic])
    results["concB"] = mixed.throughput_ops / 2000.0
    rows.append(["mixed", "concurrent-B", round(results["concB"], 1),
                 round(mixed.latency_percentile(99.9), 1)])
    return rows, results


def test_fig14_concurrent_operators(benchmark, capsys):
    rows, results = benchmark.pedantic(run_concurrent, rounds=1, iterations=1)
    emit(
        capsys,
        ["operator", "deployment", "per-op kops", "p99.9 us"],
        rows,
        "Figure 14: concurrent operators on one RocksDB instance",
    )
    # Co-location costs each operator throughput versus running alone.
    assert results["concA-incr"] < results["alone-incr"]
    assert results["concA-hol"] < results["alone-hol"]
    # Same-type co-location roughly halves per-operator throughput
    # (the paper reports 1.4-1.7x degradation).
    assert results["concA-incr"] < 0.75 * results["alone-incr"]
