"""Table 2: Kolmogorov-Smirnov test between input-stream keys and
state-stream keys (Borg).

Paper result: every operator distorts the input distribution except
continuous aggregation (D = 0.0, p = 1.0).
"""

from conftest import emit
from repro.analysis import ks_test_keys
from repro.streaming import (
    ContinuousAggregation,
    ContinuousJoinOperator,
    IntervalJoinOperator,
    RuntimeConfig,
    SessionWindowOperator,
    SlidingWindows,
    TumblingWindows,
    WindowOperator,
    run_operator,
)

RCFG = RuntimeConfig(interleave="time")


def run_ks(tasks, jobs):
    operators = [
        ("Tumbling-Incr", lambda: WindowOperator(TumblingWindows(5000)), 1),
        ("Tumbling-Hol", lambda: WindowOperator(TumblingWindows(5000), holistic=True), 1),
        ("Sliding-Incr", lambda: WindowOperator(SlidingWindows(5000, 1000)), 1),
        ("Sliding-Hol", lambda: WindowOperator(SlidingWindows(5000, 1000), holistic=True), 1),
        ("Session-Incr", lambda: SessionWindowOperator(120_000), 1),
        ("Session-Hol", lambda: SessionWindowOperator(120_000, holistic=True), 1),
        ("Join-Cont", lambda: ContinuousJoinOperator({"finish"}), 2),
        ("Join-Interval", lambda: IntervalJoinOperator(120_000, 180_000), 2),
        ("Aggregation", lambda: ContinuousAggregation(), 1),
    ]
    input_keys = [e.key for e in tasks]
    rows = []
    for name, factory, inputs in operators:
        streams = [tasks] if inputs == 1 else [tasks, jobs]
        trace = run_operator(factory(), streams, RCFG)
        result = ks_test_keys(input_keys, trace.key_sequence())
        rows.append(
            [name, round(result.statistic, 3), round(result.p_value, 4),
             result.n, result.m, "yes" if result.passes() else "no"]
        )
    return rows


def test_table2_ks(benchmark, capsys, borg):
    tasks, jobs = borg
    rows = benchmark.pedantic(run_ks, args=borg, rounds=1, iterations=1)
    emit(
        capsys,
        ["operator", "D", "p-value", "n", "m", "passes"],
        rows,
        "Table 2: KS test, input keys vs state keys (Borg)",
    )
    by_name = {r[0]: r for r in rows}
    # Aggregation is the only operator that preserves the distribution.
    assert by_name["Aggregation"][1] == 0.0
    assert by_name["Aggregation"][5] == "yes"
    for name, row in by_name.items():
        if name != "Aggregation":
            assert row[5] == "no", name
    # Windows distort the distribution visibly (the paper reports
    # D ~ 0.9 on the full-size Borg trace; at benchmark scale the
    # distortion is smaller in magnitude but equally significant).
    assert by_name["Sliding-Incr"][1] > 0.2
    assert by_name["Tumbling-Incr"][1] > 0.2
