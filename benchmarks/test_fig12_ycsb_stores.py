"""Figure 12: the four stores on YCSB core workloads A, D, and F
(zipfian, 1K keys, 8-byte keys, 256-byte values).

Paper claims: FASTER has the highest throughput across the core
workloads; BerkeleyDB beats the LSM stores on the update-heavy
workloads A and F, while RocksDB/Lethe do well on the read-latest
workload D.
"""

from conftest import N_OPS, emit
from repro.core import PerformanceEvaluator
from repro.ycsb import YCSBWorkload

STORES = ("rocksdb", "lethe", "faster", "berkeleydb")


def run_matrix():
    evaluator = PerformanceEvaluator(stores=STORES)
    rows = []
    for name in ("A", "D", "F"):
        workload = YCSBWorkload.core(
            name, record_count=1000, operation_count=N_OPS,
            key_size=8, value_size=256,
        )
        trace = workload.generate()
        # YCSB's load phase: records are preloaded before transactions.
        for row in evaluator.evaluate(f"ycsb-{name}", trace,
                                      setup=workload.preload):
            rows.append(
                [name, row.store, round(row.throughput_kops, 1),
                 round(row.p50_us, 1), round(row.p999_us, 1)]
            )
    return rows


def test_fig12_ycsb_core_workloads(benchmark, capsys):
    rows = benchmark.pedantic(run_matrix, rounds=1, iterations=1)
    emit(
        capsys,
        ["workload", "store", "kops", "p50 us", "p99.9 us"],
        rows,
        "Figure 12: YCSB core workloads A/D/F across stores",
    )
    throughput = {(r[0], r[1]): r[2] for r in rows}
    for workload in ("A", "D", "F"):
        per_store = {s: throughput[(workload, s)] for s in STORES}
        # FASTER's O(1) in-place path wins every core workload.
        assert per_store["faster"] == max(per_store.values()), workload
