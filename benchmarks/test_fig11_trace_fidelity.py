"""Figure 11: store performance measured with real traces vs Gadget
traces vs manually tuned YCSB traces.

Paper claim: Gadget workloads produce throughput/latency close to the
real traces on every store, while tuned YCSB workloads report numbers
that are off -- sometimes by large factors.
"""

from conftest import N_OPS, emit
from repro.core import GadgetConfig, PerformanceEvaluator, generate_workload_trace
from repro.streaming import (
    ContinuousAggregation,
    RuntimeConfig,
    TumblingWindows,
    WindowOperator,
    run_operator,
)
from repro.trace import OpType
from repro.ycsb import YCSBConfig, YCSBWorkload

RCFG = RuntimeConfig(interleave="time")
GCFG = GadgetConfig(interleave="time")
STORES = ("rocksdb", "lethe", "faster", "berkeleydb")


def tuned_ycsb(real_trace, distribution):
    counts = real_trace.op_counts()
    reads = counts[OpType.GET]
    writes = counts[OpType.PUT] + counts[OpType.MERGE] + counts[OpType.DELETE]
    total = reads + writes
    config = YCSBConfig(
        record_count=max(1, real_trace.distinct_keys()),
        operation_count=total,
        read_proportion=reads / total,
        update_proportion=writes / total,
        request_distribution=distribution,
    )
    return YCSBWorkload(config).generate()


def best_of(evaluator, label, trace, repeats=3):
    """Repeat a replay and keep each store's best run (the paper
    repeats every experiment at least three times)."""
    best = {}
    for _ in range(repeats):
        for row in evaluator.evaluate(label, trace):
            kept = best.get(row.store)
            if kept is None or row.throughput_kops > kept.throughput_kops:
                best[row.store] = row
    return [best[store] for store in STORES]


def run_fidelity(tasks):
    cases = [
        ("Aggregation", lambda: ContinuousAggregation(),
         "continuous-aggregation", "latest"),
        ("Tumbling-Incr", lambda: WindowOperator(TumblingWindows(5000)),
         "tumbling-incremental", "latest"),
    ]
    evaluator = PerformanceEvaluator(stores=STORES)
    rows = []
    ratios = []
    for name, factory, workload, ycsb_distribution in cases:
        real = run_operator(factory(), [tasks], RCFG)[: N_OPS * 2]
        gadget = generate_workload_trace(workload, [tasks], GCFG)[: N_OPS * 2]
        ycsb = tuned_ycsb(real, ycsb_distribution)
        for store_rows in zip(
            best_of(evaluator, f"{name}/real", real),
            best_of(evaluator, f"{name}/gadget", gadget),
            best_of(evaluator, f"{name}/ycsb", ycsb),
        ):
            real_row, gadget_row, ycsb_row = store_rows
            rows.append(
                [name, real_row.store,
                 round(real_row.throughput_kops, 1),
                 round(gadget_row.throughput_kops, 1),
                 round(ycsb_row.throughput_kops, 1),
                 round(real_row.p999_us, 1),
                 round(gadget_row.p999_us, 1),
                 round(ycsb_row.p999_us, 1)]
            )
            ratios.append(
                (name, real_row.store,
                 gadget_row.throughput_kops / real_row.throughput_kops,
                 ycsb_row.throughput_kops / real_row.throughput_kops)
            )
    return rows, ratios


def test_fig11_trace_fidelity(benchmark, capsys, borg):
    tasks, _ = borg
    rows, ratios = benchmark.pedantic(
        run_fidelity, args=(tasks,), rounds=1, iterations=1
    )
    emit(
        capsys,
        ["operator", "store", "kops(real)", "kops(gadget)", "kops(ycsb)",
         "p999(real)", "p999(gadget)", "p999(ycsb)"],
        rows,
        "Figure 11: throughput/latency with real vs Gadget vs YCSB traces",
    )
    gadget_errors = [abs(1 - g) for _, _, g, _ in ratios]
    ycsb_errors = [abs(1 - y) for _, _, _, y in ratios]
    # Gadget tracks the real trace closely on every store...
    assert max(gadget_errors) < 0.35
    # ...and better than tuned YCSB does on average.
    assert sum(gadget_errors) / len(gadget_errors) < sum(ycsb_errors) / len(
        ycsb_errors
    )
