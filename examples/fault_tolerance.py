"""Fault tolerance across the stack.

Three recovery stories in one script:

1. **operator checkpointing** -- a windowed job crashes twice mid-run,
   restores its last checkpoint, replays the input, and still produces
   exactly the outputs of an uninterrupted run
2. **store crash recovery** -- the RocksDB-like store is killed without
   a clean shutdown; a fresh process recovers flushed runs from the
   manifest and unflushed writes from the WAL
3. **external state** -- the same workload against a store behind a
   socket: state survives the *compute* process by construction, at an
   IPC latency cost

Run:  python examples/fault_tolerance.py
"""

from repro.core import GadgetConfig, SourceConfig, TraceReplayer, generate_workload_trace
from repro.core.replayer import synthesize_value
from repro.datasets import BorgConfig, generate_borg
from repro.kvstores import MemoryStorage, StoreServer, connect, create_store
from repro.kvstores.lsm import LSMConfig, RocksLSMStore
from repro.kvstores.remote import RemoteStoreClient
from repro.streaming import (
    RuntimeConfig,
    TumblingWindows,
    WindowOperator,
    run_operator,
    run_with_checkpoints,
)
from repro.trace import OpType


def operator_checkpointing(tasks) -> None:
    print("== 1. operator checkpointing ==")
    reference = WindowOperator(TumblingWindows(5000))
    run_operator(reference, [tasks], RuntimeConfig(interleave="time"))

    recovered = WindowOperator(TumblingWindows(5000))
    log = run_with_checkpoints(
        recovered,
        [tasks],
        RuntimeConfig(interleave="time"),
        checkpoint_every=500,
        crash_at={800, 2600},
    )
    print(f"checkpoints: {log.checkpoints_taken}, crashes injected: "
          f"{log.crashes_injected}, events replayed: {log.events_replayed}")
    identical = (recovered.outputs == reference.outputs
                 and recovered.backend._data == reference.backend._data)
    print(f"recovered run matches uninterrupted run exactly: {identical}\n")


def store_crash_recovery(tasks) -> None:
    print("== 2. store crash recovery (manifest + WAL) ==")
    trace = generate_workload_trace(
        "tumbling-incremental", [tasks], GadgetConfig(interleave="time")
    )
    config = LSMConfig(write_buffer_size=16 * 1024)
    storage = MemoryStorage()
    doomed = connect(RocksLSMStore(config, storage=storage))
    crash_at = len(trace) * 2 // 3
    replayer = TraceReplayer(doomed, measure_latency=False)
    replayer.replay(trace[:crash_at])
    flushes = doomed.store.stats.flushes
    del doomed  # process killed: no flush, no close
    print(f"crashed after {crash_at} ops ({flushes} flushes had happened)")

    revived = RocksLSMStore(config, storage=storage)
    replayed = revived.recover()
    print(f"recovered: WAL replayed {replayed} records")
    # Prove no acknowledged write was lost: rebuild expected state.
    expected = {}
    for access in trace[:crash_at]:
        if access.op is OpType.PUT:
            expected[access.key] = synthesize_value(access.value_size)
        elif access.op is OpType.DELETE:
            expected.pop(access.key, None)
    sample = list(expected.items())[:500]
    lost = sum(1 for key, value in sample if revived.get(key) != value)
    print(f"lost writes in a 500-key sample: {lost}\n")


def external_state(tasks) -> None:
    print("== 3. external state management ==")
    trace = generate_workload_trace(
        "continuous-aggregation", [tasks], GadgetConfig(interleave="time")
    )
    embedded = TraceReplayer(connect(create_store("faster"))).replay(trace)
    with StoreServer(create_store("faster")) as server:
        host, port = server.address
        with RemoteStoreClient(host, port, "faster") as client:
            external = TraceReplayer(client).replay(trace)
    print(f"embedded: {embedded.throughput_ops / 1000:.1f} kops, "
          f"p50 {embedded.latency_percentile(50):.1f} us")
    print(f"external: {external.throughput_ops / 1000:.1f} kops, "
          f"p50 {external.latency_percentile(50):.1f} us")
    print("decoupling state costs every access an IPC round trip -- the "
          "trade-off the paper's introduction quantifies")


def main() -> None:
    tasks, _ = generate_borg(BorgConfig(target_events=6_000))
    operator_checkpointing(tasks)
    store_crash_recovery(tasks)
    external_state(tasks)


if __name__ == "__main__":
    main()
