"""Systematic store comparison across the eleven Gadget workloads.

Reproduces the paper's headline experiment (section 6.3 / Figure 13) as
a user would run it: every predefined workload against every store,
with a recommendation at the end.  Smaller event counts than the
benchmark suite keep this interactive (~1 minute).

Run:  python examples/store_comparison.py
"""

from repro.analysis import print_table
from repro.core import (
    DEFAULT_STORES,
    Gadget,
    GadgetConfig,
    PerformanceEvaluator,
    WORKLOADS,
)
from repro.datasets import BorgConfig, generate_borg


def main() -> None:
    # A moderately chatty stream with realistic value sizes so holistic
    # window buckets actually grow (see EXPERIMENTS.md on scaling).
    tasks, jobs = generate_borg(
        BorgConfig(target_events=8_000, value_size=128, task_event_gap_ms=100.0)
    )
    config = GadgetConfig(interleave="time")
    evaluator = PerformanceEvaluator()

    rows = []
    wins = {store: 0 for store in DEFAULT_STORES}
    worst_tail = {store: 0.0 for store in DEFAULT_STORES}
    for name, spec in WORKLOADS.items():
        model = spec.factory()
        model.value_size = 128
        sources = [tasks] if spec.num_inputs == 1 else [tasks, jobs]
        trace = Gadget(model, sources, config).generate()
        if len(trace) > 40_000:
            trace = trace[:40_000]
        results = evaluator.evaluate(name, trace)
        winner = max(results, key=lambda r: r.throughput_kops)
        wins[winner.store] += 1
        for result in results:
            worst_tail[result.store] = max(
                worst_tail[result.store], result.p999_us
            )
        rows.append(
            [name, len(trace), winner.store,
             round(winner.throughput_kops, 1)]
        )
    print_table(
        ["workload", "ops", "best store", "best kops"], rows,
        title="best store per workload",
    )

    print_table(
        ["store", "workloads won", "worst p99.9 (us)"],
        [[s, wins[s], round(worst_tail[s], 1)] for s in DEFAULT_STORES],
        title="scoreboard",
    )
    most_robust = min(worst_tail, key=worst_tail.get)
    print(f"most robust tail latency across all workloads: {most_robust}")
    print("(the paper's conclusion: per-workload winners vary widely, but "
          "the LSM stores are the robust single choice)")


if __name__ == "__main__":
    main()
