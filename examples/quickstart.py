"""Quickstart: generate a streaming state workload and benchmark a store.

This is the 60-second tour of the harness:

1. describe a data source (arrival process, key distribution, values)
2. pick one of the eleven predefined operator workloads
3. generate the state access stream (offline mode)
4. replay it against a KV store and read off throughput and latency

Run:  python examples/quickstart.py
"""

from repro.analysis import composition_of, print_table
from repro.core import (
    ArrivalConfig,
    Gadget,
    KeyConfig,
    SourceConfig,
    TraceReplayer,
    ValueConfig,
)
from repro.kvstores import create_connector


def main() -> None:
    # 1. A source: Poisson arrivals, zipfian keys, 64-byte values.
    source = SourceConfig(
        num_events=20_000,
        arrivals=ArrivalConfig(process="poisson", mean_interarrival_ms=10),
        keys=KeyConfig(num_keys=1_000, distribution="zipfian"),
        values=ValueConfig(size=64),
        watermark_frequency=100,
    )

    # 2 + 3. A 5s tumbling window with incremental aggregation.
    gadget = Gadget("tumbling-incremental", [source])
    trace = gadget.generate()
    composition = composition_of(trace)
    print(f"generated {len(trace)} state accesses "
          f"({composition.classify()} workload)")
    print(f"  get={composition.get:.3f} put={composition.put:.3f} "
          f"merge={composition.merge:.3f} delete={composition.delete:.3f}")

    # 4. Replay against the RocksDB-like store.
    rows = []
    for store_name in ("rocksdb", "faster", "berkeleydb"):
        connector = create_connector(store_name)
        result = TraceReplayer(connector).replay(trace)
        summary = result.summary()
        rows.append([
            store_name,
            round(summary["throughput_kops"], 1),
            round(summary["p50_us"], 1),
            round(summary["p99.9_us"], 1),
        ])
        connector.close()
    print_table(
        ["store", "kops", "p50 us", "p99.9 us"], rows,
        title="tumbling-incremental across stores",
    )


if __name__ == "__main__":
    main()
