"""Cluster monitoring scenario (the paper's Borg use case).

A monitoring job computes, every 5 seconds, the number of task status
changes per job -- a tumbling window over a cluster event stream.  This
example characterizes the state workload that query generates and then
checks which store handles it best:

* collect the "real" state access trace with the instrumented mini
  stream processor
* analyse composition, amplification, locality, and ephemerality
* verify Gadget reproduces the trace without running the engine
* benchmark all four stores on it

Run:  python examples/cluster_monitoring.py
"""

import random

from repro.analysis import (
    average_stack_distance,
    composition_of,
    measure_amplification,
    print_table,
    working_set_over_time,
)
from repro.core import GadgetConfig, PerformanceEvaluator, generate_workload_trace
from repro.datasets import BorgConfig, generate_borg
from repro.streaming import (
    RuntimeConfig,
    TumblingWindows,
    WindowOperator,
    run_operator,
)
from repro.trace import shuffled_trace


def main() -> None:
    tasks, _ = generate_borg(BorgConfig(target_events=20_000))
    print(f"Borg-style stream: {len(tasks)} task events, "
          f"{len({e.key for e in tasks})} jobs")

    # -- collect the real trace from the instrumented engine -----------
    operator = WindowOperator(TumblingWindows(5_000))
    real = run_operator(operator, [tasks], RuntimeConfig(interleave="time"))
    print(f"\nwindow query fired {len(operator.outputs)} windows, "
          f"produced {len(real)} state accesses")

    # -- characterize ----------------------------------------------------
    comp = composition_of(real)
    amp = measure_amplification(tasks, real)
    sizes = [s for _, s in working_set_over_time(real, 100)]
    print_table(
        ["metric", "value"],
        [
            ["workload class", comp.classify()],
            ["get fraction", round(comp.get, 3)],
            ["put fraction", round(comp.put, 3)],
            ["delete fraction", round(comp.delete, 3)],
            ["event amplification", round(amp.event_amplification, 2)],
            ["keyspace amplification", round(amp.keyspace_amplification, 2)],
            ["peak working set (keys)", max(sizes)],
            ["final working set (keys)", sizes[-1]],
        ],
        title="state workload characterization",
    )
    shuffled = shuffled_trace(real, random.Random(1))
    print(
        "temporal locality: avg stack distance "
        f"{average_stack_distance(real.key_sequence()):.1f} vs "
        f"{average_stack_distance(shuffled.key_sequence()):.1f} shuffled"
    )

    # -- reproduce with Gadget (no engine needed) -----------------------
    gadget = generate_workload_trace(
        "tumbling-incremental", [tasks], GadgetConfig(interleave="time")
    )
    identical = gadget.key_sequence() == real.key_sequence()
    print(f"\nGadget reproduces the engine trace exactly: {identical}")

    # -- pick a store ----------------------------------------------------
    evaluator = PerformanceEvaluator()
    rows = [
        [row.store, round(row.throughput_kops, 1), round(row.p999_us, 1)]
        for row in evaluator.evaluate("cluster-monitoring", gadget)
    ]
    print_table(["store", "kops", "p99.9 us"], rows,
                title="store comparison for this query")
    best = max(rows, key=lambda r: r[1])
    print(f"-> best store for this monitoring query: {best[0]}")


if __name__ == "__main__":
    main()
