"""Taxi analytics scenario (the paper's location-based-service use case).

Two queries over NYC-TLC-style trip and fare streams:

* a **continuous join** matching fare events to rides until the
  passenger drops off ("total fare events for a shared ride before the
  drop-off timestamp") -- state is invalidated by the drop-off event
* a **session window** detecting driver shifts (periods of activity)

The example shows how stream properties steer the workload: taxi rides
are long relative to the default 5s window / 2min session gap, which
drives the delete fraction up -- exactly the paper's Figure 2 effect.

Run:  python examples/taxi_analytics.py
"""

from repro.analysis import composition_of, print_table, ttl_percentiles
from repro.core import GadgetConfig, PerformanceEvaluator, generate_workload_trace
from repro.datasets import TaxiConfig, generate_taxi
from repro.streaming import (
    ContinuousJoinOperator,
    RuntimeConfig,
    SessionWindowOperator,
    TumblingWindows,
    WindowOperator,
    run_operator,
)


def main() -> None:
    trips, fares = generate_taxi(TaxiConfig(target_events=20_000))
    print(f"taxi streams: {len(trips)} trip events, {len(fares)} fare events")
    rcfg = RuntimeConfig(interleave="time")

    # -- continuous join: fares matched to rides until drop-off ---------
    join = ContinuousJoinOperator(invalidate_kinds={"dropoff"})
    join_trace = run_operator(join, [trips, fares], rcfg)
    comp = composition_of(join_trace)
    print("\nride/fare continuous join:")
    print(f"  {len(join.outputs)} matched results, "
          f"{len(join_trace)} state accesses")
    print(f"  composition: get={comp.get:.2f} put={comp.put:.2f} "
          f"merge={comp.merge:.2f} delete={comp.delete:.2f}")
    ttl = ttl_percentiles(join_trace)
    print(f"  state TTL p50={ttl['p50']:.0f} steps (ride-scoped, ephemeral)")

    # -- window length sweep: Figure 2's effect --------------------------
    rows = []
    for length_ms in (1_000, 5_000, 30_000, 60_000):
        trace = run_operator(
            WindowOperator(TumblingWindows(length_ms)), [trips], rcfg
        )
        comp = composition_of(trace)
        rows.append([f"{length_ms // 1000}s", round(comp.put, 3),
                     round(comp.delete, 3)])
    print_table(
        ["window length", "PUT fraction", "DELETE fraction"], rows,
        title="window length vs deletes (low-rate stream)",
    )
    print("shorter windows -> fewer updates per window -> more deletes")

    # -- session windows: driver shifts ---------------------------------
    sessions = SessionWindowOperator(gap_ms=30 * 60 * 1000)  # 30 min gap
    run_operator(sessions, [trips], rcfg)
    print(f"\ndriver shifts detected (30min gap sessions): "
          f"{len(sessions.outputs)}")

    # -- which store should back this pipeline? --------------------------
    gadget_trace = generate_workload_trace(
        "continuous-join", [trips, fares], GadgetConfig(interleave="time")
    )
    rows = [
        [row.store, round(row.throughput_kops, 1), round(row.p999_us, 1)]
        for row in PerformanceEvaluator().evaluate("taxi-join", gadget_trace)
    ]
    print_table(["store", "kops", "p99.9 us"], rows,
                title="store comparison for the ride/fare join")


if __name__ == "__main__":
    main()
