"""Extending Gadget with a custom streaming operator (paper section 5.4).

Gadget users add an operator by implementing the three-method API:

* a state machine's ``run()``   -- requests generated per event
* a state machine's ``terminate()`` -- final requests on expiry
* the model's ``assign_state_machines()`` -- event -> machine mapping

This example models a **top-K tracker with periodic snapshots**: per
event it updates a per-key counter (get+put), and once per minute of
event time it snapshots the leaderboard into a dated state entry and
expires snapshots older than five minutes -- a pattern not covered by
the eleven built-in workloads.

Run:  python examples/custom_operator.py
"""

from repro.analysis import composition_of, print_table
from repro.core import (
    Driver,
    GadgetConfig,
    MachineContext,
    OperatorModel,
    PerformanceEvaluator,
    SourceConfig,
    StateMachine,
)
from repro.trace import OpType

MINUTE_MS = 60_000
SNAPSHOT_RETENTION_MS = 5 * MINUTE_MS


class CounterMachine(StateMachine):
    """Per-key rolling counter: get-put per event (like Figure 9)."""

    def run(self, ctx: MachineContext, event) -> None:
        ctx.emit(OpType.GET, self.state_key)
        ctx.emit(OpType.PUT, self.state_key, 8)
        self.elements += 1


class SnapshotMachine(StateMachine):
    """A dated leaderboard snapshot: written once, deleted on expiry."""

    def run(self, ctx: MachineContext, event) -> None:
        ctx.emit(OpType.PUT, self.state_key, 256)

    def terminate(self, ctx: MachineContext) -> None:
        ctx.emit(OpType.DELETE, self.state_key)
        self.done = True


class TopKSnapshotModel(OperatorModel):
    """Counters per key + one snapshot entry per minute of event time."""

    drops_late_events = False

    def __init__(self) -> None:
        self._last_snapshot_minute = -1

    def assign_state_machines(self, event, input_index, driver: Driver):
        machines = [
            driver.machine_for(event.key, CounterMachine, event_key=event.key)
        ]
        minute = event.timestamp // MINUTE_MS
        if minute > self._last_snapshot_minute:
            self._last_snapshot_minute = minute
            snapshot_key = b"snapshot|" + str(minute).encode()
            machines.append(
                driver.machine_for(
                    snapshot_key,
                    SnapshotMachine,
                    expires_at=minute * MINUTE_MS + SNAPSHOT_RETENTION_MS,
                )
            )
        return machines


def main() -> None:
    source = SourceConfig(num_events=30_000)
    driver = Driver(TopKSnapshotModel(), [source], GadgetConfig())
    trace = driver.run()

    comp = composition_of(trace)
    print(f"custom top-K workload: {len(trace)} accesses, "
          f"{trace.distinct_keys()} state keys")
    print(f"  get={comp.get:.3f} put={comp.put:.3f} delete={comp.delete:.3f}")

    rows = [
        [row.store, round(row.throughput_kops, 1), round(row.p999_us, 1)]
        for row in PerformanceEvaluator().evaluate("top-k", trace)
    ]
    print_table(["store", "kops", "p99.9 us"], rows,
                title="custom workload across stores")


if __name__ == "__main__":
    main()
