"""Query surface and trajectory regression gates over the lake.

Two consumers:

* :func:`run_query` -- ``"p99 by store,batch_size,fault_plan last 50"``
  style filtered group-by aggregation.  The planner reads **only** the
  column chunks the query references (metric + group keys + predicate
  columns + run ordering) and skips whole batches whose footer min/max
  statistics exclude the predicate -- classic Parquet-style pushdown,
  asserted in tests via :attr:`~repro.lake.format.ResultsLake.chunks_read`.
* :func:`detect_regressions` -- fits a **noise band** per group from
  the recorded trajectory (median +- k * scaled MAD over a baseline
  window, with a relative floor so an all-identical synthetic history
  never yields a zero-width band) and flags candidate runs that fall
  outside it in the bad direction (throughput below, latency above).
  A trajectory beats a single golden number: the band tracks where the
  metric actually lives on this machine, not where it lived the day
  someone recorded a constant.

The grammar is deliberately tiny::

    query   := metric [ 'by' col[,col...] ] [ 'where' cond [and cond...] ]
               [ 'last' N ]
    cond    := col op value        op := = != > >= < <=

Metric aliases map benchmark vocabulary onto lake columns (``p99`` ->
``p99_us``, ``throughput`` -> ``throughput_kops``, ``backend`` ->
``store``).
"""

from __future__ import annotations

import json
import re
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from .format import ResultsLake, batch_stats
from .schema import RUNS_TABLE

#: friendly name -> lake column
ALIASES = {
    "p50": "p50_us",
    "p99": "p99_us",
    "p999": "p999_us",
    "p99.9": "p999_us",
    "throughput": "throughput_kops",
    "kops": "throughput_kops",
    "backend": "store",
    "batch": "batch_size",
    "pipeline": "pipeline_depth",
}

#: metrics where larger is better (regressions are drops); everything
#: latency-shaped is smaller-is-better (regressions are climbs)
HIGHER_IS_BETTER = ("throughput_kops", "mean_throughput_ops",
                    "min_interval_throughput_ops", "speedup")

_OPS: Dict[str, Callable[[Any, Any], bool]] = {
    "=": lambda a, b: a == b,
    "!=": lambda a, b: a != b,
    ">": lambda a, b: a is not None and a > b,
    ">=": lambda a, b: a is not None and a >= b,
    "<": lambda a, b: a is not None and a < b,
    "<=": lambda a, b: a is not None and a <= b,
}

_COND_RE = re.compile(r"^(?P<col>[A-Za-z0-9_.]+)\s*(?P<op>!=|>=|<=|=|>|<)\s*(?P<val>.+)$")


class QueryError(ValueError):
    """The query text does not parse or names unknown columns."""


@dataclass
class Query:
    metric: str
    by: Tuple[str, ...] = ()
    where: Tuple[Tuple[str, str, Any], ...] = ()
    last: Optional[int] = None
    table: str = RUNS_TABLE

    @property
    def columns_needed(self) -> List[str]:
        """Every column the planner must read (run_id orders rows)."""
        needed = [self.metric]
        for column in self.by:
            if column not in needed:
                needed.append(column)
        for column, _, _ in self.where:
            if column not in needed:
                needed.append(column)
        if "run_id" not in needed:
            needed.append("run_id")
        return needed


def _coerce(text: str) -> Any:
    text = text.strip().strip("'\"")
    for cast in (int, float):
        try:
            return cast(text)
        except ValueError:
            continue
    if text.lower() in ("true", "false"):
        return text.lower() == "true"
    if text.lower() in ("none", "null"):
        return None
    return text


def resolve(name: str) -> str:
    return ALIASES.get(name, name)


def parse_query(text: str, table: str = RUNS_TABLE) -> Query:
    """Parse the mini query grammar (see module docstring)."""
    tokens = text.replace(",", " , ").split()
    if not tokens:
        raise QueryError("empty query")
    metric = resolve(tokens[0])
    index = 1
    by: List[str] = []
    where: List[Tuple[str, str, Any]] = []
    last: Optional[int] = None
    while index < len(tokens):
        word = tokens[index].lower()
        if word == "by":
            index += 1
            expect_column = True
            while index < len(tokens):
                token = tokens[index]
                if token == ",":
                    expect_column = True
                    index += 1
                    continue
                if not expect_column or token.lower() in ("where", "last", "by"):
                    break
                by.append(resolve(token))
                expect_column = False
                index += 1
            if not by:
                raise QueryError("'by' needs at least one column")
        elif word == "where":
            index += 1
            conds: List[str] = []
            current: List[str] = []
            while index < len(tokens):
                token = tokens[index]
                if token.lower() in ("last", "by") and current:
                    break
                if token.lower() == "and" or token == ",":
                    if current:
                        conds.append(" ".join(current))
                        current = []
                    index += 1
                    continue
                current.append(token)
                index += 1
            if current:
                conds.append(" ".join(current))
            for cond in conds:
                match = _COND_RE.match(cond)
                if not match:
                    raise QueryError(f"cannot parse condition {cond!r}")
                where.append(
                    (
                        resolve(match.group("col")),
                        match.group("op"),
                        _coerce(match.group("val")),
                    )
                )
            if not where:
                raise QueryError("'where' needs at least one condition")
        elif word == "last":
            index += 1
            if index >= len(tokens):
                raise QueryError("'last' needs a run count")
            try:
                last = int(tokens[index])
            except ValueError:
                raise QueryError(f"'last' needs an integer, got {tokens[index]!r}")
            if last < 1:
                raise QueryError("'last' needs a positive run count")
            index += 1
        else:
            raise QueryError(
                f"unexpected token {tokens[index]!r} (expected by/where/last)"
            )
    return Query(metric=metric, by=tuple(by), where=tuple(where), last=last,
                 table=table)


def _batch_filter(query: Query) -> Callable[[dict], bool]:
    """Footer-stats batch skipper for the query's equality/range
    predicates: a batch whose recorded [min, max] for a predicate
    column excludes every satisfying value is skipped unread."""
    conds = [
        (column, op, value)
        for column, op, value in query.where
        if value is not None and op in ("=", ">", ">=", "<", "<=")
    ]

    def keep(batch: dict) -> bool:
        for column, op, value in conds:
            stats = batch_stats(batch, column)
            if stats is None:
                continue  # no stats recorded: cannot exclude
            low, high = stats
            try:
                if op == "=" and (value < low or value > high):
                    return False
                if op in (">", ">=") and high < value:
                    return False
                if op in ("<", "<=") and low > value:
                    return False
            except TypeError:
                continue  # mixed-type comparison: cannot exclude
        return True

    return keep


def _median(values: Sequence[float]) -> float:
    ordered = sorted(values)
    mid = len(ordered) // 2
    if len(ordered) % 2:
        return float(ordered[mid])
    return (ordered[mid - 1] + ordered[mid]) / 2.0


def _mad(values: Sequence[float], center: float) -> float:
    return _median([abs(v - center) for v in values])


@dataclass
class GroupRow:
    key: Tuple[Any, ...]
    count: int
    median: float
    mean: float
    min: float
    max: float
    latest: float


@dataclass
class QueryResult:
    query: Query
    groups: List[GroupRow] = field(default_factory=list)
    rows_scanned: int = 0
    runs_seen: int = 0


def select_rows(
    lake: ResultsLake, query: Query
) -> Dict[str, List[Any]]:
    """Execute scan + filter + last-N; returns the surviving rows as
    column lists (the relational core shared by query and regress)."""
    data = lake.scan(
        query.table, query.columns_needed, batch_filter=_batch_filter(query)
    )
    nrows = len(data["run_id"])
    keep = [True] * nrows
    for column, op, value in query.where:
        compare = _OPS[op]
        values = data[column]
        for i in range(nrows):
            if keep[i] and not compare(values[i], value):
                keep[i] = False
    if query.last is not None:
        run_ids = data["run_id"]
        recent: List[Any] = []
        seen = set()
        for i in range(nrows - 1, -1, -1):
            if not keep[i]:
                continue
            if run_ids[i] not in seen:
                if len(seen) == query.last:
                    keep[i] = False
                    continue
                seen.add(run_ids[i])
                recent.append(run_ids[i])
        cutoff = set(recent)
        for i in range(nrows):
            if keep[i] and run_ids[i] not in cutoff:
                keep[i] = False
    return {
        name: [v for v, k in zip(values, keep) if k]
        for name, values in data.items()
    }


def run_query(lake: ResultsLake, text: str, table: str = RUNS_TABLE) -> QueryResult:
    """Parse and execute one query; groups are sorted by key."""
    query = parse_query(text, table=table)
    if query.table not in lake.tables():
        raise QueryError(
            f"table {query.table!r} not in lake (has: {', '.join(lake.tables()) or 'nothing'})"
        )
    known = set(lake.columns(query.table))
    for column in query.columns_needed:
        if column != "run_id" and column not in known:
            raise QueryError(
                f"unknown column {column!r} in table {query.table!r}"
            )
    rows = select_rows(lake, query)
    metric_values = rows[query.metric]
    run_ids = rows["run_id"]
    order = sorted(range(len(run_ids)), key=lambda i: (run_ids[i] is None, run_ids[i]))
    groups: Dict[Tuple[Any, ...], List[float]] = {}
    for i in order:
        value = metric_values[i]
        if value is None or isinstance(value, str):
            continue
        key = tuple(rows[column][i] for column in query.by)
        groups.setdefault(key, []).append(float(value))
    result = QueryResult(query=query, rows_scanned=len(run_ids),
                         runs_seen=len(set(run_ids)))
    for key in sorted(groups, key=lambda k: tuple(str(part) for part in k)):
        values = groups[key]
        result.groups.append(
            GroupRow(
                key=key,
                count=len(values),
                median=_median(values),
                mean=sum(values) / len(values),
                min=min(values),
                max=max(values),
                latest=values[-1],
            )
        )
    return result


def format_query_result(result: QueryResult) -> str:
    from ..analysis.report import render_table

    query = result.query
    headers = list(query.by) + ["runs", "median", "mean", "min", "max", "latest"]
    rows = []
    for group in result.groups:
        rows.append(
            [str(part) for part in group.key]
            + [
                group.count,
                round(group.median, 3),
                round(group.mean, 3),
                round(group.min, 3),
                round(group.max, 3),
                round(group.latest, 3),
            ]
        )
    title = f"{query.metric}"
    if query.by:
        title += f" by {', '.join(query.by)}"
    if query.last:
        title += f" (last {query.last} runs)"
    table = render_table(headers, rows, title=title)
    return (
        f"{table}\n{result.rows_scanned} rows / {result.runs_seen} runs "
        f"scanned, {len(result.groups)} groups"
    )


# -- regression gates --------------------------------------------------------

#: 1.4826 scales MAD to the standard deviation of a normal sample
_MAD_SIGMA = 1.4826


@dataclass
class Finding:
    """One out-of-band run."""

    group: Tuple[Any, ...]
    metric: str
    value: float
    median: float
    band_low: float
    band_high: float
    run_id: Any
    baseline_runs: int
    direction: str  # "drop" | "climb"

    def describe(self) -> str:
        return (
            f"{'/'.join(str(p) for p in self.group)}: {self.metric} "
            f"{self.value:g} outside [{self.band_low:g}, {self.band_high:g}] "
            f"(median {self.median:g} over {self.baseline_runs} runs, "
            f"{self.direction})"
        )


@dataclass
class RegressReport:
    findings: List[Finding] = field(default_factory=list)
    groups_checked: int = 0
    groups_skipped: int = 0  # too little history

    @property
    def ok(self) -> bool:
        return not self.findings


@dataclass
class RegressConfig:
    """Tunables of the trajectory gate (see ``configs/lake.json``)."""

    table: str = RUNS_TABLE
    metrics: Tuple[str, ...] = ("throughput_kops", "p99_us")
    by: Tuple[str, ...] = ("store", "workload", "batch_size",
                           "pipeline_depth", "fault_plan")
    #: baseline runs fitted per group (the newest run is the candidate)
    window: int = 20
    #: band half-width in scaled-MAD units
    k: float = 4.0
    #: minimum baseline runs before a group is gated at all
    min_runs: int = 5
    #: relative band floor: a dead-flat history still tolerates this
    #: fraction of the median before flagging
    rel_floor: float = 0.05
    where: Tuple[Tuple[str, str, Any], ...] = ()

    @classmethod
    def from_dict(cls, data: dict) -> "RegressConfig":
        known = {f_.name for f_ in cls.__dataclass_fields__.values()}  # type: ignore[attr-defined]
        unknown = set(data) - known
        if unknown:
            raise ValueError(
                f"unknown regress config keys: {', '.join(sorted(unknown))} "
                f"(expected {', '.join(sorted(known))})"
            )
        kwargs = dict(data)
        for name in ("metrics", "by"):
            if name in kwargs:
                kwargs[name] = tuple(
                    resolve(part) for part in kwargs[name]
                )
        if "where" in kwargs:
            kwargs["where"] = tuple(
                (resolve(c), o, v) for c, o, v in kwargs["where"]
            )
        return cls(**kwargs)

    @classmethod
    def load(cls, path: str) -> "RegressConfig":
        with open(path) as handle:
            return cls.from_dict(json.load(handle))


def detect_regressions(
    lake: ResultsLake, config: Optional[RegressConfig] = None
) -> RegressReport:
    """Gate the newest run of every group against its own trajectory.

    Per (group x metric): order the group's rows by run id, hold out
    the newest run as the candidate, fit median and MAD over up to
    ``window`` preceding runs, and flag the candidate if it falls
    outside ``median +- k * 1.4826 * MAD`` (never narrower than
    ``rel_floor * |median|``) in the bad direction for that metric.
    Groups with fewer than ``min_runs`` baseline runs are skipped, so
    a young lake gates nothing and tightens as history accrues.
    """
    config = config or RegressConfig()
    report = RegressReport()
    if config.table not in lake.tables():
        return report
    known = set(lake.columns(config.table))
    metrics = [m for m in config.metrics if m in known]
    group_columns = [c for c in config.by if c in known]
    if not metrics:
        return report
    query = Query(
        metric=metrics[0],
        by=tuple(group_columns),
        where=config.where,
        table=config.table,
    )
    columns = query.columns_needed + [m for m in metrics[1:] if m not in query.columns_needed]
    data = lake.scan(config.table, columns, batch_filter=_batch_filter(query))
    nrows = len(data["run_id"])
    keep = [True] * nrows
    for column, op, value in config.where:
        compare = _OPS[op]
        values = data[column]
        for i in range(nrows):
            if keep[i] and not compare(values[i], value):
                keep[i] = False
    order = sorted(
        (i for i in range(nrows) if keep[i]),
        key=lambda i: (data["run_id"][i] is None, data["run_id"][i]),
    )
    for metric in metrics:
        trajectories: Dict[Tuple[Any, ...], List[Tuple[Any, float]]] = {}
        for i in order:
            value = data[metric][i]
            if value is None or isinstance(value, str):
                continue
            key = tuple(data[column][i] for column in group_columns)
            trajectories.setdefault(key, []).append(
                (data["run_id"][i], float(value))
            )
        for key, points in trajectories.items():
            report.groups_checked += 1
            if len(points) < config.min_runs + 1:
                report.groups_skipped += 1
                continue
            candidate_run, candidate = points[-1]
            baseline = [v for _, v in points[:-1]][-config.window:]
            center = _median(baseline)
            spread = _MAD_SIGMA * _mad(baseline, center)
            half = max(config.k * spread, config.rel_floor * abs(center))
            low, high = center - half, center + half
            if low <= candidate <= high:
                continue
            bad_drop = metric in HIGHER_IS_BETTER and candidate < low
            bad_climb = metric not in HIGHER_IS_BETTER and candidate > high
            if not (bad_drop or bad_climb):
                continue  # moved out of band in the *good* direction
            report.findings.append(
                Finding(
                    group=key,
                    metric=metric,
                    value=candidate,
                    median=center,
                    band_low=low,
                    band_high=high,
                    run_id=candidate_run,
                    baseline_runs=len(baseline),
                    direction="drop" if bad_drop else "climb",
                )
            )
    return report


def format_regress_report(
    report: RegressReport, config: Optional[RegressConfig] = None
) -> str:
    config = config or RegressConfig()
    lines = [
        f"checked {report.groups_checked} group-metric trajectories "
        f"({report.groups_skipped} with < {config.min_runs + 1} runs skipped)"
    ]
    if report.ok:
        lines.append("no out-of-band runs: trajectory clean")
    else:
        lines.append(f"{len(report.findings)} regression(s):")
        for finding in report.findings:
            lines.append(f"  {finding.describe()}")
    return "\n".join(lines)
