"""Run identity and record schema for the results lake.

Everything the lake stores is keyed by a **run**: one invocation of a
replay, comparison, or benchmark.  A run carries

* ``run_id`` -- monotonically derived from the wall clock
  (:func:`next_run_id` never repeats or goes backwards within a
  process, and nanosecond stamps keep cross-process collisions out of
  practical reach), so sorting by run id reproduces append order even
  across lake files;
* ``git_sha`` -- the commit the harness ran from (None outside a
  checkout), which is what lets ``lake regress`` answer *which change*
  moved a trajectory;
* ``schema`` -- :data:`RECORD_SCHEMA_VERSION`, stamped into every
  record and every ``BENCH_*.json`` so readers can gate on it.
  Legacy artifacts without a stamp ingest as schema 0 (backfill).

Records are flat dicts of scalars.  :func:`normalize_record` flattens
structured values to JSON strings and drops unserializable ones, so
anything shaped like a result row can enter the lake without its
producer knowing the column format.
"""

from __future__ import annotations

import json
import os
import subprocess
import threading
import time
from typing import Any, Dict, Optional

#: version of the run-record schema (EvaluationRow.to_record, BENCH
#: stamps, series/span/bench rows); bump on incompatible field changes
RECORD_SCHEMA_VERSION = 1

#: meta columns stamped onto every ingested record
META_COLUMNS = ("run_id", "ts", "git_sha", "schema", "source")

#: table names the standard ingesters write to
RUNS_TABLE = "runs"
SERIES_TABLE = "series"
SPANS_TABLE = "spans"
BENCH_TABLE = "bench"

_id_lock = threading.Lock()
_last_id = 0


def next_run_id() -> int:
    """Monotonic run id (nanosecond wall clock, never non-increasing).

    Wall-clock derived so ids order identically across processes and
    machines to the precision that matters for a trajectory (runs are
    seconds apart); the lock-guarded floor keeps ids strictly
    increasing even if the clock steps backwards.
    """
    global _last_id
    with _id_lock:
        candidate = time.time_ns()
        if candidate <= _last_id:
            candidate = _last_id + 1
        _last_id = candidate
        return candidate


_git_sha_cache: Dict[str, Optional[str]] = {}


def git_sha(cwd: Optional[str] = None) -> Optional[str]:
    """Current HEAD commit, or None when not in a git checkout."""
    key = cwd or os.getcwd()
    if key not in _git_sha_cache:
        try:
            out = subprocess.run(
                ["git", "rev-parse", "HEAD"],
                cwd=cwd,
                capture_output=True,
                timeout=5,
            )
            sha = out.stdout.decode("ascii", "replace").strip()
            _git_sha_cache[key] = sha if out.returncode == 0 and sha else None
        except (OSError, subprocess.SubprocessError):
            _git_sha_cache[key] = None
    return _git_sha_cache[key]


def run_meta(
    source: str,
    run_id: Optional[int] = None,
    sha: Optional[str] = None,
) -> Dict[str, Any]:
    """The meta stanza every ingested record carries."""
    return {
        "run_id": run_id if run_id is not None else next_run_id(),
        "ts": time.time(),
        "git_sha": sha if sha is not None else git_sha(),
        "schema": RECORD_SCHEMA_VERSION,
        "source": source,
    }


def normalize_record(record: Dict[str, Any]) -> Dict[str, Any]:
    """Flatten a record to lake-storable scalars.

    Scalars pass through; dicts/lists become JSON strings; values that
    cannot serialize are dropped (a record must never fail to ingest
    because one diagnostic field held an exotic object).
    """
    out: Dict[str, Any] = {}
    for name, value in record.items():
        if value is None or isinstance(value, (bool, int, float, str)):
            out[name] = value
        else:
            try:
                out[name] = json.dumps(value, sort_keys=True, default=str)
            except (TypeError, ValueError):
                continue
    return out


def fault_plan_label(plan) -> str:
    """Stable label for the fault-plan config axis of a run.

    ``none`` for unfaulted runs; otherwise the plan's seed, which is
    what makes two runs comparable (same seed = identical schedule).
    """
    if plan is None:
        return "none"
    seed = getattr(plan, "seed", None)
    return f"seed={seed}" if seed is not None else "unlabelled"
