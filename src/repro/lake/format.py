"""Columnar lake file format: footer-indexed record batches.

The lake stores evaluation history as **record batches** appended one
per run, in the struct-of-arrays idiom of the trace-v2 engine
(:mod:`repro.trace`): every column is a typed ``array`` buffer, string
columns are dictionary-encoded against a per-batch interned pool, and
all structural metadata lives in a footer rewritten on each append --
the Parquet play (column chunks + footer index + per-chunk min/max
statistics for predicate pushdown) built from the stdlib, like the
rest of the harness.

File layout::

    [RLKE][u16 version]
    column chunk | column chunk | ...        <- the body, append-only
    [footer JSON][u32 crc][u64 len][RLKF]    <- rewritten per append

Every column chunk is CRC32-checksummed individually (same fail-stop
posture as the PR 3 on-disk store formats: a flipped bit raises
:class:`LakeCorruptionError`, never returns wrong numbers), and the
footer itself carries a CRC so a torn append is detected on open.

Readers fetch only the chunks a query references -- the footer knows
every chunk's offset, type, and min/max -- and count every chunk
actually read in :attr:`ResultsLake.chunks_read`, which is how the
tests assert predicate pushdown instead of trusting it.

Columns are nullable (a validity chunk is written only when a batch
actually contains nulls) and self-describing per batch, so schema
evolution is free: a new column simply reads as ``None`` for batches
written before it existed.
"""

from __future__ import annotations

import json
import os
import sys
from array import array
from typing import Any, Dict, List, Optional, Sequence, Tuple
from zlib import crc32

MAGIC = b"RLKE"
FOOTER_MAGIC = b"RLKF"
FORMAT_VERSION = 1
#: default file name when the lake is addressed by directory
LAKE_FILENAME = "lake.rlk"

_HEADER_LEN = 6  # magic + u16 version
_TRAILER_LEN = 4 + 8 + 4  # crc + footer len + magic

#: column type tags -> array typecodes
_TYPECODES = {"i64": "q", "f64": "d"}


class LakeError(Exception):
    """The file is not a lake, or an operation on it is invalid."""


class LakeCorruptionError(LakeError):
    """A chunk or the footer failed its CRC check (fail-stop)."""


def lake_path(path: str) -> str:
    """Resolve a ``--lake`` argument: a directory means ``DIR/lake.rlk``."""
    if os.path.isdir(path) or not os.path.splitext(path)[1]:
        return os.path.join(path, LAKE_FILENAME)
    return path


def _classify(values: Sequence[Any]) -> str:
    """Pick the narrowest column type holding every non-null value."""
    kind = None
    for value in values:
        if value is None:
            continue
        if isinstance(value, bool) or isinstance(value, int):
            kind = kind or "i64"
        elif isinstance(value, float):
            kind = "f64" if kind in (None, "i64", "f64") else kind
        else:
            return "str"
    if kind == "i64" and any(
        isinstance(v, int) and not -(2**63) <= v < 2**63
        for v in values
        if v is not None and not isinstance(v, bool)
    ):
        return "str"  # out-of-range ints survive as strings
    return kind or "str"


def _as_str(value: Any) -> str:
    """Stringify a non-string scalar for a str column (JSON for
    structured values, so dict payloads stay machine-readable)."""
    if isinstance(value, str):
        return value
    if isinstance(value, (dict, list, bool)):
        return json.dumps(value, sort_keys=True)
    return str(value)


class ResultsLake:
    """One lake file: named tables of appended record batches.

    The writer is single-process (like every on-disk artifact of the
    harness); readers can share the file because every read is a
    seek+read against offsets pinned by the footer they opened with.
    """

    def __init__(self, path: str, create: bool = True) -> None:
        self.path = lake_path(path)
        #: column chunks actually read from disk (predicate-pushdown
        #: accounting; validity sub-chunks count with their column)
        self.chunks_read = 0
        self._footer: Dict[str, Any] = {"version": FORMAT_VERSION, "tables": {}}
        #: end of the last durable footer's trailer -- the only safe
        #: append point (everything beyond it is torn-append garbage)
        self._tail = _HEADER_LEN
        if os.path.exists(self.path):
            self._open_existing()
        elif create:
            parent = os.path.dirname(self.path)
            if parent:
                os.makedirs(parent, exist_ok=True)
            with open(self.path, "wb") as handle:
                handle.write(MAGIC)
                handle.write(FORMAT_VERSION.to_bytes(2, "little"))
                self._write_footer(handle)
                self._tail = handle.tell()
        else:
            raise LakeError(f"no lake at {self.path}")

    # -- footer ------------------------------------------------------------

    def _open_existing(self) -> None:
        with open(self.path, "rb") as handle:
            head = handle.read(_HEADER_LEN)
            if len(head) < _HEADER_LEN or head[:4] != MAGIC:
                raise LakeError(f"{self.path} is not a results lake")
            version = int.from_bytes(head[4:6], "little")
            if version != FORMAT_VERSION:
                raise LakeError(
                    f"unsupported lake format version {version} "
                    f"(this build reads version {FORMAT_VERSION})"
                )
            handle.seek(0, os.SEEK_END)
            size = handle.tell()
            loaded = self._try_footer(handle, size)
            if loaded is None:
                # Torn append: chunks (or a partial footer) were written
                # but the trailing footer never landed.  Fall back to
                # the last valid footer in the file; the next append
                # truncates the unreachable partial chunks.
                loaded = self._recover_footer(handle, size)
            if loaded is None:
                raise LakeCorruptionError(
                    f"{self.path}: no valid footer (torn append or "
                    f"corrupted file)"
                )
            self._footer, self._tail = loaded

    def _try_footer(self, handle, end: int) -> Optional[Tuple[dict, int]]:
        """Parse a footer whose trailer ends at ``end``; None if the
        trailer, CRC, or JSON there does not check out."""
        if end < _HEADER_LEN + _TRAILER_LEN:
            return None
        handle.seek(end - _TRAILER_LEN)
        trailer = handle.read(_TRAILER_LEN)
        if trailer[-4:] != FOOTER_MAGIC:
            return None
        footer_crc = int.from_bytes(trailer[:4], "little")
        footer_len = int.from_bytes(trailer[4:12], "little")
        footer_start = end - _TRAILER_LEN - footer_len
        if footer_start < _HEADER_LEN:
            return None
        handle.seek(footer_start)
        payload = handle.read(footer_len)
        if crc32(payload) & 0xFFFFFFFF != footer_crc:
            return None
        try:
            footer = json.loads(payload.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError):
            return None
        if not isinstance(footer, dict) or "tables" not in footer:
            return None
        return footer, end

    def _recover_footer(self, handle, size: int) -> Optional[Tuple[dict, int]]:
        """Scan backwards for the last footer that still validates."""
        handle.seek(0)
        data = handle.read(size)
        position = data.rfind(FOOTER_MAGIC)
        while position != -1:
            loaded = self._try_footer(handle, position + len(FOOTER_MAGIC))
            if loaded is not None:
                return loaded
            position = data.rfind(FOOTER_MAGIC, 0, position)
        return None

    def _write_footer(self, handle) -> None:
        payload = json.dumps(self._footer, separators=(",", ":")).encode("utf-8")
        handle.write(payload)
        handle.write((crc32(payload) & 0xFFFFFFFF).to_bytes(4, "little"))
        handle.write(len(payload).to_bytes(8, "little"))
        handle.write(FOOTER_MAGIC)

    # -- introspection -----------------------------------------------------

    def tables(self) -> List[str]:
        return sorted(self._footer["tables"])

    def batches(self, table: str) -> List[dict]:
        """Footer metadata for every batch of ``table`` (oldest first)."""
        return list(self._footer["tables"].get(table, []))

    def num_rows(self, table: str) -> int:
        return sum(b["rows"] for b in self.batches(table))

    def columns(self, table: str) -> List[str]:
        """Union of column names across all batches of ``table``."""
        names: List[str] = []
        for batch in self.batches(table):
            for name in batch["columns"]:
                if name not in names:
                    names.append(name)
        return names

    def total_chunks(self, table: str) -> int:
        """Column chunks on disk for ``table`` (pushdown denominator)."""
        return sum(len(b["columns"]) for b in self.batches(table))

    # -- appending ---------------------------------------------------------

    def append(self, table: str, records: Sequence[Dict[str, Any]]) -> int:
        """Append one record batch; returns the rows written.

        ``records`` is a list of flat dicts; the union of their keys
        becomes the batch's columns, each typed by the narrowest of
        i64/f64/str that holds its values (bools count as ints,
        structured values are stored as JSON strings).  Appends go
        strictly past the previous footer, which stays in place as
        dead bytes (chunk offsets are absolute, so readers never see
        it) -- a crash at ANY point mid-append leaves that footer the
        newest valid one, and the next append truncates the torn tail.
        """
        if not records:
            return 0
        names: List[str] = []
        for record in records:
            for name in record:
                if name not in names:
                    names.append(name)
        nrows = len(records)
        meta_columns: Dict[str, dict] = {}
        with open(self.path, "r+b") as handle:
            handle.seek(self._tail)
            handle.truncate()
            for name in names:
                values = [record.get(name) for record in records]
                meta_columns[name] = self._write_column(handle, values)
            batches = self._footer["tables"].setdefault(table, [])
            batches.append({"rows": nrows, "columns": meta_columns})
            self._write_footer(handle)
            self._tail = handle.tell()
        return nrows

    def _write_chunk(self, handle, payload: bytes) -> dict:
        offset = handle.tell()
        handle.write(payload)
        return {
            "off": offset,
            "len": len(payload),
            "crc": crc32(payload) & 0xFFFFFFFF,
        }

    def _write_column(self, handle, values: List[Any]) -> dict:
        kind = _classify(values)
        nulls = sum(1 for v in values if v is None)
        meta: Dict[str, Any] = {"type": kind, "nulls": nulls}
        present = [v for v in values if v is not None]
        if kind in _TYPECODES:
            fill = 0 if kind == "i64" else 0.0
            data = array(
                _TYPECODES[kind],
                [
                    fill if v is None else (int(v) if kind == "i64" else float(v))
                    for v in values
                ],
            )
            meta["chunk"] = self._write_chunk(handle, _le_bytes(data))
            if present:
                meta["min"] = min(present)
                meta["max"] = max(present)
        else:
            texts = [None if v is None else _as_str(v) for v in values]
            pool: List[str] = []
            index: Dict[str, int] = {}
            ids = array("I")
            for text in texts:
                if text is None:
                    ids.append(0)
                    continue
                pos = index.get(text)
                if pos is None:
                    pos = index[text] = len(pool)
                    pool.append(text)
                ids.append(pos)
            blob = b"".join(s.encode("utf-8") for s in pool)
            offs = array("Q", [0])
            total = 0
            for text in pool:
                total += len(text.encode("utf-8"))
                offs.append(total)
            meta["pool"] = len(pool)
            meta["chunk"] = self._write_chunk(
                handle, _le_bytes(offs) + blob + _le_bytes(ids)
            )
            strings = [t for t in texts if t is not None]
            # Stats only when every value is short: truncating the max
            # would lower it, and an unsound bound turns pushdown into
            # silent row loss.
            if strings and all(len(s) <= 64 for s in strings):
                meta["min"] = min(strings)
                meta["max"] = max(strings)
        if nulls:
            meta["validity"] = self._write_chunk(
                handle, bytes(0 if v is None else 1 for v in values)
            )
        return meta

    # -- reading -----------------------------------------------------------

    def _read_chunk(self, handle, chunk: dict, what: str) -> bytes:
        handle.seek(chunk["off"])
        payload = handle.read(chunk["len"])
        if len(payload) != chunk["len"]:
            raise LakeCorruptionError(f"{self.path}: truncated {what}")
        if crc32(payload) & 0xFFFFFFFF != chunk["crc"]:
            raise LakeCorruptionError(
                f"{self.path}: CRC mismatch in {what}"
            )
        return payload

    def read_column(self, handle, batch: dict, name: str) -> List[Any]:
        """Decode one column of one batch (``None`` rows for columns
        the batch predates).  Counts one chunk read."""
        meta = batch["columns"].get(name)
        if meta is None:
            return [None] * batch["rows"]
        self.chunks_read += 1
        nrows = batch["rows"]
        kind = meta["type"]
        payload = self._read_chunk(handle, meta["chunk"], f"column {name!r}")
        if kind in _TYPECODES:
            data = _from_le_bytes(_TYPECODES[kind], payload)
            values: List[Any] = list(data)
        elif kind == "str":
            npool = meta["pool"]
            offs_len = (npool + 1) * 8
            offs = _from_le_bytes("Q", payload[:offs_len])
            blob_len = offs[-1] if npool else 0
            blob = payload[offs_len : offs_len + blob_len]
            ids = _from_le_bytes("I", payload[offs_len + blob_len :])
            pool = [
                blob[offs[i] : offs[i + 1]].decode("utf-8")
                for i in range(npool)
            ]
            values = [pool[i] if npool else None for i in ids]
        else:
            raise LakeError(f"unknown column type {kind!r} for {name!r}")
        if len(values) != nrows:
            raise LakeCorruptionError(
                f"{self.path}: column {name!r} decoded {len(values)} rows, "
                f"footer says {nrows}"
            )
        if meta.get("nulls"):
            validity = self._read_chunk(
                handle, meta["validity"], f"validity of {name!r}"
            )
            values = [
                value if valid else None
                for value, valid in zip(values, validity)
            ]
        return values

    def scan(
        self,
        table: str,
        columns: Optional[Sequence[str]] = None,
        batch_filter=None,
    ) -> Dict[str, List[Any]]:
        """Read ``columns`` of ``table`` into column lists.

        ``batch_filter(batch_meta)`` may return False to skip a batch
        entirely -- zero chunks of it are read.  This is the predicate
        pushdown hook: :mod:`repro.lake.query` derives the filter from
        the query's WHERE clause and the footer's min/max stats.
        """
        wanted = list(columns) if columns is not None else self.columns(table)
        out: Dict[str, List[Any]] = {name: [] for name in wanted}
        out["_batch"] = []
        with open(self.path, "rb") as handle:
            for number, batch in enumerate(self.batches(table)):
                if batch_filter is not None and not batch_filter(batch):
                    continue
                for name in wanted:
                    out[name].extend(self.read_column(handle, batch, name))
                out["_batch"].extend([number] * batch["rows"])
        return out

    def verify(self) -> int:
        """Re-read and CRC-check every chunk; returns chunks verified.

        The lake's ``scrub``: raises :class:`LakeCorruptionError` on
        the first damaged chunk rather than returning wrong history.
        """
        verified = 0
        with open(self.path, "rb") as handle:
            for table in self.tables():
                for batch in self.batches(table):
                    for name, meta in batch["columns"].items():
                        self._read_chunk(
                            handle, meta["chunk"], f"{table}.{name}"
                        )
                        verified += 1
                        if meta.get("nulls"):
                            self._read_chunk(
                                handle,
                                meta["validity"],
                                f"{table}.{name} validity",
                            )
        return verified


def _le_bytes(arr: array) -> bytes:
    """Array contents as little-endian bytes (the on-disk byte order)."""
    if sys.byteorder == "little" or arr.itemsize == 1:
        return arr.tobytes()
    swapped = array(arr.typecode, arr)
    swapped.byteswap()
    return swapped.tobytes()


def _from_le_bytes(typecode: str, data: bytes) -> array:
    arr = array(typecode)
    arr.frombytes(data)
    if sys.byteorder != "little" and arr.itemsize > 1:
        arr.byteswap()
    return arr


def batch_stats(batch: dict, column: str) -> Optional[Tuple[Any, Any]]:
    """(min, max) recorded for ``column`` in ``batch``, or None when
    the batch predates the column or recorded no values."""
    meta = batch["columns"].get(column)
    if meta is None or "min" not in meta:
        return None
    return meta["min"], meta["max"]
