"""Columnar results lake: queryable evaluation history.

A single append-only columnar file (``lake.rlk``) holding every
artifact the harness emits -- evaluation rows, metrics-series
aggregates, span summaries, BENCH results -- plus a query surface and
trajectory-based regression gates over the recorded history.  See
``DESIGN.md`` section 6.12 for the on-disk format.
"""

from .format import (
    LAKE_FILENAME,
    LakeCorruptionError,
    LakeError,
    ResultsLake,
    lake_path,
)
from .ingest import (
    append_rows,
    import_paths,
    ingest_bench,
    ingest_series,
    ingest_spans,
    sniff_kind,
)
from .query import (
    Finding,
    Query,
    QueryError,
    QueryResult,
    RegressConfig,
    RegressReport,
    detect_regressions,
    format_query_result,
    format_regress_report,
    parse_query,
    run_query,
)
from .schema import (
    BENCH_TABLE,
    META_COLUMNS,
    RECORD_SCHEMA_VERSION,
    RUNS_TABLE,
    SERIES_TABLE,
    SPANS_TABLE,
    fault_plan_label,
    git_sha,
    next_run_id,
    normalize_record,
    run_meta,
)

__all__ = [
    "LAKE_FILENAME",
    "LakeCorruptionError",
    "LakeError",
    "ResultsLake",
    "lake_path",
    "append_rows",
    "import_paths",
    "ingest_bench",
    "ingest_series",
    "ingest_spans",
    "sniff_kind",
    "Finding",
    "Query",
    "QueryError",
    "QueryResult",
    "RegressConfig",
    "RegressReport",
    "detect_regressions",
    "format_query_result",
    "format_regress_report",
    "parse_query",
    "run_query",
    "BENCH_TABLE",
    "META_COLUMNS",
    "RECORD_SCHEMA_VERSION",
    "RUNS_TABLE",
    "SERIES_TABLE",
    "SPANS_TABLE",
    "fault_plan_label",
    "git_sha",
    "next_run_id",
    "normalize_record",
    "run_meta",
]
