"""Ingesters: every artifact the harness emits, into lake tables.

Four artifact families, four tables:

* ``runs``    -- :class:`~repro.core.evaluator.EvaluationRow` records
  (one per store per evaluation), via the schema-versioned
  ``to_record()``.  The evaluator appends these automatically when
  constructed with a ``lake_dir``.
* ``series``  -- metrics JSONL time series, downsampled to one row of
  per-run interval aggregates (mean/min-interval throughput, max p99,
  activity counter deltas) plus the final merged latency histogram
  re-aggregated through
  :meth:`~repro.core.histogram.LatencyHistogram.from_dict`.
* ``spans``   -- Chrome span traces summarized to total time per span
  name per thread lane (the "where did the time go" columns).
* ``bench``   -- ``BENCH_*.json`` files flattened to one row per
  result cell, keyed by the slash-joined path to the cell.  Stamped
  files (PR 10+) carry their run id / git SHA / schema version;
  legacy unstamped files backfill from the file's mtime at schema 0.

:func:`import_paths` sniffs which family a file belongs to, so
``repro lake import`` takes any mix of artifacts.
"""

from __future__ import annotations

import json
import os
import re
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple

from .format import ResultsLake
from .schema import (
    BENCH_TABLE,
    RUNS_TABLE,
    SERIES_TABLE,
    SPANS_TABLE,
    normalize_record,
    run_meta,
)

#: BENCH sections that describe the measurement, not results
_BENCH_NON_RESULT_KEYS = {"env", "method", "note", "caveat", "run"}

_BENCH_NAME_RE = re.compile(r"BENCH_(?P<name>[A-Za-z0-9_]+)\.json$")


def append_rows(
    lake: ResultsLake,
    rows: Sequence[Any],
    workload: Optional[str] = None,
    fault_plan: Optional[str] = None,
    run_id: Optional[int] = None,
) -> int:
    """Append evaluation rows as one run's record batch.

    ``rows`` are :class:`~repro.core.evaluator.EvaluationRow` objects
    (anything with ``to_record()``); all rows of one call share one
    run id, which is what groups a multi-store comparison back
    together at query time.
    """
    meta = run_meta("evaluate", run_id=run_id)
    records = []
    for row in rows:
        record = dict(row.to_record() if hasattr(row, "to_record") else vars(row))
        if workload is not None:
            record.setdefault("workload", workload)
        record["fault_plan"] = fault_plan if fault_plan is not None else "none"
        record.update(meta)
        records.append(normalize_record(record))
    return lake.append(RUNS_TABLE, records)


def ingest_series(
    lake: ResultsLake, path: str, run_id: Optional[int] = None
) -> int:
    """Downsample one metrics JSONL series into a per-run aggregate row.

    Reuses :func:`~repro.obs.dashboard.summarize_series` for the
    interval aggregates and re-merges every interval histogram into the
    run's final latency distribution (merge-preserving, so the stored
    percentiles equal what a single whole-run histogram would report).
    """
    from ..core.histogram import LatencyHistogram
    from ..obs.dashboard import summarize_series
    from ..obs.metrics import read_series

    summary = summarize_series(path)
    header, samples = read_series(path)
    merged: Optional[LatencyHistogram] = None
    for sample in samples:
        payload = sample.get("latency_hist")
        if not payload:
            continue
        histogram = LatencyHistogram.from_dict(payload)
        if merged is None:
            merged = histogram
        else:
            merged.merge(histogram)
    record: Dict[str, Any] = {
        "series_path": path,
        "store": summary.get("store", ""),
        "samples": summary.get("samples", 0),
        "duration_s": summary.get("duration_s", 0.0),
        "ops": summary.get("ops", 0),
        "mean_throughput_ops": summary.get("mean_throughput_ops", 0.0),
        "min_interval_throughput_ops": summary.get(
            "min_interval_throughput_ops", 0.0
        ),
        "max_p99_us": summary.get("max_p99_us", 0.0),
        "shards": header.get("shards", 1),
        "faults": summary.get("faults"),
        "retries": summary.get("retries"),
    }
    for name, delta in summary.get("activity", {}).items():
        record[f"activity.{name}"] = delta
    if merged is not None:
        final = merged.summary()
        record["p50_us"] = round(final["p50"], 3)
        record["p99_us"] = round(final["p99"], 3)
        record["p999_us"] = round(final["p99.9"], 3)
        record["latency_hist"] = merged.to_dict()
    record.update(run_meta("series", run_id=run_id))
    return lake.append(SERIES_TABLE, [normalize_record(record)])


def ingest_spans(
    lake: ResultsLake, path: str, run_id: Optional[int] = None
) -> int:
    """Summarize a Chrome span trace: total time per span name per lane."""
    with open(path) as handle:
        trace = json.load(handle)
    events = trace.get("traceEvents")
    if events is None:
        raise ValueError(f"{path} is not a Chrome trace-event file")
    lanes: Dict[Tuple[int, int], str] = {}
    for event in events:
        if event.get("ph") == "M" and event.get("name") == "thread_name":
            lanes[(event.get("pid", 0), event.get("tid", 0))] = (
                event.get("args", {}).get("name", "")
            )
    totals: Dict[Tuple[str, str], List[float]] = {}
    for event in events:
        if event.get("ph") not in ("X", "i"):
            continue
        lane = lanes.get(
            (event.get("pid", 0), event.get("tid", 0)),
            str(event.get("tid", 0)),
        )
        key = (event["name"], lane)
        bucket = totals.setdefault(key, [0, 0.0])
        bucket[0] += 1
        bucket[1] += event.get("dur", 0.0)  # us; instants add 0
    meta = run_meta("spans", run_id=run_id)
    records = []
    for (name, lane), (count, total_us) in sorted(totals.items()):
        record = {
            "trace_path": path,
            "name": name,
            "lane": lane,
            "count": count,
            "total_ms": round(total_us / 1000.0, 6),
        }
        record.update(meta)
        records.append(normalize_record(record))
    return lake.append(SPANS_TABLE, records)


def _bench_cells(
    node: Any, path: Tuple[str, ...]
) -> Iterable[Tuple[Tuple[str, ...], Dict[str, Any]]]:
    """Leaf result cells of a BENCH json: dicts of scalars with at
    least one numeric value, keyed by their path."""
    if not isinstance(node, dict):
        return
    scalars = {
        k: v
        for k, v in node.items()
        if v is None or isinstance(v, (bool, int, float, str))
    }
    nested = {k: v for k, v in node.items() if isinstance(v, (dict, list))}
    if scalars and any(
        isinstance(v, (int, float)) and not isinstance(v, bool)
        for v in scalars.values()
    ):
        yield path, scalars
    for key, child in nested.items():
        if isinstance(child, dict):
            yield from _bench_cells(child, path + (str(key),))


def ingest_bench(
    lake: ResultsLake, path: str, run_id: Optional[int] = None
) -> int:
    """Flatten one ``BENCH_*.json`` into bench-table rows.

    Stamped files (a ``run`` stanza with run_id / git_sha / schema)
    key their rows by the recorded run; legacy files backfill a run id
    from the file's mtime with schema 0, so a pre-stamp trajectory is
    still ingestable and ordered.
    """
    with open(path) as handle:
        data = json.load(handle)
    match = _BENCH_NAME_RE.search(os.path.basename(path))
    bench = match.group("name") if match else os.path.basename(path)
    stamp = data.get("run") if isinstance(data.get("run"), dict) else {}
    meta = run_meta(
        "bench",
        run_id=run_id
        if run_id is not None
        else stamp.get("run_id", int(os.path.getmtime(path) * 1e9)),
        sha=stamp.get("git_sha", ""),
    )
    if not stamp:
        meta["schema"] = 0  # legacy unstamped file
    elif "schema" in stamp:
        meta["schema"] = stamp["schema"]
    if meta.get("git_sha") == "":
        meta["git_sha"] = None
    records = []
    for key, section in data.items():
        if key in _BENCH_NON_RESULT_KEYS:
            continue
        for cell_path, scalars in _bench_cells(section, (str(key),)):
            record: Dict[str, Any] = {
                "bench": bench,
                "label": "/".join(cell_path),
            }
            record.update(scalars)
            record.update(meta)
            records.append(normalize_record(record))
    return lake.append(BENCH_TABLE, records)


def sniff_kind(path: str) -> str:
    """Which ingester a file belongs to: bench | series | spans."""
    if _BENCH_NAME_RE.search(os.path.basename(path)):
        return "bench"
    with open(path) as handle:
        head = handle.read(4096).lstrip()
    if head.startswith("{"):
        try:
            first = json.loads(head.splitlines()[0])
            if first.get("sample") == "header":
                return "series"
        except (json.JSONDecodeError, AttributeError):
            pass
        if '"traceEvents"' in head:
            return "spans"
        # fall through: whole-file JSON with traceEvents later on
        with open(path) as handle:
            try:
                data = json.load(handle)
            except json.JSONDecodeError:
                raise ValueError(f"cannot identify artifact kind of {path}")
        if isinstance(data, dict) and "traceEvents" in data:
            return "spans"
        if isinstance(data, dict):
            return "bench"
    raise ValueError(f"cannot identify artifact kind of {path}")


_INGESTERS = {
    "bench": ingest_bench,
    "series": ingest_series,
    "spans": ingest_spans,
}


def import_paths(
    lake: ResultsLake, paths: Sequence[str]
) -> List[Tuple[str, str, int]]:
    """Ingest a mixed list of artifacts; returns (path, kind, rows)."""
    out = []
    for path in paths:
        kind = sniff_kind(path)
        rows = _INGESTERS[kind](lake, path)
        out.append((path, kind, rows))
    return out
