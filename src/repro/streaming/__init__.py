"""Miniature stream processor with instrumented state management.

The stand-in for the paper's instrumented Apache Flink: operators run
their real state logic against :class:`~repro.streaming.state.StateBackend`,
and every state access is captured as a trace (section 3's methodology).
"""

from .checkpoint import CheckpointLog, run_with_checkpoints
from .dataflow import Job, LogicalOperator, hash_partition
from .operators import (
    ContinuousAggregation,
    ContinuousJoinOperator,
    IntervalJoinOperator,
    Operator,
    SessionWindowOperator,
    WindowJoinOperator,
    WindowOperator,
    count_aggregate,
    median_sizes,
)
from .runtime import RuntimeConfig, apply_disorder, merged_stream, run_operator
from .state import StateBackend, approximate_size
from .store_backend import StoreStateBackend, decode_frames, encode_frame
from .windows import (
    SlidingWindows,
    TumblingWindows,
    join_state_key,
    window_state_key,
)

__all__ = [
    "CheckpointLog",
    "ContinuousAggregation",
    "run_with_checkpoints",
    "ContinuousJoinOperator",
    "IntervalJoinOperator",
    "Job",
    "LogicalOperator",
    "Operator",
    "RuntimeConfig",
    "SessionWindowOperator",
    "SlidingWindows",
    "StateBackend",
    "StoreStateBackend",
    "decode_frames",
    "encode_frame",
    "TumblingWindows",
    "WindowJoinOperator",
    "WindowOperator",
    "apply_disorder",
    "approximate_size",
    "count_aggregate",
    "hash_partition",
    "join_state_key",
    "median_sizes",
    "merged_stream",
    "run_operator",
    "window_state_key",
]
