"""Single-threaded task runtime for the mini stream processor.

Drives one operator task over one or two input streams, injecting
punctuated watermarks and (optionally) out-of-order events, and returns
the state access trace the operator produced -- the "real trace"
collection path of the paper's section 3.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Iterator, List, Sequence, Tuple

from ..events import Event, Watermark
from ..trace import AccessTrace
from .operators.base import Operator


@dataclass
class RuntimeConfig:
    """Source behaviour knobs (paper section 3.1.2 defaults)."""

    #: emit one watermark per this many events
    watermark_frequency: int = 100
    #: fraction of events delivered out of order
    out_of_order_fraction: float = 0.0
    #: maximum delivery delay for an out-of-order event (ms, event time)
    max_delay_ms: int = 0
    #: "time" merges sources by event time; "round_robin" alternates
    #: sources like the Gadget driver does
    interleave: str = "time"
    seed: int = 7


def merged_stream(
    streams: Sequence[Sequence[Event]], interleave: str = "time"
) -> Iterator[Tuple[Event, int]]:
    """Combine input streams into (event, input_index) pairs."""
    if interleave == "time":
        tagged = [
            (event, index)
            for index, stream in enumerate(streams)
            for event in stream
        ]
        tagged.sort(key=lambda pair: pair[0].timestamp)
        yield from tagged
    elif interleave == "round_robin":
        iterators = [iter(s) for s in streams]
        active = list(range(len(iterators)))
        while active:
            remaining = []
            for index in active:
                try:
                    yield next(iterators[index]), index
                    remaining.append(index)
                except StopIteration:
                    pass
            active = remaining
    else:
        raise ValueError(f"unknown interleave mode: {interleave!r}")


def apply_disorder(
    pairs: List[Tuple[Event, int]], fraction: float, max_delay_ms: int, seed: int
) -> List[Tuple[Event, int]]:
    """Delay a fraction of events to simulate out-of-order arrival.

    Event timestamps are unchanged -- only the delivery order moves, so
    delayed events become *late* relative to watermarks generated from
    the events that overtook them.
    """
    if fraction <= 0.0 or max_delay_ms <= 0:
        return pairs
    rng = random.Random(seed)
    positioned = []
    for order, (event, index) in enumerate(pairs):
        delay = 0
        if rng.random() < fraction:
            delay = rng.randint(1, max_delay_ms)
        positioned.append((event.timestamp + delay, order, event, index))
    positioned.sort(key=lambda item: (item[0], item[1]))
    return [(event, index) for _, _, event, index in positioned]


def run_operator(
    operator: Operator,
    streams: Sequence[Sequence[Event]],
    config: RuntimeConfig = RuntimeConfig(),
) -> AccessTrace:
    """Process every event (plus watermarks) through ``operator``."""
    if len(streams) != operator.num_inputs:
        raise ValueError(
            f"operator expects {operator.num_inputs} input(s), got {len(streams)}"
        )
    pairs = list(merged_stream(streams, config.interleave))
    pairs = apply_disorder(
        pairs, config.out_of_order_fraction, config.max_delay_ms, config.seed
    )
    max_time = None
    for count, (event, index) in enumerate(pairs, start=1):
        operator.process(event, index)
        max_time = (
            event.timestamp if max_time is None else max(max_time, event.timestamp)
        )
        if config.watermark_frequency and count % config.watermark_frequency == 0:
            operator.on_watermark(Watermark(max_time))
    if max_time is not None:
        # Closing watermark so every remaining window fires, as a
        # draining streaming job would.
        operator.on_watermark(Watermark(max_time + 1))
    return operator.trace
