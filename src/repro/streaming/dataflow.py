"""Minimal logical dataflow graph (paper section 2.1).

A streaming computation is a directed graph of operators connected by
streams.  The paper's experiments only exercise single operator tasks,
but examples and tests use this small graph layer to express
source -> operator -> sink jobs and data-parallel key partitioning.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

from ..events import Event
from ..trace import AccessTrace
from .operators.base import Operator
from .runtime import RuntimeConfig, run_operator


def hash_partition(key: bytes, parallelism: int) -> int:
    """Deterministic key -> task assignment (disjoint partitions)."""
    return hash(key) % parallelism


@dataclass
class LogicalOperator:
    """A named operator plus its parallelism."""

    name: str
    factory: Callable[[], Operator]
    parallelism: int = 1


class Job:
    """A one-operator streaming job executed with data parallelism.

    Each task gets its own operator instance (and therefore its own
    embedded state backend), and processes a disjoint key partition --
    the single-thread access isolation guarantee of section 2.3.
    """

    def __init__(
        self,
        operator: LogicalOperator,
        runtime_config: RuntimeConfig = RuntimeConfig(),
    ) -> None:
        self.operator = operator
        self.runtime_config = runtime_config
        self.tasks: List[Operator] = []

    def run(self, *streams: Sequence[Event]) -> List[AccessTrace]:
        """Execute all tasks; returns one access trace per task."""
        parallelism = self.operator.parallelism
        self.tasks = [self.operator.factory() for _ in range(parallelism)]
        traces: List[AccessTrace] = []
        for task_index, task in enumerate(self.tasks):
            partitions = [
                [
                    e
                    for e in stream
                    if hash_partition(e.key, parallelism) == task_index
                ]
                for stream in streams
            ]
            traces.append(run_operator(task, partitions, self.runtime_config))
        return traces

    def collected_outputs(self) -> List:
        outputs: List = []
        for task in self.tasks:
            outputs.extend(task.outputs)
        return outputs
