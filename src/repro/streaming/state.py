"""Instrumented keyed state backend for the mini stream processor.

This is the stand-in for the paper's instrumented Flink state layer:
operators perform their real state accesses against it, values are held
as Python objects, and every access is appended to an
:class:`~repro.trace.AccessTrace` with the operation type, state key,
approximate value size, and the event time at which it happened.
"""

from __future__ import annotations

from typing import Any, Dict, Optional

from ..trace import AccessTrace, OpType


def approximate_size(value: Any) -> int:
    """Rough encoded size of an operator state value, in bytes."""
    if value is None:
        return 0
    if isinstance(value, (bytes, bytearray, str)):
        return len(value)
    if isinstance(value, (int, float)):
        return 8
    if isinstance(value, (list, tuple)):
        return sum(approximate_size(item) for item in value) + 4
    if isinstance(value, dict):
        return (
            sum(
                approximate_size(k) + approximate_size(v) for k, v in value.items()
            )
            + 8
        )
    return 16


class StateBackend:
    """Keyed state with get/put/merge/delete and access recording.

    ``merge`` follows list-append semantics: the stored value becomes a
    list and each operand is appended, matching how streaming systems
    use RocksDB's merge for window buckets.
    """

    def __init__(self, trace: Optional[AccessTrace] = None) -> None:
        self.trace = trace if trace is not None else AccessTrace()
        self._data: Dict[bytes, Any] = {}
        #: Event time of the access being performed; operators update it.
        self.current_time = 0

    def get(self, key: bytes) -> Any:
        value = self._data.get(key)
        self.trace.record(OpType.GET, key, 0, self.current_time)
        return value

    def put(self, key: bytes, value: Any) -> None:
        self._data[key] = value
        self.trace.record(
            OpType.PUT, key, approximate_size(value), self.current_time
        )

    def merge(self, key: bytes, operand: Any) -> None:
        bucket = self._data.get(key)
        if bucket is None:
            bucket = []
            self._data[key] = bucket
        elif not isinstance(bucket, list):
            # Merging onto a plain value promotes it to a bucket,
            # mirroring an append merge over an existing base value.
            bucket = [bucket]
            self._data[key] = bucket
        bucket.append(operand)
        self.trace.record(
            OpType.MERGE, key, approximate_size(operand), self.current_time
        )

    def delete(self, key: bytes) -> None:
        self._data.pop(key, None)
        self.trace.record(OpType.DELETE, key, 0, self.current_time)

    # -- inspection helpers (not traced) -----------------------------------

    def peek(self, key: bytes) -> Any:
        return self._data.get(key)

    def __len__(self) -> int:
        return len(self._data)

    def live_keys(self):
        return self._data.keys()
