"""Tumbling and sliding window operators (incremental and holistic).

State mechanics follow the W-ID strategy as implemented by Flink and
adopted by the paper (section 3.2.2):

* incremental: each event triggers a get-put pair per assigned window
  (read the running aggregate, fold, write back)
* holistic: each event triggers a single lazy merge per assigned window
  (append the event to the window bucket; no read)
* on watermark, every expired window triggers a final get (retrieve the
  contents/aggregate) followed by a delete

This algebra pins Table 1's tumbling/sliding rows exactly: incremental
windows have a get fraction of exactly 0.5, and holistic windows have
equal get and delete fractions.
"""

from __future__ import annotations

import statistics
from typing import Callable, Dict, List, Optional, Set, Tuple, Union

from ...events import Event
from ..state import StateBackend
from ..windows import SlidingWindows, TumblingWindows, window_state_key
from .aggregations import count_aggregate
from .base import Operator

Assigner = Union[TumblingWindows, SlidingWindows]


def median_sizes(bucket: List[Event]) -> float:
    """A holistic function: median of the buffered events' value sizes."""
    return statistics.median(e.value_size for e in bucket) if bucket else 0.0


class WindowOperator(Operator):
    """Time-window operator over a tumbling or sliding assigner."""

    def __init__(
        self,
        assigner: Assigner,
        backend: Optional[StateBackend] = None,
        holistic: bool = False,
        aggregate: Callable = count_aggregate,
        holistic_function: Callable[[List[Event]], object] = median_sizes,
        allowed_lateness: int = 0,
    ) -> None:
        super().__init__(backend)
        self.assigner = assigner
        self.holistic = holistic
        self.aggregate = aggregate
        self.holistic_function = holistic_function
        self.allowed_lateness = allowed_lateness
        # vIndex equivalent: window end -> state keys expiring then.
        self._expirations: Dict[int, Set[Tuple[bytes, int]]] = {}

    def handle_event(self, event: Event, input_index: int) -> None:
        if self.is_late(event, self.allowed_lateness):
            self.dropped_late_events += 1
            return
        for start in self.assigner.assign(event.timestamp):
            end = self.assigner.end_of(start)
            if end <= self.current_watermark:
                continue  # window already fired; inside lateness but closed
            state_key = window_state_key(event.key, start)
            if self.holistic:
                self.backend.merge(state_key, event)
            else:
                current = self.backend.get(state_key)
                self.backend.put(state_key, self.aggregate(current, event))
            self._expirations.setdefault(end, set()).add((event.key, start))

    def handle_watermark(self, timestamp: int) -> None:
        expired_ends = [end for end in self._expirations if end <= timestamp]
        for end in sorted(expired_ends):
            for key, start in sorted(self._expirations.pop(end)):
                state_key = window_state_key(key, start)
                contents = self.backend.get(state_key)  # final get (FGet)
                if self.holistic:
                    result = self.holistic_function(contents or [])
                else:
                    result = contents
                self.emit((key, start, end, result))
                self.backend.delete(state_key)

    @property
    def active_windows(self) -> int:
        return sum(len(keys) for keys in self._expirations.values())

    # -- checkpoint hooks ---------------------------------------------------

    def extra_state(self):
        return self._expirations

    def restore_extra(self, state) -> None:
        self._expirations = state if state is not None else {}
