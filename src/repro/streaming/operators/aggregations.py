"""Continuous per-key rolling aggregation (paper section 2.2).

The only operator whose state stream preserves the input stream's key
distribution (Table 2): every event triggers exactly one get and one
put on the *event* key.
"""

from __future__ import annotations

from typing import Callable, Optional

from ...events import Event
from ..state import StateBackend
from .base import Operator


def count_aggregate(current: Optional[int], event: Event) -> int:
    return (current or 0) + 1


def sum_sizes_aggregate(current: Optional[int], event: Event) -> int:
    return (current or 0) + event.value_size


def max_time_aggregate(current: Optional[int], event: Event) -> int:
    return event.timestamp if current is None else max(current, event.timestamp)


class ContinuousAggregation(Operator):
    """Rolling aggregate per key: get current, fold the event, put back."""

    def __init__(
        self,
        backend: Optional[StateBackend] = None,
        aggregate: Callable = count_aggregate,
    ) -> None:
        super().__init__(backend)
        self.aggregate = aggregate

    def handle_event(self, event: Event, input_index: int) -> None:
        current = self.backend.get(event.key)
        updated = self.aggregate(current, event)
        self.backend.put(event.key, updated)
        self.emit((event.key, updated))
