"""Operator base classes for the mini stream processor."""

from __future__ import annotations

from typing import Any, List, Optional

from ...events import Event, Watermark
from ...trace import AccessTrace
from ..state import StateBackend


class Operator:
    """A single task of a data-parallel streaming operator.

    Tasks own their state backend (embedded-store model, Figure 1 of
    the paper) and process events strictly sequentially, so all state
    accesses are totally ordered.
    """

    #: how many input streams the operator consumes
    num_inputs = 1

    def __init__(self, backend: Optional[StateBackend] = None) -> None:
        self.backend = backend if backend is not None else StateBackend()
        self.outputs: List[Any] = []
        self.current_watermark = -1
        self.dropped_late_events = 0

    @property
    def trace(self) -> AccessTrace:
        return self.backend.trace

    # -- runtime entry points ----------------------------------------------

    def process(self, event: Event, input_index: int = 0) -> None:
        self.backend.current_time = event.timestamp
        self.handle_event(event, input_index)

    def on_watermark(self, watermark: Watermark) -> None:
        if watermark.timestamp <= self.current_watermark:
            return
        self.current_watermark = watermark.timestamp
        self.backend.current_time = watermark.timestamp
        self.handle_watermark(watermark.timestamp)

    # -- to be implemented by concrete operators -----------------------------

    def handle_event(self, event: Event, input_index: int) -> None:
        raise NotImplementedError

    def handle_watermark(self, timestamp: int) -> None:
        """Default: nothing fires on progress."""

    # -- checkpointing -----------------------------------------------------

    def extra_state(self) -> Any:
        """Operator-specific metadata to include in checkpoints.

        Subclasses with in-memory indexes (window expirations, session
        lists, join liveness sets) return them here; the default
        operator carries no extra state.
        """
        return None

    def restore_extra(self, state: Any) -> None:
        """Inverse of :meth:`extra_state`."""

    def checkpoint(self) -> dict:
        """Consistent snapshot of all operator state (Flink-style)."""
        import copy

        return {
            "backend_data": copy.deepcopy(self.backend._data),
            "watermark": self.current_watermark,
            "outputs": list(self.outputs),
            "dropped": self.dropped_late_events,
            "extra": copy.deepcopy(self.extra_state()),
        }

    def restore(self, snapshot: dict) -> None:
        """Reset the task to a checkpoint (crash-recovery path)."""
        import copy

        self.backend._data = copy.deepcopy(snapshot["backend_data"])
        self.current_watermark = snapshot["watermark"]
        self.outputs = list(snapshot["outputs"])
        self.dropped_late_events = snapshot["dropped"]
        self.restore_extra(copy.deepcopy(snapshot["extra"]))

    # -- helpers ---------------------------------------------------------------

    def emit(self, output: Any) -> None:
        self.outputs.append(output)

    def is_late(self, event: Event, allowed_lateness: int = 0) -> bool:
        return event.timestamp <= self.current_watermark - allowed_lateness
