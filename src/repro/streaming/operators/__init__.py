"""Streaming operators of the mini engine (paper section 2.2)."""

from .aggregations import (
    ContinuousAggregation,
    count_aggregate,
    max_time_aggregate,
    sum_sizes_aggregate,
)
from .base import Operator
from .join_ops import ContinuousJoinOperator, IntervalJoinOperator, WindowJoinOperator
from .session_ops import SessionWindowOperator
from .window_ops import WindowOperator, median_sizes

__all__ = [
    "ContinuousAggregation",
    "ContinuousJoinOperator",
    "IntervalJoinOperator",
    "Operator",
    "SessionWindowOperator",
    "WindowJoinOperator",
    "WindowOperator",
    "count_aggregate",
    "max_time_aggregate",
    "median_sizes",
    "sum_sizes_aggregate",
]
