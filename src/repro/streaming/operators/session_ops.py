"""Session window operator with merging windows.

Sessions group events separated by less than ``gap_ms``.  Following
Flink's merging-window mechanics, each active session is one state
entry keyed by its start timestamp; when an event bridges two sessions
they merge:

* the surviving session keeps the earliest start (and its state key)
* the absorbed session's contents are read (get), folded into the
  survivor -- via the backend's lazy ``merge`` support -- and deleted

Like Flink, the operator also consults a per-key *merging window set*
(the mapping of windows to state entries) on every event.  We model
its read path as a get on a per-key index entry and its cleanup as a
delete once a key has no active sessions; writes are cached in memory
between checkpoints and do not hit the store.  This produces the op
mix the paper reports for session windows: roughly two gets per put in
the incremental case, and deletes amplified by both firings and index
cleanup (Table 1's Session rows).
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Tuple

from ...events import Event
from ..state import StateBackend
from ..windows import window_state_key
from .aggregations import count_aggregate
from .base import Operator
from .window_ops import median_sizes


class _Session:
    __slots__ = ("start", "end")

    def __init__(self, start: int, end: int) -> None:
        self.start = start
        self.end = end

    def overlaps(self, start: int, end: int) -> bool:
        return start <= self.end and self.start <= end


class SessionWindowOperator(Operator):
    def __init__(
        self,
        gap_ms: int,
        backend: Optional[StateBackend] = None,
        holistic: bool = False,
        aggregate: Callable = count_aggregate,
        holistic_function: Callable[[List[Event]], object] = median_sizes,
        allowed_lateness: int = 0,
    ) -> None:
        super().__init__(backend)
        if gap_ms <= 0:
            raise ValueError("session gap must be positive")
        self.gap_ms = gap_ms
        self.holistic = holistic
        self.aggregate = aggregate
        self.holistic_function = holistic_function
        self.allowed_lateness = allowed_lateness
        #: active sessions per key, kept sorted by start
        self._sessions: Dict[bytes, List[_Session]] = {}
        self.session_merges = 0

    # ------------------------------------------------------------------

    @staticmethod
    def _index_key(key: bytes) -> bytes:
        return key + b"|ws"

    def handle_event(self, event: Event, input_index: int) -> None:
        if self.is_late(event, self.allowed_lateness):
            self.dropped_late_events += 1
            return
        # Merging-window-set lookup: which sessions exist for this key?
        self.backend.get(self._index_key(event.key))
        start, end = event.timestamp, event.timestamp + self.gap_ms
        sessions = self._sessions.setdefault(event.key, [])
        overlapping = [s for s in sessions if s.overlaps(start, end)]

        if not overlapping:
            session = _Session(start, end)
            sessions.append(session)
            sessions.sort(key=lambda s: s.start)
            self._update_contents(event.key, session, event)
            return

        survivor = min(overlapping, key=lambda s: s.start)
        new_start = min(survivor.start, start)
        new_end = max(max(s.end for s in overlapping), end)
        if new_start != survivor.start:
            # The event extends the session backwards: the state key is
            # derived from the start, so the entry must be re-keyed.
            self._rekey(event.key, survivor, new_start)
        survivor.end = new_end
        for absorbed in overlapping:
            if absorbed is survivor:
                continue
            self._absorb(event.key, survivor, absorbed)
            sessions.remove(absorbed)
            self.session_merges += 1
        survivor.start = new_start
        self._update_contents(event.key, survivor, event)

    def _update_contents(self, key: bytes, session: _Session, event: Event) -> None:
        state_key = window_state_key(key, session.start)
        if self.holistic:
            self.backend.merge(state_key, event)
        else:
            current = self.backend.get(state_key)
            self.backend.put(state_key, self.aggregate(current, event))

    def _rekey(self, key: bytes, session: _Session, new_start: int) -> None:
        old_key = window_state_key(key, session.start)
        new_key = window_state_key(key, new_start)
        contents = self.backend.get(old_key)
        if contents is not None:
            if self.holistic:
                for item in contents:
                    self.backend.merge(new_key, item)
            else:
                self.backend.put(new_key, contents)
        self.backend.delete(old_key)
        session.start = new_start

    def _absorb(self, key: bytes, survivor: _Session, absorbed: _Session) -> None:
        absorbed_key = window_state_key(key, absorbed.start)
        survivor_key = window_state_key(key, survivor.start)
        contents = self.backend.get(absorbed_key)
        if contents is not None:
            if self.holistic:
                for item in contents:
                    self.backend.merge(survivor_key, item)
            else:
                current = self.backend.get(survivor_key)
                self.backend.put(
                    survivor_key, self._combine(current, contents)
                )
        self.backend.delete(absorbed_key)

    @staticmethod
    def _combine(left, right):
        if left is None:
            return right
        if right is None:
            return left
        return left + right

    # ------------------------------------------------------------------

    def handle_watermark(self, timestamp: int) -> None:
        for key, sessions in list(self._sessions.items()):
            remaining = []
            for session in sessions:
                if session.end <= timestamp:
                    state_key = window_state_key(key, session.start)
                    contents = self.backend.get(state_key)
                    if self.holistic:
                        result = self.holistic_function(contents or [])
                    else:
                        result = contents
                    self.emit((key, session.start, session.end, result))
                    self.backend.delete(state_key)
                else:
                    remaining.append(session)
            if remaining:
                self._sessions[key] = remaining
            else:
                # No active sessions left: clean up the window-set entry.
                self.backend.delete(self._index_key(key))
                del self._sessions[key]

    @property
    def active_sessions(self) -> int:
        return sum(len(s) for s in self._sessions.values())

    # -- checkpoint hooks ---------------------------------------------------

    def extra_state(self):
        return {
            "sessions": {
                key: [(s.start, s.end) for s in sessions]
                for key, sessions in self._sessions.items()
            },
            "merges": self.session_merges,
        }

    def restore_extra(self, state) -> None:
        if state is None:
            self._sessions = {}
            self.session_merges = 0
            return
        self._sessions = {
            key: [_Session(start, end) for start, end in spans]
            for key, spans in state["sessions"].items()
        }
        self.session_merges = state["merges"]
