"""Streaming join operators: window join, interval join, continuous join.

All three are two-input operators keyed by the join key (section 2.2):

* **window join** -- both sides buffered per (key, window) with lazy
  merges; on trigger, both buckets are read, matched, and deleted.
  Holistic by nature ("sliding join" in the paper's locality study).
* **interval join** -- each event is stored in its own side's buffer
  keyed by (key, time bucket) and probes the other side's buckets
  within ``[t + lower, t + upper]``; watermark progress deletes expired
  buckets.  Timestamps-as-keys drive its high keyspace amplification.
* **continuous join** -- events accumulate per key until the stream
  itself invalidates them (job finished, passenger dropped off); the
  build side uses lazy merges and an invalidation event cleans up state
  for its key, which is why delete traffic tracks end-event frequency
  (Table 1: Borg cleans per job completion, Taxi per drop-off).
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Set, Tuple, Union

from ...events import Event
from ..state import StateBackend
from ..windows import (
    SlidingWindows,
    TumblingWindows,
    join_state_key,
    window_state_key,
)
from .base import Operator

Assigner = Union[TumblingWindows, SlidingWindows]


class WindowJoinOperator(Operator):
    """Join events of two streams that share a key and a window."""

    num_inputs = 2

    def __init__(
        self,
        assigner: Assigner,
        backend: Optional[StateBackend] = None,
        allowed_lateness: int = 0,
    ) -> None:
        super().__init__(backend)
        self.assigner = assigner
        self.allowed_lateness = allowed_lateness
        self._expirations: Dict[int, Set[Tuple[bytes, int]]] = {}

    def handle_event(self, event: Event, input_index: int) -> None:
        if self.is_late(event, self.allowed_lateness):
            self.dropped_late_events += 1
            return
        for start in self.assigner.assign(event.timestamp):
            end = self.assigner.end_of(start)
            if end <= self.current_watermark:
                continue
            side_key = self._side_key(input_index, event.key, start)
            self.backend.merge(side_key, event)
            self._expirations.setdefault(end, set()).add((event.key, start))

    def handle_watermark(self, timestamp: int) -> None:
        expired = [end for end in self._expirations if end <= timestamp]
        for end in sorted(expired):
            for key, start in sorted(self._expirations.pop(end)):
                left_key = self._side_key(0, key, start)
                right_key = self._side_key(1, key, start)
                left = self.backend.get(left_key) or []
                right = self.backend.get(right_key) or []
                for a in left:
                    for b in right:
                        self.emit((key, start, a, b))
                self.backend.delete(left_key)
                self.backend.delete(right_key)

    @staticmethod
    def _side_key(side: int, key: bytes, start: int) -> bytes:
        return window_state_key(key, start) + bytes([side])

    def extra_state(self):
        return self._expirations

    def restore_extra(self, state) -> None:
        self._expirations = state if state is not None else {}


class IntervalJoinOperator(Operator):
    """Relative-time join: A-event at t matches B-events in
    ``[t + lower_ms, t + upper_ms]`` (and symmetrically)."""

    num_inputs = 2

    def __init__(
        self,
        lower_ms: int,
        upper_ms: int,
        backend: Optional[StateBackend] = None,
        bucket_ms: int = 1000,
    ) -> None:
        super().__init__(backend)
        if upper_ms < lower_ms:
            raise ValueError("upper bound must be >= lower bound")
        self.lower_ms = lower_ms
        self.upper_ms = upper_ms
        self.bucket_ms = bucket_ms
        # In-memory index of live buckets per side, like Gadget's hIndex:
        # only buckets known to exist are probed in the store.
        self._live: List[Dict[bytes, Set[int]]] = [{}, {}]

    def handle_event(self, event: Event, input_index: int) -> None:
        bucket = event.timestamp // self.bucket_ms * self.bucket_ms
        own_key = join_state_key(input_index, event.key, bucket)
        current = self.backend.get(own_key)
        bucket_list = list(current) if current else []
        bucket_list.append(event)
        self.backend.put(own_key, bucket_list)
        self._live[input_index].setdefault(event.key, set()).add(bucket)

        other = 1 - input_index
        # Side A matches B in [t+lower, t+upper]; from B's perspective
        # the window is mirrored.
        if input_index == 0:
            low = event.timestamp + self.lower_ms
            high = event.timestamp + self.upper_ms
        else:
            low = event.timestamp - self.upper_ms
            high = event.timestamp - self.lower_ms
        live_other = self._live[other].get(event.key)
        if not live_other:
            return
        first = low // self.bucket_ms * self.bucket_ms
        probe = first
        while probe <= high:
            if probe in live_other:
                matches = self.backend.get(
                    join_state_key(other, event.key, probe)
                )
                for match in matches or []:
                    if low <= match.timestamp <= high:
                        pair = (event, match) if input_index == 0 else (match, event)
                        self.emit((event.key,) + pair)
            probe += self.bucket_ms
        return

    def handle_watermark(self, timestamp: int) -> None:
        # A bucket at time b on either side can still match events with
        # timestamps up to b + upper; expire once the watermark passes.
        horizon = timestamp - self.upper_ms
        for side in (0, 1):
            for key, buckets in list(self._live[side].items()):
                expired = {b for b in buckets if b + self.bucket_ms <= horizon}
                for bucket in sorted(expired):
                    self.backend.delete(join_state_key(side, key, bucket))
                buckets -= expired
                if not buckets:
                    del self._live[side][key]

    @property
    def live_buckets(self) -> int:
        return sum(len(b) for side in self._live for b in side.values())

    def extra_state(self):
        return self._live

    def restore_extra(self, state) -> None:
        self._live = state if state is not None else [{}, {}]


class ContinuousJoinOperator(Operator):
    """Validity-interval join: state lives until an invalidation event.

    ``invalidate_kinds`` names the event kinds that end a key's
    validity (e.g. ``{"finish"}`` for Borg jobs, ``{"dropoff"}`` for
    taxi rides).  Regular events probe the other side and accumulate in
    their own side's per-key bucket.
    """

    num_inputs = 2

    def __init__(
        self,
        invalidate_kinds: Set[str],
        backend: Optional[StateBackend] = None,
    ) -> None:
        super().__init__(backend)
        self.invalidate_kinds = invalidate_kinds
        self._live: List[Set[bytes]] = [set(), set()]

    def handle_event(self, event: Event, input_index: int) -> None:
        other = 1 - input_index
        own_key = self._side_key(input_index, event.key)
        other_key = self._side_key(other, event.key)
        if event.kind in self.invalidate_kinds:
            # Final read of the accumulated matches, then cleanup.
            contents = self.backend.get(own_key)
            self.emit((event.key, contents, event))
            if event.key in self._live[input_index]:
                self.backend.delete(own_key)
                self._live[input_index].discard(event.key)
            if event.key in self._live[other]:
                self.backend.delete(other_key)
                self._live[other].discard(event.key)
            return
        if event.key in self._live[other]:
            matches = self.backend.get(other_key)
            for match in matches or []:
                self.emit((event.key, match, event))
        if event.key in self._live[input_index]:
            self.backend.merge(own_key, event)
        else:
            self.backend.put(own_key, [event])
            self._live[input_index].add(event.key)

    @staticmethod
    def _side_key(side: int, key: bytes) -> bytes:
        return key + b"|c" + bytes([side])

    def extra_state(self):
        return self._live

    def restore_extra(self, state) -> None:
        self._live = state if state is not None else [set(), set()]
