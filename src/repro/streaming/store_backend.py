"""Keyed state backend over a real KV store.

This is the expensive baseline the paper contrasts Gadget with: an
actual streaming job whose operators keep their state in an embedded
store.  Operators run unmodified -- the backend serializes their state
values into the store and still records the access trace, so a full
"system over store X" run can be compared directly against Gadget's
replay-based measurement of the same store.

Values are encoded with a small framing scheme rather than a single
pickle so that the store's *lazy merge* stays lazy: a merge operand is
one length-prefixed frame appended to the bucket, and a bucket read
decodes the concatenated frames back into a list -- exactly how window
contents live in RocksDB under Flink.
"""

from __future__ import annotations

import pickle
import struct
from typing import Any, List, Optional, Set

from ..kvstores.connectors import StoreConnector
from ..trace import AccessTrace, OpType
from .state import StateBackend, approximate_size

_FRAME = struct.Struct("<I")


def encode_frame(value: Any) -> bytes:
    payload = pickle.dumps(value, protocol=pickle.HIGHEST_PROTOCOL)
    return _FRAME.pack(len(payload)) + payload


def decode_frames(blob: bytes) -> List[Any]:
    out: List[Any] = []
    offset = 0
    end = len(blob)
    while offset < end:
        (length,) = _FRAME.unpack_from(blob, offset)
        offset += _FRAME.size
        out.append(pickle.loads(blob[offset : offset + length]))
        offset += length
    return out


class StoreStateBackend(StateBackend):
    """Drop-in :class:`StateBackend` that persists into a store.

    ``put`` stores a single frame; ``merge`` appends one frame through
    the store's merge path (lazy for the LSMs, read-modify-write via
    the connector for the others).  ``get`` decodes back to the Python
    value: scalar for put-entries, list of merged items for buckets --
    matching the dict backend's list-append merge semantics.
    """

    def __init__(
        self, connector: StoreConnector, trace: Optional[AccessTrace] = None
    ) -> None:
        super().__init__(trace)
        self.connector = connector
        #: keys holding a merge bucket rather than a single put value
        self._buckets: Set[bytes] = set()

    # -- traced operations ---------------------------------------------------

    def get(self, key: bytes) -> Any:
        blob = self.connector.get(key)
        self.trace.record(OpType.GET, key, 0, self.current_time)
        return self._decode(key, blob)

    def put(self, key: bytes, value: Any) -> None:
        self.connector.put(key, encode_frame(value))
        self._buckets.discard(key)
        self.trace.record(
            OpType.PUT, key, approximate_size(value), self.current_time
        )

    def merge(self, key: bytes, operand: Any) -> None:
        self.connector.merge(key, encode_frame(operand))
        self._buckets.add(key)
        self.trace.record(
            OpType.MERGE, key, approximate_size(operand), self.current_time
        )

    def delete(self, key: bytes) -> None:
        self.connector.delete(key)
        self._buckets.discard(key)
        self.trace.record(OpType.DELETE, key, 0, self.current_time)

    # -- untraced helpers ------------------------------------------------------

    def peek(self, key: bytes) -> Any:
        return self._decode(key, self.connector.get(key))

    def _decode(self, key: bytes, blob: Optional[bytes]) -> Any:
        if blob is None:
            return None
        frames = decode_frames(blob)
        if key in self._buckets:
            return frames
        return frames[0]

    def __len__(self) -> int:
        raise NotImplementedError(
            "store-backed state does not track its live key count"
        )

    def live_keys(self):
        raise NotImplementedError(
            "store-backed state does not enumerate live keys"
        )
