"""Checkpointed execution with crash injection for the mini engine.

Stream processors checkpoint operator state periodically and, after a
failure, restore the last checkpoint and replay the input from that
position -- giving exactly-once state semantics.  This module provides
that loop for single-task jobs so the test suite can verify that a
crashed-and-recovered run converges to the same outputs and state as an
uninterrupted one.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from ..events import Event, Watermark
from .operators.base import Operator
from .runtime import RuntimeConfig, apply_disorder, merged_stream


@dataclass
class CheckpointLog:
    """Bookkeeping from a checkpointed run."""

    checkpoints_taken: int = 0
    crashes_injected: int = 0
    events_replayed: int = 0
    #: positions (1-based event counts) where checkpoints completed
    positions: List[int] = field(default_factory=list)


def run_with_checkpoints(
    operator: Operator,
    streams: Sequence[Sequence[Event]],
    config: RuntimeConfig = RuntimeConfig(),
    checkpoint_every: int = 500,
    crash_at: Optional[Set[int]] = None,
) -> CheckpointLog:
    """Process the streams with periodic checkpoints and optional
    injected crashes.

    ``crash_at`` positions (1-based event counts) simulate a process
    failure *after* that event: all operator state built since the last
    checkpoint is discarded, the checkpoint is restored, and the input
    is replayed from the checkpoint position.  Each position crashes at
    most once.
    """
    if checkpoint_every <= 0:
        raise ValueError("checkpoint_every must be positive")
    crash_at = set(crash_at or ())
    pairs = list(merged_stream(streams, config.interleave))
    pairs = apply_disorder(
        pairs, config.out_of_order_fraction, config.max_delay_ms, config.seed
    )

    log = CheckpointLog()
    snapshot = operator.checkpoint()  # initial (empty) checkpoint
    snapshot_position = 0
    max_time: Optional[int] = None
    snapshot_max_time: Optional[int] = None

    position = 0
    while position < len(pairs):
        event, index = pairs[position]
        position += 1
        operator.process(event, index)
        max_time = (
            event.timestamp if max_time is None else max(max_time, event.timestamp)
        )
        if config.watermark_frequency and position % config.watermark_frequency == 0:
            operator.on_watermark(Watermark(max_time))

        if position in crash_at:
            crash_at.discard(position)
            log.crashes_injected += 1
            log.events_replayed += position - snapshot_position
            operator.restore(snapshot)
            max_time = snapshot_max_time
            position = snapshot_position
            continue

        if position % checkpoint_every == 0:
            snapshot = operator.checkpoint()
            snapshot_position = position
            snapshot_max_time = max_time
            log.checkpoints_taken += 1
            log.positions.append(position)

    if max_time is not None:
        operator.on_watermark(Watermark(max_time + 1))
    return log
