"""Window assigners and state-key encoding (the W-ID strategy).

Following Flink (and Li et al.'s W-ID scheme, which the paper adopts),
each window instance is one KV pair whose key combines the event key
with the window's identifying timestamp.  Window boundaries are
half-open ``[start, end)`` intervals in event-time milliseconds.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from typing import List


def window_state_key(key: bytes, window_start: int) -> bytes:
    """Composite state key for (event key, window id)."""
    return key + b"|w" + struct.pack(">q", window_start)


def join_state_key(side: int, key: bytes, bucket: int) -> bytes:
    """Composite state key for one side of a join buffer."""
    return key + b"|j" + bytes([side]) + struct.pack(">q", bucket)


@dataclass(frozen=True)
class TumblingWindows:
    """Fixed, non-overlapping segments of ``length_ms``."""

    length_ms: int

    def __post_init__(self) -> None:
        if self.length_ms <= 0:
            raise ValueError("window length must be positive")

    def assign(self, timestamp: int) -> List[int]:
        return [(timestamp // self.length_ms) * self.length_ms]

    def end_of(self, start: int) -> int:
        return start + self.length_ms


@dataclass(frozen=True)
class SlidingWindows:
    """Overlapping windows: a new one starts every ``slide_ms``.

    An event belongs to ``ceil(length / slide)`` windows, which is the
    source of the event amplification the paper measures in Figure 4.
    """

    length_ms: int
    slide_ms: int

    def __post_init__(self) -> None:
        if self.length_ms <= 0 or self.slide_ms <= 0:
            raise ValueError("window length and slide must be positive")
        if self.slide_ms > self.length_ms:
            raise ValueError("slide must not exceed the window length")

    def assign(self, timestamp: int) -> List[int]:
        last_start = (timestamp // self.slide_ms) * self.slide_ms
        starts = []
        start = last_start
        while start > timestamp - self.length_ms:
            starts.append(start)
            start -= self.slide_ms
        return starts

    def end_of(self, start: int) -> int:
        return start + self.length_ms

    @property
    def windows_per_event(self) -> int:
        """How many windows each event is assigned to."""
        return -(-self.length_ms // self.slide_ms)
