"""YCSB ``.properties`` workload files.

Real YCSB is configured with Java properties files (``workloada`` etc.);
this parser accepts that format so existing workload definitions can be
reused verbatim::

    recordcount=1000
    operationcount=100000
    readproportion=0.5
    updateproportion=0.5
    requestdistribution=zipfian

Recognized keys follow YCSB's core-workload properties; the value size
is derived from ``fieldcount * fieldlength`` as YCSB does.
"""

from __future__ import annotations

from typing import Dict, Optional

from .workload import YCSBConfig, YCSBWorkload

_DEFAULT_FIELD_COUNT = 10
_DEFAULT_FIELD_LENGTH = 100


def parse_properties(text: str) -> Dict[str, str]:
    """Parse Java-properties-style ``key=value`` lines.

    Supports ``#`` and ``!`` comments and blank lines; later keys
    override earlier ones, as in java.util.Properties.
    """
    out: Dict[str, str] = {}
    for raw_line in text.splitlines():
        line = raw_line.strip()
        if not line or line.startswith(("#", "!")):
            continue
        if "=" not in line:
            raise ValueError(f"malformed properties line: {raw_line!r}")
        key, _, value = line.partition("=")
        out[key.strip().lower()] = value.strip()
    return out


def config_from_properties(
    properties: Dict[str, str], seed: Optional[int] = None
) -> YCSBConfig:
    """Build a :class:`YCSBConfig` from parsed YCSB properties."""

    def get_float(key: str, default: float) -> float:
        return float(properties.get(key, default))

    def get_int(key: str, default: int) -> int:
        return int(properties.get(key, default))

    field_count = get_int("fieldcount", _DEFAULT_FIELD_COUNT)
    field_length = get_int("fieldlength", _DEFAULT_FIELD_LENGTH)
    config = YCSBConfig(
        record_count=get_int("recordcount", 1000),
        operation_count=get_int("operationcount", 100_000),
        read_proportion=get_float("readproportion", 0.0),
        update_proportion=get_float("updateproportion", 0.0),
        insert_proportion=get_float("insertproportion", 0.0),
        rmw_proportion=get_float("readmodifywriteproportion", 0.0),
        scan_proportion=get_float("scanproportion", 0.0),
        request_distribution=properties.get("requestdistribution", "uniform"),
        value_size=field_count * field_length,
    )
    if seed is not None:
        config.seed = seed
    config.validate()
    return config


def load_workload_file(path: str, seed: Optional[int] = None) -> YCSBWorkload:
    """Load a YCSB workload definition from a ``.properties`` file."""
    with open(path, "r", encoding="utf-8") as handle:
        properties = parse_properties(handle.read())
    return YCSBWorkload(config_from_properties(properties, seed))


#: the text of YCSB's shipped core workload files, for convenience
CORE_WORKLOAD_FILES: Dict[str, str] = {
    "workloada": (
        "# Core workload A: update heavy\n"
        "readproportion=0.5\nupdateproportion=0.5\n"
        "requestdistribution=zipfian\n"
    ),
    "workloadb": (
        "# Core workload B: read mostly\n"
        "readproportion=0.95\nupdateproportion=0.05\n"
        "requestdistribution=zipfian\n"
    ),
    "workloadc": (
        "# Core workload C: read only\n"
        "readproportion=1.0\nrequestdistribution=zipfian\n"
    ),
    "workloadd": (
        "# Core workload D: read latest\n"
        "readproportion=0.95\ninsertproportion=0.05\n"
        "requestdistribution=latest\n"
    ),
    "workloadf": (
        "# Core workload F: read-modify-write\n"
        "readproportion=0.5\nreadmodifywriteproportion=0.5\n"
        "requestdistribution=zipfian\n"
    ),
}
