"""YCSB reimplementation: the baseline benchmark of sections 4 and 6."""

from .distributions import (
    DISTRIBUTIONS,
    ExponentialGenerator,
    Generator,
    HotspotGenerator,
    LatestGenerator,
    ScrambledZipfianGenerator,
    SequentialGenerator,
    UniformGenerator,
    ZipfianGenerator,
    fnv_hash64,
    make_generator,
)
from .workload import CORE_WORKLOADS, YCSBConfig, YCSBWorkload

__all__ = [
    "CORE_WORKLOADS",
    "DISTRIBUTIONS",
    "ExponentialGenerator",
    "Generator",
    "HotspotGenerator",
    "LatestGenerator",
    "ScrambledZipfianGenerator",
    "SequentialGenerator",
    "UniformGenerator",
    "YCSBConfig",
    "YCSBWorkload",
    "ZipfianGenerator",
    "fnv_hash64",
    "make_generator",
]
