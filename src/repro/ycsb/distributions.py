"""YCSB request distributions, reimplemented from the YCSB generators.

The paper tunes YCSB across all its built-in request distributions
(uniform, zipfian, hotspot, sequential, exponential, latest) to look
for configurations that approximate streaming state traces (section
4).  These generators follow the published YCSB semantics:

* ``zipfian`` -- Gray et al.'s skewed generator with theta = 0.99,
  scrambled across the item space with an FNV hash
* ``latest`` -- zipfian over recency: recently inserted items are the
  most popular
* ``hotspot`` -- a hot set (20% of items) receives 80% of requests
* ``sequential`` -- cycles through the key space in order
* ``exponential`` -- 95% of requests hit the first 85.71% of items
"""

from __future__ import annotations

import math
import random
from typing import Optional

_FNV_OFFSET = 0xCBF29CE484222325
_FNV_PRIME = 0x100000001B3


def fnv_hash64(value: int) -> int:
    """64-bit FNV-1 hash of an integer, as used by YCSB's scrambler."""
    result = _FNV_OFFSET
    for _ in range(8):
        octet = value & 0xFF
        value >>= 8
        result = result ^ octet
        result = (result * _FNV_PRIME) & 0xFFFFFFFFFFFFFFFF
    return result


class Generator:
    """Base class: produces item indices in ``[0, item_count)``."""

    def __init__(self, item_count: int, rng: random.Random) -> None:
        if item_count <= 0:
            raise ValueError("item_count must be positive")
        self.item_count = item_count
        self.rng = rng

    def next_index(self) -> int:
        raise NotImplementedError


class UniformGenerator(Generator):
    def next_index(self) -> int:
        return self.rng.randrange(self.item_count)


class ZipfianGenerator(Generator):
    """YCSB's ZipfianGenerator (Gray et al., "Quickly generating
    billion-record synthetic databases")."""

    ZIPFIAN_CONSTANT = 0.99

    def __init__(
        self,
        item_count: int,
        rng: random.Random,
        theta: float = ZIPFIAN_CONSTANT,
    ) -> None:
        super().__init__(item_count, rng)
        self.theta = theta
        self.zeta_n = self._zeta(item_count, theta)
        self.zeta_2 = self._zeta(2, theta)
        self.alpha = 1.0 / (1.0 - theta)
        self.eta = (1 - (2.0 / item_count) ** (1 - theta)) / (
            1 - self.zeta_2 / self.zeta_n
        )

    @staticmethod
    def _zeta(n: int, theta: float) -> float:
        return sum(1.0 / (i + 1) ** theta for i in range(n))

    def next_index(self) -> int:
        u = self.rng.random()
        uz = u * self.zeta_n
        if uz < 1.0:
            return 0
        if uz < 1.0 + 0.5 ** self.theta:
            return 1
        return int(self.item_count * (self.eta * u - self.eta + 1) ** self.alpha)


class ScrambledZipfianGenerator(Generator):
    """Zipfian popularity spread over the item space by hashing."""

    def __init__(self, item_count: int, rng: random.Random) -> None:
        super().__init__(item_count, rng)
        self._zipfian = ZipfianGenerator(item_count, rng)

    def next_index(self) -> int:
        return fnv_hash64(self._zipfian.next_index()) % self.item_count


class LatestGenerator(Generator):
    """Most recently inserted items are most popular.

    ``advance()`` moves the insertion frontier; sampling is zipfian
    over recency from the frontier backwards.
    """

    def __init__(self, item_count: int, rng: random.Random) -> None:
        super().__init__(item_count, rng)
        self._zipfian = ZipfianGenerator(item_count, rng)
        self.last_index = item_count - 1

    def advance(self) -> int:
        self.last_index += 1
        return self.last_index

    def next_index(self) -> int:
        offset = self._zipfian.next_index() % (self.last_index + 1)
        return self.last_index - offset


class HotspotGenerator(Generator):
    def __init__(
        self,
        item_count: int,
        rng: random.Random,
        hot_set_fraction: float = 0.2,
        hot_op_fraction: float = 0.8,
    ) -> None:
        super().__init__(item_count, rng)
        self.hot_items = max(1, int(item_count * hot_set_fraction))
        self.hot_op_fraction = hot_op_fraction

    def next_index(self) -> int:
        if self.rng.random() < self.hot_op_fraction:
            return self.rng.randrange(self.hot_items)
        if self.hot_items >= self.item_count:
            return self.rng.randrange(self.item_count)
        return self.hot_items + self.rng.randrange(self.item_count - self.hot_items)


class SequentialGenerator(Generator):
    def __init__(self, item_count: int, rng: random.Random) -> None:
        super().__init__(item_count, rng)
        self._counter = -1

    def next_index(self) -> int:
        self._counter = (self._counter + 1) % self.item_count
        return self._counter


class ExponentialGenerator(Generator):
    """YCSB's exponential generator: ``percentile`` of requests land in
    the first ``frac`` of the item space."""

    def __init__(
        self,
        item_count: int,
        rng: random.Random,
        percentile: float = 95.0,
        frac: float = 0.8571,
    ) -> None:
        super().__init__(item_count, rng)
        self.gamma = -math.log(1.0 - percentile / 100.0) / (item_count * frac)

    def next_index(self) -> int:
        while True:
            value = int(-math.log(self.rng.random()) / self.gamma)
            if value < self.item_count:
                return value


DISTRIBUTIONS = {
    "uniform": UniformGenerator,
    "zipfian": ScrambledZipfianGenerator,
    "latest": LatestGenerator,
    "hotspot": HotspotGenerator,
    "sequential": SequentialGenerator,
    "exponential": ExponentialGenerator,
}


def make_generator(
    name: str, item_count: int, rng: Optional[random.Random] = None
) -> Generator:
    try:
        cls = DISTRIBUTIONS[name]
    except KeyError:
        raise ValueError(
            f"unknown distribution {name!r}; expected one of {sorted(DISTRIBUTIONS)}"
        ) from None
    return cls(item_count, rng or random.Random())
