"""YCSB workload generation producing Gadget-compatible access traces.

Mirrors YCSB's core-workload semantics (section 4 of the paper):

* ``recordcount`` keys are considered preloaded; read/update requests
  draw from them immediately
* inserts extend the key space but inserted keys are *not* reused by
  later read/update requests (a limitation the paper calls out)
* delete operations do not exist in YCSB
* read-modify-write issues a read followed by an update of the same key

Core workload presets follow the YCSB distribution:

====  =======================  ============
name  operation mix            distribution
====  =======================  ============
A     50% read / 50% update    zipfian
B     95% read / 5% update     zipfian
C     100% read                zipfian
D     95% read / 5% insert     latest
E     95% scan / 5% insert     zipfian (scans are replayed as reads)
F     50% read / 50% r-m-w     zipfian
====  =======================  ============
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, Optional

from ..trace import AccessTrace, OpType
from .distributions import LatestGenerator, make_generator


@dataclass
class YCSBConfig:
    record_count: int = 1000
    operation_count: int = 100_000
    read_proportion: float = 0.5
    update_proportion: float = 0.5
    insert_proportion: float = 0.0
    rmw_proportion: float = 0.0
    scan_proportion: float = 0.0
    request_distribution: str = "zipfian"
    key_size: int = 8
    value_size: int = 256
    seed: int = 42

    def validate(self) -> None:
        total = (
            self.read_proportion
            + self.update_proportion
            + self.insert_proportion
            + self.rmw_proportion
            + self.scan_proportion
        )
        if not 0.999 <= total <= 1.001:
            raise ValueError(f"operation proportions sum to {total}, expected 1.0")


CORE_WORKLOADS: Dict[str, dict] = {
    "A": {"read_proportion": 0.5, "update_proportion": 0.5,
          "request_distribution": "zipfian"},
    "B": {"read_proportion": 0.95, "update_proportion": 0.05,
          "request_distribution": "zipfian"},
    "C": {"read_proportion": 1.0, "update_proportion": 0.0,
          "request_distribution": "zipfian"},
    "D": {"read_proportion": 0.95, "update_proportion": 0.0,
          "insert_proportion": 0.05, "request_distribution": "latest"},
    "E": {"scan_proportion": 0.95, "update_proportion": 0.0,
          "read_proportion": 0.0, "insert_proportion": 0.05,
          "request_distribution": "zipfian"},
    "F": {"read_proportion": 0.5, "update_proportion": 0.0,
          "rmw_proportion": 0.5, "request_distribution": "zipfian"},
}


class YCSBWorkload:
    """Generates a YCSB request trace (and can preload a store)."""

    def __init__(self, config: Optional[YCSBConfig] = None) -> None:
        self.config = config or YCSBConfig()
        self.config.validate()
        self.rng = random.Random(self.config.seed)
        self._inserted = self.config.record_count
        self.generator = make_generator(
            self.config.request_distribution, self.config.record_count, self.rng
        )

    @classmethod
    def core(cls, name: str, **overrides) -> "YCSBWorkload":
        """Build one of the YCSB core workloads A-F."""
        try:
            preset = dict(CORE_WORKLOADS[name.upper()])
        except KeyError:
            raise ValueError(
                f"unknown core workload {name!r}; expected one of "
                f"{sorted(CORE_WORKLOADS)}"
            ) from None
        preset.update(overrides)
        return cls(YCSBConfig(**preset))

    # ------------------------------------------------------------------

    def key_for(self, index: int) -> bytes:
        # Pad with a non-digit so "user50" and "user500" can never
        # collide after padding.
        return f"user{index}".encode().ljust(self.config.key_size, b"_")

    def load_keys(self):
        """The preloaded key set (YCSB's load phase)."""
        return [self.key_for(i) for i in range(self.config.record_count)]

    def preload(self, connector) -> int:
        """YCSB's load phase: insert every record before transactions.

        Returns the number of records loaded.  Reads in the generated
        transaction trace then hit real values, as in YCSB.
        """
        from ..core.replayer import synthesize_value

        value = synthesize_value(self.config.value_size)
        for key in self.load_keys():
            connector.put(key, value)
        return self.config.record_count

    def generate(self) -> AccessTrace:
        """Produce the transaction-phase request trace."""
        config = self.config
        trace = AccessTrace()
        thresholds = self._cumulative_proportions()
        for step in range(config.operation_count):
            u = self.rng.random()
            if u < thresholds["read"]:
                trace.record(OpType.GET, self._next_key(), 0, step)
            elif u < thresholds["update"]:
                trace.record(
                    OpType.PUT, self._next_key(), config.value_size, step
                )
            elif u < thresholds["insert"]:
                index = self._inserted
                self._inserted += 1
                if isinstance(self.generator, LatestGenerator):
                    self.generator.advance()
                trace.record(
                    OpType.PUT, self.key_for(index), config.value_size, step
                )
            elif u < thresholds["rmw"]:
                key = self._next_key()
                trace.record(OpType.GET, key, 0, step)
                trace.record(OpType.PUT, key, config.value_size, step)
            else:  # scan: replayed as a read of the start key
                trace.record(OpType.GET, self._next_key(), 0, step)
        return trace

    def _next_key(self) -> bytes:
        index = self.generator.next_index()
        # Reads/updates only touch preloaded records, per YCSB semantics.
        return self.key_for(index % self.config.record_count)

    def _cumulative_proportions(self) -> Dict[str, float]:
        config = self.config
        read = config.read_proportion
        update = read + config.update_proportion
        insert = update + config.insert_proportion
        rmw = insert + config.rmw_proportion
        return {"read": read, "update": update, "insert": insert, "rmw": rmw}
