"""The Gadget driver (paper section 5.2, Algorithm 1).

The driver maps input events to state objects and operates the state
machines.  It maintains two indexes:

* ``hIndex`` -- event key -> live state keys for that key
* ``vIndex`` -- expiration time -> state keys expiring then

For every batch of events it assigns machines and runs them; on
watermark it collects expired machines from the vIndex and terminates
them.  The driver performs no computation on values and issues no
requests itself -- it only drives workload generation.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from ..events import Event
from ..trace import AccessTrace
from .config import GadgetConfig
from .generator import as_source
from .state_machines import MachineContext, StateMachine


class OperatorModel:
    """What users implement to extend Gadget (paper section 5.4).

    ``assign_state_machines`` maps an event to the machines it must
    run (creating them through the driver as needed) and may emit
    auxiliary requests (e.g. join probes) through ``driver.ctx``.
    ``on_watermark`` lets models with custom expiration logic react to
    progress; the default vIndex sweep already terminates expired
    machines before it is called.
    """

    num_inputs = 1
    #: default value size for generated put/merge payloads
    value_size = 10
    #: whether the operator has event-time window semantics and drops
    #: late events; operators without windows (continuous aggregation,
    #: continuous join) process every event regardless of watermarks
    drops_late_events = True

    def assign_state_machines(
        self, event: Event, input_index: int, driver: "Driver"
    ) -> Sequence[StateMachine]:
        raise NotImplementedError

    def on_watermark(self, timestamp: int, driver: "Driver") -> None:
        """Hook for model-specific expiration; default does nothing."""


class Driver:
    def __init__(
        self,
        model: OperatorModel,
        sources: Sequence,
        config: Optional[GadgetConfig] = None,
        batch_size: int = 64,
    ) -> None:
        self.model = model
        self.config = config or GadgetConfig()
        self.batch_size = batch_size
        self._source_objects = [as_source(s) for s in sources]
        if len(self._source_objects) != model.num_inputs:
            raise ValueError(
                f"model expects {model.num_inputs} source(s), got "
                f"{len(self._source_objects)}"
            )
        self.workload = AccessTrace()
        self.ctx = MachineContext(self.workload, model.value_size)
        self.hindex: Dict[bytes, Set[bytes]] = {}
        self.vindex: Dict[int, Set[bytes]] = {}
        self.machines: Dict[bytes, StateMachine] = {}
        self.current_watermark = -1
        self.dropped_late_events = 0
        self.events_processed = 0

    # ------------------------------------------------------------------
    # Machine/bookkeeping API used by operator models
    # ------------------------------------------------------------------

    def machine_for(
        self,
        state_key: bytes,
        factory,
        event_key: Optional[bytes] = None,
        expires_at: Optional[int] = None,
    ) -> StateMachine:
        """Fetch or instantiate the machine for ``state_key``."""
        machine = self.machines.get(state_key)
        if machine is None:
            machine = factory(state_key)
            self.machines[state_key] = machine
            if event_key is not None:
                self.hindex.setdefault(event_key, set()).add(state_key)
            if expires_at is not None:
                self.vindex.setdefault(expires_at, set()).add(state_key)
        return machine

    def reschedule(self, state_key: bytes, old_expiry: int, new_expiry: int) -> None:
        bucket = self.vindex.get(old_expiry)
        if bucket is not None:
            bucket.discard(state_key)
            if not bucket:
                del self.vindex[old_expiry]
        self.vindex.setdefault(new_expiry, set()).add(state_key)

    def terminate_machine(self, state_key: bytes, event_key: Optional[bytes] = None) -> None:
        machine = self.machines.pop(state_key, None)
        if machine is None or machine.done:
            return
        machine.terminate(self.ctx)
        if event_key is not None:
            bucket = self.hindex.get(event_key)
            if bucket is not None:
                bucket.discard(state_key)
                if not bucket:
                    del self.hindex[event_key]

    def drop_machine(self, state_key: bytes, event_key: Optional[bytes] = None) -> None:
        """Remove a machine without emitting its final requests.

        Used when a model emits custom cleanup itself (e.g. session
        merges, continuous-join invalidation).
        """
        self.machines.pop(state_key, None)
        if event_key is not None:
            bucket = self.hindex.get(event_key)
            if bucket is not None:
                bucket.discard(state_key)
                if not bucket:
                    del self.hindex[event_key]

    def unschedule(self, state_key: bytes, expiry: int) -> None:
        bucket = self.vindex.get(expiry)
        if bucket is not None:
            bucket.discard(state_key)
            if not bucket:
                del self.vindex[expiry]

    def live_state_keys(self, event_key: bytes) -> Set[bytes]:
        return self.hindex.get(event_key, set())

    # ------------------------------------------------------------------
    # Algorithm 1
    # ------------------------------------------------------------------

    def run(self) -> AccessTrace:
        """Drive workload generation to completion; returns the trace.

        Following Algorithm 1, the driver pulls and processes the input
        in batches (``getNext()``); watermarks are handled between
        events per the sources' punctuation frequency.
        """
        streams = [src.generate() for src in self._source_objects]
        frequency = self._watermark_frequency()
        max_time: Optional[int] = None
        count = 0
        for batch in self._batches(self._merged(streams)):
            for event, index in batch:
                count += 1
                max_time = (
                    event.timestamp
                    if max_time is None
                    else max(max_time, event.timestamp)
                )
                self._process_event(event, index)
                if frequency and count % frequency == 0:
                    self.on_watermark(max_time)
        if max_time is not None:
            self.on_watermark(max_time + 1)
        return self.workload

    def _batches(self, pairs: Iterable[Tuple[Event, int]]):
        batch: List[Tuple[Event, int]] = []
        for pair in pairs:
            batch.append(pair)
            if len(batch) >= self.batch_size:
                yield batch
                batch = []
        if batch:
            yield batch

    def _process_event(self, event: Event, input_index: int) -> None:
        if self.model.drops_late_events and (
            event.timestamp <= self.current_watermark - self._allowed_lateness()
        ):
            self.dropped_late_events += 1
            return
        self.ctx.current_time = event.timestamp
        self.events_processed += 1
        machines = self.model.assign_state_machines(event, input_index, self)
        for machine in machines:
            machine.run(self.ctx, event)

    def on_watermark(self, timestamp: int) -> None:
        if timestamp <= self.current_watermark:
            return
        self.current_watermark = timestamp
        self.ctx.current_time = timestamp
        for state_key in self._collect_expired(timestamp):
            self.terminate_machine(state_key)
        self.model.on_watermark(timestamp, self)

    def _collect_expired(self, timestamp: int) -> List[bytes]:
        expired_times = [t for t in self.vindex if t <= timestamp]
        keys: List[bytes] = []
        for t in sorted(expired_times):
            keys.extend(sorted(self.vindex.pop(t)))
        return keys

    # ------------------------------------------------------------------

    def _merged(self, streams: Sequence[Sequence[Event]]) -> Iterable[Tuple[Event, int]]:
        from ..streaming.runtime import merged_stream

        return merged_stream(streams, self.config.interleave)

    def _watermark_frequency(self) -> int:
        """Punctuation frequency across *all* configured sources.

        A merged stream progresses at the pace of its most frequently
        punctuating source, so take the minimum positive frequency (a
        frequency of 0 means that source emits no punctuation).
        """
        frequencies = [
            s.watermark_frequency
            for s in self.config.sources
            if hasattr(s, "watermark_frequency")
        ]
        if not frequencies:
            return 100
        positive = [f for f in frequencies if f > 0]
        return min(positive) if positive else 0

    def _allowed_lateness(self) -> int:
        """Allowed lateness across *all* configured sources.

        An event is only dropped when it is late by every source's
        standard, so the merged stream honours the maximum.
        """
        lateness = [
            s.max_lateness_ms
            for s in self.config.sources
            if hasattr(s, "max_lateness_ms")
        ]
        return max(lateness) if lateness else 0
