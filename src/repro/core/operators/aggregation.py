"""Gadget operator model for continuous per-key aggregation."""

from __future__ import annotations

from typing import List

from ...events import Event
from ..driver import Driver, OperatorModel
from ..state_machines import AggregationMachine, StateMachine


class ContinuousAggregationModel(OperatorModel):
    """One never-expiring machine per event key: get-put per event.

    The only Gadget workload whose state stream preserves the input's
    key distribution (Table 2).
    """

    drops_late_events = False  # no window semantics: every event counts

    def __init__(self, value_size: int = 10) -> None:
        self.value_size = value_size

    def assign_state_machines(
        self, event: Event, input_index: int, driver: Driver
    ) -> List[StateMachine]:
        machine = driver.machine_for(
            event.key, AggregationMachine, event_key=event.key
        )
        return [machine]
