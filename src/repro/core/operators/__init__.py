"""Built-in Gadget operator models."""

from .aggregation import ContinuousAggregationModel
from .joins import ContinuousJoinModel, IntervalJoinModel, WindowJoinModel
from .sessions import SessionWindowModel
from .windows import WindowModel, sliding_window_model, tumbling_window_model

__all__ = [
    "ContinuousAggregationModel",
    "ContinuousJoinModel",
    "IntervalJoinModel",
    "SessionWindowModel",
    "WindowJoinModel",
    "WindowModel",
    "sliding_window_model",
    "tumbling_window_model",
]
