"""Gadget operator models for tumbling and sliding windows."""

from __future__ import annotations

from typing import List, Union

from ...events import Event
from ...streaming.windows import SlidingWindows, TumblingWindows, window_state_key
from ..driver import Driver, OperatorModel
from ..state_machines import (
    HolisticWindowMachine,
    IncrementalWindowMachine,
    StateMachine,
)

Assigner = Union[TumblingWindows, SlidingWindows]


class WindowModel(OperatorModel):
    """W-ID windows: one machine per (event key, window start).

    Incremental windows use the get-put machine of Figure 9; holistic
    windows use the merge machine.  The vIndex fires machines when the
    watermark passes each window's end.
    """

    def __init__(
        self, assigner: Assigner, holistic: bool = False, value_size: int = 10
    ) -> None:
        self.assigner = assigner
        self.holistic = holistic
        self.value_size = value_size
        self._machine_factory = (
            HolisticWindowMachine if holistic else IncrementalWindowMachine
        )

    def assign_state_machines(
        self, event: Event, input_index: int, driver: Driver
    ) -> List[StateMachine]:
        machines: List[StateMachine] = []
        for start in self.assigner.assign(event.timestamp):
            end = self.assigner.end_of(start)
            if end <= driver.current_watermark:
                continue  # the window already fired
            state_key = window_state_key(event.key, start)
            machines.append(
                driver.machine_for(
                    state_key,
                    self._machine_factory,
                    event_key=event.key,
                    expires_at=end,
                )
            )
        return machines


def tumbling_window_model(
    length_ms: int, holistic: bool = False, value_size: int = 10
) -> WindowModel:
    return WindowModel(TumblingWindows(length_ms), holistic, value_size)


def sliding_window_model(
    length_ms: int, slide_ms: int, holistic: bool = False, value_size: int = 10
) -> WindowModel:
    return WindowModel(SlidingWindows(length_ms, slide_ms), holistic, value_size)
