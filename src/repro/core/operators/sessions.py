"""Gadget operator model for session windows (merging windows)."""

from __future__ import annotations

from typing import Dict, List

from ...events import Event
from ...streaming.windows import window_state_key
from ...trace import OpType
from ..driver import Driver, OperatorModel
from ..state_machines import (
    HolisticWindowMachine,
    IncrementalWindowMachine,
    StateMachine,
)


class _SessionMeta:
    __slots__ = ("start", "end")

    def __init__(self, start: int, end: int) -> None:
        self.start = start
        self.end = end

    def overlaps(self, start: int, end: int) -> bool:
        return start <= self.end and self.start <= end


class SessionWindowModel(OperatorModel):
    """Sessions with gap-based merging, mirroring the engine operator.

    Per event the model emits the merging-window-set read (a get on a
    per-key index entry), then runs the window machine of the target
    session.  Bridged sessions merge: the absorbed session's contents
    are read, folded into the survivor, and deleted.  Firing is driven
    by the vIndex; after the last session of a key fires, the index
    entry is deleted.
    """

    def __init__(
        self, gap_ms: int, holistic: bool = False, value_size: int = 10
    ) -> None:
        if gap_ms <= 0:
            raise ValueError("session gap must be positive")
        self.gap_ms = gap_ms
        self.holistic = holistic
        self.value_size = value_size
        self._machine_factory = (
            HolisticWindowMachine if holistic else IncrementalWindowMachine
        )
        self._sessions: Dict[bytes, List[_SessionMeta]] = {}
        self.session_merges = 0

    @staticmethod
    def _index_key(key: bytes) -> bytes:
        return key + b"|ws"

    def _state_key(self, key: bytes, start: int) -> bytes:
        return window_state_key(key, start)

    # ------------------------------------------------------------------

    def assign_state_machines(
        self, event: Event, input_index: int, driver: Driver
    ) -> List[StateMachine]:
        ctx = driver.ctx
        ctx.emit(OpType.GET, self._index_key(event.key))
        start, end = event.timestamp, event.timestamp + self.gap_ms
        sessions = self._sessions.setdefault(event.key, [])
        overlapping = [s for s in sessions if s.overlaps(start, end)]

        if not overlapping:
            meta = _SessionMeta(start, end)
            sessions.append(meta)
            machine = driver.machine_for(
                self._state_key(event.key, start),
                self._machine_factory,
                event_key=event.key,
                expires_at=end,
            )
            return [machine]

        survivor = min(overlapping, key=lambda s: s.start)
        survivor_key = self._state_key(event.key, survivor.start)
        new_start = min(survivor.start, start)
        new_end = max(max(s.end for s in overlapping), end)

        if new_start != survivor.start:
            survivor_key = self._rekey(driver, event.key, survivor, new_start)
        if new_end != survivor.end:
            driver.reschedule(survivor_key, survivor.end, new_end)
            survivor.end = new_end

        for absorbed in overlapping:
            if absorbed is survivor:
                continue
            self._absorb(driver, event.key, survivor_key, absorbed)
            sessions.remove(absorbed)
            self.session_merges += 1

        machine = driver.machines[survivor_key]
        return [machine]

    def _rekey(
        self, driver: Driver, key: bytes, session: _SessionMeta, new_start: int
    ) -> bytes:
        old_key = self._state_key(key, session.start)
        new_key = self._state_key(key, new_start)
        ctx = driver.ctx
        old_machine = driver.machines.get(old_key)
        elements = old_machine.elements if old_machine else 0
        ctx.emit(OpType.GET, old_key)
        if self.holistic:
            # The engine re-merges every buffered element into the new
            # state entry; element counts are exactly the metadata the
            # machines track.
            for _ in range(max(1, elements)):
                ctx.emit(OpType.MERGE, new_key, self.value_size)
        else:
            ctx.emit(OpType.PUT, new_key, self.value_size)
        ctx.emit(OpType.DELETE, old_key)
        driver.unschedule(old_key, session.end)
        driver.drop_machine(old_key, key)
        machine = driver.machine_for(
            new_key, self._machine_factory, event_key=key, expires_at=session.end
        )
        machine.elements += elements
        session.start = new_start
        return new_key

    def _absorb(
        self, driver: Driver, key: bytes, survivor_key: bytes, absorbed: _SessionMeta
    ) -> None:
        absorbed_key = self._state_key(key, absorbed.start)
        ctx = driver.ctx
        absorbed_machine = driver.machines.get(absorbed_key)
        absorbed_elements = (
            absorbed_machine.elements if absorbed_machine is not None else 0
        )
        ctx.emit(OpType.GET, absorbed_key)
        if self.holistic:
            for _ in range(max(1, absorbed_elements)):
                ctx.emit(OpType.MERGE, survivor_key, self.value_size)
        else:
            ctx.emit(OpType.GET, survivor_key)
            ctx.emit(OpType.PUT, survivor_key, self.value_size)
        ctx.emit(OpType.DELETE, absorbed_key)
        if absorbed_machine is not None:
            survivor_machine = driver.machines.get(survivor_key)
            if survivor_machine is not None:
                survivor_machine.elements += absorbed_elements
        driver.unschedule(absorbed_key, absorbed.end)
        driver.drop_machine(absorbed_key, key)

    # ------------------------------------------------------------------

    def on_watermark(self, timestamp: int, driver: Driver) -> None:
        # The vIndex already fired expired machines; drop the session
        # metadata and clean up per-key index entries.
        for key, sessions in list(self._sessions.items()):
            remaining = [s for s in sessions if s.end > timestamp]
            if remaining:
                self._sessions[key] = remaining
            else:
                driver.ctx.emit(OpType.DELETE, self._index_key(key))
                del self._sessions[key]
