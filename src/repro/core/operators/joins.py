"""Gadget operator models for streaming joins."""

from __future__ import annotations

from typing import Dict, List, Set, Union

from ...events import Event
from ...streaming.windows import (
    SlidingWindows,
    TumblingWindows,
    join_state_key,
    window_state_key,
)
from ...trace import OpType
from ..driver import Driver, OperatorModel
from ..state_machines import BufferMachine, MachineContext, StateMachine

Assigner = Union[TumblingWindows, SlidingWindows]


class PairedJoinWindowMachine(StateMachine):
    """One machine per (key, window) covering *both* join sides.

    Events merge into their side's bucket; on trigger the operator
    reads both buckets (even an empty one -- the real operator cannot
    know a side is empty without the read) and deletes both, matching
    the engine's access order: get, get, delete, delete.
    """

    __slots__ = ("current_side",)

    def __init__(self, state_key: bytes) -> None:
        super().__init__(state_key)
        self.current_side = 0

    def run(self, ctx: MachineContext, event) -> None:
        ctx.emit(
            OpType.MERGE,
            self.state_key + bytes([self.current_side]),
            event.value_size,
        )
        self.elements += 1

    def terminate(self, ctx: MachineContext) -> None:
        for side in (0, 1):
            ctx.emit(OpType.GET, self.state_key + bytes([side]))
        for side in (0, 1):
            ctx.emit(OpType.DELETE, self.state_key + bytes([side]))
        self.done = True


class WindowJoinModel(OperatorModel):
    """Window join: both sides buffered per (key, window) with merges;
    firing reads and deletes both buckets."""

    num_inputs = 2

    def __init__(self, assigner: Assigner, value_size: int = 10) -> None:
        self.assigner = assigner
        self.value_size = value_size

    def assign_state_machines(
        self, event: Event, input_index: int, driver: Driver
    ) -> List[StateMachine]:
        machines: List[StateMachine] = []
        for start in self.assigner.assign(event.timestamp):
            end = self.assigner.end_of(start)
            if end <= driver.current_watermark:
                continue
            state_key = window_state_key(event.key, start)
            machine = driver.machine_for(
                state_key,
                PairedJoinWindowMachine,
                event_key=event.key,
                expires_at=end,
            )
            machine.current_side = input_index
            machines.append(machine)
        return machines


class IntervalJoinModel(OperatorModel):
    """Interval join: per-side time-bucketed buffers plus range probes.

    Each event appends to its own side's (key, bucket) buffer via a
    get-put machine and probes the other side's live buckets within
    ``[t + lower, t + upper]`` -- the probes are plain gets emitted by
    the model.  Buckets expire once the watermark passes
    ``bucket_end + upper``.
    """

    num_inputs = 2
    drops_late_events = False  # buffers admit events until bucket expiry

    def __init__(
        self,
        lower_ms: int,
        upper_ms: int,
        bucket_ms: int = 1000,
        value_size: int = 10,
    ) -> None:
        if upper_ms < lower_ms:
            raise ValueError("upper bound must be >= lower bound")
        self.lower_ms = lower_ms
        self.upper_ms = upper_ms
        self.bucket_ms = bucket_ms
        self.value_size = value_size
        self._live: List[Dict[bytes, Set[int]]] = [{}, {}]

    def assign_state_machines(
        self, event: Event, input_index: int, driver: Driver
    ) -> List[StateMachine]:
        bucket = event.timestamp // self.bucket_ms * self.bucket_ms
        own_key = join_state_key(input_index, event.key, bucket)
        machine = driver.machine_for(
            own_key,
            BufferMachine,
            event_key=event.key,
            expires_at=bucket + self.bucket_ms + self.upper_ms,
        )
        self._live[input_index].setdefault(event.key, set()).add(bucket)

        other = 1 - input_index
        if input_index == 0:
            low = event.timestamp + self.lower_ms
            high = event.timestamp + self.upper_ms
        else:
            low = event.timestamp - self.upper_ms
            high = event.timestamp - self.lower_ms
        live_other = self._live[other].get(event.key)
        if live_other:
            probe = low // self.bucket_ms * self.bucket_ms
            while probe <= high:
                if probe in live_other:
                    driver.ctx.emit(
                        OpType.GET, join_state_key(other, event.key, probe)
                    )
                probe += self.bucket_ms
        return [machine]

    def on_watermark(self, timestamp: int, driver: Driver) -> None:
        # The vIndex already deleted expired buckets; prune the live map.
        horizon = timestamp - self.upper_ms
        for side in (0, 1):
            for key, buckets in list(self._live[side].items()):
                buckets -= {b for b in buckets if b + self.bucket_ms <= horizon}
                if not buckets:
                    del self._live[side][key]


class ContinuousJoinModel(OperatorModel):
    """Continuous (validity-interval) join.

    Regular events probe the other side and accumulate in their own
    side's per-key bucket (put on first touch, lazy merges after);
    events of an invalidating kind read the accumulated state and
    delete both sides' entries for the key.
    """

    num_inputs = 2
    drops_late_events = False  # validity is event-driven, not time-driven

    def __init__(self, invalidate_kinds: Set[str], value_size: int = 10) -> None:
        self.invalidate_kinds = set(invalidate_kinds)
        self.value_size = value_size
        self._live: List[Set[bytes]] = [set(), set()]

    @staticmethod
    def _side_key(side: int, key: bytes) -> bytes:
        return key + b"|c" + bytes([side])

    def assign_state_machines(
        self, event: Event, input_index: int, driver: Driver
    ) -> List[StateMachine]:
        ctx = driver.ctx
        other = 1 - input_index
        own_key = self._side_key(input_index, event.key)
        other_key = self._side_key(other, event.key)

        if event.kind in self.invalidate_kinds:
            ctx.emit(OpType.GET, own_key)
            if event.key in self._live[input_index]:
                ctx.emit(OpType.DELETE, own_key)
                self._live[input_index].discard(event.key)
            if event.key in self._live[other]:
                ctx.emit(OpType.DELETE, other_key)
                self._live[other].discard(event.key)
            return []

        if event.key in self._live[other]:
            ctx.emit(OpType.GET, other_key)
        if event.key in self._live[input_index]:
            ctx.emit(OpType.MERGE, own_key, event.value_size)
        else:
            ctx.emit(OpType.PUT, own_key, event.value_size)
            self._live[input_index].add(event.key)
        return []
