"""True-parallel sharded replay across processes (GIL-free scaling).

The thread-based :class:`~repro.core.replayer.ShardedReplayer` cannot
exceed one core on CPython: every BENCH_*.json in this repo carries
that caveat.  This module is the multi-core path:

* the parent serializes the v2 columnar trace **once** into a
  ``multiprocessing.shared_memory`` segment
  (:meth:`~repro.trace.AccessTrace.write_image`);
* each worker process attaches zero-copy views over the same physical
  pages (:meth:`~repro.trace.AccessTrace.attach`), recomputes its own
  CRC32 key partition with the exact
  :func:`~repro.core.replayer.shard_indices` the thread mode uses, and
  gathers its shard into private arrays -- no pickling of
  multi-million-op traces, no per-worker trace copies in flight;
* workers replay with per-process store connectors (embedded stores on
  partitioned ``storage_dir``\\ s, or :class:`RemoteStoreClient`\\ s
  against one event-loop :class:`~repro.kvstores.remote.StoreServer`)
  under per-shard fault plans
  (:meth:`~repro.faults.FaultPlan.for_shard`), so a seeded faulted run
  is bit-identical between thread mode and process mode;
* results come home as histogram dicts
  (:meth:`~repro.core.histogram.LatencyHistogram.to_dict`) merged by
  the parent into the same :class:`ShardedReplayResult` thread mode
  produces, and per-worker metrics JSONL files concatenate via
  :func:`~repro.obs.metrics.merge_shard_series`.

Failure semantics mirror the thread mode's cooperative stop: a worker
that fails reports a structured error and flips a shared stop event;
surviving workers observe it in their replay loops (decimated to one
semaphore read per 64 ops) and unwind promptly.  A worker that dies
without reporting (SIGKILL, ``os._exit``) is detected by exit code and
surfaced as :class:`WorkerCrashError`.  The shared-memory segment is
unlinked in a ``finally`` on the parent, so neither completion nor any
of those failure paths leaks ``/dev/shm`` segments.
"""

from __future__ import annotations

import dataclasses
import hashlib
import multiprocessing
import os
import queue as queue_mod
import sys
import time
import traceback as traceback_mod
from dataclasses import dataclass, field
from multiprocessing import shared_memory
from typing import Callable, Dict, List, Optional

from ..trace import AccessTrace
from .replayer import (
    ReplayResult,
    ReplayStopped,
    ShardedReplayResult,
    TraceReplayer,
    _raise_shard_errors,
    shard_indices,
)


class WorkerProcessError(Exception):
    """A replay worker process failed; carries the worker-side
    traceback text so the failure is diagnosable from the parent."""

    def __init__(self, shard: int, type_name: str, message: str, tb: str) -> None:
        super().__init__(
            f"replay shard {shard} failed with {type_name}: {message}\n"
            f"--- worker traceback ---\n{tb.rstrip()}"
        )
        self.shard = shard
        self.type_name = type_name


class WorkerCrashError(Exception):
    """A replay worker died without reporting a result (killed, or a
    hard exit mid-replay); only its exit code survives."""

    def __init__(self, shard: int, exitcode: Optional[int]) -> None:
        super().__init__(
            f"replay shard {shard} worker died with exit code {exitcode} "
            "before reporting a result"
        )
        self.shard = shard
        self.exitcode = exitcode


@dataclass(frozen=True)
class ConnectorSpec:
    """Picklable recipe for building a store connector *inside* a
    worker process.

    Connectors hold sockets, file handles, and caches -- none of which
    survive a process boundary -- so the process replayer ships the
    recipe instead of the object:

    * ``for_store``: each worker builds its own embedded store via
      :func:`~repro.kvstores.create_connector`; with ``storage_root``
      set, worker ``i`` gets a private on-disk partition
      ``<root>/shard-<i>`` (the reserved ``storage_dir`` override).
    * ``for_remote``: each worker opens its own
      :class:`~repro.kvstores.remote.RemoteStoreClient` socket against
      one shared :class:`~repro.kvstores.remote.StoreServer`.
    * ``from_factory``: an arbitrary zero-argument callable, for tests
      and custom wiring (must survive the start method in use:
      anything under ``fork``, picklable under ``spawn``).
    """

    kind: str
    store: Optional[str] = None
    config: Dict[str, object] = field(default_factory=dict)
    storage_root: Optional[str] = None
    host: Optional[str] = None
    port: int = 0
    timeout: Optional[float] = None
    factory: Optional[Callable[[int], object]] = None

    @classmethod
    def for_store(
        cls, name: str, storage_root: Optional[str] = None, **config
    ) -> "ConnectorSpec":
        return cls(kind="store", store=name, config=config, storage_root=storage_root)

    @classmethod
    def for_remote(
        cls,
        host: str,
        port: int,
        timeout: Optional[float] = None,
        store_name: str = "remote",
    ) -> "ConnectorSpec":
        return cls(
            kind="remote", store=store_name, host=host, port=port, timeout=timeout
        )

    @classmethod
    def from_factory(cls, factory: Callable[[int], object]) -> "ConnectorSpec":
        """``factory(worker_index) -> connector``, called in the worker."""
        return cls(kind="factory", factory=factory)

    def build(self, index: int):
        if self.kind == "store":
            from ..kvstores import create_connector

            overrides = dict(self.config)
            if self.storage_root is not None:
                overrides["storage_dir"] = os.path.join(
                    self.storage_root, f"shard-{index}"
                )
            return create_connector(self.store, **overrides)
        if self.kind == "remote":
            from ..kvstores.remote import DEFAULT_TIMEOUT_S, RemoteStoreClient

            return RemoteStoreClient(
                self.host,
                self.port,
                store_name=self.store or "remote",
                timeout=self.timeout if self.timeout is not None else DEFAULT_TIMEOUT_S,
            )
        if self.kind == "factory":
            return self.factory(index)
        raise ValueError(f"unknown connector spec kind {self.kind!r}")


def store_content_digest(connector, keys) -> int:
    """Order-independent digest of a store's contents over ``keys``.

    XOR of per-key ``blake2b(key, value-or-missing)`` terms: disjoint
    key sets XOR into the digest of their union, so per-shard digests
    from N workers combine into exactly the digest a single replayer's
    store would produce over the same keys -- the property the
    single ≡ thread-sharded ≡ process-sharded equivalence tests check.
    """
    acc = 0
    for key in keys:
        value = connector.get(key)
        if value is None:
            payload = b"\x00" + key
        else:
            payload = b"\x01" + key + b"\x1f" + value
        acc ^= int.from_bytes(
            hashlib.blake2b(payload, digest_size=16).digest(), "little"
        )
    return acc


class _DecimatedStop:
    """Stop-check over a ``multiprocessing.Event``, sampled every 64th
    call: an mp event read is a semaphore syscall, far too costly for
    once-per-op, and stop latency of ~64 ops is ample."""

    __slots__ = ("event", "tick")

    def __init__(self, event) -> None:
        self.event = event
        self.tick = 0

    def __call__(self) -> bool:
        self.tick += 1
        if self.tick & 63:
            return False
        return self.event.is_set()


def _worker_main(index, shm_name, options, results, stop_event) -> None:
    """Replay one shard inside a worker process.

    Contract with the parent: exactly one message lands on ``results``
    (a result, a stop acknowledgement, or a structured error) unless
    the process dies outright -- which the parent detects by exit code.
    """
    sampler = None
    connector = None
    try:
        # NB: attaching registers the segment with the resource
        # tracker on CPython < 3.13, but workers share the parent's
        # tracker process (fork inherits it; spawn passes its fd), so
        # the registration set collapses the duplicate and the
        # parent's unlink performs the single unregister.  Do NOT
        # unregister here: that would clobber the parent's entry.
        shm = shared_memory.SharedMemory(name=shm_name)
        try:
            full = AccessTrace.attach(shm.buf)
            bucket = shard_indices(full, options["num_workers"])[index]
            shard = full.select(bucket)
        finally:
            # select() gathered into private arrays; drop every view
            # over the segment before closing our mapping of it
            full = None
            bucket = None
            shm.close()

        connector = ConnectorSpec(**options["spec"]).build(index)
        plan = options["fault_plan"]
        if plan is not None:
            plan = plan.for_shard(index)
        policy = options["retry_policy"]
        if policy is not None:
            policy = dataclasses.replace(policy)
        replayer = TraceReplayer(
            connector,
            service_rate=options["service_rate"],
            measure_latency=options["measure_latency"],
            use_histograms=options["use_histograms"],
            fault_plan=plan,
            retry_policy=policy,
            batch_size=options["batch_size"],
            stop_check=_DecimatedStop(stop_event),
        )

        metrics_dir = options["metrics_dir"]
        if metrics_dir is not None:
            from ..obs.metrics import (
                MetricsRegistry,
                ReplayProgress,
                Sampler,
                register_store,
            )

            registry = MetricsRegistry()
            register_store(registry, connector)
            progress = ReplayProgress(len(shard))
            sampler = Sampler(
                registry,
                progress,
                sink=os.path.join(metrics_dir, f"shard-{index}.jsonl"),
                store=connector.name,
                meta={"shard": index},
            ).start()
            replayer._progress = progress

        result = replayer.replay(shard)

        payload = {
            "store": result.store,
            "operations": result.operations,
            "elapsed_s": result.elapsed_s,
            "failed_ops": result.failed_ops,
            "retries": result.retries,
            "injected_faults": result.injected_faults,
            "injected_delay_s": result.injected_delay_s,
            "histograms": {
                op.value: hist.to_dict() for op, hist in result.histograms.items()
            },
            "latencies": {
                op.value: values
                for op, values in result.latencies_ns.items()
                if values
            },
        }
        if options["collect_digests"]:
            klist = shard.unique_keys()
            shard_keys = sorted({klist[kid] for kid in set(shard.key_ids)})
            payload["digest"] = store_content_digest(connector, shard_keys)
        results.put({"index": index, "result": payload})
    except ReplayStopped:
        results.put({"index": index, "stopped": True})
    except BaseException as exc:
        results.put(
            {
                "index": index,
                "error": {
                    "type": type(exc).__name__,
                    "message": str(exc),
                    "traceback": traceback_mod.format_exc(),
                },
            }
        )
        sys.exit(1)
    finally:
        if sampler is not None:
            sampler.stop()
        if connector is not None:
            try:
                connector.close()
            except Exception:
                pass


#: empty-queue polls (0.2 s apiece) a dead worker gets to deliver its
#: already-queued message before the parent declares it crashed
_DEAD_WORKER_GRACE_POLLS = 5


class ProcessShardedReplayer:
    """Replays a trace across N worker **processes**, one key partition
    each -- the multi-core counterpart of
    :class:`~repro.core.replayer.ShardedReplayer`.

    Shard membership (:func:`~repro.core.replayer.shard_indices`),
    per-shard fault plans (:meth:`~repro.faults.FaultPlan.for_shard`),
    retry-policy copies, and histogram merging are all byte-compatible
    with the thread mode, so for a fixed seed the two modes produce
    identical merged per-op histogram populations and final store
    contents; only wall-clock differs.

    On this repo's 1-CPU container the processes still time-slice one
    core (see BENCH_mp_replay.json's caveat); the architecture is what
    unlocks real cores when the harness gets them.
    """

    def __init__(
        self,
        spec: ConnectorSpec,
        num_workers: int = 4,
        service_rate: Optional[float] = None,
        measure_latency: bool = True,
        use_histograms: bool = True,
        fault_plan=None,
        retry_policy=None,
        batch_size: Optional[int] = None,
        metrics_dir: Optional[str] = None,
        collect_digests: bool = False,
        start_method: Optional[str] = None,
    ) -> None:
        if num_workers <= 0:
            raise ValueError("num_workers must be positive")
        if not isinstance(spec, ConnectorSpec):
            raise TypeError(
                "ProcessShardedReplayer takes a ConnectorSpec (live "
                "connectors cannot cross a process boundary)"
            )
        if fault_plan is not None and fault_plan.crash_at is not None:
            raise ValueError(
                "crash points are single-threaded experiments; use "
                "repro.faults.evaluate_crash_recovery instead of a "
                "sharded replay"
            )
        if start_method is None:
            # fork shares the page cache and skips interpreter boot;
            # spawn is the portable fallback
            methods = multiprocessing.get_all_start_methods()
            start_method = "fork" if "fork" in methods else "spawn"
        self.spec = spec
        self.num_workers = num_workers
        self.service_rate = service_rate
        self.measure_latency = measure_latency
        self.use_histograms = use_histograms
        self.fault_plan = fault_plan
        self.retry_policy = retry_policy
        self.batch_size = batch_size
        self.metrics_dir = metrics_dir
        self.collect_digests = collect_digests
        self.start_method = start_method
        #: per-shard content digests from the last replay (populated
        #: when ``collect_digests`` is set; workers compute them before
        #: exiting because their stores die with them)
        self.last_digests: List[Optional[int]] = []
        #: XOR-combined digest over all shards (key sets are disjoint)
        self.last_content_digest: Optional[int] = None
        #: path of the merged metrics series from the last replay
        self.last_metrics_path: Optional[str] = None

    # -- orchestration -------------------------------------------------------

    def replay(self, trace: AccessTrace) -> ShardedReplayResult:
        ctx = multiprocessing.get_context(self.start_method)
        per_worker_rate = (
            self.service_rate / self.num_workers if self.service_rate else None
        )
        options = {
            "spec": dataclasses.asdict(self.spec),
            "num_workers": self.num_workers,
            "service_rate": per_worker_rate,
            "measure_latency": self.measure_latency,
            "use_histograms": self.use_histograms,
            "fault_plan": self.fault_plan,
            "retry_policy": self.retry_policy,
            "batch_size": self.batch_size,
            "metrics_dir": self.metrics_dir,
            "collect_digests": self.collect_digests,
        }
        if self.metrics_dir is not None:
            os.makedirs(self.metrics_dir, exist_ok=True)

        shm = shared_memory.SharedMemory(
            create=True, size=max(1, trace.image_nbytes())
        )
        started = time.perf_counter()
        try:
            trace.write_image(shm.buf)
            results_queue = ctx.Queue()
            stop_event = ctx.Event()
            workers = {
                index: ctx.Process(
                    target=_worker_main,
                    args=(index, shm.name, options, results_queue, stop_event),
                    name=f"replay-shard-{index}",
                    daemon=True,
                )
                for index in range(self.num_workers)
            }
            for proc in workers.values():
                proc.start()
            payloads, errors = self._collect(workers, results_queue, stop_event)
            for proc in workers.values():
                proc.join(timeout=10)
                if proc.is_alive():  # wedged post-report; don't hang the parent
                    proc.terminate()
                    proc.join(timeout=5)
            results_queue.close()
        finally:
            shm.close()
            try:
                shm.unlink()
            except FileNotFoundError:
                pass
        elapsed = time.perf_counter() - started

        _raise_shard_errors(errors)

        shard_results = [
            self._rebuild_result(payloads[index])
            for index in sorted(payloads)
        ]
        self.last_digests = [
            payloads[index].get("digest") for index in sorted(payloads)
        ]
        digests = [digest for digest in self.last_digests if digest is not None]
        self.last_content_digest = None
        if digests:
            combined = 0
            for digest in digests:
                combined ^= digest
            self.last_content_digest = combined
        if self.metrics_dir is not None and payloads:
            from ..obs.metrics import merge_shard_series

            paths = [
                os.path.join(self.metrics_dir, f"shard-{index}.jsonl")
                for index in sorted(payloads)
            ]
            merged = os.path.join(self.metrics_dir, "merged.jsonl")
            merge_shard_series([p for p in paths if os.path.exists(p)], merged)
            self.last_metrics_path = merged
        store = shard_results[0].store if shard_results else self.spec.store or "?"
        return ShardedReplayResult(
            store=store, shard_results=shard_results, elapsed_s=elapsed
        )

    def _collect(self, workers, results_queue, stop_event):
        """Drain one message per worker, watching for silent deaths.

        Draining happens *before* joining: a worker blocked flushing a
        large result into the queue's pipe deadlocks against a parent
        blocked in ``join`` (the classic ``multiprocessing`` trap).  A
        worker observed dead with nothing queued gets a short grace
        (its feeder thread may still be flushing), then is recorded as
        crashed -- which also trips the stop event so live siblings
        wind down instead of replaying their full shards.
        """
        pending = dict(workers)
        payloads: Dict[int, dict] = {}
        errors_by_index: Dict[int, BaseException] = {}
        strikes: Dict[int, int] = {}
        while pending:
            try:
                message = results_queue.get(timeout=0.2)
            except queue_mod.Empty:
                for index in list(pending):
                    proc = pending[index]
                    if proc.is_alive():
                        strikes.pop(index, None)
                        continue
                    strikes[index] = strikes.get(index, 0) + 1
                    if strikes[index] >= _DEAD_WORKER_GRACE_POLLS:
                        errors_by_index[index] = WorkerCrashError(
                            index, proc.exitcode
                        )
                        del pending[index]
                        stop_event.set()
                continue
            index = message["index"]
            pending.pop(index, None)
            strikes.pop(index, None)
            if "result" in message:
                payloads[index] = message["result"]
            elif "error" in message:
                error = message["error"]
                errors_by_index[index] = WorkerProcessError(
                    index, error["type"], error["message"], error["traceback"]
                )
                stop_event.set()
            # "stopped" acknowledgements carry no result: the shard
            # unwound cooperatively after a sibling failed
        errors = [errors_by_index[index] for index in sorted(errors_by_index)]
        return payloads, errors

    @staticmethod
    def _rebuild_result(payload: dict) -> ReplayResult:
        from ..trace import OpType
        from .histogram import LatencyHistogram

        histograms = {
            OpType(name): LatencyHistogram.from_dict(data)
            for name, data in payload["histograms"].items()
            if data.get("total")
        }
        latencies = {
            OpType(name): list(values)
            for name, values in payload["latencies"].items()
        }
        return ReplayResult(
            store=payload["store"],
            operations=payload["operations"],
            elapsed_s=payload["elapsed_s"],
            latencies_ns=latencies,
            histograms=histograms,
            failed_ops=payload["failed_ops"],
            retries=payload["retries"],
            injected_faults=payload["injected_faults"],
            injected_delay_s=payload["injected_delay_s"],
        )
