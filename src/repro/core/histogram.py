"""Log-bucketed latency histogram (HdrHistogram-style).

Recording every latency sample in a list costs memory proportional to
the trace (the paper replays 2M operations per experiment).  This
histogram records in O(1) memory with bounded relative error: buckets
are log-spaced with ``subbuckets`` linear divisions per power of two,
giving a worst-case quantile error of ``1 / subbuckets``.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Tuple


class LatencyHistogram:
    """Fixed-size histogram over non-negative integer values (ns)."""

    def __init__(self, subbuckets: int = 32, max_exponent: int = 40) -> None:
        if subbuckets < 2 or subbuckets & (subbuckets - 1):
            raise ValueError("subbuckets must be a power of two >= 2")
        self.subbuckets = subbuckets
        self.max_exponent = max_exponent
        self._sub_bits = subbuckets.bit_length() - 1
        self._counts = [0] * ((max_exponent + 1) * subbuckets)
        self.total = 0
        self.sum_values = 0
        self.min_value: int = -1
        self.max_value = 0

    # -- recording ----------------------------------------------------------

    def _index(self, value: int) -> int:
        if value < self.subbuckets:
            return value  # exact in the first linear region
        exponent = value.bit_length() - self._sub_bits
        sub = value >> exponent
        index = exponent * self.subbuckets + sub
        return min(index, len(self._counts) - 1)

    def record(self, value: int) -> None:
        if value < 0:
            value = 0
        self._counts[self._index(value)] += 1
        self.total += 1
        self.sum_values += value
        if self.min_value < 0 or value < self.min_value:
            self.min_value = value
        if value > self.max_value:
            self.max_value = value

    def record_many(self, values: Iterable[int]) -> None:
        for value in values:
            self.record(value)

    # -- reading ------------------------------------------------------------

    def _bucket_midpoint(self, index: int) -> int:
        if index < self.subbuckets:
            return index
        exponent = index // self.subbuckets
        sub = index % self.subbuckets
        low = sub << exponent
        high = (sub + 1) << exponent
        return (low + high - 1) // 2

    def percentile(self, percent: float) -> int:
        """Approximate value at the given percentile (0..100]."""
        if self.total == 0:
            return 0
        if percent >= 100.0:
            return self.max_value
        target = max(1, int(round(percent / 100.0 * self.total)))
        seen = 0
        for index, count in enumerate(self._counts):
            seen += count
            if seen >= target:
                # Clamp to the recorded range on both sides: a bucket
                # midpoint can undershoot min_value just as it can
                # overshoot max_value.
                midpoint = max(self._bucket_midpoint(index), self.min_value)
                return min(midpoint, self.max_value)
        return self.max_value

    @property
    def mean(self) -> float:
        return self.sum_values / self.total if self.total else 0.0

    def merge(self, other: "LatencyHistogram") -> None:
        if (
            other.subbuckets != self.subbuckets
            or other.max_exponent != self.max_exponent
        ):
            raise ValueError("histograms have different geometry")
        for index, count in enumerate(other._counts):
            self._counts[index] += count
        self.total += other.total
        self.sum_values += other.sum_values
        if other.min_value >= 0 and (
            self.min_value < 0 or other.min_value < self.min_value
        ):
            self.min_value = other.min_value
        self.max_value = max(self.max_value, other.max_value)

    # -- serialization ------------------------------------------------------

    def to_dict(self) -> Dict[str, object]:
        """Sparse, merge-preserving JSON form (metrics JSONL schema).

        Carries the geometry and the raw bucket counts (not midpoints),
        so :meth:`from_dict` rebuilds a histogram that merges and
        answers percentiles exactly like the original -- sampled
        interval histograms can be re-aggregated offline.
        """
        return {
            "subbuckets": self.subbuckets,
            "max_exponent": self.max_exponent,
            "total": self.total,
            "sum": self.sum_values,
            "min": self.min_value,
            "max": self.max_value,
            "counts": {
                str(index): count
                for index, count in enumerate(self._counts)
                if count
            },
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "LatencyHistogram":
        """Rebuild a histogram exported by :meth:`to_dict`.

        Raises :class:`ValueError` (never a bare ``IndexError``) on
        malformed input: out-of-range bucket indices, negative counts,
        or totals inconsistent with the bucket counts.  Multi-process
        replays transport every worker's histogram through this path,
        so a corrupted payload must fail loudly rather than silently
        skew the merged quantiles.
        """
        histogram = cls(
            subbuckets=int(data["subbuckets"]),
            max_exponent=int(data["max_exponent"]),
        )
        num_buckets = len(histogram._counts)
        for raw_index, raw_count in data.get("counts", {}).items():
            try:
                index = int(raw_index)
                count = int(raw_count)
            except (TypeError, ValueError):
                raise ValueError(
                    f"histogram bucket entry {raw_index!r}: {raw_count!r} "
                    "is not an integer index/count pair"
                ) from None
            if not 0 <= index < num_buckets:
                raise ValueError(
                    f"histogram bucket index {index} out of range for "
                    f"geometry subbuckets={histogram.subbuckets} "
                    f"max_exponent={histogram.max_exponent} "
                    f"({num_buckets} buckets)"
                )
            if count < 0:
                raise ValueError(
                    f"histogram bucket {index} has negative count {count}"
                )
            histogram._counts[index] = count
        total = int(data["total"])
        sum_values = int(data["sum"])
        min_value = int(data["min"])
        max_value = int(data["max"])
        counted = sum(histogram._counts)
        if total != counted:
            raise ValueError(
                f"histogram total {total} does not match bucket counts "
                f"(sum {counted})"
            )
        if sum_values < 0:
            raise ValueError(f"histogram sum must be >= 0, got {sum_values}")
        if total == 0:
            if min_value != -1 or max_value != 0 or sum_values != 0:
                raise ValueError(
                    "empty histogram must have min=-1 max=0 sum=0, got "
                    f"min={min_value} max={max_value} sum={sum_values}"
                )
        elif min_value < 0 or max_value < min_value:
            raise ValueError(
                f"histogram min/max inconsistent: min={min_value} "
                f"max={max_value} with total={total}"
            )
        histogram.total = total
        histogram.sum_values = sum_values
        histogram.min_value = min_value
        histogram.max_value = max_value
        return histogram

    def nonzero_buckets(self) -> List[Tuple[int, int]]:
        """(midpoint, count) pairs for every populated bucket."""
        return [
            (self._bucket_midpoint(index), count)
            for index, count in enumerate(self._counts)
            if count
        ]

    def summary(self, scale: float = 1000.0) -> Dict[str, float]:
        """p50/p99/p99.9/max in units of ``scale`` ns (default us)."""
        return {
            "p50": self.percentile(50.0) / scale,
            "p99": self.percentile(99.0) / scale,
            "p99.9": self.percentile(99.9) / scale,
            "max": self.max_value / scale,
            "mean": self.mean / scale,
        }
