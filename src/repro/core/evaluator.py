"""Performance evaluator: runs workloads across KV stores.

Orchestrates the paper's section 6 experiments: build or accept a
state access trace, replay it on each store through the appropriate
connector, and report throughput plus tail latency per store.  Also
supports concurrent-operator evaluation (section 6.4) by interleaving
the traces of multiple operators onto one store instance.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Callable, Dict, Iterable, List, Optional, Sequence

from ..kvstores import create_connector
from ..kvstores.connectors import StoreConnector
from ..trace import AccessTrace, interleave_traces
from .replayer import (
    ReplayResult,
    ShardedReplayer,
    ShardedReplayResult,
    TraceReplayer,
)

DEFAULT_STORES = ("rocksdb", "lethe", "faster", "berkeleydb")


class LockedConnector:
    """Serializes access to a shared connector with one lock.

    Models concurrent clients of one store instance when the store
    itself is not thread-safe; the lock contention is part of what is
    being measured.
    """

    def __init__(self, inner: StoreConnector, lock: Optional[threading.Lock] = None):
        self._inner = inner
        self._lock = lock or threading.Lock()
        self.name = inner.name

    def get(self, key: bytes):
        with self._lock:
            return self._inner.get(key)

    def put(self, key: bytes, value: bytes) -> None:
        with self._lock:
            self._inner.put(key, value)

    def merge(self, key: bytes, operand: bytes) -> None:
        with self._lock:
            self._inner.merge(key, operand)

    def delete(self, key: bytes) -> None:
        with self._lock:
            self._inner.delete(key)

    def take_background_ns(self) -> int:
        with self._lock:
            return self._inner.take_background_ns()

    def flush(self) -> None:
        with self._lock:
            self._inner.flush()

    def close(self) -> None:
        with self._lock:
            self._inner.close()


@dataclass
class EvaluationRow:
    store: str
    workload: str
    throughput_kops: float
    p50_us: float
    p99_us: float
    p999_us: float

    @classmethod
    def from_result(cls, workload: str, result: ReplayResult) -> "EvaluationRow":
        summary = result.summary()
        return cls(
            store=result.store,
            workload=workload,
            throughput_kops=summary["throughput_kops"],
            p50_us=summary["p50_us"],
            p99_us=summary["p99_us"],
            p999_us=summary["p99.9_us"],
        )


class PerformanceEvaluator:
    """Replay traces across stores and collect comparable rows."""

    def __init__(
        self,
        stores: Sequence[str] = DEFAULT_STORES,
        store_configs: Optional[Dict[str, dict]] = None,
        service_rate: Optional[float] = None,
    ) -> None:
        self.stores = tuple(stores)
        self.store_configs = store_configs or {}
        self.service_rate = service_rate

    def _connector(self, store_name: str) -> StoreConnector:
        overrides = self.store_configs.get(store_name, {})
        return create_connector(store_name, **overrides)

    def evaluate(
        self,
        workload_name: str,
        trace: AccessTrace,
        setup: Optional[Callable[[StoreConnector], None]] = None,
    ) -> List[EvaluationRow]:
        """Replay one trace against every configured store.

        ``setup`` runs against each fresh store before measurement --
        e.g. YCSB's load phase (``workload.preload``).
        """
        rows: List[EvaluationRow] = []
        for store_name in self.stores:
            connector = self._connector(store_name)
            if setup is not None:
                setup(connector)
            replayer = TraceReplayer(connector, service_rate=self.service_rate)
            result = replayer.replay(trace)
            connector.close()
            rows.append(EvaluationRow.from_result(workload_name, result))
        return rows

    def evaluate_matrix(
        self, traces: Dict[str, AccessTrace]
    ) -> List[EvaluationRow]:
        """Replay a set of named traces against every store."""
        rows: List[EvaluationRow] = []
        for workload_name, trace in traces.items():
            rows.extend(self.evaluate(workload_name, trace))
        return rows

    def evaluate_concurrent(
        self,
        store_name: str,
        traces: Sequence[AccessTrace],
        label: str = "concurrent",
    ) -> ReplayResult:
        """Multiple operators sharing one store instance (section 6.4).

        The paper runs several Gadget instances against the same store;
        the dataflow model still guarantees one writer per key, so the
        interleaved trace preserves per-operator access order.
        """
        connector = self._connector(store_name)
        merged = interleave_traces(traces)
        replayer = TraceReplayer(connector, service_rate=self.service_rate)
        result = replayer.replay(merged)
        connector.close()
        return result

    def evaluate_concurrent_threads(
        self, store_name: str, traces: Sequence[AccessTrace]
    ) -> List[ReplayResult]:
        """Thread-per-operator variant of the concurrent experiment.

        Python's GIL serializes execution, but the arrival interleaving
        is scheduler-driven like the paper's concurrent Gadget
        instances.  Each thread gets its own replayer over the shared
        connector.
        """
        connector = self._connector(store_name)
        results: List[Optional[ReplayResult]] = [None] * len(traces)
        locked = LockedConnector(connector)

        def worker(index: int, trace: AccessTrace) -> None:
            replayer = TraceReplayer(locked, service_rate=self.service_rate)  # type: ignore[arg-type]
            results[index] = replayer.replay(trace)

        threads = [
            threading.Thread(target=worker, args=(i, t))
            for i, t in enumerate(traces)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        connector.close()
        return [r for r in results if r is not None]

    def evaluate_sharded(
        self,
        store_name: str,
        trace: AccessTrace,
        num_workers: int = 4,
        share_store: bool = False,
    ) -> ShardedReplayResult:
        """Hash-partitioned parallel replay (the scale-out mode).

        With ``share_store=False`` (default) every worker drives its
        own store instance over its key partition -- the sharded
        deployment of a keyed streaming operator.  With
        ``share_store=True`` all workers hit one store instance behind
        a lock (the section 6.4 co-location setup, but with Gadget's
        one-writer-per-key guarantee enforced by the partitioning).
        """
        if share_store:
            shared = self._connector(store_name)
            replayer = ShardedReplayer(
                LockedConnector(shared),  # type: ignore[arg-type]
                num_workers=num_workers,
                service_rate=self.service_rate,
            )
            try:
                return replayer.replay(trace)
            finally:
                shared.close()
        replayer = ShardedReplayer(
            lambda: self._connector(store_name),
            num_workers=num_workers,
            service_rate=self.service_rate,
        )
        try:
            return replayer.replay(trace)
        finally:
            replayer.close()
