"""Performance evaluator: runs workloads across KV stores.

Orchestrates the paper's section 6 experiments: build or accept a
state access trace, replay it on each store through the appropriate
connector, and report throughput plus tail latency per store.  Also
supports concurrent-operator evaluation (section 6.4) by interleaving
the traces of multiple operators onto one store instance.
"""

from __future__ import annotations

import dataclasses
import os
import threading
from dataclasses import dataclass
from typing import Callable, Dict, Iterable, List, Optional, Sequence

from ..kvstores import create_connector
from ..kvstores.connectors import StoreConnector
from ..trace import AccessTrace, interleave_traces
from .replayer import (
    ReplayResult,
    ShardedReplayer,
    ShardedReplayResult,
    TraceReplayer,
)
# Imported after .replayer on purpose: repro.faults reaches back into
# repro.core lazily, and this ordering keeps the cycle unwound.
from ..faults import (
    RECOVERABLE_STORES,
    CrashRecoveryResult,
    DiskFaultPlan,
    FaultPlan,
    RetryPolicy,
    check_recoverable,
    evaluate_crash_recovery,
)

DEFAULT_STORES = ("rocksdb", "lethe", "faster", "berkeleydb")


class LockedConnector:
    """Serializes access to a shared connector with one lock.

    Models concurrent clients of one store instance when the store
    itself is not thread-safe; the lock contention is part of what is
    being measured.
    """

    def __init__(self, inner: StoreConnector, lock: Optional[threading.Lock] = None):
        self._inner = inner
        self._lock = lock or threading.Lock()
        self.name = inner.name

    def get(self, key: bytes):
        with self._lock:
            return self._inner.get(key)

    def put(self, key: bytes, value: bytes) -> None:
        with self._lock:
            self._inner.put(key, value)

    def merge(self, key: bytes, operand: bytes) -> None:
        with self._lock:
            self._inner.merge(key, operand)

    def delete(self, key: bytes) -> None:
        with self._lock:
            self._inner.delete(key)

    def multi_get(self, keys):
        with self._lock:
            return self._inner.multi_get(keys)

    def apply_batch(self, ops) -> None:
        with self._lock:
            self._inner.apply_batch(ops)

    def take_background_ns(self) -> int:
        with self._lock:
            return self._inner.take_background_ns()

    def flush(self) -> None:
        with self._lock:
            self._inner.flush()

    def close(self) -> None:
        with self._lock:
            self._inner.close()

    def pipeline(self, depth: int, on_complete):
        """Synchronous-fallback session executing each op under the
        lock; a shared in-process store has no round trips to overlap."""
        from ..kvstores.connectors import PipelineSession

        return PipelineSession(self, depth, on_complete)


@dataclass
class EvaluationRow:
    store: str
    workload: str
    throughput_kops: float
    p50_us: float
    p99_us: float
    p999_us: float
    # -- robustness columns (faulted and crash-recovery runs) --------------
    #: faults the injector fired during the replay
    injected_faults: int = 0
    #: retry attempts the policy spent absorbing them
    retries: int = 0
    #: operations that failed even after retries
    failed_ops: int = 0
    #: micro-batch size the replay ran with (1 = per-op)
    batch_size: int = 1
    #: in-flight window depth the replay ran with (1 = synchronous)
    pipeline_depth: int = 1
    #: wall-clock of the store's recover() path (crash-recovery mode)
    recovery_ms: Optional[float] = None
    #: WAL records replayed during recovery (crash-recovery mode)
    wal_replayed: Optional[int] = None
    #: post-recovery contents matched an uninterrupted run
    recovered_ok: Optional[bool] = None
    # -- integrity columns (disk-fault and scrub runs) ---------------------
    #: corruptions the store detected (recovery, reads, scrub)
    corruptions_detected: Optional[int] = None
    #: of those, repaired from redundant state
    corruptions_repaired: Optional[int] = None
    #: of those, permanently lost
    corruptions_unrecoverable: Optional[int] = None
    #: wall-clock of the scrub walk
    scrub_ms: Optional[float] = None
    # -- background-maintenance columns (compaction-axis runs) -------------
    #: compaction policy the LSM store ran with (None for non-LSM rows
    #: or default-policy runs)
    compaction: Optional[str] = None
    #: write stalls the backpressure gate imposed (background mode)
    write_stalls: Optional[int] = None
    #: total milliseconds writers spent blocked in those stalls
    stall_ms: Optional[float] = None
    # -- cluster columns (distributed serving runs) -------------------------
    #: topology label for cluster rows (``3x2@all`` = 3 partitions,
    #: replication factor 2, ack=all); None for single-node rows
    cluster: Optional[str] = None
    #: primary promotions the client performed mid-replay
    failovers: Optional[int] = None
    #: max per-link replication lag observed across the fleet
    replication_lag_ms: Optional[float] = None
    # -- observability ------------------------------------------------------
    #: metrics JSONL recorded during this row's replay (None when the
    #: run was not sampled); lets ``compare`` runs keep their series
    timeseries_path: Optional[str] = None

    def to_record(self) -> dict:
        """Flat dict of every field, for results-lake ingestion.

        Derived from ``dataclasses.fields`` (the StoreStats.snapshot
        pattern), so a field added to the row lands in the lake without
        anyone remembering to mirror it here -- the serialization drift
        this replaces hand-listed keys to fix.  Carries the record
        schema version so readers can gate on it.
        """
        from ..lake.schema import RECORD_SCHEMA_VERSION

        record = {
            field.name: getattr(self, field.name)
            for field in dataclasses.fields(self)
        }
        record["record_schema"] = RECORD_SCHEMA_VERSION
        return record

    @classmethod
    def from_result(cls, workload: str, result: ReplayResult) -> "EvaluationRow":
        summary = result.summary()
        return cls(
            store=result.store,
            workload=workload,
            throughput_kops=summary["throughput_kops"],
            p50_us=summary["p50_us"],
            p99_us=summary["p99_us"],
            p999_us=summary["p99.9_us"],
            injected_faults=result.injected_faults,
            retries=result.retries,
            failed_ops=result.failed_ops,
        )

    @classmethod
    def from_recovery(
        cls, workload: str, result: CrashRecoveryResult
    ) -> "EvaluationRow":
        """Row for a kill-recover-verify run.

        Latency percentiles cover both replay phases; throughput spans
        the whole experiment including the recovery pause, so a slow
        ``recover()`` shows up in the row exactly like a slow store.
        """
        merged = _merge_phase_results(result)
        row = cls.from_result(workload, merged)
        row.injected_faults += result.pre_crash.injected_faults
        row.retries += result.pre_crash.retries
        row.failed_ops += result.pre_crash.failed_ops
        row.recovery_ms = result.recovery_ms
        row.wal_replayed = result.wal_records_replayed
        row.recovered_ok = result.recovered_ok
        if result.disk_faults is not None:
            row.corruptions_detected = result.corruptions_detected
            row.corruptions_repaired = result.corruptions_repaired
            row.scrub_ms = result.scrub_ms
        return row

    @classmethod
    def from_cluster(cls, workload: str, result) -> "EvaluationRow":
        """Row for a cluster chaos replay (a
        :class:`~repro.cluster.ClusterRecoveryResult`).

        ``recovery_ms`` reuses the crash-recovery column: here it is
        the slowest chain repair, i.e. the longest client-observed
        outage.  Failed ops stay in the latency population, so a
        failover's reconnect cost lands in the tail percentiles the
        same way a slow ``recover()`` does."""
        row = cls.from_result(workload, result.replay)
        row.store = result.store  # backing store; topology is `cluster`
        row.cluster = result.cluster
        row.failovers = result.failovers
        row.replication_lag_ms = round(result.replication_lag_ms, 3)
        row.recovery_ms = result.recovery_ms
        row.recovered_ok = result.recovered_ok
        return row


def _stall_columns(connector) -> tuple:
    """(write_stalls, stall_ms) from a connector's store, read before
    the store closes; (0, None) for stores without a stall gate."""
    store = getattr(connector, "store", None)
    stalls = getattr(store, "write_stall_count", 0) or 0
    stall_ns = getattr(store, "write_stall_ns", 0) or 0
    return stalls, round(stall_ns / 1e6, 3) if stalls else None


def _merge_phase_results(result: CrashRecoveryResult) -> ReplayResult:
    """Fold pre-crash and resumed phases into one :class:`ReplayResult`
    whose elapsed time includes the recovery pause."""
    pre, post = result.pre_crash, result.resumed
    latencies = {
        op: pre.latencies_ns.get(op, []) + post.latencies_ns.get(op, [])
        for op in set(pre.latencies_ns) | set(post.latencies_ns)
    }
    histograms = dict(post.histograms)
    if pre.histograms:
        from .histogram import LatencyHistogram

        histograms = {}
        for source in (pre, post):
            for op, histogram in source.histograms.items():
                merged = histograms.get(op)
                if merged is None:
                    merged = LatencyHistogram(
                        histogram.subbuckets, histogram.max_exponent
                    )
                    histograms[op] = merged
                merged.merge(histogram)
    return ReplayResult(
        store=result.store,
        operations=result.operations,
        elapsed_s=pre.elapsed_s + result.recovery_s + post.elapsed_s,
        latencies_ns=latencies,
        histograms=histograms,
    )


class PerformanceEvaluator:
    """Replay traces across stores and collect comparable rows."""

    def __init__(
        self,
        stores: Sequence[str] = DEFAULT_STORES,
        store_configs: Optional[Dict[str, dict]] = None,
        service_rate: Optional[float] = None,
        fault_plan: Optional[FaultPlan] = None,
        retry_policy: Optional[RetryPolicy] = None,
        lake_dir: Optional[str] = None,
    ) -> None:
        self.stores = tuple(stores)
        self.store_configs = store_configs or {}
        self.service_rate = service_rate
        #: faults injected into every replay; each store draws a fresh
        #: schedule from the same plan, so all rows of a comparison see
        #: the identical fault timeline
        self.fault_plan = fault_plan
        self.retry_policy = retry_policy
        #: results-lake directory: every evaluation's rows are appended
        #: there as one run (after measurement, never on the hot path)
        self.lake_dir = lake_dir
        self._lake = None

    def _record_rows(
        self, rows: "List[EvaluationRow]", plan: Optional[FaultPlan]
    ) -> None:
        """Append finished rows to the results lake, if one is wired.

        Runs strictly after the replay's timing window closes, so lake
        ingest cost never lands inside a measurement."""
        if self.lake_dir is None or not rows:
            return
        from ..lake import ResultsLake, append_rows, fault_plan_label, lake_path

        if self._lake is None:
            self._lake = ResultsLake(lake_path(self.lake_dir))
        append_rows(self._lake, rows, fault_plan=fault_plan_label(plan))

    def _connector(self, store_name: str) -> StoreConnector:
        overrides = self.store_configs.get(store_name, {})
        return create_connector(store_name, **overrides)

    def _fresh_policy(
        self, override: Optional[RetryPolicy]
    ) -> Optional[RetryPolicy]:
        """Per-store copy of the retry policy (fresh jitter RNG), so
        every store replays under identical retry behaviour."""
        policy = override if override is not None else self.retry_policy
        return dataclasses.replace(policy) if policy is not None else None

    def evaluate(
        self,
        workload_name: str,
        trace: AccessTrace,
        setup: Optional[Callable[[StoreConnector], None]] = None,
        fault_plan: Optional[FaultPlan] = None,
        retry_policy: Optional[RetryPolicy] = None,
        batch_size: Optional[int] = None,
        pipeline_depth: Optional[int] = None,
        metrics_dir: Optional[str] = None,
        metrics_interval_ms: float = 100.0,
    ) -> List[EvaluationRow]:
        """Replay one trace against every configured store.

        ``setup`` runs against each fresh store before measurement --
        e.g. YCSB's load phase (``workload.preload``).  ``fault_plan``
        and ``retry_policy`` override the evaluator-wide settings for
        this call; with a plan set, every store is driven through an
        identical injected-fault schedule and the rows report the
        faults, retries, and residual failures alongside throughput.
        ``batch_size`` micro-batches the replay (see
        :class:`~repro.core.replayer.TraceReplayer`); rows carry the
        size so batched and per-op rows stay distinguishable.
        ``pipeline_depth`` instead runs every store through a bounded
        in-flight window (rows carry the depth); the two round-trip
        amortizations are mutually exclusive.
        ``metrics_dir`` samples every store's replay into
        ``<dir>/<workload>-<store>.jsonl`` (see :mod:`repro.obs`) and
        records the path in the row's ``timeseries_path``.
        """
        plan = fault_plan if fault_plan is not None else self.fault_plan
        rows: List[EvaluationRow] = []
        for store_name in self.stores:
            connector = self._connector(store_name)
            if setup is not None:
                setup(connector)
            telemetry = None
            series_path = None
            if metrics_dir is not None:
                from ..obs import ReplayTelemetry

                os.makedirs(metrics_dir, exist_ok=True)
                # The workload name is often a trace file path; keep
                # only its stem so the series lands inside metrics_dir.
                stem = os.path.splitext(os.path.basename(str(workload_name)))[0]
                series_path = os.path.join(
                    metrics_dir, f"{stem or 'workload'}-{store_name}.jsonl"
                )
                telemetry = ReplayTelemetry(
                    metrics_path=series_path,
                    interval_ms=metrics_interval_ms,
                    meta={"workload": workload_name},
                )
            replayer = TraceReplayer(
                connector,
                service_rate=self.service_rate,
                fault_plan=plan,
                retry_policy=self._fresh_policy(retry_policy),
                batch_size=batch_size,
                pipeline_depth=pipeline_depth,
                telemetry=telemetry,
            )
            result = replayer.replay(trace)
            stalls, stall_ms = _stall_columns(connector)
            connector.close()
            row = EvaluationRow.from_result(workload_name, result)
            row.batch_size = batch_size or 1
            row.pipeline_depth = pipeline_depth or 1
            row.timeseries_path = series_path
            if stalls:
                row.write_stalls = stalls
                row.stall_ms = stall_ms
            rows.append(row)
        self._record_rows(rows, plan)
        return rows

    def evaluate_compaction_axis(
        self,
        workload_name: str,
        trace: AccessTrace,
        policies: Sequence[str],
        background: bool = False,
        batch_size: Optional[int] = None,
    ) -> List[EvaluationRow]:
        """Replay one trace across compaction policies (LSM stores).

        Sweeps the ``repro compare --compaction`` axis: every LSM store
        in this evaluator's store list runs the trace once per policy,
        inline or (with ``background``) under the flush/compaction
        workers, and the rows carry the policy plus the write-stall
        columns.  Store/policy combinations a store rejects (Lethe with
        overlapping-run policies) are skipped.
        """
        lsm_stores = [s for s in self.stores if s in RECOVERABLE_STORES]
        if not lsm_stores:
            raise ValueError(
                "the compaction axis needs at least one LSM store "
                f"({', '.join(RECOVERABLE_STORES)}); got {self.stores}"
            )
        rows: List[EvaluationRow] = []
        for policy in policies:
            for store_name in lsm_stores:
                overrides = dict(self.store_configs.get(store_name, {}))
                overrides["compaction_policy"] = policy
                overrides["background"] = background
                try:
                    connector = create_connector(store_name, **overrides)
                except ValueError:
                    # Incompatible combination (e.g. lethe + tiered).
                    continue
                replayer = TraceReplayer(
                    connector,
                    service_rate=self.service_rate,
                    batch_size=batch_size,
                )
                result = replayer.replay(trace)
                stalls, stall_ms = _stall_columns(connector)
                connector.close()
                row = EvaluationRow.from_result(workload_name, result)
                row.batch_size = batch_size or 1
                row.compaction = policy
                if background:
                    row.write_stalls = stalls
                    row.stall_ms = stall_ms
                rows.append(row)
        self._record_rows(rows, None)
        return rows

    def evaluate_matrix(
        self, traces: Dict[str, AccessTrace]
    ) -> List[EvaluationRow]:
        """Replay a set of named traces against every store."""
        rows: List[EvaluationRow] = []
        for workload_name, trace in traces.items():
            rows.extend(self.evaluate(workload_name, trace))
        return rows

    def evaluate_concurrent(
        self,
        store_name: str,
        traces: Sequence[AccessTrace],
        label: str = "concurrent",
    ) -> ReplayResult:
        """Multiple operators sharing one store instance (section 6.4).

        The paper runs several Gadget instances against the same store;
        the dataflow model still guarantees one writer per key, so the
        interleaved trace preserves per-operator access order.
        """
        connector = self._connector(store_name)
        merged = interleave_traces(traces)
        replayer = TraceReplayer(connector, service_rate=self.service_rate)
        result = replayer.replay(merged)
        connector.close()
        return result

    def evaluate_concurrent_threads(
        self, store_name: str, traces: Sequence[AccessTrace]
    ) -> List[ReplayResult]:
        """Thread-per-operator variant of the concurrent experiment.

        Python's GIL serializes execution, but the arrival interleaving
        is scheduler-driven like the paper's concurrent Gadget
        instances.  Each thread gets its own replayer over the shared
        connector.
        """
        connector = self._connector(store_name)
        results: List[Optional[ReplayResult]] = [None] * len(traces)
        locked = LockedConnector(connector)

        def worker(index: int, trace: AccessTrace) -> None:
            replayer = TraceReplayer(locked, service_rate=self.service_rate)  # type: ignore[arg-type]
            results[index] = replayer.replay(trace)

        threads = [
            threading.Thread(target=worker, args=(i, t))
            for i, t in enumerate(traces)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        connector.close()
        return [r for r in results if r is not None]

    def evaluate_crash_recovery(
        self,
        workload_name: str,
        trace: AccessTrace,
        crash_at: int,
        stores: Optional[Sequence[str]] = None,
        fault_plan: Optional[FaultPlan] = None,
        retry_policy: Optional[RetryPolicy] = None,
        disk_plan: Optional[DiskFaultPlan] = None,
        batch_size: Optional[int] = None,
    ) -> List[EvaluationRow]:
        """Kill-recover-verify each recoverable store (the robustness
        counterpart of :meth:`evaluate`).

        Every store is crashed at the same operation index (plus any
        additional faults from the plan), recovered via its
        ``recover()`` path, resumed, and verified against an
        uninterrupted run; rows carry ``recovery_ms``,
        ``wal_replayed``, and ``recovered_ok`` next to the usual
        throughput/latency columns.  A ``disk_plan`` additionally
        damages the surviving storage before recovery and adds the
        corruption columns.

        An explicitly requested store that has no recovery path fails
        fast here rather than mid-experiment.
        """
        plan = fault_plan if fault_plan is not None else self.fault_plan
        if stores is not None:
            chosen = tuple(stores)
            for store_name in chosen:
                check_recoverable(store_name)
        else:
            chosen = tuple(s for s in self.stores if s in RECOVERABLE_STORES)
        if not chosen:
            raise ValueError(
                f"no recoverable stores among {self.stores}; "
                f"crash recovery needs one of {RECOVERABLE_STORES}"
            )
        rows: List[EvaluationRow] = []
        for store_name in chosen:
            result = evaluate_crash_recovery(
                store_name,
                trace,
                crash_at,
                plan=plan,
                retry_policy=self._fresh_policy(retry_policy),
                service_rate=self.service_rate,
                store_config=self.store_configs.get(store_name),
                disk_plan=disk_plan,
                batch_size=batch_size,
            )
            row = EvaluationRow.from_recovery(workload_name, result)
            row.batch_size = batch_size or 1
            rows.append(row)
        self._record_rows(rows, plan)
        return rows

    def evaluate_cluster(
        self,
        workload_name: str,
        trace: AccessTrace,
        partitions: int = 3,
        replicas: int = 1,
        ack: str = "all",
        chaos=None,
        stores: Optional[Sequence[str]] = None,
        retry_policy: Optional[RetryPolicy] = None,
        batch_size: Optional[int] = None,
        pipeline_depth: Optional[int] = None,
    ) -> List[EvaluationRow]:
        """Replay through a partitioned + replicated cluster per store.

        Every backing store gets its own fresh ``partitions`` x
        ``replicas + 1`` fleet and the *same* chaos schedule (the plan
        is seeded, like every fault plan), so cluster rows compare
        across stores the way faulted single-node rows do.  Rows carry
        the ``cluster`` topology label, ``failovers``, and
        ``replication_lag_ms`` next to the usual columns;
        ``recovery_ms``/``recovered_ok`` are reused for the slowest
        repair and the content check against a single-node oracle.

        ``chaos`` is a :class:`~repro.faults.ClusterFaultPlan` (or a
        :class:`~repro.faults.FaultPlan` whose ``cluster`` field is
        set).
        """
        from ..cluster import evaluate_cluster_recovery as run_cluster

        plan = chaos
        if plan is None and self.fault_plan is not None:
            plan = self.fault_plan.cluster
        elif isinstance(plan, FaultPlan):
            plan = plan.cluster
        chosen = tuple(stores) if stores is not None else self.stores
        rows: List[EvaluationRow] = []
        for store_name in chosen:
            result = run_cluster(
                trace,
                partitions=partitions,
                replicas=replicas,
                ack=ack,
                store=store_name,
                store_config=self.store_configs.get(store_name),
                chaos=plan,
                retry_policy=self._fresh_policy(retry_policy),
                service_rate=self.service_rate,
                batch_size=batch_size,
                pipeline_depth=pipeline_depth,
            )
            row = EvaluationRow.from_cluster(workload_name, result)
            row.batch_size = batch_size or 1
            row.pipeline_depth = pipeline_depth or 1
            rows.append(row)
        self._record_rows(rows, None)
        return rows

    def evaluate_integrity(
        self,
        workload_name: str,
        trace: AccessTrace,
        disk_plan: DiskFaultPlan,
        stores: Optional[Sequence[str]] = None,
        setup: Optional[Callable[[StoreConnector], None]] = None,
    ) -> List[EvaluationRow]:
        """Replay, damage the on-disk state, scrub, and report.

        Each store replays the trace, flushes, has the seeded
        ``disk_plan`` applied to its storage backend (the identical
        blob-name-keyed damage function for every store), and then
        scrubs.  Rows rank stores on how much injected damage they
        detect, repair, or lose -- the integrity axis next to the
        throughput axis of :meth:`evaluate`.
        """
        chosen = tuple(stores) if stores is not None else self.stores
        rows: List[EvaluationRow] = []
        for store_name in chosen:
            connector = self._connector(store_name)
            if setup is not None:
                setup(connector)
            replayer = TraceReplayer(connector, service_rate=self.service_rate)
            result = replayer.replay(trace)
            connector.flush()
            backend = connector.storage_backend()
            if backend is not None:
                disk_plan.apply(backend)
            report = connector.scrub()
            row = EvaluationRow.from_result(workload_name, result)
            row.corruptions_detected = report.corruptions_detected
            row.corruptions_repaired = report.corruptions_repaired
            row.corruptions_unrecoverable = report.unrecoverable
            row.scrub_ms = report.scrub_ms
            rows.append(row)
            connector.close()
        self._record_rows(rows, None)
        return rows

    def evaluate_sharded(
        self,
        store_name: str,
        trace: AccessTrace,
        num_workers: int = 4,
        share_store: bool = False,
        fault_plan: Optional[FaultPlan] = None,
        retry_policy: Optional[RetryPolicy] = None,
        batch_size: Optional[int] = None,
        pipeline_depth: Optional[int] = None,
        processes: bool = False,
        storage_root: Optional[str] = None,
    ) -> ShardedReplayResult:
        """Hash-partitioned parallel replay (the scale-out mode).

        With ``share_store=False`` (default) every worker drives its
        own store instance over its key partition -- the sharded
        deployment of a keyed streaming operator.  With
        ``share_store=True`` all workers hit one store instance behind
        a lock (the section 6.4 co-location setup, but with Gadget's
        one-writer-per-key guarantee enforced by the partitioning).

        ``processes=True`` routes through
        :class:`~repro.core.mp_replay.ProcessShardedReplayer`: same
        partitioning and per-shard fault derivation, but each worker
        is a separate OS process attached to the trace via shared
        memory -- the mode that scales past the GIL on multi-core
        hosts.  ``storage_root`` optionally gives the worker stores
        partitioned on-disk directories (``<root>/shard-<i>``);
        ``share_store`` is thread-only and rejected here.
        """
        plan = fault_plan if fault_plan is not None else self.fault_plan
        policy = self._fresh_policy(retry_policy)
        if processes:
            if share_store:
                raise ValueError(
                    "share_store requires threads; processes cannot "
                    "share one in-process store instance"
                )
            if pipeline_depth is not None and pipeline_depth > 1:
                raise ValueError(
                    "pipeline_depth requires threads; process workers "
                    "replay synchronously"
                )
            from .mp_replay import ConnectorSpec, ProcessShardedReplayer

            spec = ConnectorSpec.for_store(
                store_name,
                storage_root=storage_root,
                **self.store_configs.get(store_name, {}),
            )
            replayer = ProcessShardedReplayer(
                spec,
                num_workers=num_workers,
                service_rate=self.service_rate,
                fault_plan=plan,
                retry_policy=policy,
                batch_size=batch_size,
            )
            return replayer.replay(trace)
        if share_store:
            shared = self._connector(store_name)
            replayer = ShardedReplayer(
                LockedConnector(shared),  # type: ignore[arg-type]
                num_workers=num_workers,
                service_rate=self.service_rate,
                fault_plan=plan,
                retry_policy=policy,
                batch_size=batch_size,
                pipeline_depth=pipeline_depth,
            )
            try:
                return replayer.replay(trace)
            finally:
                shared.close()
        replayer = ShardedReplayer(
            lambda: self._connector(store_name),
            num_workers=num_workers,
            service_rate=self.service_rate,
            fault_plan=plan,
            retry_policy=policy,
            batch_size=batch_size,
            pipeline_depth=pipeline_depth,
        )
        try:
            return replayer.replay(trace)
        finally:
            replayer.close()
