"""Gadget's event generator (paper section 5.1).

Generates event streams from a :class:`~repro.core.config.SourceConfig`:
timestamps follow the configured arrival process, keys follow any of
the built-in distributions or a user-provided ECDF, and a configurable
fraction of events is emitted out of order within an allowed lateness
period.  An :class:`InputReplayer` feeds existing traces (such as the
synthetic Borg/Taxi/Azure streams) through the same interface.
"""

from __future__ import annotations

import bisect
import random
from typing import Iterator, List, Sequence, Tuple

from ..events import Event
from ..ycsb.distributions import make_generator
from .config import KeyConfig, SourceConfig, ValueConfig


class _ECDFSampler:
    """Inverse-CDF sampling from user-supplied (probability, index) steps."""

    def __init__(self, points: Sequence, rng: random.Random) -> None:
        if not points:
            raise ValueError("ECDF needs at least one point")
        self._probs = [p for p, _ in points]
        self._indices = [i for _, i in points]
        if any(b < a for a, b in zip(self._probs, self._probs[1:])):
            raise ValueError("ECDF probabilities must be non-decreasing")
        if abs(self._probs[-1] - 1.0) > 1e-9:
            raise ValueError("ECDF must end at cumulative probability 1.0")
        self._rng = rng

    def next_index(self) -> int:
        u = self._rng.random()
        pos = bisect.bisect_left(self._probs, u)
        pos = min(pos, len(self._indices) - 1)
        return self._indices[pos]


class KeySampler:
    def __init__(self, config: KeyConfig, rng: random.Random) -> None:
        self.config = config
        if config.distribution == "ecdf":
            self._generator = _ECDFSampler(config.ecdf_points or (), rng)
        else:
            self._generator = make_generator(
                config.distribution, config.num_keys, rng
            )

    def next_key(self) -> bytes:
        index = self._generator.next_index()
        raw = f"key-{index:010d}"
        return raw.encode().ljust(self.config.key_size, b"_")


class ValueSampler:
    def __init__(self, config: ValueConfig, rng: random.Random) -> None:
        self.config = config
        self._rng = rng
        if config.distribution not in ("constant", "uniform"):
            raise ValueError(f"unknown value distribution: {config.distribution!r}")

    def next_size(self) -> int:
        if self.config.distribution == "constant":
            return self.config.size
        return self._rng.randint(self.config.min_size, self.config.max_size)


class EventGenerator:
    """Synthesizes one source's event stream."""

    def __init__(self, config: SourceConfig) -> None:
        self.config = config
        self._rng = random.Random(config.seed)
        self._keys = KeySampler(config.keys, self._rng)
        self._values = ValueSampler(config.values, self._rng)

    def _next_gap(self) -> int:
        arrivals = self.config.arrivals
        if arrivals.process == "poisson":
            return max(1, int(self._rng.expovariate(1.0 / arrivals.mean_interarrival_ms)))
        if arrivals.process == "constant":
            return max(1, int(arrivals.mean_interarrival_ms))
        raise ValueError(f"unknown arrival process: {arrivals.process!r}")

    def generate(self) -> List[Event]:
        """Generate the stream in *delivery* order.

        Out-of-order events keep their original event time but are
        positioned later in the stream, within the allowed lateness.
        """
        config = self.config
        now = 0
        ordered: List[Event] = []
        for _ in range(config.num_events):
            now += self._next_gap()
            ordered.append(
                Event(self._keys.next_key(), now, self._values.next_size())
            )
        if config.out_of_order_fraction <= 0 or config.max_lateness_ms <= 0:
            return ordered
        positioned = []
        for order, event in enumerate(ordered):
            delay = 0
            if self._rng.random() < config.out_of_order_fraction:
                delay = self._rng.randint(1, config.max_lateness_ms)
            positioned.append((event.timestamp + delay, order, event))
        positioned.sort(key=lambda item: (item[0], item[1]))
        return [event for _, _, event in positioned]


class InputReplayer:
    """Feeds an existing event trace as a Gadget source (Figure 8)."""

    def __init__(self, events: Sequence[Event]) -> None:
        self.events = list(events)

    def generate(self) -> List[Event]:
        return self.events


def ecdf_from_events(events: Sequence[Event]) -> List[Tuple[float, int]]:
    """Build ECDF points from an existing stream's key popularity.

    The paper's event generator "can also work with empirical
    cumulative distribution functions (ECDFs) provided by the user".
    This helper derives one from a measured stream: keys are ranked by
    access frequency (rank 0 = hottest) and the ECDF maps cumulative
    probability to rank, so a synthetic source reproduces the measured
    popularity profile with fresh keys.
    """
    if not events:
        raise ValueError("cannot build an ECDF from an empty stream")
    counts: dict = {}
    for event in events:
        counts[event.key] = counts.get(event.key, 0) + 1
    ranked = sorted(counts.values(), reverse=True)
    total = len(events)
    points: List[Tuple[float, int]] = []
    cumulative = 0
    for rank, count in enumerate(ranked):
        cumulative += count
        points.append((cumulative / total, rank))
    # Guard against floating-point undershoot at the end.
    points[-1] = (1.0, points[-1][1])
    return points


def as_source(source) -> "InputReplayer | EventGenerator":
    """Accept a SourceConfig, an event list, or a ready generator."""
    if isinstance(source, SourceConfig):
        return EventGenerator(source)
    if isinstance(source, (EventGenerator, InputReplayer)):
        return source
    if isinstance(source, (list, tuple)):
        return InputReplayer(source)
    raise TypeError(f"cannot use {type(source).__name__} as a Gadget source")
