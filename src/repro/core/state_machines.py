"""Operator state machines (paper section 5.3, Figure 9).

Gadget models operator logic as finite state machines, one per state
key.  Each machine emits KV-store requests when the driver runs it for
an event, and final requests when the driver terminates it on
expiration.  Machines never hold operator values -- only the metadata
needed to generate accurate accesses (element counts, expiry times) --
which keeps Gadget's memory footprint low.
"""

from __future__ import annotations

from typing import Optional

from ..trace import AccessTrace, OpType


class MachineContext:
    """Emission interface handed to machines by the driver.

    Requests are appended to the workload generator's FIFO queue; the
    request type and key come from the machine, the value size from the
    configured value distribution (or an explicit override), and the
    timestamp from the event being processed.
    """

    def __init__(self, workload: AccessTrace, value_size: int = 10) -> None:
        self.workload = workload
        self.default_value_size = value_size
        self.current_time = 0

    def emit(
        self, op: OpType, state_key: bytes, value_size: Optional[int] = None
    ) -> None:
        if value_size is None:
            value_size = (
                self.default_value_size
                if op in (OpType.PUT, OpType.MERGE)
                else 0
            )
        self.workload.record(op, state_key, value_size, self.current_time)


class StateMachine:
    """One per state key; lifecycle is run*...terminate."""

    __slots__ = ("state_key", "elements", "done")

    def __init__(self, state_key: bytes) -> None:
        self.state_key = state_key
        self.elements = 0  # metadata only: how many updates it absorbed
        self.done = False

    def run(self, ctx: MachineContext, event) -> None:
        raise NotImplementedError

    def terminate(self, ctx: MachineContext) -> None:
        self.done = True


class IncrementalWindowMachine(StateMachine):
    """Figure 9's machine: get-put per event, final get + delete.

    State transitions: GetState -> PutState on every event; the trigger
    moves GetState -> DeleteState (the final get retrieves the window
    aggregate before cleanup).
    """

    __slots__ = ()

    def run(self, ctx: MachineContext, event) -> None:
        ctx.emit(OpType.GET, self.state_key)
        ctx.emit(OpType.PUT, self.state_key, event.value_size)
        self.elements += 1

    def terminate(self, ctx: MachineContext) -> None:
        ctx.emit(OpType.GET, self.state_key)  # FGet
        ctx.emit(OpType.DELETE, self.state_key)
        self.done = True


class HolisticWindowMachine(StateMachine):
    """Lazy merge per event; final get + delete on trigger."""

    __slots__ = ()

    def run(self, ctx: MachineContext, event) -> None:
        ctx.emit(OpType.MERGE, self.state_key, event.value_size)
        self.elements += 1

    def terminate(self, ctx: MachineContext) -> None:
        ctx.emit(OpType.GET, self.state_key)
        ctx.emit(OpType.DELETE, self.state_key)
        self.done = True


class AggregationMachine(StateMachine):
    """Rolling aggregate: get-put per event, never terminates."""

    __slots__ = ()

    def run(self, ctx: MachineContext, event) -> None:
        ctx.emit(OpType.GET, self.state_key)
        ctx.emit(OpType.PUT, self.state_key, event.value_size)
        self.elements += 1


class BufferMachine(StateMachine):
    """Join-side buffer: append via get-put, silent delete on expiry.

    Used by the interval join, whose buckets are read by probes (the
    operator model emits those) and removed without a final get.
    """

    __slots__ = ()

    def run(self, ctx: MachineContext, event) -> None:
        ctx.emit(OpType.GET, self.state_key)
        ctx.emit(OpType.PUT, self.state_key, event.value_size)
        self.elements += 1

    def terminate(self, ctx: MachineContext) -> None:
        ctx.emit(OpType.DELETE, self.state_key)
        self.done = True


class MergeBufferMachine(StateMachine):
    """Join-side buffer built with lazy merges (window join sides)."""

    __slots__ = ()

    def run(self, ctx: MachineContext, event) -> None:
        ctx.emit(OpType.MERGE, self.state_key, event.value_size)
        self.elements += 1

    def terminate(self, ctx: MachineContext) -> None:
        ctx.emit(OpType.GET, self.state_key)
        ctx.emit(OpType.DELETE, self.state_key)
        self.done = True
