"""The Gadget facade: configure, generate, measure.

Ties the four architecture components of Figure 8 together:

* event generator(s) (or input replayers for existing streams)
* the driver simulating operator internals
* the workload generator producing the state access stream
* the performance evaluator issuing requests and measuring

``offline`` mode materializes the access trace for later replay;
``online`` mode generates and immediately issues requests to a store.
"""

from __future__ import annotations

from typing import Optional, Sequence, Union

from ..kvstores.connectors import StoreConnector
from ..trace import AccessTrace
from .config import GadgetConfig, SourceConfig
from .driver import Driver, OperatorModel
from .replayer import ReplayResult, TraceReplayer
from .workloads import make_workload


class Gadget:
    """One benchmark-harness instance for one operator workload."""

    def __init__(
        self,
        workload: Union[str, OperatorModel],
        sources: Sequence,
        config: Optional[GadgetConfig] = None,
    ) -> None:
        if isinstance(workload, str):
            self.model = make_workload(workload)
            self.workload_name = workload
        else:
            self.model = workload
            self.workload_name = type(workload).__name__
        self.config = config or GadgetConfig()
        self.sources = list(sources)
        self._driver: Optional[Driver] = None

    # ------------------------------------------------------------------

    def generate(self) -> AccessTrace:
        """Offline mode: produce the state access stream."""
        self._driver = Driver(self.model, self.sources, self.config)
        return self._driver.run()

    def run_online(
        self,
        connector: StoreConnector,
        service_rate: Optional[float] = None,
    ) -> ReplayResult:
        """Online mode: generate and issue requests on the fly.

        The driver produces the access stream and the replayer issues
        it immediately, collecting latency/throughput measurements.
        """
        trace = self.generate()
        replayer = TraceReplayer(connector, service_rate=service_rate)
        return replayer.replay(trace)

    # ------------------------------------------------------------------

    @property
    def driver(self) -> Driver:
        if self._driver is None:
            raise RuntimeError("run generate() or run_online() first")
        return self._driver

    def save_trace(self, path: str) -> AccessTrace:
        """Generate and persist the trace (offline-mode file output)."""
        trace = self.generate()
        trace.save(path)
        return trace


def generate_workload_trace(
    workload: Union[str, OperatorModel],
    sources: Sequence,
    config: Optional[GadgetConfig] = None,
) -> AccessTrace:
    """One-shot helper: build a Gadget and produce its access trace."""
    return Gadget(workload, sources, config).generate()
