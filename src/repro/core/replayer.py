"""Trace replayer and performance measurement (paper section 5.5).

The replayer sends a state access stream's requests to a store
connector, measuring per-operation latency and total throughput.  It
replays Gadget traces, engine traces, and YCSB traces alike, and can
throttle to a target ``service_rate``.
"""

from __future__ import annotations

import gc
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..kvstores.connectors import StoreConnector
from ..trace import AccessTrace, OpType


@dataclass
class ReplayResult:
    """Measurements from one replay run."""

    store: str
    operations: int
    elapsed_s: float
    #: latencies in nanoseconds, per op type (exact mode)
    latencies_ns: Dict[OpType, List[int]] = field(default_factory=dict)
    #: bounded-memory histograms per op type (histogram mode)
    histograms: Dict[OpType, "LatencyHistogram"] = field(default_factory=dict)

    @property
    def throughput_ops(self) -> float:
        return self.operations / self.elapsed_s if self.elapsed_s > 0 else 0.0

    def all_latencies(self) -> List[int]:
        merged: List[int] = []
        for values in self.latencies_ns.values():
            merged.extend(values)
        return merged

    def _merged_histogram(self) -> "LatencyHistogram":
        from .histogram import LatencyHistogram

        merged = LatencyHistogram()
        for histogram in self.histograms.values():
            merged.merge(histogram)
        return merged

    def latency_percentile(self, percentile: float, op: Optional[OpType] = None) -> float:
        """Latency percentile in microseconds."""
        if self.histograms:
            if op is not None:
                histogram = self.histograms.get(op)
                return histogram.percentile(percentile) / 1000.0 if histogram else 0.0
            return self._merged_histogram().percentile(percentile) / 1000.0
        values = self.latencies_ns.get(op, []) if op else self.all_latencies()
        if not values:
            return 0.0
        ordered = sorted(values)
        rank = min(
            len(ordered) - 1,
            max(0, int(round(percentile / 100.0 * (len(ordered) - 1)))),
        )
        return ordered[rank] / 1000.0

    def summary(self) -> Dict[str, float]:
        return {
            "throughput_kops": self.throughput_ops / 1000.0,
            "p50_us": self.latency_percentile(50.0),
            "p99_us": self.latency_percentile(99.0),
            "p99.9_us": self.latency_percentile(99.9),
        }


_VALUE_CACHE: Dict[int, bytes] = {}


def synthesize_value(size: int) -> bytes:
    """Deterministic payload of ``size`` bytes (cached per size)."""
    value = _VALUE_CACHE.get(size)
    if value is None:
        value = bytes((i * 131 + 17) & 0xFF for i in range(size))
        _VALUE_CACHE[size] = value
    return value


class TraceReplayer:
    """Replays an access trace against a store connector."""

    def __init__(
        self,
        connector: StoreConnector,
        service_rate: Optional[float] = None,
        measure_latency: bool = True,
        disable_gc: bool = True,
        use_histograms: bool = False,
    ) -> None:
        self.connector = connector
        self.service_rate = service_rate
        self.measure_latency = measure_latency
        #: record latencies into O(1)-memory histograms instead of
        #: per-sample lists -- for multi-million-op replays
        self.use_histograms = use_histograms
        #: CPython's cyclic GC pauses otherwise dominate tail latency
        #: identically for every store; disabled during replay by
        #: default (reference counting still reclaims everything the
        #: stores allocate).
        self.disable_gc = disable_gc

    def replay(self, trace: AccessTrace) -> ReplayResult:
        gc_was_enabled = gc.isenabled()
        if self.disable_gc and gc_was_enabled:
            gc.collect()
            gc.disable()
        try:
            return self._replay(trace)
        finally:
            if self.disable_gc and gc_was_enabled:
                gc.enable()

    def _replay(self, trace: AccessTrace) -> ReplayResult:
        from .histogram import LatencyHistogram

        connector = self.connector
        latencies: Dict[OpType, List[int]] = {op: [] for op in OpType}
        histograms: Dict[OpType, LatencyHistogram] = (
            {op: LatencyHistogram() for op in OpType}
            if self.use_histograms
            else {}
        )
        interval = 1.0 / self.service_rate if self.service_rate else 0.0
        next_dispatch = time.perf_counter()
        started = time.perf_counter()
        timer = time.perf_counter_ns
        measure = self.measure_latency
        for access in trace:
            if interval:
                now = time.perf_counter()
                while now < next_dispatch:
                    now = time.perf_counter()
                next_dispatch += interval
            op = access.op
            if measure:
                begin = timer()
            if op is OpType.GET:
                connector.get(access.key)
            elif op is OpType.PUT:
                connector.put(access.key, synthesize_value(access.value_size))
            elif op is OpType.MERGE:
                connector.merge(access.key, synthesize_value(access.value_size))
            else:
                connector.delete(access.key)
            if measure:
                elapsed_ns = timer() - begin
                # Flushes/compactions/write-backs run on background
                # threads in the real stores; exclude their inline cost
                # from the client-observed latency (throughput still
                # includes it).
                elapsed_ns -= connector.take_background_ns()
                if histograms:
                    histograms[op].record(max(0, elapsed_ns))
                else:
                    latencies[op].append(max(0, elapsed_ns))
        elapsed = time.perf_counter() - started
        return ReplayResult(
            store=connector.name,
            operations=len(trace),
            elapsed_s=elapsed,
            latencies_ns=latencies,
            histograms=histograms,
        )
