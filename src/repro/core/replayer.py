"""Trace replayer and performance measurement (paper section 5.5).

The replayer sends a state access stream's requests to a store
connector, measuring per-operation latency and total throughput.  It
replays Gadget traces, engine traces, and YCSB traces alike, and can
throttle to a target ``service_rate``.

Two replay engines live here:

* :class:`TraceReplayer` -- single-threaded; consumes the trace's raw
  columns (:meth:`~repro.trace.AccessTrace.iter_raw`) through a
  dispatch table indexed by opcode, so the hot loop allocates no
  :class:`~repro.trace.StateAccess` objects and performs no enum
  comparisons.
* :class:`ShardedReplayer` -- hash-partitions a trace by key across N
  worker threads, each driving its own store connector (or all sharing
  one, the paper's section 6.4 concurrent-operator deployment), and
  merges the per-shard latency histograms into aggregate results.
"""

from __future__ import annotations

import dataclasses
import gc
import threading
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Union
from zlib import crc32

from ..kvstores.connectors import StoreConnector
from ..obs import tracing as _tracing
from ..trace import AccessTrace, OpType, OPS_BY_CODE


@dataclass
class ReplayResult:
    """Measurements from one replay run."""

    store: str
    operations: int
    elapsed_s: float
    #: latencies in nanoseconds, per op type (exact mode)
    latencies_ns: Dict[OpType, List[int]] = field(default_factory=dict)
    #: bounded-memory histograms per op type (histogram mode)
    histograms: Dict[OpType, "LatencyHistogram"] = field(default_factory=dict)
    # -- robustness accounting (populated by faulted replays) --------------
    #: operations that still failed after retries were exhausted
    failed_ops: int = 0
    #: retry attempts performed by the retry policy
    retries: int = 0
    #: faults the injector actually fired (errors + spikes + stalls)
    injected_faults: int = 0
    #: total injected latency, in seconds
    injected_delay_s: float = 0.0
    #: op index where an injected crash stopped the replay (None: ran out)
    crashed_at: Optional[int] = None

    @property
    def throughput_ops(self) -> float:
        return self.operations / self.elapsed_s if self.elapsed_s > 0 else 0.0

    def all_latencies(self) -> List[int]:
        merged: List[int] = []
        for values in self.latencies_ns.values():
            merged.extend(values)
        return merged

    def _merged_histogram(self) -> "LatencyHistogram":
        from .histogram import LatencyHistogram

        merged = LatencyHistogram()
        for histogram in self.histograms.values():
            merged.merge(histogram)
        return merged

    def latency_percentile(self, percentile: float, op: Optional[OpType] = None) -> float:
        """Latency percentile in microseconds."""
        if self.histograms:
            if op is not None:
                histogram = self.histograms.get(op)
                return histogram.percentile(percentile) / 1000.0 if histogram else 0.0
            return self._merged_histogram().percentile(percentile) / 1000.0
        values = self.latencies_ns.get(op, []) if op else self.all_latencies()
        if not values:
            return 0.0
        ordered = sorted(values)
        rank = min(
            len(ordered) - 1,
            max(0, int(round(percentile / 100.0 * (len(ordered) - 1)))),
        )
        return ordered[rank] / 1000.0

    def summary(self) -> Dict[str, float]:
        return {
            "throughput_kops": self.throughput_ops / 1000.0,
            "p50_us": self.latency_percentile(50.0),
            "p99_us": self.latency_percentile(99.0),
            "p99.9_us": self.latency_percentile(99.9),
        }


class ReplayStopped(Exception):
    """A cooperative stop was requested mid-replay.

    Sharded replays set a shared stop flag when any worker fails; the
    surviving workers' replay loops observe it through ``stop_check``
    and unwind promptly with this exception instead of replaying their
    full shard first.  It signals coordination, not failure -- the
    coordinator swallows it and reports the original worker error.
    """


_VALUE_CACHE: Dict[int, bytes] = {}
#: cache bounds: a trace with many distinct value sizes must not grow
#: the cache without limit.  Oldest-inserted entries are evicted first
#: (dict insertion order); values above the byte budget are never
#: cached at all.
_VALUE_CACHE_MAX_ENTRIES = 1024
_VALUE_CACHE_MAX_BYTES = 32 * 1024 * 1024
_value_cache_bytes = 0


def synthesize_value(size: int) -> bytes:
    """Deterministic payload of ``size`` bytes (cached per size)."""
    global _value_cache_bytes
    value = _VALUE_CACHE.get(size)
    if value is None:
        value = bytes((i * 131 + 17) & 0xFF for i in range(size))
        if size <= _VALUE_CACHE_MAX_BYTES:
            cache = _VALUE_CACHE
            while cache and (
                len(cache) >= _VALUE_CACHE_MAX_ENTRIES
                or _value_cache_bytes + size > _VALUE_CACHE_MAX_BYTES
            ):
                _value_cache_bytes -= len(cache.pop(next(iter(cache))))
            cache[size] = value
            _value_cache_bytes += size
    return value


#: waits shorter than this are spun; longer waits sleep most of it away
_SPIN_THRESHOLD_S = 0.001
#: sleep this much less than the wait to absorb scheduler overshoot
_SLEEP_SLACK_S = 0.0005


def _throttle(next_dispatch: float) -> None:
    """Wait until ``next_dispatch`` without burning a core.

    ``time.sleep`` for all but the last half-millisecond (the OS may
    overshoot by a scheduling quantum), then spin the final stretch for
    precise dispatch times.
    """
    wait = next_dispatch - time.perf_counter()
    if wait > _SPIN_THRESHOLD_S:
        if _tracing.active() is not None:
            with _tracing.span("replay.throttle", wait_ms=round(wait * 1000.0, 3)):
                time.sleep(wait - _SLEEP_SLACK_S)
        else:
            time.sleep(wait - _SLEEP_SLACK_S)
    while time.perf_counter() < next_dispatch:
        pass


def _tee(sink, record):
    """Wrap each latency sink so samples also reach the progress
    recorder (used only when a telemetry session is active)."""

    def wrap(base):
        def call(value, base=base, record=record):
            base(value)
            record(value)

        return call

    return tuple(wrap(base) for base in sink)


def _dispatch_table(connector: StoreConnector):
    """Opcode-indexed operations with a uniform ``(key, size)`` shape."""
    get = connector.get
    put = connector.put
    merge = connector.merge
    delete = connector.delete
    synth = synthesize_value
    return (
        lambda key, size: get(key),
        lambda key, size: put(key, synth(size)),
        lambda key, size: merge(key, synth(size)),
        lambda key, size: delete(key),
    )


class TraceReplayer:
    """Replays an access trace against a store connector."""

    def __init__(
        self,
        connector: StoreConnector,
        service_rate: Optional[float] = None,
        measure_latency: bool = True,
        disable_gc: bool = True,
        use_histograms: bool = False,
        fault_plan=None,
        retry_policy=None,
        batch_size: Optional[int] = None,
        pipeline_depth: Optional[int] = None,
        telemetry=None,
        stop_check: Optional[Callable[[], bool]] = None,
    ) -> None:
        if batch_size is not None and batch_size < 1:
            raise ValueError("batch_size must be >= 1")
        if pipeline_depth is not None and pipeline_depth < 1:
            raise ValueError("pipeline_depth must be >= 1")
        if (
            batch_size is not None
            and batch_size > 1
            and pipeline_depth is not None
            and pipeline_depth > 1
        ):
            raise ValueError(
                "batch_size and pipeline_depth are alternative round-trip "
                "amortizations; pick one"
            )
        self.connector = connector
        self.service_rate = service_rate
        self.measure_latency = measure_latency
        #: micro-batch size: runs of consecutive same-kind ops (reads
        #: vs. writes) are grouped up to this many and dispatched via
        #: ``multi_get``/``apply_batch``.  ``None``/1 replays per-op.
        self.batch_size = batch_size
        #: bounded in-flight window: ops are submitted into a
        #: :meth:`~repro.kvstores.connectors.StoreConnector.pipeline`
        #: session that keeps up to this many un-acked, with latency
        #: stamped arrival-to-completion (queueing included).
        #: ``None``/1 replays synchronously.
        self.pipeline_depth = pipeline_depth
        #: record latencies into O(1)-memory histograms instead of
        #: per-sample lists -- for multi-million-op replays
        self.use_histograms = use_histograms
        #: CPython's cyclic GC pauses otherwise dominate tail latency
        #: identically for every store; disabled during replay by
        #: default (reference counting still reclaims everything the
        #: stores allocate).
        self.disable_gc = disable_gc
        #: :class:`~repro.faults.FaultPlan` applied to every operation
        #: (a fresh schedule per replay); routes through the guarded
        #: loop, leaving the happy-path fast loop untouched.
        self.fault_plan = fault_plan
        #: :class:`~repro.faults.RetryPolicy` absorbing transient
        #: (injected or remote) failures, with retries counted in the
        #: result.
        self.retry_policy = retry_policy
        #: optional :class:`~repro.obs.ReplayTelemetry`; when set,
        #: :meth:`replay` records the run (trace spans, metrics
        #: samples, live progress).  ``None`` replays the pre-existing
        #: fast paths untouched.
        self.telemetry = telemetry
        #: cooperative cancellation: a zero-argument callable polled
        #: from every replay loop; returning true raises
        #: :class:`ReplayStopped`.  Sharded replays pass the shared
        #: stop flag's ``is_set`` here so sibling shards stop promptly
        #: when one worker fails.
        self.stop_check = stop_check
        #: live :class:`~repro.obs.metrics.ReplayProgress` during a
        #: telemetry session (set by :meth:`replay`, or externally by
        #: :class:`ShardedReplayer` sharing one progress across shards)
        self._progress = None

    def replay(self, trace: AccessTrace) -> ReplayResult:
        telemetry = self.telemetry
        if telemetry is None:
            return self._run(trace)
        with telemetry.session(self.connector, len(trace)) as progress:
            self._progress = progress
            try:
                return self._run(trace)
            finally:
                self._progress = None

    def _run(self, trace: AccessTrace) -> ReplayResult:
        gc_was_enabled = gc.isenabled()
        if self.disable_gc and gc_was_enabled:
            gc.collect()
            gc.disable()
        try:
            batched = self.batch_size is not None and self.batch_size > 1
            pipelined = (
                self.pipeline_depth is not None and self.pipeline_depth > 1
            )
            if self.fault_plan is not None or self.retry_policy is not None:
                if batched:
                    return self._replay_batched_guarded(trace)
                if pipelined:
                    return self._replay_pipelined_guarded(trace)
                return self._replay_guarded(trace)
            if batched:
                return self._replay_batched(trace)
            if pipelined:
                return self._replay_pipelined(trace)
            return self._replay(trace)
        finally:
            if self.disable_gc and gc_was_enabled:
                gc.enable()

    def _replay(self, trace: AccessTrace) -> ReplayResult:
        from .histogram import LatencyHistogram

        connector = self.connector
        dispatch = _dispatch_table(connector)
        take_background = connector.take_background_ns
        latencies: Dict[OpType, List[int]] = {op: [] for op in OpType}
        histograms: Dict[OpType, LatencyHistogram] = (
            {op: LatencyHistogram() for op in OpType}
            if self.use_histograms
            else {}
        )
        # opcode-indexed sinks mirroring the dispatch table
        if self.use_histograms:
            sink = tuple(histograms[op].record for op in OPS_BY_CODE)
        else:
            sink = tuple(latencies[op].append for op in OPS_BY_CODE)
        interval = 1.0 / self.service_rate if self.service_rate else 0.0
        measure = self.measure_latency
        progress = self._progress
        if progress is not None and measure:
            # tee client-observed latencies into the sampler's shared
            # progress; the sinks already see every loop variant's
            # honest per-op latency, so the telemetry hook lives here
            sink = _tee(sink, progress.record)
        count = progress.count if progress is not None and not measure else None
        stop = self.stop_check
        timer = time.perf_counter_ns
        # The inlined form of ``trace.iter_raw()``: iterate the raw
        # columns directly (no generator frame per op) and branch on
        # the small-int opcode with hoisted bound methods -- the
        # open-coded specialization of the dispatch table above, worth
        # ~30% on in-memory stores where per-op overhead dominates.
        get = connector.get
        put = connector.put
        merge = connector.merge
        delete = connector.delete
        synth = synthesize_value
        keys = trace.unique_keys()
        columns = zip(trace.op_codes, trace.key_ids, trace.value_sizes)
        started = time.perf_counter()
        if interval:
            next_dispatch = started
            for code, kid, size in columns:
                if stop is not None and stop():
                    raise ReplayStopped
                if time.perf_counter() < next_dispatch:
                    _throttle(next_dispatch)
                next_dispatch += interval
                key = keys[kid]
                if measure:
                    begin = timer()
                    dispatch[code](key, size)
                    elapsed_ns = timer() - begin - take_background()
                    sink[code](elapsed_ns if elapsed_ns > 0 else 0)
                else:
                    dispatch[code](key, size)
                    if count is not None:
                        count()
        elif measure:
            for code, kid, size in columns:
                if stop is not None and stop():
                    raise ReplayStopped
                key = keys[kid]
                begin = timer()
                if code == 0:
                    get(key)
                elif code == 1:
                    put(key, synth(size))
                elif code == 2:
                    merge(key, synth(size))
                else:
                    delete(key)
                # Flushes/compactions/write-backs run on background
                # threads in the real stores; exclude their inline cost
                # from the client-observed latency (throughput still
                # includes it).  Stores running true background workers
                # report their write-*stall* time through the same
                # channel -- worker busy time is concurrent and never
                # charged here.
                elapsed_ns = timer() - begin - take_background()
                sink[code](elapsed_ns if elapsed_ns > 0 else 0)
        elif count is not None:
            for code, kid, size in columns:
                if stop is not None and stop():
                    raise ReplayStopped
                key = keys[kid]
                if code == 0:
                    get(key)
                elif code == 1:
                    put(key, synth(size))
                elif code == 2:
                    merge(key, synth(size))
                else:
                    delete(key)
                count()
        else:
            for code, kid, size in columns:
                if stop is not None and stop():
                    raise ReplayStopped
                key = keys[kid]
                if code == 0:
                    get(key)
                elif code == 1:
                    put(key, synth(size))
                elif code == 2:
                    merge(key, synth(size))
                else:
                    delete(key)
        elapsed = time.perf_counter() - started
        return ReplayResult(
            store=connector.name,
            operations=len(trace),
            elapsed_s=elapsed,
            latencies_ns=latencies,
            histograms=histograms,
        )

    def _replay_batched(self, trace: AccessTrace) -> ReplayResult:
        """Micro-batched replay: group runs of consecutive same-kind
        ops and dispatch them via ``multi_get``/``apply_batch``.

        Grouping is only done where it is safe: a batch never mixes
        reads with writes (run boundaries preserve read-after-write
        order), and write batches keep trace order, so same-key
        sequences retain per-op semantics.

        Latency accounting stays honest: each member's **arrival** is
        stamped when the op is drawn from the trace (its throttled
        dispatch time under a ``service_rate``), and its latency is
        ``batch completion - arrival`` minus an even share of the
        background work the batch triggered.  Members that wait for the
        batch to fill thus pay their queueing delay -- percentiles are
        measured, not fabricated from a divided mean.
        """
        from .histogram import LatencyHistogram

        connector = self.connector
        multi_get = connector.multi_get
        apply_batch = connector.apply_batch
        take_background = connector.take_background_ns
        batch_size = self.batch_size
        latencies: Dict[OpType, List[int]] = {op: [] for op in OpType}
        histograms: Dict[OpType, LatencyHistogram] = (
            {op: LatencyHistogram() for op in OpType}
            if self.use_histograms
            else {}
        )
        if self.use_histograms:
            sink = tuple(histograms[op].record for op in OPS_BY_CODE)
        else:
            sink = tuple(latencies[op].append for op in OPS_BY_CODE)
        progress = self._progress
        measure = self.measure_latency
        if progress is not None and measure:
            sink = _tee(sink, progress.record)
        interval = 1.0 / self.service_rate if self.service_rate else 0.0
        trace_on = _tracing.active() is not None
        timer = time.perf_counter_ns
        synth = synthesize_value
        keys = trace.unique_keys()
        op_codes = trace.op_codes
        key_ids = trace.key_ids
        value_sizes = trace.value_sizes
        total = len(trace)
        stop = self.stop_check
        started = time.perf_counter()
        next_dispatch = started
        index = 0
        while index < total:
            if stop is not None and stop():
                raise ReplayStopped
            is_read = op_codes[index] == 0
            limit = index + batch_size
            if limit > total:
                limit = total
            batch_keys: List[bytes] = []
            ops: List[tuple] = []
            codes: List[int] = []
            arrivals: List[int] = []
            j = index
            while j < limit:
                code = op_codes[j]
                if (code == 0) != is_read:
                    break
                if interval:
                    if time.perf_counter() < next_dispatch:
                        _throttle(next_dispatch)
                    next_dispatch += interval
                if measure:
                    arrivals.append(timer())
                key = keys[key_ids[j]]
                if is_read:
                    batch_keys.append(key)
                elif code == 3:
                    ops.append((code, key, b""))
                else:
                    ops.append((code, key, synth(value_sizes[j])))
                codes.append(code)
                j += 1
            if is_read:
                if trace_on:
                    with _tracing.span("replay.multi_get", n=len(batch_keys)):
                        multi_get(batch_keys)
                else:
                    multi_get(batch_keys)
            else:
                if trace_on:
                    with _tracing.span("replay.apply_batch", n=len(ops)):
                        apply_batch(ops)
                else:
                    apply_batch(ops)
            if measure:
                completion = timer()
                share = take_background() // (j - index)
                for code, arrival in zip(codes, arrivals):
                    elapsed_ns = completion - arrival - share
                    sink[code](elapsed_ns if elapsed_ns > 0 else 0)
            elif progress is not None:
                progress.count(j - index)
            index = j
        elapsed = time.perf_counter() - started
        return ReplayResult(
            store=connector.name,
            operations=total,
            elapsed_s=elapsed,
            latencies_ns=latencies,
            histograms=histograms,
        )

    def _make_completion_sink(self, sink, count):
        """Completion callback for pipelined replay: latency is
        ``completion - arrival`` (deferred stamping -- the arrival was
        taken at submit, the completion when the reply frame landed, so
        window queueing is measured, not hidden)."""
        if self.measure_latency:
            def on_complete(code, arrival_ns, complete_ns, value):
                elapsed_ns = complete_ns - arrival_ns
                sink[code](elapsed_ns if elapsed_ns > 0 else 0)
            return on_complete
        if count is not None:
            def on_complete(code, arrival_ns, complete_ns, value):
                count()
            return on_complete
        return lambda code, arrival_ns, complete_ns, value: None

    def _replay_pipelined(self, trace: AccessTrace) -> ReplayResult:
        """Pipelined replay: every op is submitted into a bounded
        in-flight window (``pipeline_depth``) instead of blocking on
        its own round trip.

        The connector decides what the window buys: remote/cluster
        sessions coalesce frames into burst ``sendall`` calls and
        correlate replies FIFO, embedded stores degrade to synchronous
        execution.  Latency accounting is deferred: each op carries its
        arrival timestamp into the window and is stamped when its reply
        completes, so percentiles include the queueing an op did inside
        the window -- deeper pipelines honestly trade per-op latency
        for throughput.
        """
        from .histogram import LatencyHistogram

        connector = self.connector
        latencies: Dict[OpType, List[int]] = {op: [] for op in OpType}
        histograms: Dict[OpType, LatencyHistogram] = (
            {op: LatencyHistogram() for op in OpType}
            if self.use_histograms
            else {}
        )
        if self.use_histograms:
            sink = tuple(histograms[op].record for op in OPS_BY_CODE)
        else:
            sink = tuple(latencies[op].append for op in OPS_BY_CODE)
        measure = self.measure_latency
        progress = self._progress
        if progress is not None and measure:
            sink = _tee(sink, progress.record)
        count = progress.count if progress is not None and not measure else None
        session = connector.pipeline(
            self.pipeline_depth, self._make_completion_sink(sink, count)
        )
        submit = session.submit
        interval = 1.0 / self.service_rate if self.service_rate else 0.0
        timer = time.perf_counter_ns
        synth = synthesize_value
        stop = self.stop_check
        keys = trace.unique_keys()
        columns = zip(trace.op_codes, trace.key_ids, trace.value_sizes)
        started = time.perf_counter()
        next_dispatch = started
        for code, kid, size in columns:
            if stop is not None and stop():
                raise ReplayStopped
            if interval:
                if time.perf_counter() < next_dispatch:
                    _throttle(next_dispatch)
                next_dispatch += interval
            key = keys[kid]
            value = b"" if code == 0 or code == 3 else synth(size)
            submit(code, key, value, timer() if measure else 0)
        session.drain()
        elapsed = time.perf_counter() - started
        return ReplayResult(
            store=connector.name,
            operations=len(trace),
            elapsed_s=elapsed,
            latencies_ns=latencies,
            histograms=histograms,
        )

    def _replay_pipelined_guarded(self, trace: AccessTrace) -> ReplayResult:
        """Pipelined replay under a fault plan and/or retry policy.

        Composition is retry(faults(connector)) exactly as in the
        synchronous guarded loop: injected faults fire at submit time
        (one schedule draw per logical op, before the op enters the
        window), so fault timelines line up op-for-op with synchronous
        replay.  An injected crash at op ``k`` stops submission; the
        window is still drained -- the ops before ``k`` were already
        on the wire, the same prefix a synchronous crash leaves
        applied.  Remote transport recovery happens *inside* the
        window (the client's own retry budget re-sends un-acked ops
        after reconnecting), never here.
        """
        from ..faults.errors import InjectedCrash, TransientStoreError
        from ..faults.injector import FaultInjectingConnector
        from ..faults.retry import RetryingConnector
        from .histogram import LatencyHistogram

        target = self.connector
        injector = None
        if self.fault_plan is not None:
            injector = FaultInjectingConnector(target, self.fault_plan)
            target = injector
        retrier = None
        if self.retry_policy is not None:
            retrier = RetryingConnector(target, self.retry_policy)
            target = retrier
        progress = self._progress
        if progress is not None:
            progress.attach_fault_sources(injector, retrier)
        latencies: Dict[OpType, List[int]] = {op: [] for op in OpType}
        histograms: Dict[OpType, LatencyHistogram] = (
            {op: LatencyHistogram() for op in OpType}
            if self.use_histograms
            else {}
        )
        if self.use_histograms:
            sink = tuple(histograms[op].record for op in OPS_BY_CODE)
        else:
            sink = tuple(latencies[op].append for op in OPS_BY_CODE)
        measure = self.measure_latency
        if progress is not None and measure:
            sink = _tee(sink, progress.record)
        count = progress.count if progress is not None and not measure else None
        session = target.pipeline(
            self.pipeline_depth, self._make_completion_sink(sink, count)
        )
        submit = session.submit
        interval = 1.0 / self.service_rate if self.service_rate else 0.0
        timer = time.perf_counter_ns
        synth = synthesize_value
        stop = self.stop_check
        keys = trace.unique_keys()
        columns = zip(trace.op_codes, trace.key_ids, trace.value_sizes)
        operations = len(trace)
        failed_ops = 0
        crashed_at: Optional[int] = None
        started = time.perf_counter()
        next_dispatch = started
        for index, (code, kid, size) in enumerate(columns):
            if stop is not None and stop():
                raise ReplayStopped
            if interval:
                if time.perf_counter() < next_dispatch:
                    _throttle(next_dispatch)
                next_dispatch += interval
            key = keys[kid]
            value = b"" if code == 0 or code == 3 else synth(size)
            try:
                submit(code, key, value, timer() if measure else 0)
            except InjectedCrash:
                crashed_at = index
                operations = index
                break
            except TransientStoreError:
                failed_ops += 1
                if injector is not None:
                    injector.abandon_op()
                continue
        session.drain()
        elapsed = time.perf_counter() - started
        return ReplayResult(
            store=self.connector.name,
            operations=operations,
            elapsed_s=elapsed,
            latencies_ns=latencies,
            histograms=histograms,
            failed_ops=failed_ops,
            retries=retrier.retries if retrier is not None else 0,
            injected_faults=injector.injected.total_faults if injector is not None else 0,
            injected_delay_s=injector.injected.injected_delay_s if injector is not None else 0.0,
            crashed_at=crashed_at,
        )

    def _replay_batched_guarded(self, trace: AccessTrace) -> ReplayResult:
        """Micro-batched replay under a fault plan and/or retry policy.

        Same batching and latency rules as :meth:`_replay_batched`;
        composition is retry(faults(connector)), as in the per-op
        guarded loop.  The fault gate draws one schedule entry per
        batch *member*, so fault timelines line up with per-op replay:
        a transient failure costs exactly its member (abandoned and
        skipped on the in-place batch retry), and an injected crash at
        member ``k`` stops the run having applied exactly the ops
        before ``k``.
        """
        from ..faults.errors import InjectedCrash, TransientStoreError
        from ..faults.injector import FaultInjectingConnector
        from ..faults.retry import RetryingConnector
        from .histogram import LatencyHistogram

        target = self.connector
        injector = None
        if self.fault_plan is not None:
            injector = FaultInjectingConnector(target, self.fault_plan)
            target = injector
        retrier = None
        if self.retry_policy is not None:
            retrier = RetryingConnector(target, self.retry_policy)
            target = retrier
        progress = self._progress
        if progress is not None:
            progress.attach_fault_sources(injector, retrier)
        multi_get = target.multi_get
        apply_batch = target.apply_batch
        take_background = target.take_background_ns
        batch_size = self.batch_size
        latencies: Dict[OpType, List[int]] = {op: [] for op in OpType}
        histograms: Dict[OpType, LatencyHistogram] = (
            {op: LatencyHistogram() for op in OpType}
            if self.use_histograms
            else {}
        )
        if self.use_histograms:
            sink = tuple(histograms[op].record for op in OPS_BY_CODE)
        else:
            sink = tuple(latencies[op].append for op in OPS_BY_CODE)
        measure = self.measure_latency
        if progress is not None and measure:
            sink = _tee(sink, progress.record)
        interval = 1.0 / self.service_rate if self.service_rate else 0.0
        timer = time.perf_counter_ns
        synth = synthesize_value
        keys = trace.unique_keys()
        op_codes = trace.op_codes
        key_ids = trace.key_ids
        value_sizes = trace.value_sizes
        total = len(trace)
        operations = total
        failed_ops = 0
        crashed_at: Optional[int] = None
        stop = self.stop_check
        started = time.perf_counter()
        next_dispatch = started
        index = 0
        while index < total:
            if stop is not None and stop():
                raise ReplayStopped
            is_read = op_codes[index] == 0
            limit = index + batch_size
            if limit > total:
                limit = total
            batch_keys: List[bytes] = []
            ops: List[tuple] = []
            codes: List[int] = []
            arrivals: List[int] = []
            j = index
            while j < limit:
                code = op_codes[j]
                if (code == 0) != is_read:
                    break
                if interval:
                    if time.perf_counter() < next_dispatch:
                        _throttle(next_dispatch)
                    next_dispatch += interval
                if measure:
                    arrivals.append(timer())
                key = keys[key_ids[j]]
                if is_read:
                    batch_keys.append(key)
                elif code == 3:
                    ops.append((code, key, b""))
                else:
                    ops.append((code, key, synth(value_sizes[j])))
                codes.append(code)
                j += 1
            failed_members: set = set()
            while True:
                try:
                    if is_read:
                        with _tracing.span("replay.multi_get", n=len(batch_keys)):
                            multi_get(batch_keys)
                    else:
                        with _tracing.span("replay.apply_batch", n=len(ops)):
                            apply_batch(ops)
                    break
                except InjectedCrash as crash:
                    crashed_at = crash.op_index
                    operations = crash.op_index
                    break
                except TransientStoreError:
                    failed_ops += 1
                    if injector is None:
                        raise
                    member = injector.abandon_op()
                    if member is not None:
                        failed_members.add(member)
                    # Re-call the same batch: already-executed members
                    # are not re-run, the abandoned member is skipped.
                    continue
            if crashed_at is not None:
                break
            if measure:
                completion = timer()
                share = take_background() // (j - index)
                for member, (code, arrival) in enumerate(zip(codes, arrivals)):
                    if member in failed_members:
                        continue
                    elapsed_ns = completion - arrival - share
                    sink[code](elapsed_ns if elapsed_ns > 0 else 0)
            elif progress is not None:
                progress.count(j - index)
            index = j
        elapsed = time.perf_counter() - started
        return ReplayResult(
            store=self.connector.name,
            operations=operations,
            elapsed_s=elapsed,
            latencies_ns=latencies,
            histograms=histograms,
            failed_ops=failed_ops,
            retries=retrier.retries if retrier is not None else 0,
            injected_faults=injector.injected.total_faults if injector is not None else 0,
            injected_delay_s=injector.injected.injected_delay_s if injector is not None else 0.0,
            crashed_at=crashed_at,
        )

    def _replay_guarded(self, trace: AccessTrace) -> ReplayResult:
        """Fault-aware replay loop (used when a plan or policy is set).

        Composition order is retry(faults(connector)): retries
        re-execute the faulted logical operation without re-rolling
        the schedule.  An :class:`~repro.faults.InjectedCrash` stops
        the replay at its op index (partial result, ``crashed_at``
        set); operations whose retries are exhausted count as
        ``failed_ops`` and the replay moves on.  Non-injected errors
        (e.g. a :class:`~repro.kvstores.remote.RemoteStoreError` after
        reconnect attempts run out) propagate -- a dead store should
        fail the run, not burn the remaining trace on timeouts.
        """
        from ..faults.errors import InjectedCrash, TransientStoreError
        from ..faults.injector import FaultInjectingConnector
        from ..faults.retry import RetryingConnector
        from .histogram import LatencyHistogram

        target = self.connector
        injector = None
        if self.fault_plan is not None:
            injector = FaultInjectingConnector(target, self.fault_plan)
            target = injector
        retrier = None
        if self.retry_policy is not None:
            retrier = RetryingConnector(target, self.retry_policy)
            target = retrier
        progress = self._progress
        if progress is not None:
            progress.attach_fault_sources(injector, retrier)
        dispatch = _dispatch_table(target)
        take_background = target.take_background_ns
        latencies: Dict[OpType, List[int]] = {op: [] for op in OpType}
        histograms: Dict[OpType, LatencyHistogram] = (
            {op: LatencyHistogram() for op in OpType}
            if self.use_histograms
            else {}
        )
        if self.use_histograms:
            sink = tuple(histograms[op].record for op in OPS_BY_CODE)
        else:
            sink = tuple(latencies[op].append for op in OPS_BY_CODE)
        measure = self.measure_latency
        if progress is not None and measure:
            sink = _tee(sink, progress.record)
        interval = 1.0 / self.service_rate if self.service_rate else 0.0
        timer = time.perf_counter_ns
        keys = trace.unique_keys()
        columns = zip(trace.op_codes, trace.key_ids, trace.value_sizes)
        operations = len(trace)
        failed_ops = 0
        crashed_at: Optional[int] = None
        stop = self.stop_check
        started = time.perf_counter()
        next_dispatch = started
        for index, (code, kid, size) in enumerate(columns):
            if stop is not None and stop():
                raise ReplayStopped
            if interval:
                if time.perf_counter() < next_dispatch:
                    _throttle(next_dispatch)
                next_dispatch += interval
            key = keys[kid]
            begin = timer()
            try:
                dispatch[code](key, size)
            except InjectedCrash:
                crashed_at = index
                operations = index
                break
            except TransientStoreError:
                failed_ops += 1
                if injector is not None:
                    injector.abandon_op()
                continue
            if measure:
                elapsed_ns = timer() - begin - take_background()
                sink[code](elapsed_ns if elapsed_ns > 0 else 0)
            elif progress is not None:
                progress.count()
        elapsed = time.perf_counter() - started
        return ReplayResult(
            store=self.connector.name,
            operations=operations,
            elapsed_s=elapsed,
            latencies_ns=latencies,
            histograms=histograms,
            failed_ops=failed_ops,
            retries=retrier.retries if retrier is not None else 0,
            injected_faults=injector.injected.total_faults if injector is not None else 0,
            injected_delay_s=injector.injected.injected_delay_s if injector is not None else 0.0,
            crashed_at=crashed_at,
        )


# ---------------------------------------------------------------------------
# Sharded parallel replay
# ---------------------------------------------------------------------------


def shard_indices(trace: AccessTrace, num_shards: int) -> List[List[int]]:
    """Per-shard op-index buckets for CRC32 key partitioning.

    The single source of truth for shard membership: the thread-based
    :class:`ShardedReplayer` and the process-based
    :class:`~repro.core.mp_replay.ProcessShardedReplayer` both route
    through it (workers recompute their own bucket from the shared
    trace), so the two modes agree op-for-op on every shard.
    """
    if num_shards <= 0:
        raise ValueError("num_shards must be positive")
    if num_shards == 1:
        return [list(range(len(trace)))]
    shard_of_key = [crc32(key) % num_shards for key in trace.unique_keys()]
    buckets: List[List[int]] = [[] for _ in range(num_shards)]
    for index, kid in enumerate(trace.key_ids):
        buckets[shard_of_key[kid]].append(index)
    return buckets


def shard_trace(trace: AccessTrace, num_shards: int) -> List[AccessTrace]:
    """Hash-partition a trace by key into ``num_shards`` sub-traces.

    Deterministic (CRC32 of the key, independent of ``PYTHONHASHSEED``)
    and order-preserving within each shard, so the per-key access order
    the dataflow model guarantees is intact in every partition.
    """
    return [
        trace.select(bucket) for bucket in shard_indices(trace, num_shards)
    ]


def _raise_shard_errors(errors: Sequence[BaseException]) -> None:
    """Raise the first worker error without dropping its siblings.

    Python 3.9 has no ``ExceptionGroup``, so the extra failures ride
    along as a ``shard_errors`` attribute on the raised exception (and
    as ``add_note`` lines where the runtime supports them) -- a
    multi-shard failure stays diagnosable from the one traceback that
    reaches the caller.
    """
    if not errors:
        return
    primary = errors[0]
    siblings = list(errors[1:])
    try:
        primary.shard_errors = siblings
    except AttributeError:
        pass  # exceptions with __slots__ cannot carry the attribute
    add_note = getattr(primary, "add_note", None)
    if add_note is not None:
        for sibling in siblings:
            add_note(
                f"sibling shard also failed: "
                f"{type(sibling).__name__}: {sibling}"
            )
    raise primary


@dataclass
class ShardedReplayResult:
    """Aggregate measurements from a sharded replay."""

    store: str
    shard_results: List[ReplayResult]
    #: wall-clock of the whole fan-out (slowest worker dominates)
    elapsed_s: float

    @property
    def operations(self) -> int:
        return sum(result.operations for result in self.shard_results)

    @property
    def throughput_ops(self) -> float:
        return self.operations / self.elapsed_s if self.elapsed_s > 0 else 0.0

    def merged_result(self) -> ReplayResult:
        """Shard measurements folded into one :class:`ReplayResult`.

        Histograms merge exactly; exact-mode latency lists concatenate.
        Throughput reflects the sharded wall-clock, not the sum of
        per-worker elapsed times.
        """
        from .histogram import LatencyHistogram

        latencies: Dict[OpType, List[int]] = {op: [] for op in OpType}
        histograms: Dict[OpType, LatencyHistogram] = {}
        for result in self.shard_results:
            for op, values in result.latencies_ns.items():
                latencies[op].extend(values)
            for op, histogram in result.histograms.items():
                merged = histograms.get(op)
                if merged is None:
                    merged = LatencyHistogram(
                        histogram.subbuckets, histogram.max_exponent
                    )
                    histograms[op] = merged
                merged.merge(histogram)
        return ReplayResult(
            store=self.store,
            operations=self.operations,
            elapsed_s=self.elapsed_s,
            latencies_ns=latencies,
            histograms=histograms,
            failed_ops=sum(r.failed_ops for r in self.shard_results),
            retries=sum(r.retries for r in self.shard_results),
            injected_faults=sum(r.injected_faults for r in self.shard_results),
            injected_delay_s=sum(r.injected_delay_s for r in self.shard_results),
        )

    def latency_percentile(self, percentile: float, op: Optional[OpType] = None) -> float:
        return self.merged_result().latency_percentile(percentile, op)

    def summary(self) -> Dict[str, float]:
        summary = self.merged_result().summary()
        summary["throughput_kops"] = self.throughput_ops / 1000.0
        return summary


class ShardedReplayer:
    """Replays a trace across N workers, one key partition each.

    ``connectors`` selects the deployment mode:

    * a **callable** -- factory invoked once per worker; each worker
      drives its own store instance (scale-out mode),
    * a **single connector** -- shared by all workers (the paper's
      Fig. 14 concurrent-operator mode; key-disjoint partitions mean no
      two workers ever race on one key, but the connector itself must
      tolerate concurrent calls),
    * a **sequence of connectors** -- one per worker, caller-managed.

    A ``service_rate`` is the aggregate target; each worker throttles
    to its share.  Worker latencies land in per-shard histograms that
    :class:`ShardedReplayResult` merges losslessly.

    Note: on CPython with the GIL, wall-clock gains appear only when
    workers block outside the interpreter (real store I/O, remote
    connectors) or on free-threaded builds; the partitioning itself is
    GIL-agnostic.
    """

    def __init__(
        self,
        connectors: Union[
            StoreConnector,
            Callable[[], StoreConnector],
            Sequence[StoreConnector],
        ],
        num_workers: int = 4,
        service_rate: Optional[float] = None,
        measure_latency: bool = True,
        disable_gc: bool = True,
        use_histograms: bool = True,
        fault_plan=None,
        retry_policy=None,
        batch_size: Optional[int] = None,
        pipeline_depth: Optional[int] = None,
        telemetry=None,
    ) -> None:
        if num_workers <= 0:
            raise ValueError("num_workers must be positive")
        if fault_plan is not None and fault_plan.crash_at is not None:
            raise ValueError(
                "crash points are single-threaded experiments; use "
                "repro.faults.evaluate_crash_recovery instead of a "
                "sharded replay"
            )
        self.num_workers = num_workers
        self.service_rate = service_rate
        self.measure_latency = measure_latency
        self.disable_gc = disable_gc
        self.use_histograms = use_histograms
        #: each worker replays under a per-shard derived plan
        #: (:meth:`~repro.faults.FaultPlan.for_shard`), so fault
        #: timelines are a function of (seed, shard) alone -- identical
        #: across thread interleavings, across process-based replays,
        #: and across every store under comparison
        self.fault_plan = fault_plan
        self.retry_policy = retry_policy
        #: micro-batch size applied by every worker to its shard
        self.batch_size = batch_size
        #: in-flight window depth applied by every worker to its shard
        self.pipeline_depth = pipeline_depth
        #: optional :class:`~repro.obs.ReplayTelemetry` recording the
        #: whole fan-out; all workers share one progress object (the
        #: lock-protected recorder) and appear as separate trace lanes.
        self.telemetry = telemetry
        self._shared_progress = None
        if callable(connectors):
            self._connectors = [connectors() for _ in range(num_workers)]
            self._owns_connectors = True
        elif isinstance(connectors, StoreConnector) or not isinstance(
            connectors, Sequence
        ):
            self._connectors = [connectors] * num_workers
            self._owns_connectors = False
        else:
            if len(connectors) != num_workers:
                raise ValueError(
                    f"got {len(connectors)} connectors for {num_workers} workers"
                )
            self._connectors = list(connectors)
            self._owns_connectors = False

    @property
    def connectors(self) -> List[StoreConnector]:
        return list(self._connectors)

    def close(self) -> None:
        """Close factory-created connectors (distinct instances only)."""
        if self._owns_connectors:
            for connector in self._connectors:
                connector.close()

    def replay(self, trace: AccessTrace) -> ShardedReplayResult:
        telemetry = self.telemetry
        if telemetry is None:
            return self._run(trace)
        with telemetry.session(self._connectors[0], len(trace)) as progress:
            self._shared_progress = progress
            try:
                return self._run(trace)
            finally:
                self._shared_progress = None

    def _run(self, trace: AccessTrace) -> ShardedReplayResult:
        shards = shard_trace(trace, self.num_workers)
        per_worker_rate = (
            self.service_rate / self.num_workers if self.service_rate else None
        )
        results: List[Optional[ReplayResult]] = [None] * self.num_workers
        errors: List[BaseException] = []
        errors_lock = threading.Lock()
        stop_flag = threading.Event()
        start_barrier = threading.Barrier(self.num_workers)

        def worker(index: int) -> None:
            # Per-worker policy copies: RetryPolicy carries a jitter
            # RNG that must not be shared across threads.
            policy = (
                dataclasses.replace(self.retry_policy)
                if self.retry_policy is not None
                else None
            )
            replayer = TraceReplayer(
                self._connectors[index],
                service_rate=per_worker_rate,
                measure_latency=self.measure_latency,
                disable_gc=False,  # GC is managed once for the fan-out
                use_histograms=self.use_histograms,
                fault_plan=(
                    self.fault_plan.for_shard(index)
                    if self.fault_plan is not None
                    else None
                ),
                retry_policy=policy,
                batch_size=self.batch_size,
                pipeline_depth=self.pipeline_depth,
                stop_check=stop_flag.is_set,
            )
            # all workers tee into the session's shared (lock-
            # protected) progress; their distinct thread identities
            # still give one trace lane per shard
            replayer._progress = self._shared_progress
            try:
                start_barrier.wait()
                results[index] = replayer.replay(shards[index])
            except ReplayStopped:
                pass  # a sibling failed; this shard unwound on request
            except threading.BrokenBarrierError:
                pass  # a sibling aborted startup before we began
            except BaseException as exc:  # surface worker failures
                with errors_lock:
                    errors.append(exc)
                # wake siblings promptly wherever they are: parked at
                # the barrier (abort) or deep in their replay loop
                # (stop flag, polled per op/batch)
                stop_flag.set()
                start_barrier.abort()

        threads = [
            threading.Thread(target=worker, args=(index,), name=f"replay-shard-{index}")
            for index in range(self.num_workers)
        ]
        gc_was_enabled = gc.isenabled()
        if self.disable_gc and gc_was_enabled:
            gc.collect()
            gc.disable()
        started = time.perf_counter()
        try:
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
        finally:
            if self.disable_gc and gc_was_enabled:
                gc.enable()
        elapsed = time.perf_counter() - started
        _raise_shard_errors(errors)
        return ShardedReplayResult(
            store=self._connectors[0].name,
            shard_results=[result for result in results if result is not None],
            elapsed_s=elapsed,
        )
