"""The eleven predefined Gadget workloads (paper sections 5 and 6.3).

Each workload names an operator model with the paper's default
parameters: 5 s window length, 1 s slide, 2 min session gap, interval
join bounds of 2-3 min.  Single-input workloads take one source; join
workloads take two.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List

from .driver import OperatorModel
from .operators.aggregation import ContinuousAggregationModel
from .operators.joins import ContinuousJoinModel, IntervalJoinModel, WindowJoinModel
from .operators.sessions import SessionWindowModel
from .operators.windows import sliding_window_model, tumbling_window_model
from ..streaming.windows import SlidingWindows, TumblingWindows

DEFAULT_WINDOW_MS = 5_000
DEFAULT_SLIDE_MS = 1_000
DEFAULT_SESSION_GAP_MS = 120_000
DEFAULT_INTERVAL_LOWER_MS = 120_000
DEFAULT_INTERVAL_UPPER_MS = 180_000


@dataclass(frozen=True)
class WorkloadSpec:
    name: str
    description: str
    num_inputs: int
    factory: Callable[[], OperatorModel]


def _specs() -> List[WorkloadSpec]:
    return [
        WorkloadSpec(
            "tumbling-incremental",
            "5s tumbling window, incremental aggregation",
            1,
            lambda: tumbling_window_model(DEFAULT_WINDOW_MS),
        ),
        WorkloadSpec(
            "tumbling-holistic",
            "5s tumbling window, holistic aggregation",
            1,
            lambda: tumbling_window_model(DEFAULT_WINDOW_MS, holistic=True),
        ),
        WorkloadSpec(
            "sliding-incremental",
            "5s window / 1s slide, incremental aggregation",
            1,
            lambda: sliding_window_model(DEFAULT_WINDOW_MS, DEFAULT_SLIDE_MS),
        ),
        WorkloadSpec(
            "sliding-holistic",
            "5s window / 1s slide, holistic aggregation",
            1,
            lambda: sliding_window_model(
                DEFAULT_WINDOW_MS, DEFAULT_SLIDE_MS, holistic=True
            ),
        ),
        WorkloadSpec(
            "session-incremental",
            "2min-gap session window, incremental aggregation",
            1,
            lambda: SessionWindowModel(DEFAULT_SESSION_GAP_MS),
        ),
        WorkloadSpec(
            "session-holistic",
            "2min-gap session window, holistic aggregation",
            1,
            lambda: SessionWindowModel(DEFAULT_SESSION_GAP_MS, holistic=True),
        ),
        WorkloadSpec(
            "tumbling-join",
            "two-stream join over 5s tumbling windows",
            2,
            lambda: WindowJoinModel(TumblingWindows(DEFAULT_WINDOW_MS)),
        ),
        WorkloadSpec(
            "sliding-join",
            "two-stream join over 5s/1s sliding windows",
            2,
            lambda: WindowJoinModel(
                SlidingWindows(DEFAULT_WINDOW_MS, DEFAULT_SLIDE_MS)
            ),
        ),
        WorkloadSpec(
            "interval-join",
            "interval join, bounds [2min, 3min]",
            2,
            lambda: IntervalJoinModel(
                DEFAULT_INTERVAL_LOWER_MS, DEFAULT_INTERVAL_UPPER_MS
            ),
        ),
        WorkloadSpec(
            "continuous-join",
            "validity-interval join with end-event invalidation",
            2,
            lambda: ContinuousJoinModel({"finish", "dropoff"}),
        ),
        WorkloadSpec(
            "continuous-aggregation",
            "per-key rolling aggregate",
            1,
            lambda: ContinuousAggregationModel(),
        ),
    ]


WORKLOADS: Dict[str, WorkloadSpec] = {spec.name: spec for spec in _specs()}
WORKLOAD_NAMES = tuple(WORKLOADS)


def make_workload(name: str) -> OperatorModel:
    """Instantiate a predefined workload's operator model by name."""
    try:
        spec = WORKLOADS[name]
    except KeyError:
        raise ValueError(
            f"unknown workload {name!r}; expected one of {WORKLOAD_NAMES}"
        ) from None
    return spec.factory()
