"""Gadget: the benchmark harness (the paper's primary contribution)."""

from .config import (
    ArrivalConfig,
    GadgetConfig,
    KeyConfig,
    SourceConfig,
    ValueConfig,
)
from .configfile import (
    ConfigError,
    example_config,
    gadget_from_config,
    load_config,
    parse_config,
)
from .driver import Driver, OperatorModel
from .evaluator import DEFAULT_STORES, EvaluationRow, PerformanceEvaluator
from .generator import (
    EventGenerator,
    InputReplayer,
    KeySampler,
    ValueSampler,
    ecdf_from_events,
)
from .harness import Gadget, generate_workload_trace
from .histogram import LatencyHistogram
from .mp_replay import (
    ConnectorSpec,
    ProcessShardedReplayer,
    WorkerCrashError,
    WorkerProcessError,
    store_content_digest,
)
from .operators import (
    ContinuousAggregationModel,
    ContinuousJoinModel,
    IntervalJoinModel,
    SessionWindowModel,
    WindowJoinModel,
    WindowModel,
    sliding_window_model,
    tumbling_window_model,
)
from .replayer import (
    ReplayResult,
    ReplayStopped,
    ShardedReplayer,
    ShardedReplayResult,
    TraceReplayer,
    shard_indices,
    shard_trace,
    synthesize_value,
)
from .state_machines import (
    AggregationMachine,
    BufferMachine,
    HolisticWindowMachine,
    IncrementalWindowMachine,
    MachineContext,
    MergeBufferMachine,
    StateMachine,
)
from .workloads import WORKLOAD_NAMES, WORKLOADS, WorkloadSpec, make_workload

__all__ = [
    "AggregationMachine",
    "ArrivalConfig",
    "BufferMachine",
    "ConfigError",
    "ContinuousAggregationModel",
    "ContinuousJoinModel",
    "DEFAULT_STORES",
    "example_config",
    "gadget_from_config",
    "load_config",
    "parse_config",
    "Driver",
    "EvaluationRow",
    "EventGenerator",
    "Gadget",
    "GadgetConfig",
    "HolisticWindowMachine",
    "IncrementalWindowMachine",
    "InputReplayer",
    "IntervalJoinModel",
    "KeyConfig",
    "KeySampler",
    "LatencyHistogram",
    "MachineContext",
    "MergeBufferMachine",
    "OperatorModel",
    "PerformanceEvaluator",
    "ConnectorSpec",
    "ProcessShardedReplayer",
    "ReplayResult",
    "ReplayStopped",
    "SessionWindowModel",
    "ShardedReplayResult",
    "ShardedReplayer",
    "SourceConfig",
    "StateMachine",
    "TraceReplayer",
    "WorkerCrashError",
    "WorkerProcessError",
    "shard_indices",
    "shard_trace",
    "store_content_digest",
    "ValueConfig",
    "ValueSampler",
    "WORKLOADS",
    "WORKLOAD_NAMES",
    "WindowJoinModel",
    "WindowModel",
    "WorkloadSpec",
    "ecdf_from_events",
    "generate_workload_trace",
    "make_workload",
    "sliding_window_model",
    "synthesize_value",
    "tumbling_window_model",
]
