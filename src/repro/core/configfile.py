"""JSON configuration files for the harness (paper Figure 8).

The original Gadget is driven by configuration files describing the
sources and the operator.  This loader accepts the same information as
JSON and produces a ready :class:`~repro.core.harness.Gadget`::

    {
      "workload": "tumbling-incremental",
      "interleave": "time",
      "sources": [
        {
          "num_events": 100000,
          "arrivals": {"process": "poisson", "mean_interarrival_ms": 10},
          "keys": {"num_keys": 1000, "distribution": "zipfian"},
          "values": {"distribution": "constant", "size": 10},
          "watermark_frequency": 100,
          "out_of_order_fraction": 0.02,
          "max_lateness_ms": 3000,
          "seed": 42
        }
      ]
    }

Unknown fields raise immediately -- a mistyped knob should never be
silently ignored in a benchmark configuration.
"""

from __future__ import annotations

import dataclasses
import json
from typing import List, Tuple

from .config import ArrivalConfig, GadgetConfig, KeyConfig, SourceConfig, ValueConfig
from .harness import Gadget
from .workloads import WORKLOADS


class ConfigError(ValueError):
    """Raised for malformed or unknown configuration contents."""


def build_dataclass(cls, data: dict, context: str):
    """Strictly construct ``cls`` from ``data``: unknown keys are a
    :class:`ConfigError` naming the offending option and the valid set.
    Shared by every JSON config surface (workload, cluster, chaos) so
    a typo'd key fails loudly instead of silently using a default."""
    known = {field.name for field in dataclasses.fields(cls)}
    unknown = set(data) - known
    if unknown:
        raise ConfigError(
            f"unknown {context} option(s): {sorted(unknown)}; "
            f"expected a subset of {sorted(known)}"
        )
    return cls(**data)


# historical private name, kept for callers inside this module's family
_build_dataclass = build_dataclass


def parse_source(data: dict) -> SourceConfig:
    data = dict(data)
    nested = {}
    if "arrivals" in data:
        nested["arrivals"] = _build_dataclass(
            ArrivalConfig, data.pop("arrivals"), "arrivals"
        )
    if "keys" in data:
        keys = dict(data.pop("keys"))
        if "ecdf_points" in keys and keys["ecdf_points"] is not None:
            keys["ecdf_points"] = [tuple(p) for p in keys["ecdf_points"]]
        nested["keys"] = _build_dataclass(KeyConfig, keys, "keys")
    if "values" in data:
        nested["values"] = _build_dataclass(
            ValueConfig, data.pop("values"), "values"
        )
    source = _build_dataclass(SourceConfig, data, "source")
    return dataclasses.replace(source, **nested)


def parse_config(data: dict) -> Tuple[str, GadgetConfig]:
    """Parse a top-level config dict into (workload name, GadgetConfig)."""
    data = dict(data)
    try:
        workload = data.pop("workload")
    except KeyError:
        raise ConfigError("config requires a 'workload' field") from None
    if workload not in WORKLOADS:
        raise ConfigError(
            f"unknown workload {workload!r}; expected one of {sorted(WORKLOADS)}"
        )
    sources_data = data.pop("sources", [{}])
    if not isinstance(sources_data, list) or not sources_data:
        raise ConfigError("'sources' must be a non-empty list")
    sources = [parse_source(s) for s in sources_data]
    expected = WORKLOADS[workload].num_inputs
    if len(sources) != expected:
        raise ConfigError(
            f"workload {workload!r} needs {expected} source(s), "
            f"config has {len(sources)}"
        )
    interleave = data.pop("interleave", "round_robin")
    mode = data.pop("mode", "offline")
    if data:
        raise ConfigError(f"unknown top-level option(s): {sorted(data)}")
    return workload, GadgetConfig(sources=sources, mode=mode, interleave=interleave)


def load_config(path: str) -> Tuple[str, GadgetConfig]:
    with open(path, "r", encoding="utf-8") as handle:
        try:
            data = json.load(handle)
        except json.JSONDecodeError as exc:
            raise ConfigError(f"{path} is not valid JSON: {exc}") from exc
    return parse_config(data)


def gadget_from_config(path: str) -> Gadget:
    """Build a ready-to-run harness instance from a config file."""
    workload, config = load_config(path)
    return Gadget(workload, config.sources, config)


def example_config() -> dict:
    """A complete example configuration (used by docs and tests)."""
    return {
        "workload": "tumbling-incremental",
        "interleave": "round_robin",
        "sources": [
            {
                "num_events": 10_000,
                "arrivals": {"process": "poisson", "mean_interarrival_ms": 10.0},
                "keys": {"num_keys": 1000, "distribution": "zipfian"},
                "values": {"distribution": "constant", "size": 10},
                "watermark_frequency": 100,
                "out_of_order_fraction": 0.0,
                "max_lateness_ms": 0,
                "seed": 42,
            }
        ],
    }
