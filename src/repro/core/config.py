"""Gadget configuration surface (paper Figure 8's config file).

Users describe each data source -- arrival process, key distribution,
value sizes, watermark frequency, and out-of-order behaviour -- plus
operator parameters.  Sources can also be existing event traces, which
Gadget replays through its input replayer.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple


@dataclass
class KeyConfig:
    """How event keys are drawn.

    ``distribution`` is one of uniform / zipfian / sequential / hotspot
    / exponential / latest (the YCSB-compatible set), or ``ecdf`` with
    ``ecdf_points`` giving an empirical CDF over key indices as
    ``(cumulative_probability, key_index)`` steps.
    """

    num_keys: int = 1000
    distribution: str = "zipfian"
    key_size: int = 16
    ecdf_points: Optional[Sequence[Tuple[float, int]]] = None


@dataclass
class ValueConfig:
    """Value sizes: constant, or uniform in [min_size, max_size]."""

    distribution: str = "constant"
    size: int = 10
    min_size: int = 8
    max_size: int = 64


@dataclass
class ArrivalConfig:
    """Event-time arrival process.

    ``poisson`` draws exponential interarrival gaps with the given
    mean; ``constant`` spaces events exactly ``mean_interarrival_ms``
    apart.  Timestamps are 64-bit event times, so generated streams can
    be replayed at any density (paper section 5.1).
    """

    process: str = "poisson"
    mean_interarrival_ms: float = 10.0


@dataclass
class SourceConfig:
    """One configurable Gadget data source."""

    num_events: int = 100_000
    keys: KeyConfig = field(default_factory=KeyConfig)
    values: ValueConfig = field(default_factory=ValueConfig)
    arrivals: ArrivalConfig = field(default_factory=ArrivalConfig)
    #: one watermark per this many events
    watermark_frequency: int = 100
    #: fraction of events generated out of order
    out_of_order_fraction: float = 0.0
    #: allowed lateness window for out-of-order events (ms)
    max_lateness_ms: int = 0
    seed: int = 42


@dataclass
class GadgetConfig:
    """Top-level harness configuration."""

    sources: List[SourceConfig] = field(default_factory=lambda: [SourceConfig()])
    #: "online" issues requests to the store as they are generated;
    #: "offline" materializes a trace for later replay.
    mode: str = "offline"
    #: how the driver pulls from multiple sources (the paper's driver
    #: uses round-robin; "time" merges by event time)
    interleave: str = "round_robin"
