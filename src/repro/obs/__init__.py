"""Telemetry subsystem: span tracing, metrics sampling, live dashboard.

Everything in this package is zero-dependency and **no-op by default**:
a replay without a :class:`ReplayTelemetry` attached runs byte-for-byte
the same loops it ran before this package existed, and a disabled
:func:`~repro.obs.tracing.span` site costs one global load.
"""

from .dashboard import (
    ProgressView,
    diff_matrix,
    diff_series,
    format_diff,
    format_matrix,
    format_summary,
    summarize_series,
)
from .metrics import (
    Counter,
    MetricsRegistry,
    ReplayProgress,
    Sampler,
    merge_shard_series,
    read_series,
    register_store,
)
from .telemetry import ReplayTelemetry
from . import tracing
from .tracing import SpanTracer, instant, span

__all__ = [
    "Counter",
    "MetricsRegistry",
    "ProgressView",
    "ReplayProgress",
    "ReplayTelemetry",
    "Sampler",
    "SpanTracer",
    "diff_matrix",
    "diff_series",
    "format_diff",
    "format_matrix",
    "format_summary",
    "instant",
    "merge_shard_series",
    "read_series",
    "register_store",
    "span",
    "summarize_series",
    "tracing",
]
