"""Span tracer: bounded ring-buffer tracing with Chrome trace export.

The harness's diagnostic claim (paper sections 5-6) is that aggregate
numbers hide *when* a store does its internal work; a latency cliff is
explained by lining client-observed slowness up against the flushes,
compactions, page evictions, and reconnects that caused it.  This
module records those internal activities as **spans** -- named, timed
intervals -- into a fixed-size ring buffer, and exports them as Chrome
trace-event JSON loadable in Perfetto or ``chrome://tracing``.

Zero-overhead when off: a single module-level tracer slot is ``None``
by default, and :func:`span` returns a shared no-op context manager
without allocating.  Instrumentation sites therefore stay in the code
permanently; the cost of a disabled site is one global load, one
comparison, and an empty ``with`` block.  Hot per-operation paths
(the replay fast loop, per-record WAL appends) are deliberately *not*
instrumented -- spans cover the rare internal events (flush,
compaction, segment roll, page eviction, reconnect) plus per-batch and
per-RPC work where the traced operation dwarfs the tracing cost.

Thread lanes: every span records the identifier and name of the thread
that closed it, so a :class:`~repro.core.replayer.ShardedReplayer` run
exports one lane per ``replay-shard-N`` worker.

Overflow keeps the *newest* spans: the ring overwrites oldest-first
and counts every overwritten span in :attr:`SpanTracer.dropped`, so a
long run's trace always ends at the interesting part (the end) and the
export says how much history it lost.
"""

from __future__ import annotations

import json
import threading
import time
from contextlib import contextmanager
from typing import Any, Dict, List, Optional, Tuple

#: ring entry: (name, thread id, start_ns, dur_ns, args); dur_ns < 0
#: marks an instant event
_Entry = Tuple[str, int, int, int, Optional[Dict[str, Any]]]


class _NullSpan:
    """Shared do-nothing span returned while tracing is off."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc_info) -> bool:
        return False

    def add(self, **args) -> None:
        """Attach attributes late (no-op)."""


_NULL_SPAN = _NullSpan()

#: the installed tracer, or None (the no-op default)
_tracer: Optional["SpanTracer"] = None


def active() -> Optional["SpanTracer"]:
    """The installed tracer, or ``None`` when tracing is off."""
    return _tracer


def install(tracer: "SpanTracer") -> "SpanTracer":
    """Install ``tracer`` as the process-wide span sink."""
    global _tracer
    _tracer = tracer
    return tracer


def uninstall() -> Optional["SpanTracer"]:
    """Remove the installed tracer (tracing reverts to no-op)."""
    global _tracer
    tracer, _tracer = _tracer, None
    return tracer


def span(name: str, **args):
    """Open a span; use as ``with span("lsm.flush", entries=n):``.

    Returns the shared no-op span when tracing is off -- the disabled
    cost is one global load and a truth test.
    """
    tracer = _tracer
    if tracer is None:
        return _NULL_SPAN
    return _Span(tracer, name, args or None)


def instant(name: str, **args) -> None:
    """Record a zero-duration event (e.g. a retry attempt)."""
    tracer = _tracer
    if tracer is not None:
        tracer.record_instant(name, args or None)


@contextmanager
def tracing(capacity: int = 65536):
    """Install a fresh :class:`SpanTracer` for the ``with`` block."""
    tracer = install(SpanTracer(capacity))
    try:
        yield tracer
    finally:
        if _tracer is tracer:
            uninstall()


class _Span:
    """A live span; closing it records one ring entry."""

    __slots__ = ("_tracer", "name", "args", "_start")

    def __init__(self, tracer: "SpanTracer", name: str, args: Optional[dict]) -> None:
        self._tracer = tracer
        self.name = name
        self.args = args
        self._start = 0

    def __enter__(self) -> "_Span":
        self._start = self._tracer._clock()
        return self

    def __exit__(self, *exc_info) -> bool:
        tracer = self._tracer
        end = tracer._clock()
        tracer._record(self.name, self._start, end - self._start, self.args)
        return False

    def add(self, **args) -> None:
        """Attach attributes discovered mid-span."""
        if self.args is None:
            self.args = args
        else:
            self.args.update(args)


class SpanTracer:
    """Fixed-capacity span ring with thread lanes.

    Recording takes one short lock (append + lane bookkeeping); the
    ring never grows, so an arbitrarily long replay traces in bounded
    memory and keeps its newest ``capacity`` spans.
    """

    def __init__(self, capacity: int = 65536, clock=time.perf_counter_ns) -> None:
        if capacity < 1:
            raise ValueError("capacity must be positive")
        self.capacity = capacity
        self._clock = clock
        self._ring: List[Optional[_Entry]] = [None] * capacity
        self._count = 0
        #: spans overwritten after the ring filled (newest are kept)
        self.dropped = 0
        self._lock = threading.Lock()
        #: thread ident -> thread name, captured at first record
        self._lane_names: Dict[int, str] = {}
        #: ts base, so exported timestamps start near zero
        self.epoch_ns = clock()

    # -- recording ----------------------------------------------------------

    def span(self, name: str, **args) -> _Span:
        return _Span(self, name, args or None)

    def record_instant(self, name: str, args: Optional[dict] = None) -> None:
        self._record(name, self._clock(), -1, args)

    def _record(self, name: str, start_ns: int, dur_ns: int, args: Optional[dict]) -> None:
        tid = threading.get_ident()
        entry = (name, tid, start_ns, dur_ns, args)
        with self._lock:
            if tid not in self._lane_names:
                self._lane_names[tid] = threading.current_thread().name
            if self._count >= self.capacity:
                self.dropped += 1
            self._ring[self._count % self.capacity] = entry
            self._count += 1

    # -- reading ------------------------------------------------------------

    def __len__(self) -> int:
        return min(self._count, self.capacity)

    def spans(self) -> List[_Entry]:
        """Recorded entries, oldest surviving first."""
        with self._lock:
            if self._count <= self.capacity:
                return [e for e in self._ring[: self._count] if e is not None]
            head = self._count % self.capacity
            return [
                e for e in self._ring[head:] + self._ring[:head] if e is not None
            ]

    def lane_names(self) -> Dict[int, str]:
        with self._lock:
            return dict(self._lane_names)

    # -- Chrome trace-event export ------------------------------------------

    def to_chrome_trace(self) -> dict:
        """The trace as a Chrome trace-event JSON object.

        Complete (``X``) events carry microsecond ``ts``/``dur``;
        instant events use ``ph: "i"`` with thread scope.  Each thread
        becomes a ``tid`` lane named by a ``thread_name`` metadata
        event, so sharded replays render one lane per worker.
        """
        entries = self.spans()
        lanes = self.lane_names()
        #: stable small lane numbers in order of first appearance
        tid_of = {ident: lane for lane, ident in enumerate(sorted(lanes))}
        pid = 1
        events: List[dict] = [
            {
                "name": "process_name",
                "ph": "M",
                "pid": pid,
                "tid": 0,
                "args": {"name": "repro replay"},
            }
        ]
        for ident, lane in sorted(tid_of.items(), key=lambda kv: kv[1]):
            events.append(
                {
                    "name": "thread_name",
                    "ph": "M",
                    "pid": pid,
                    "tid": lane,
                    "args": {"name": lanes[ident]},
                }
            )
        epoch = self.epoch_ns
        for name, ident, start_ns, dur_ns, args in entries:
            event = {
                "name": name,
                "cat": name.split(".", 1)[0],
                "ts": (start_ns - epoch) / 1000.0,
                "pid": pid,
                "tid": tid_of[ident],
            }
            if dur_ns < 0:
                event["ph"] = "i"
                event["s"] = "t"
            else:
                event["ph"] = "X"
                event["dur"] = dur_ns / 1000.0
            if args:
                event["args"] = dict(args)
            events.append(event)
        return {
            "traceEvents": events,
            "displayTimeUnit": "ms",
            "otherData": {"dropped_spans": self.dropped},
        }

    def export(self, path: str) -> None:
        """Write the Chrome trace JSON to ``path``."""
        with open(path, "w") as handle:
            json.dump(self.to_chrome_trace(), handle)
            handle.write("\n")
