"""Metrics registry and time-series sampler.

Aggregates like :class:`~repro.core.evaluator.EvaluationRow` say *how
fast* a replay was; this module records *what the store was doing over
time* so a latency spike at 80% progress can be attributed to the
compaction (or page-eviction storm, or reconnect burst) that caused
it.

Three pieces:

* :class:`MetricsRegistry` -- named counters and callback gauges.
  :func:`register_store` wires a store's existing telemetry surfaces
  (``StoreStats``, ``IntegrityCounters``, LSM levels and block cache,
  B-tree page cache, FASTER hybrid-log fill) into one flat namespace.
* :class:`ReplayProgress` -- the replay loop's shared counter: ops
  done plus an interval latency histogram the sampler swaps out each
  tick (so percentiles are per-interval, not cumulative).
* :class:`Sampler` -- a daemon thread that snapshots everything every
  ``interval_ms`` and appends one JSON object per line (JSONL).  Each
  line carries the interval's ops, throughput, p50/p95/p99, the full
  interval histogram (merge-preserving, see
  :meth:`~repro.core.histogram.LatencyHistogram.to_dict`), and every
  gauge -- enough to re-aggregate any sub-range offline.

Everything here is opt-in: no sampler thread exists and no gauges are
read unless a telemetry session asks for them.
"""

from __future__ import annotations

import json
import threading
import time
from typing import TYPE_CHECKING, Any, Callable, Dict, IO, List, Optional, Tuple, Union

if TYPE_CHECKING:  # pragma: no cover - avoids a cycle: stores import
    # repro.obs for tracing, and repro.core imports the stores
    from ..core.histogram import LatencyHistogram


class Counter:
    """Monotonic named counter."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        self.value += amount


class MetricsRegistry:
    """Flat namespace of counters and callback gauges."""

    def __init__(self) -> None:
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Callable[[], float]] = {}

    def counter(self, name: str) -> Counter:
        counter = self._counters.get(name)
        if counter is None:
            counter = self._counters[name] = Counter(name)
        return counter

    def gauge(self, name: str, read: Callable[[], float]) -> None:
        """Register ``read`` as the sampler's source for ``name``."""
        self._gauges[name] = read

    def names(self) -> List[str]:
        return sorted(set(self._counters) | set(self._gauges))

    def sample(self) -> Dict[str, float]:
        """Read every counter and gauge once.

        A gauge that raises is reported as ``None`` rather than killing
        the sampler thread mid-replay (a store may already be closed or
        mid-crash when the tick fires).
        """
        out: Dict[str, Any] = {}
        for name, counter in self._counters.items():
            out[name] = counter.value
        for name, read in self._gauges.items():
            try:
                out[name] = read()
            except Exception:
                out[name] = None
        return out


def register_store(registry: MetricsRegistry, store, prefix: str = "") -> int:
    """Expose a store's internal telemetry as gauges.

    Accepts a :class:`~repro.kvstores.api.KVStore` or anything
    connector-shaped with a ``.store`` attribute; engine-specific
    surfaces are discovered by duck typing, so every backend -- and
    future ones -- registers whatever it actually has.  Returns the
    number of gauges registered.
    """
    inner = getattr(store, "store", store)
    before = len(registry.names())
    stats = getattr(inner, "stats", None)
    if stats is not None:
        for field in (
            "gets",
            "puts",
            "merges",
            "deletes",
            "flushes",
            "compactions",
            "bytes_written",
            "bytes_read",
            "cache_hits",
            "cache_misses",
        ):
            registry.gauge(
                f"{prefix}ops.{field}",
                (lambda s=stats, f=field: getattr(s, f)),
            )
    integrity = getattr(inner, "integrity", None)
    if integrity is not None:
        registry.gauge(f"{prefix}integrity.detected", lambda i=integrity: i.detected)
        registry.gauge(f"{prefix}integrity.repaired", lambda i=integrity: i.repaired)

    # -- LSM family ---------------------------------------------------------
    if hasattr(inner, "level_file_counts") and hasattr(inner, "_memtable"):
        registry.gauge(
            f"{prefix}lsm.memtable_bytes",
            lambda s=inner: s._memtable.approximate_bytes,
        )
        registry.gauge(
            f"{prefix}lsm.immutable_memtables", lambda s=inner: len(s._immutables)
        )
        registry.gauge(f"{prefix}lsm.wal_bytes", lambda s=inner: s._wal_bytes)
        registry.gauge(
            f"{prefix}lsm.sstable_bytes", lambda s=inner: s.total_data_bytes()
        )
        registry.gauge(
            f"{prefix}lsm.sstables", lambda s=inner: sum(s.level_file_counts())
        )
        for level in range(len(inner._levels)):
            registry.gauge(
                f"{prefix}lsm.l{level}_files",
                (lambda s=inner, lv=level: len(s._levels[lv])),
            )
        cache = getattr(inner, "block_cache", None)
        if cache is not None:
            registry.gauge(
                f"{prefix}lsm.block_cache_hit_rate",
                lambda c=cache: _hit_rate(c.hits, c.misses),
            )
            registry.gauge(
                f"{prefix}lsm.block_cache_bytes", lambda c=cache: c.used_bytes
            )
        registry.gauge(
            f"{prefix}lsm.quarantined", lambda s=inner: len(s.quarantined)
        )
        # Background-maintenance surface: queue depth feeding the flush
        # worker and the write-stall gate's counters (all zero while
        # the store runs inline).
        registry.gauge(
            f"{prefix}lsm.immutable_queue_depth",
            lambda s=inner: s.immutable_queue_depth,
        )
        registry.gauge(
            f"{prefix}lsm.write_stall_count",
            lambda s=inner: s.write_stall_count,
        )
        registry.gauge(
            f"{prefix}lsm.write_stall_ms",
            lambda s=inner: round(s.write_stall_ns / 1e6, 3),
        )

    # -- B+Tree -------------------------------------------------------------
    if hasattr(inner, "cache_stats") and hasattr(inner, "_pages"):
        pages = inner._pages
        registry.gauge(
            f"{prefix}btree.resident_pages", lambda p=pages: p.resident_pages
        )
        registry.gauge(f"{prefix}btree.page_ins", lambda p=pages: p.page_ins)
        registry.gauge(f"{prefix}btree.page_outs", lambda p=pages: p.page_outs)
        registry.gauge(
            f"{prefix}btree.page_cache_hit_rate",
            lambda p=pages: _hit_rate(p.hits, p.misses),
        )
        registry.gauge(f"{prefix}btree.height", lambda s=inner: s.height)

    # -- FASTER -------------------------------------------------------------
    if hasattr(inner, "fill_stats") and hasattr(inner, "log"):
        log = inner.log
        registry.gauge(f"{prefix}faster.log_tail", lambda lg=log: lg.tail)
        registry.gauge(f"{prefix}faster.log_head", lambda lg=log: lg.head)
        registry.gauge(
            f"{prefix}faster.log_memory_bytes", lambda lg=log: lg.memory_bytes
        )
        registry.gauge(
            f"{prefix}faster.in_place_updates", lambda lg=log: lg.in_place_updates
        )
        registry.gauge(f"{prefix}faster.disk_reads", lambda lg=log: lg.disk_reads)
        registry.gauge(
            f"{prefix}faster.sealed_segments",
            lambda lg=log: len(lg.sealed_segments()),
        )

    # -- remote client ------------------------------------------------------
    if hasattr(store, "reconnects"):
        registry.gauge(
            f"{prefix}remote.reconnects", lambda c=store: c.reconnects
        )

    # -- pipelined windows (remote client and cluster connector) ------------
    if hasattr(store, "flush_coalesced_ops"):
        registry.gauge(
            f"{prefix}remote.inflight_depth", lambda c=store: c.inflight_depth
        )
        registry.gauge(
            f"{prefix}remote.flush_coalesced_ops",
            lambda c=store: c.flush_coalesced_ops,
        )

    # -- cluster connector ---------------------------------------------------
    if hasattr(store, "failovers") and hasattr(store, "endpoints"):
        registry.gauge(f"{prefix}cluster.failovers", lambda c=store: c.failovers)
        registry.gauge(
            f"{prefix}cluster.chain_repairs", lambda c=store: c.chain_repairs
        )
        registry.gauge(
            f"{prefix}cluster.isolated", lambda c=store: len(c._isolated)
        )
        # per-endpoint reconnect gauges: a failover's latency spike is
        # attributed to the reconnect burst on the endpoint that died
        for endpoint in store.endpoints():
            registry.gauge(
                f"{prefix}cluster.{endpoint}.reconnects",
                (lambda c=store, e=endpoint: c.reconnects_for(e)),
            )
    return len(registry.names()) - before


def _hit_rate(hits: int, misses: int) -> float:
    total = hits + misses
    return hits / total if total else 0.0


class ReplayProgress:
    """Shared progress state between a replay loop and the sampler.

    ``record`` is called once per measured operation with its latency;
    the lock keeps the ops counter and interval histogram consistent
    when sharded workers share one progress object.  Fault sources
    (injector, retrier) attach themselves so the sampler can report
    live fault counts without touching the replay loop.
    """

    __slots__ = (
        "total",
        "ops",
        "_histogram_cls",
        "_interval",
        "_lock",
        "_fault_sources",
    )

    def __init__(self, total: int) -> None:
        from ..core.histogram import LatencyHistogram  # deferred: cycle

        self.total = total
        self.ops = 0
        self._histogram_cls = LatencyHistogram
        self._interval = LatencyHistogram()
        self._lock = threading.Lock()
        self._fault_sources: List[Tuple[Any, Any]] = []

    def record(self, elapsed_ns: int) -> None:
        with self._lock:
            self.ops += 1
            self._interval.record(elapsed_ns)

    def count(self, n: int = 1) -> None:
        """Count ops replayed without latency (``measure_latency=False``)."""
        with self._lock:
            self.ops += n

    def take_interval(self) -> Tuple[int, "LatencyHistogram"]:
        """Swap out and return (ops so far, interval histogram)."""
        with self._lock:
            interval = self._interval
            self._interval = self._histogram_cls()
            return self.ops, interval

    def attach_fault_sources(self, injector, retrier) -> None:
        with self._lock:
            self._fault_sources.append((injector, retrier))

    def fault_counts(self) -> Tuple[int, int]:
        """(faults injected, retries spent) across attached sources."""
        faults = 0
        retries = 0
        with self._lock:
            sources = list(self._fault_sources)
        for injector, retrier in sources:
            if injector is not None:
                faults += injector.injected.total_faults
            if retrier is not None:
                retries += retrier.retries
        return faults, retries


class Sampler:
    """Background thread writing one JSONL sample per interval.

    The thread is a daemon and :meth:`stop` is idempotent, so a replay
    that dies mid-trace (a real crash or an injected
    :class:`~repro.faults.errors.InjectedCrash` point) still shuts the
    sampler down cleanly from the session's ``finally`` -- the output
    file always ends on a complete line, with one final sample taken
    at stop time so the tail of the run is never lost.
    """

    def __init__(
        self,
        registry: MetricsRegistry,
        progress: ReplayProgress,
        sink: Optional[Union[str, IO[str]]] = None,
        interval_ms: float = 100.0,
        on_sample: Optional[Callable[[dict], None]] = None,
        store: str = "",
        meta: Optional[dict] = None,
    ) -> None:
        if interval_ms <= 0:
            raise ValueError("interval_ms must be positive")
        self.registry = registry
        self.progress = progress
        self.interval_ms = interval_ms
        self.on_sample = on_sample
        self.store = store
        self.meta = meta or {}
        self.samples_written = 0
        self._handle: Optional[IO[str]] = None
        self._owns_handle = False
        if isinstance(sink, str):
            self._handle = open(sink, "w")
            self._owns_handle = True
        elif sink is not None:
            self._handle = sink
        self._stop = threading.Event()
        self._thread = threading.Thread(
            target=self._run, name="obs-sampler", daemon=True
        )
        self._started = 0.0
        self._last_t = 0.0
        self._last_ops = 0

    # -- lifecycle ----------------------------------------------------------

    def start(self) -> "Sampler":
        self._started = self._last_t = time.perf_counter()
        if self._handle is not None:
            header = {
                "sample": "header",
                "store": self.store,
                "total_ops": self.progress.total,
                "interval_ms": self.interval_ms,
                "metrics": self.registry.names(),
            }
            header.update(self.meta)
            self._handle.write(json.dumps(header) + "\n")
        self._thread.start()
        return self

    def stop(self) -> None:
        """Stop the thread, take a final sample, flush and close."""
        if self._stop.is_set():
            return
        self._stop.set()
        if self._thread.is_alive():
            self._thread.join(timeout=5.0)
        self._emit()
        if self._handle is not None:
            self._handle.flush()
            if self._owns_handle:
                self._handle.close()

    @property
    def stopped(self) -> bool:
        return self._stop.is_set() and not self._thread.is_alive()

    def _run(self) -> None:
        interval_s = self.interval_ms / 1000.0
        while not self._stop.wait(interval_s):
            self._emit()

    # -- sampling -----------------------------------------------------------

    def _emit(self) -> None:
        now = time.perf_counter()
        ops, interval = self.progress.take_interval()
        dt = now - self._last_t
        interval_ops = ops - self._last_ops
        self._last_t = now
        self._last_ops = ops
        total = self.progress.total
        sample: Dict[str, Any] = {
            "t_s": round(now - self._started, 6),
            "ops": ops,
            "progress": round(ops / total, 6) if total else 0.0,
            "interval_ops": interval_ops,
            "throughput_ops": round(interval_ops / dt, 3) if dt > 0 else 0.0,
            "p50_us": round(interval.percentile(50.0) / 1000.0, 3),
            "p95_us": round(interval.percentile(95.0) / 1000.0, 3),
            "p99_us": round(interval.percentile(99.0) / 1000.0, 3),
        }
        faults, retries = self.progress.fault_counts()
        if faults or retries:
            sample["faults"] = faults
            sample["retries"] = retries
        if interval.total:
            sample["latency_hist"] = interval.to_dict()
        sample["gauges"] = self.registry.sample()
        if self._handle is not None:
            try:
                self._handle.write(json.dumps(sample) + "\n")
            except ValueError:
                return  # handle already closed by a racing stop()
        self.samples_written += 1
        if self.on_sample is not None:
            try:
                self.on_sample(sample)
            except Exception:
                pass  # a broken progress view must not kill the sampler


def merge_shard_series(paths: List[str], out_path: str) -> dict:
    """Concatenate per-shard metrics JSONL files into one series.

    Multi-process replay writes one JSONL file per worker; this folds
    them into a single file the existing ``repro metrics`` tooling can
    read: one merged header (``total_ops`` summed, ``shards`` recording
    the fan-out, metric names unioned) followed by every shard's
    samples tagged with their ``shard`` index and ordered by ``t_s``.
    Returns the merged header.
    """
    merged_header: Dict[str, Any] = {}
    total_ops = 0
    names: List[str] = []
    merged_samples: List[dict] = []
    for shard, path in enumerate(paths):
        header, samples = read_series(path)
        if not merged_header:
            merged_header = dict(header)
        total_ops += int(header.get("total_ops", 0) or 0)
        for name in header.get("metrics", []):
            if name not in names:
                names.append(name)
        shard_id = header.get("shard", shard)
        for sample in samples:
            sample["shard"] = shard_id
            merged_samples.append(sample)
    merged_samples.sort(key=lambda sample: sample.get("t_s", 0.0))
    merged_header["total_ops"] = total_ops
    merged_header["metrics"] = names
    merged_header["shards"] = len(paths)
    merged_header.pop("shard", None)
    with open(out_path, "w") as handle:
        handle.write(json.dumps(merged_header) + "\n")
        for sample in merged_samples:
            handle.write(json.dumps(sample) + "\n")
    return merged_header


def read_series(path: str) -> Tuple[dict, List[dict]]:
    """Load a metrics JSONL file -> (header, samples)."""
    header: dict = {}
    samples: List[dict] = []
    with open(path) as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            row = json.loads(line)
            if row.get("sample") == "header":
                header = row
            else:
                samples.append(row)
    return header, samples
